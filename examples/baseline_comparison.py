#!/usr/bin/env python3
"""Compare COSY's specification-based analysis with the related-work baselines.

Section 2 of the paper positions ASL/COSY against Paradyn (fixed bottleneck
set), OPAL (rule base built into the tool), EDL (event patterns) and EARL
(procedural trace scripts).  This example runs all five analyses on the same
simulated application with a known, injected bottleneck (severe load imbalance
in the ``particle_push`` loop) and prints what each approach reports.

Run with::

    python examples/baseline_comparison.py
"""

from repro.apprentice import ExecutionSimulator, SimulationConfig, synthetic_workload
from repro.asl.specs import cosy_specification
from repro.baselines import (
    EarlAnalyzer,
    EdlAnalyzer,
    ParadynSearch,
    RuleEngine,
    default_rule_base,
)
from repro.cosy import CosyAnalyzer
from repro.cosy.report import format_table
from repro.traces import generate_trace


def main() -> None:
    workload = synthetic_workload("imbalanced", imbalance=0.8)
    pes = 16
    repository = ExecutionSimulator(
        workload, SimulationConfig(pe_counts=(1, pes))
    ).run()
    version = repository.programs[0].latest_version()
    run = version.run_with_pes(pes)
    trace = generate_trace(workload, pes)

    rows = []

    # COSY: specification-based, severity-ranked properties.
    cosy_result = CosyAnalyzer(repository, specification=cosy_specification()).analyze(
        pes=pes
    )
    for instance in cosy_result.ranked()[:3]:
        rows.append(
            ("COSY (ASL)", instance.property_name, instance.subject,
             f"{instance.severity:.3f}")
        )

    # Paradyn-like fixed search.
    for finding in ParadynSearch(repository).search(version, run)[:3]:
        rows.append(("Paradyn-like", finding.problem, finding.location,
                     f"{finding.severity:.3f}"))

    # OPAL-like rule base.
    for finding in RuleEngine(repository, default_rule_base()).analyze(version, run)[:3]:
        rows.append(("OPAL-like", finding.problem, finding.location,
                     f"{finding.severity:.3f}"))

    # EDL-like compound events over the trace.
    for finding in EdlAnalyzer().analyze(trace)[:3]:
        rows.append(("EDL-like", finding.problem, finding.location,
                     f"{finding.severity:.3f}"))

    # EARL-like procedural trace scripts.
    for finding in EarlAnalyzer().analyze(trace)[:3]:
        rows.append(("EARL-like", finding.problem, finding.location,
                     f"{finding.severity:.3f}"))

    print(
        "Injected ground truth: persistent load imbalance in 'particle_push' "
        f"(imbalance 0.8, {pes} PEs)\n"
    )
    print(format_table(["approach", "reported problem", "location", "severity"], rows))
    print(
        "\nAll approaches point at the barrier / load-imbalance problem; the\n"
        "difference is where the knowledge lives: in an exchangeable ASL\n"
        "specification document (COSY) versus fixed hypothesis sets, tool-coded\n"
        "rules or hand-written trace scripts."
    )


if __name__ == "__main__":
    main()
