#!/usr/bin/env python3
"""Load-imbalance study: how the SyncCost → LoadImbalance refinement reacts.

The paper motivates the ``LoadImbalance`` property as a refinement of
``SyncCost``: barrier time is only a symptom, the deviation of the per-process
times at the barrier call site tells whether uneven work distribution causes
it.  This example sweeps the injected imbalance of the particle workload and
shows how the severities of the whole-program cost, the barrier cost and the
load-imbalance property react — and at which point COSY starts reporting the
program as "needs tuning".

Run with::

    python examples/load_imbalance_study.py
"""

from repro.apprentice import ExecutionSimulator, SimulationConfig, synthetic_workload
from repro.asl.specs import cosy_specification
from repro.cosy import CosyAnalyzer
from repro.cosy.report import format_table


def analyze_imbalance(specification, imbalance: float, pes: int = 16):
    workload = synthetic_workload("imbalanced", imbalance=imbalance)
    repository = ExecutionSimulator(
        workload, SimulationConfig(pe_counts=(1, pes))
    ).run()
    analyzer = CosyAnalyzer(repository, specification=specification, threshold=0.05)
    result = analyzer.analyze(pes=pes)
    load_imbalance = result.by_property("LoadImbalance")
    imbalance_detected = any("particle_push" in i.subject for i in load_imbalance)
    return {
        "imbalance": imbalance,
        "total_cost": result.total_cost_severity(),
        "sync_cost": result.severity_of("SyncCost", "particle_push"),
        "load_imbalance_detected": imbalance_detected,
        "needs_tuning": result.needs_tuning(),
    }


def main() -> None:
    specification = cosy_specification()
    rows = []
    for imbalance in (0.0, 0.1, 0.25, 0.4, 0.6, 0.8, 1.0):
        row = analyze_imbalance(specification, imbalance)
        rows.append(
            (
                f"{row['imbalance']:.2f}",
                f"{row['total_cost']:.3f}",
                f"{row['sync_cost']:.3f}",
                "yes" if row["load_imbalance_detected"] else "no",
                "yes" if row["needs_tuning"] else "no",
            )
        )
    print("LoadImbalance refinement study (particle workload, 16 PEs)")
    print()
    print(
        format_table(
            [
                "injected imbalance",
                "SublinearSpeedup severity",
                "SyncCost(particle_push)",
                "LoadImbalance detected",
                "needs tuning",
            ],
            rows,
        )
    )
    print()
    print(
        "Reading: the barrier cost (SyncCost) grows with the injected imbalance\n"
        "and the LoadImbalance property fires once the per-process deviation\n"
        "exceeds the ImbalanceThreshold of the specification."
    )


if __name__ == "__main__":
    main()
