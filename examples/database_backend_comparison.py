#!/usr/bin/env python3
"""Reproduce the Section 5 database observations interactively.

The paper compares four database backends (Oracle 7, MS Access, MS SQL Server,
Postgres) for storing and querying the performance data, and reports the
advantage of translating property conditions entirely into SQL.  This example
loads the same simulated performance data into all four (virtual) backends and
prints:

* the bulk-insert time per backend (paper: MS Access ≈ 20× faster than Oracle),
* the time to evaluate all COSY properties with SQL pushdown per backend
  (paper: Oracle ≈ 2× slower than MS SQL Server / Postgres, Access fastest),
* the pushdown vs. client-side evaluation comparison on the Oracle-like
  backend (paper: pushing the conditions into SQL is a significant advantage),
* the native vs. bridged (JDBC-like) client overhead (paper: factor 2–4).

Run with::

    python examples/database_backend_comparison.py
"""

from repro.bench import build_scenario, load_into_backend
from repro.cosy import ClientSideStrategy, PushdownStrategy
from repro.cosy.report import format_table
from repro.relalg import BACKEND_PROFILES, BridgedClient, NativeClient, backend


def main() -> None:
    scenario = build_scenario(
        "scalable", pe_counts=(1, 4, 16), functions=6, regions_per_function=5
    )

    # -- E1: bulk insertion and property queries per backend -----------------
    rows = []
    per_backend = {}
    for name in BACKEND_PROFILES:
        # Row-at-a-time loading: the paper's 20x bulk-insert observation was
        # measured submitting one record per statement (batching is E6).
        client, ids = load_into_backend(scenario, name, batch_size=None)
        insert_time = client.elapsed
        client.backend.reset_clock()
        strategy = PushdownStrategy(
            scenario.specification, scenario.mapping, client, ids
        )
        scenario.analyzer.analyze(strategy=strategy)
        query_time = client.elapsed
        per_backend[name] = (insert_time, query_time)
        rows.append((name, f"{insert_time * 1e3:.1f}", f"{query_time * 1e3:.1f}"))
    print("E1 — backend comparison (virtual time, milliseconds)")
    print(format_table(["backend", "bulk insert [ms]", "property queries [ms]"], rows))
    oracle_insert = per_backend["oracle7"][0]
    access_insert = per_backend["ms_access"][0]
    print(
        f"\n  insertion: Oracle / MS Access = {oracle_insert / access_insert:.1f}x "
        f"(paper reports about 20x)"
    )
    oracle_query = per_backend["oracle7"][1]
    mssql_query = per_backend["ms_sql_server"][1]
    print(
        f"  queries  : Oracle / MS SQL Server = {oracle_query / mssql_query:.1f}x "
        f"(paper reports about 2x)\n"
    )

    # -- E3: pushdown vs. client-side evaluation ------------------------------
    client, ids = load_into_backend(scenario, "oracle7")
    client.backend.reset_clock()
    scenario.analyzer.analyze(
        strategy=PushdownStrategy(scenario.specification, scenario.mapping, client, ids)
    )
    pushdown_time = client.elapsed

    client2, ids2 = load_into_backend(scenario, "oracle7")
    client2.backend.reset_clock()
    scenario.analyzer.analyze(
        strategy=ClientSideStrategy(
            scenario.specification, client=client2, ids=ids2
        )
    )
    client_side_time = client2.elapsed
    print("E3 — work distribution between client and database (Oracle-like backend)")
    print(
        format_table(
            ["strategy", "virtual time [ms]"],
            [
                ("SQL pushdown", f"{pushdown_time * 1e3:.1f}"),
                ("fetch + evaluate in client", f"{client_side_time * 1e3:.1f}"),
            ],
        )
    )
    print(
        f"\n  pushing the conditions into SQL is "
        f"{client_side_time / pushdown_time:.1f}x faster here.\n"
    )

    # -- E2: native vs. bridged client -----------------------------------------
    totals = {}
    overheads = {}
    for factory in (NativeClient, BridgedClient):
        client = factory(backend("oracle7"))
        client.execute("CREATE TABLE probe (id INTEGER PRIMARY KEY, x FLOAT)")
        client.execute("INSERT INTO probe (id, x) VALUES (1, 1.0)")
        client.backend.reset_clock()
        client.client_time = 0.0
        for _ in range(1000):
            client.fetch_record("SELECT x FROM probe WHERE id = ?", [1])
        totals[client.api_name] = client.elapsed / 1000
        overheads[client.api_name] = client.client_time / 1000
    print("E2 — single-record fetch through the two client stacks (Oracle-like)")
    print(
        format_table(
            ["client API", "time per record [ms]", "API overhead per record [ms]"],
            [
                (name, f"{totals[name] * 1e3:.3f}", f"{overheads[name] * 1e3:.4f}")
                for name in totals
            ],
        )
    )
    print(
        f"\n  total per-record time on the Oracle-like backend ≈ "
        f"{totals['bridged'] * 1e3:.2f} ms (paper: about 1 ms);\n"
        f"  bridged (JDBC-like) API overhead is "
        f"{overheads['bridged'] / overheads['native']:.1f}x the native overhead "
        f"(paper: factor 2-4)."
    )


if __name__ == "__main__":
    main()
