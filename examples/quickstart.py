#!/usr/bin/env python3
"""Quickstart: simulate a parallel application and let COSY find its bottleneck.

The script follows the paper's workflow end to end:

1. a synthetic message-passing application (the ``mixed`` workload) is
   "executed" on 1..32 processors by the simulated Apprentice environment;
2. the resulting performance data populate the COSY data model;
3. the ASL performance properties are evaluated for the 32-processor run and
   ranked by severity;
4. the ranked report and the per-run cost table are printed.

Run with::

    python examples/quickstart.py
"""

from repro.apprentice import ExecutionSimulator, SimulationConfig, synthetic_workload
from repro.asl.specs import cosy_specification
from repro.cosy import CosyAnalyzer, render_report, render_speedup_table


def main() -> None:
    # 1. Simulate the application (the substitute for Cray T3E + Apprentice).
    workload = synthetic_workload("mixed")
    simulator = ExecutionSimulator(
        workload, SimulationConfig(pe_counts=(1, 2, 4, 8, 16, 32))
    )
    repository = simulator.run()

    # 2./3. Evaluate and rank the ASL performance properties.
    specification = cosy_specification()
    analyzer = CosyAnalyzer(repository, specification=specification, threshold=0.05)
    result = analyzer.analyze()  # largest run, whole program as ranking basis

    # 4. Report.
    print(render_report(result, top=15))
    print()
    print("Cost development over the test runs (basis region):")
    version = repository.programs[0].latest_version()
    basis = version.main_region
    rows = []
    for run in sorted(version.Runs, key=lambda r: r.NoPe):
        duration = basis.duration(run)
        rows.append(
            (
                run.NoPe,
                f"{duration:.2f}",
                f"{repository.speedup(basis, run):.2f}",
                f"{repository.total_cost(basis, run) / duration:.3f}",
            )
        )
    print(render_speedup_table(rows))

    bottleneck = result.bottleneck()
    print()
    print(
        f"=> The bottleneck is {bottleneck.property_name} on {bottleneck.subject} "
        f"(severity {bottleneck.severity:.3f})."
    )


if __name__ == "__main__":
    main()
