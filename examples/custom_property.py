#!/usr/bin/env python3
"""Extending COSY with a new performance property written in ASL.

The point of the specification approach is that the *tool* does not change
when the *knowledge* changes: a new performance property is a few lines of ASL
that are parsed, type-checked against the data model, registered with the
analyzer — and, thanks to the automatic ASL→SQL translation, it is immediately
evaluable inside the database as well.

This example adds two properties that are not part of the bundled document:

``CommunicationDominates``
    communication overhead exceeds half of the measured overhead of a region;
``MemoryPressure``
    cache-miss time is a significant fraction of a region's duration.

Run with::

    python examples/custom_property.py
"""

from repro.apprentice import ExecutionSimulator, SimulationConfig, synthetic_workload
from repro.asl import check_asl, parse_asl
from repro.asl.specs import COSY_DATA_MODEL, COSY_PROPERTIES
from repro.compiler import PropertyCompiler, generate_schema
from repro.cosy import (
    CosyAnalyzer,
    PropertyRegistration,
    SubjectKind,
    default_registry,
    render_report,
)

CUSTOM_PROPERTIES = """
// Properties added by the tool user, not by the tool developer.

Property CommunicationDominates(Region r, TestRun t, Region Basis) {
    LET float Comm = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run == t
            AND (tt.Type == SendOverhead OR tt.Type == ReceiveOverhead
                 OR tt.Type == MessageWait OR tt.Type == AllToAll
                 OR tt.Type == Reduce OR tt.Type == Broadcast));
        float Overhead = Summary(r, t).Ovhd
    IN
    CONDITION: (dominant) Comm > 0.5 * Overhead;
    CONFIDENCE: MAX((dominant) -> 0.9);
    SEVERITY: MAX((dominant) -> Comm / Duration(Basis, t));
}

Property MemoryPressure(Region r, TestRun t, Region Basis) {
    LET float Miss = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run == t
            AND tt.Type == CacheMiss);
    IN
    CONDITION: Miss > 0.02 * Duration(r, t);
    CONFIDENCE: 0.7;
    SEVERITY: Miss / Duration(Basis, t);
}
"""


def main() -> None:
    # Parse and check the extended specification: data model + bundled
    # properties + the user's additional properties.
    program = (
        parse_asl(COSY_DATA_MODEL, filename="cosy_model.asl")
        .merge(parse_asl(COSY_PROPERTIES, filename="cosy_properties.asl"))
        .merge(parse_asl(CUSTOM_PROPERTIES, filename="custom.asl"))
    )
    specification = check_asl(program)

    # Register the new properties with the analyzer.
    registry = default_registry()
    registry.register(
        PropertyRegistration(
            name="CommunicationDominates",
            subject=SubjectKind.REGION,
            description="communication overhead dominates the measured overhead",
        )
    )
    registry.register(
        PropertyRegistration(
            name="MemoryPressure",
            subject=SubjectKind.REGION,
            description="cache misses take a noticeable share of the region time",
        )
    )

    # Analyse a communication-bound workload with the extended property set.
    workload = synthetic_workload("comm_bound")
    repository = ExecutionSimulator(
        workload, SimulationConfig(pe_counts=(1, 4, 16, 32))
    ).run()
    analyzer = CosyAnalyzer(repository, specification=specification, registry=registry)
    result = analyzer.analyze()
    print(render_report(result, top=12))

    # The new properties are automatically translatable to SQL as well.
    mapping = generate_schema(specification)
    compiler = PropertyCompiler(specification, mapping)
    compiled = compiler.compile_property("CommunicationDominates")
    print()
    print("Generated SQL for the new CommunicationDominates condition:")
    print(" ", compiled.conditions[0][1].sql)


if __name__ == "__main__":
    main()
