#!/usr/bin/env python
"""Persistent relalg benchmark baseline: the A1 / A2 / E3 / E6 scenarios.

Runs the engine-bound experiments against the plan-then-execute engine
and writes ``BENCH_relalg.json`` (wall time + QueryStats per scenario), so the
performance trajectory of the relational substrate is tracked from PR to PR:

* **A1** — index ablation on the medium "scalable" scenario: full COSY
  pushdown analysis with and without the generated foreign-key indexes.  The
  compiled engine's :class:`QueryStats` are asserted byte-identical to the
  seed (interpreted) engine on both variants.
* **A2** — ASL reference interpreter (compiled closures) vs. generated SQL on
  the small mixed scenario, with a severity-identity check between the paths.
* **E3** — client-side vs. pushdown work distribution on the medium scenario:
  virtual elapsed time advantage, plus the wall-time speedup of the compiled
  engine over the seed executor on the pushdown path (the PR's headline
  number; property SQL is precompiled so the measurement isolates query
  execution, exactly as the A2 pytest benchmark does).
* **E6** — batched vs. row-at-a-time bulk loading of the medium (E1) data
  set: virtual load-time speedup of the ``executemany`` batch pipeline (one
  round trip + one per-statement insert overhead per batch) over per-row
  submission, consistency-checked to load byte-identical table contents.
* **partition sweep** — the E3 analysis and the E6 bulk load at 1 / 4 / 8
  hash partitions per table, consistency-checked to produce the same
  analysis at every count; the 8-partition entry also records the virtual
  elapsed time under 4 parallel scan workers (per-partition makespan
  charging).
* **E8** — pipelined vs. serial statement execution on the overlap-aware
  virtual clock: a round-trip-bound fetch workload and a CPU-bound scan
  workload swept over pipeline depths 1–32, the pipelined pushdown analysis
  at depth 8, and byte-identical depth-1 parity checks against the serial
  clock (E2 fetch loop, A1-style analysis, E6 bulk load).
* **E9** — *wall-clock* (not virtual) partition execution: the scan-heavy
  E3-style filtered-aggregate workload on an 8-partition table, measured
  sequentially, on the GIL-bound thread fan-out and on the shared-nothing
  process executor at 1/2/4 workers, next to the virtual makespan
  prediction.  Results are consistency-checked to be byte-identical to the
  sequential engine; the recorded ``cpu_count`` qualifies how much of the
  virtual prediction the hardware can realize (a single-core machine cannot
  show multi-core speedups, however correct the executor).
* **E10** — durability cost and recovery: the E6 bulk load measured on the
  wall clock with the write-ahead log off, on (fsync per autocommit batch)
  and on with size-triggered checkpointing, plus recovery-on-open time
  against the full log and against the checkpointed log.  Every WAL-backed
  load and every recovery is consistency-checked byte-identical (state
  fingerprint: rows, tombstones, index buckets, statistics) to the pure
  in-memory load.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [--output PATH] [--repeats N]

Exits non-zero if a consistency check fails (stats mismatch between engines,
severity mismatch between strategies).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.asl.specs import cosy_specification
from repro.bench import build_scenario, identical_table_contents, load_into_backend
from repro.compiler import DatabaseLoader, load_repository
from repro.cosy import ClientSideStrategy, PipelinedPushdownStrategy, PushdownStrategy
from repro.relalg import (
    AsyncClient,
    Database,
    NativeClient,
    backend,
    fingerprint_hash,
    state_fingerprint,
)


def _wall(fn, repeats: int) -> float:
    """Median wall time of ``fn`` over ``repeats`` runs (seconds)."""
    times = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    times.sort()
    return times[len(times) // 2]


def _summary_fingerprint(database) -> dict:
    summary = database.summary
    return {
        "statements": summary.statements,
        "selects": summary.selects,
        "rows_returned": summary.rows_returned,
        "rows_scanned": summary.rows_scanned,
        "index_lookups": summary.index_lookups,
    }


def _pushdown_setup(scenario, backend_name, with_indexes, engine,
                    n_partitions=1, parallelism=1):
    """Load a backend and precompile the pushdown strategy (not measured).

    The wall-time measurements below time :meth:`CosyAnalyzer.analyze` only —
    the repeated per-query work the plan cache and compiled expressions
    target — not the one-time data load (E1's concern) or the one-time
    ASL→SQL property compilation (reported separately by A2).
    """
    client, ids = load_into_backend(
        scenario, backend_name, with_indexes=with_indexes, engine=engine,
        n_partitions=n_partitions, parallelism=parallelism,
    )
    strategy = PushdownStrategy(
        scenario.specification, scenario.mapping, client, ids
    )
    for name in scenario.specification.index.properties:
        strategy.compiled(name)
    return client, strategy


def bench_a1(scenario, repeats: int, failures: list) -> dict:
    report: dict = {}
    for with_indexes, key in ((True, "indexed"), (False, "full_scan")):
        fingerprints = {}
        instances = {}
        for engine in ("compiled", "interpreted"):
            client, strategy = _pushdown_setup(
                scenario, "ms_access", with_indexes, engine
            )
            result = scenario.analyzer.analyze(strategy=strategy)
            fingerprints[engine] = _summary_fingerprint(client.backend.database)
            instances[engine] = sorted(
                (i.property_name, i.subject, round(i.severity, 12))
                for i in result.instances
            )
        identical = (
            fingerprints["compiled"] == fingerprints["interpreted"]
            and instances["compiled"] == instances["interpreted"]
        )
        if not identical:
            failures.append(
                f"A1/{key}: compiled engine diverges from the seed engine: "
                f"{fingerprints}"
            )
        _, timed_strategy = _pushdown_setup(
            scenario, "ms_access", with_indexes, "compiled"
        )
        wall = _wall(
            lambda: scenario.analyzer.analyze(strategy=timed_strategy),
            repeats,
        )
        report[key] = {
            "wall_s": round(wall, 6),
            "query_stats": fingerprints["compiled"],
            "stats_identical_to_seed": identical,
        }
    indexed_scanned = report["indexed"]["query_stats"]["rows_scanned"]
    scanned = report["full_scan"]["query_stats"]["rows_scanned"]
    report["scan_reduction"] = round(scanned / max(indexed_scanned, 1), 3)
    return report


def bench_a2(scenario, repeats: int, failures: list) -> dict:
    interp_strategy = ClientSideStrategy(scenario.specification)
    interp_strategy.precompile()
    interp_wall = _wall(
        lambda: scenario.analyzer.analyze(strategy=interp_strategy), repeats
    )

    client, ids = load_into_backend(scenario, "ms_access", engine="compiled")
    sql_strategy = PushdownStrategy(
        scenario.specification, scenario.mapping, client, ids
    )
    for name in scenario.specification.index.properties:
        sql_strategy.compiled(name)
    sql_wall = _wall(
        lambda: scenario.analyzer.analyze(strategy=sql_strategy), repeats
    )

    push = scenario.analyzer.analyze(strategy=sql_strategy)
    interp = scenario.analyzer.analyze(strategy=interp_strategy)
    push_map = {(i.property_name, i.subject): i.severity for i in push.instances}
    interp_map = {(i.property_name, i.subject): i.severity for i in interp.instances}
    identical = set(push_map) == set(interp_map) and all(
        abs(push_map[key] - interp_map[key]) <= 1e-9 * max(1.0, abs(interp_map[key]))
        for key in push_map
    )
    if not identical:
        failures.append("A2: interpreter and SQL paths disagree on severities")
    return {
        "interpreter_wall_s": round(interp_wall, 6),
        "sql_wall_s": round(sql_wall, 6),
        "severities_identical": identical,
        "instances": len(push.instances),
    }


def bench_e3(scenario, repeats: int, failures: list) -> dict:
    # Virtual-cost comparison of the two work distributions (paper, Sec. 5).
    push_client, push_strategy = _pushdown_setup(scenario, "oracle7", True,
                                                 "compiled")
    push_client.backend.reset_clock()
    scenario.analyzer.analyze(strategy=push_strategy)
    fetch_client, ids = load_into_backend(scenario, "oracle7", engine="compiled")
    fetch_strategy = ClientSideStrategy(
        scenario.specification, client=fetch_client, ids=ids
    )
    fetch_strategy.precompile()
    fetch_client.backend.reset_clock()
    scenario.analyzer.analyze(strategy=fetch_strategy)

    # Wall-time speedup of the compiled engine over the seed executor on the
    # pushdown path (the acceptance number of this PR).
    _, compiled_strategy = _pushdown_setup(scenario, "oracle7", True, "compiled")
    compiled_wall = _wall(
        lambda: scenario.analyzer.analyze(strategy=compiled_strategy), repeats
    )
    _, interpreted_strategy = _pushdown_setup(scenario, "oracle7", True,
                                              "interpreted")
    interpreted_wall = _wall(
        lambda: scenario.analyzer.analyze(strategy=interpreted_strategy), repeats
    )
    speedup = interpreted_wall / compiled_wall
    if speedup < 3.0:
        failures.append(
            f"E3: compiled-engine speedup over the seed executor is "
            f"{speedup:.2f}x (expected >= 3x)"
        )
    return {
        "pushdown": {
            "wall_s": round(compiled_wall, 6),
            "virtual_s": round(push_client.elapsed, 6),
            "rows_transferred": push_client.rows_fetched,
            "statements": push_strategy.statements_issued,
            "plan_cache": push_client.plan_cache_info(),
        },
        "client": {
            "virtual_s": round(fetch_client.elapsed, 6),
            "rows_transferred": fetch_client.rows_fetched,
        },
        "virtual_advantage": round(
            fetch_client.elapsed / push_client.elapsed, 3
        ),
        "seed_executor_wall_s": round(interpreted_wall, 6),
        "speedup_vs_seed_executor": round(speedup, 3),
    }


def bench_e6(scenario, repeats: int, failures: list) -> dict:
    """Batched vs. row-at-a-time bulk load (virtual + wall time, per backend)."""
    report: dict = {"backends": {}}
    for backend_name in ("oracle7", "ms_access"):
        batched, _ = load_into_backend(scenario, backend_name)
        row_wise, _ = load_into_backend(scenario, backend_name, batch_size=None)
        connect = batched.backend.profile.connect_latency
        batched_s = batched.elapsed - connect
        row_s = row_wise.elapsed - connect
        speedup = row_s / batched_s
        identical = identical_table_contents(
            batched.backend.database, row_wise.backend.database
        )
        if not identical:
            failures.append(
                f"E6/{backend_name}: batched load diverges from the "
                f"row-at-a-time load"
            )
        if speedup < 5.0:
            failures.append(
                f"E6/{backend_name}: batched-load speedup is {speedup:.2f}x "
                f"(expected >= 5x)"
            )
        report["backends"][backend_name] = {
            "rows_loaded": batched.backend.rows_inserted,
            "virtual_batched_s": round(batched_s, 6),
            "virtual_row_at_a_time_s": round(row_s, 6),
            "batched_speedup": round(speedup, 3),
            "contents_identical": identical,
        }
    report["wall_batched_s"] = round(
        _wall(lambda: load_into_backend(scenario, "oracle7"), repeats), 6
    )
    report["wall_row_at_a_time_s"] = round(
        _wall(
            lambda: load_into_backend(scenario, "oracle7", batch_size=None),
            repeats,
        ),
        6,
    )
    return report


def bench_partition_sweep(scenario, repeats: int, failures: list) -> dict:
    """E3 analysis and E6 bulk load at 1 / 4 / 8 table partitions.

    The partitioned engine must produce the same analysis at every partition
    count (severities compared with the A2 tolerance — float aggregation
    order differs across partition layouts) while the recorded wall and
    virtual times track what the sharding costs or buys.  The 8-partition E3
    entry additionally records the virtual elapsed time when the simulated
    server fans scans out over 4 workers (per-partition makespan charging).
    """
    report: dict = {"E3": {}, "E6": {}}
    reference = None
    for parts in (1, 4, 8):
        push_client, strategy = _pushdown_setup(
            scenario, "oracle7", True, "compiled", n_partitions=parts
        )
        result = scenario.analyzer.analyze(strategy=strategy)
        instances = {
            (i.property_name, i.subject): i.severity for i in result.instances
        }
        if reference is None:
            reference = instances
        else:
            identical = set(instances) == set(reference) and all(
                abs(instances[key] - reference[key])
                <= 1e-9 * max(1.0, abs(reference[key]))
                for key in instances
            )
            if not identical:
                failures.append(
                    f"partition sweep: E3 analysis diverges at "
                    f"{parts} partitions"
                )
        push_client.backend.reset_clock()
        scenario.analyzer.analyze(strategy=strategy)
        virtual = push_client.elapsed
        wall = _wall(
            lambda: scenario.analyzer.analyze(strategy=strategy), repeats
        )
        report["E3"][str(parts)] = {
            "wall_s": round(wall, 6),
            "virtual_s": round(virtual, 6),
        }
        loaded, _ = load_into_backend(scenario, "oracle7", n_partitions=parts)
        connect = loaded.backend.profile.connect_latency
        report["E6"][str(parts)] = {
            "rows_loaded": loaded.backend.rows_inserted,
            "virtual_batched_s": round(loaded.elapsed - connect, 6),
        }
    fanout_client, fanout_strategy = _pushdown_setup(
        scenario, "oracle7", True, "compiled", n_partitions=8, parallelism=4
    )
    fanout_client.backend.reset_clock()
    scenario.analyzer.analyze(strategy=fanout_strategy)
    report["E3"]["8_parallel4_virtual_s"] = round(fanout_client.elapsed, 6)
    fanout_client.close()
    return report


def bench_e8(scenario, failures: list) -> dict:
    """Pipelined vs. serial statement execution (the overlap-aware clock).

    Three measurements, all on the ``oracle7`` profile (the backend whose
    round trip dominates — the paper's ~1 ms per-record fetch):

    * a **round-trip-bound** workload (single-record fetches via the primary
      key) swept over pipeline depths: the virtual time must approach the
      serialized-chain floor (the client is modeled full-duplex, so the
      floor is the longest of the send-marshalling, server-work and
      receive-marshalling chains — the recorded client/server work totals
      bound it) as the window grows, with ≥ 2× at depth 8;
    * a **CPU-bound** workload (full-scan aggregates) over the same depths:
      the server work serializes, so pipelining must leave it nearly flat;
    * **depth-1 parity**: the window=1 pipeline replays of the E2 fetch
      loop, the A1-style pushdown analysis and the E6 bulk load must be
      byte-identical to the serial clock.
    """
    probe_rows, fetches, scans = 4000, 200, 40
    windows = (1, 2, 4, 8, 16, 32)
    fetch_ids = [(i * 37) % probe_rows + 1 for i in range(fetches)]

    def fresh_client():
        client = NativeClient(backend("oracle7"))
        client.execute("CREATE TABLE probe (id INTEGER PRIMARY KEY, x FLOAT)")
        client.executemany(
            "INSERT INTO probe (id, x) VALUES (?, ?)",
            [(i + 1, float(i)) for i in range(probe_rows)],
        )
        client.backend.reset_clock()
        client.client_time = 0.0
        return client

    serial = fresh_client()
    for fid in fetch_ids:
        serial.fetch_record("SELECT x FROM probe WHERE id = ?", [fid])
    serial_fetch_s = serial.elapsed

    fetch_s, scan_s = {}, {}
    fetch_raw = {}
    server_work_s = client_work_s = None
    for window in windows:
        client = fresh_client()
        pipeline = AsyncClient(client, window=window)
        slots = [
            pipeline.submit("SELECT x FROM probe WHERE id = ?", [fid]).slot
            for fid in fetch_ids
        ]
        pipeline.gather()
        fetch_raw[window] = pipeline.elapsed
        fetch_s[str(window)] = round(pipeline.elapsed, 9)
        if window > 1:
            # The serialized work components of the fetch workload, read off
            # the explicit event timeline (identical at every window > 1).
            server_work_s = round(sum(s.server_seconds for s in slots), 9)
            client_work_s = round(client.client_time, 9)

        client = fresh_client()
        pipeline = AsyncClient(client, window=window)
        for _ in range(scans):
            pipeline.submit("SELECT SUM(x) FROM probe")
        pipeline.gather()
        scan_s[str(window)] = round(pipeline.elapsed, 9)

    fetch_parity = fetch_raw[1] == serial_fetch_s
    if not fetch_parity:
        failures.append("E8: depth-1 fetch loop diverges from the serial clock")
    fetch_speedup = serial_fetch_s / fetch_raw[8]
    if fetch_speedup < 2.0:
        failures.append(
            f"E8: round-trip-bound speedup at depth 8 is {fetch_speedup:.2f}x "
            f"(expected >= 2x)"
        )
    scan_speedup = scan_s["1"] / scan_s["8"]
    if not 0.99 <= scan_speedup < 1.5:
        failures.append(
            f"E8: CPU-bound workload moved {scan_speedup:.2f}x at depth 8 "
            f"(expected to stay flat)"
        )

    # A1-style parity: the full pushdown analysis through the pipelined
    # strategy at window=1 must replay the serial clock byte for byte.
    serial_client, serial_strategy = _pushdown_setup(
        scenario, "oracle7", True, "compiled"
    )
    serial_client.backend.reset_clock()
    scenario.analyzer.analyze(strategy=serial_strategy)
    serial_analysis_s = serial_client.elapsed
    piped_client, ids = load_into_backend(scenario, "oracle7", engine="compiled")
    depth1 = PipelinedPushdownStrategy(
        scenario.specification, scenario.mapping, piped_client, ids, window=1
    )
    for name in scenario.specification.index.properties:
        depth1.compiled(name)
    piped_client.backend.reset_clock()
    scenario.analyzer.analyze(strategy=depth1)
    analysis_parity = piped_client.elapsed == serial_analysis_s
    if not analysis_parity:
        failures.append("E8: depth-1 analysis diverges from the serial clock")

    deep_client, ids = load_into_backend(scenario, "oracle7", engine="compiled")
    depth8 = PipelinedPushdownStrategy(
        scenario.specification, scenario.mapping, deep_client, ids, window=8
    )
    for name in scenario.specification.index.properties:
        depth8.compiled(name)
    deep_client.backend.reset_clock()
    result = scenario.analyzer.analyze(strategy=depth8)
    reference = scenario.analyzer.analyze(strategy=serial_strategy)
    identical = {
        (i.property_name, i.subject): i.severity for i in result.instances
    } == {
        (i.property_name, i.subject): i.severity for i in reference.instances
    }
    if not identical:
        failures.append("E8: pipelined analysis diverges from the serial analysis")

    # E6-style parity: the loader through a depth-1 pipeline replays the
    # serial bulk-load clock byte for byte.
    serial_load, _ = load_into_backend(scenario, "oracle7")
    piped_load = AsyncClient(NativeClient(backend("oracle7")), window=1)
    load_repository(scenario.repository, scenario.mapping, piped_load)
    load_parity = piped_load.elapsed == serial_load.elapsed
    if not load_parity:
        failures.append("E8: depth-1 bulk load diverges from the serial clock")

    return {
        "probe_rows": probe_rows,
        "fetches": fetches,
        "scans": scans,
        "fetch_virtual_s": fetch_s,
        "scan_virtual_s": scan_s,
        "serial_fetch_virtual_s": round(serial_fetch_s, 9),
        "fetch_server_work_s": server_work_s,
        "fetch_client_work_s": client_work_s,
        "fetch_speedup_depth8": round(fetch_speedup, 3),
        "fetch_speedup_depth32": round(serial_fetch_s / fetch_raw[32], 3),
        "scan_speedup_depth8": round(scan_speedup, 3),
        "analysis_virtual_depth1_s": round(piped_client.elapsed, 9),
        "analysis_virtual_depth8_s": round(deep_client.elapsed, 9),
        "analysis_speedup_depth8": round(
            serial_analysis_s / deep_client.elapsed, 3
        ),
        "analysis_identical": identical,
        "depth1_parity": {
            "E2_fetch_loop": fetch_parity,
            "A1_analysis": analysis_parity,
            "E6_bulk_load": load_parity,
        },
    }


#: The E9 scan-heavy workload: E3-style filtered aggregates over simulated
#: per-region/per-PE timing samples.  Thresholds keep the filters selective,
#: so the parallelizable per-row filter work dominates and the surviving rows
#: shipped between processes stay small.
_E9_ROWS = 48_000
_E9_PARTITIONS = 8
_E9_QUERIES = [
    (
        "SELECT region, COUNT(*), SUM(incl), MAX(excl) FROM samples "
        "WHERE excl > ? GROUP BY region ORDER BY region",
        [97.0],
    ),
    ("SELECT COUNT(*), SUM(incl) FROM samples WHERE incl > ? AND pe <= ?", [95.0, 8]),
    ("SELECT id, incl FROM samples WHERE incl > ? AND excl > ? ORDER BY id", [98.0, 98.0]),
    ("SELECT pe, COUNT(*) FROM samples WHERE excl > ? GROUP BY pe ORDER BY pe", [96.0]),
    ("SELECT COUNT(*) FROM samples WHERE incl > ? AND excl < ?", [90.0, 20.0]),
]


def _e9_sample_rows():
    return [
        (
            i,
            i % 24,
            i % 16,
            (i * 37 % 1000) / 10.0,
            (i * 59 % 1000) / 10.0,
        )
        for i in range(_E9_ROWS)
    ]


def _e9_database(**kwargs):
    from repro.relalg import Database

    database = Database(n_partitions=_E9_PARTITIONS, **kwargs)
    database.execute(
        "CREATE TABLE samples (id INTEGER PRIMARY KEY, region INTEGER, "
        "pe INTEGER, incl FLOAT, excl FLOAT)"
    )
    database.executemany(
        "INSERT INTO samples (id, region, pe, incl, excl) VALUES (?, ?, ?, ?, ?)",
        _e9_sample_rows(),
    )
    return database


def _e9_run(database):
    return [database.query(sql, params).rows for sql, params in _E9_QUERIES]


def bench_e9(repeats: int, failures: list) -> dict:
    """Wall-clock process-parallel partition execution (8 partitions).

    Unlike every other scenario this measures the *real* clock: the virtual
    model has charged partition scans as a per-partition makespan since PR 3,
    but the thread fan-out realizing it is GIL-bound.  The process executor
    is the first path whose wall clock can actually track the virtual
    prediction — bounded by the machine's core count, which is recorded so a
    single-core run is read as what it is.
    """
    import os

    from repro.relalg import Database, ProcessScanExecutor, backend as make_backend

    sequential = _e9_database()
    reference = _e9_run(sequential)
    sequential_wall = _wall(lambda: _e9_run(sequential), repeats)

    report: dict = {
        "rows": _E9_ROWS,
        "partitions": _E9_PARTITIONS,
        "statements": len(_E9_QUERIES),
        "cpu_count": os.cpu_count(),
        "sequential_wall_s": round(sequential_wall, 6),
        "process": {},
    }

    with _e9_database(parallel=4, executor="thread") as threaded:
        if _e9_run(threaded) != reference:
            failures.append("E9: thread executor diverges from sequential")
        thread_wall = _wall(lambda: _e9_run(threaded), repeats)
    report["thread4_wall_s"] = round(thread_wall, 6)
    report["thread4_speedup"] = round(sequential_wall / thread_wall, 3)

    for workers in (1, 2, 4):
        with ProcessScanExecutor(workers=workers) as pool, \
                _e9_database(executor=pool) as parallel:
            if _e9_run(parallel) != reference:
                failures.append(
                    f"E9: process executor ({workers} workers) diverges "
                    f"from sequential"
                )
            wall = _wall(lambda: _e9_run(parallel), repeats)
        report["process"][str(workers)] = {
            "wall_s": round(wall, 6),
            "speedup": round(sequential_wall / wall, 3),
        }

    # The virtual prediction: the same statements through the cost model at
    # 1 vs. 4 virtual scan workers (per-partition makespan charging).
    virtual = {}
    for parallelism in (1, 4):
        simulated = make_backend(
            "oracle7",
            n_partitions=_E9_PARTITIONS,
            parallelism=parallelism,
            executor="sequential",
        )
        simulated.execute(
            "CREATE TABLE samples (id INTEGER PRIMARY KEY, region INTEGER, "
            "pe INTEGER, incl FLOAT, excl FLOAT)"
        )
        simulated.executemany(
            "INSERT INTO samples (id, region, pe, incl, excl) "
            "VALUES (?, ?, ?, ?, ?)",
            _e9_sample_rows(),
        )
        simulated.reset_clock()
        for sql, params in _E9_QUERIES:
            simulated.query(sql, params)
        virtual[parallelism] = simulated.elapsed
    report["virtual_1worker_s"] = round(virtual[1], 6)
    report["virtual_4worker_s"] = round(virtual[4], 6)
    report["virtual_predicted_speedup"] = round(virtual[1] / virtual[4], 3)

    process4 = report["process"]["4"]["speedup"]
    report["meets_local_target"] = process4 >= 1.5
    cpus = report["cpu_count"] or 1
    if cpus >= 4 and process4 < 1.2:
        failures.append(
            f"E9: process executor speedup is {process4}x on a {cpus}-core "
            f"machine (expected >= 1.2x)"
        )
    return report


def bench_e10(scenario, repeats: int, failures: list) -> dict:
    """Durability cost and recovery: the E6 bulk load under the WAL.

    Wall-clock (not virtual) measurements — the write-ahead log's cost is
    real I/O: one JSONL record per autocommit statement and one fsync per
    durable point.  Three load variants (WAL off / WAL on / WAL on with a
    size-triggered checkpoint) plus recovery-on-open timed against the full
    log and against the checkpointed log, with every WAL-backed state
    consistency-checked byte-identical to the pure in-memory load.
    """
    import itertools
    import os
    import tempfile

    def full_load(database) -> int:
        loader = DatabaseLoader(scenario.mapping, database)
        loader.create_schema()
        loader.load(scenario.repository)
        return loader.rows_inserted

    def check(tag: str, database, reference: str) -> bool:
        identical = fingerprint_hash(state_fingerprint(database)) == reference
        if not identical:
            failures.append(
                f"E10/{tag}: WAL-backed state diverges from the in-memory load"
            )
        return identical

    report: dict = {"recovery": {}}
    counter = itertools.count()
    with tempfile.TemporaryDirectory() as tmp:
        def fresh_path() -> str:
            return os.path.join(tmp, f"load{next(counter)}.wal")

        with Database(n_partitions=4) as plain:
            report["rows_loaded"] = full_load(plain)
            reference = fingerprint_hash(state_fingerprint(plain))

        # WAL on, no checkpoint: consistency, log size, recovery time.
        wal_path = fresh_path()
        with Database(n_partitions=4, wal_path=wal_path,
                      wal_autocheckpoint=None) as walled:
            full_load(walled)
            loaded_identical = check("load", walled, reference)
        log_bytes = os.path.getsize(wal_path)
        start = time.perf_counter()
        recovered = Database(n_partitions=4, wal_path=wal_path,
                             wal_autocheckpoint=None)
        recovery_s = time.perf_counter() - start
        recovered_identical = check("recovery", recovered, reference)
        recovered.close()
        report["log_bytes_full"] = log_bytes
        report["recovery"]["full_log"] = {
            "log_bytes": log_bytes,
            "wall_s": round(recovery_s, 6),
        }

        # WAL on with checkpointing: the threshold is sized off the measured
        # log so several checkpoint/truncate cycles fire during the load.
        autocheckpoint = max(16_000, log_bytes // 4)
        ckpt_path = fresh_path()
        with Database(n_partitions=4, wal_path=ckpt_path,
                      wal_autocheckpoint=autocheckpoint) as checkpointed:
            full_load(checkpointed)
            check("checkpointed load", checkpointed, reference)
        if not os.path.exists(ckpt_path + ".ckpt"):
            failures.append("E10: the size-triggered checkpoint never fired")
        ckpt_log_bytes = os.path.getsize(ckpt_path)
        start = time.perf_counter()
        recovered = Database(n_partitions=4, wal_path=ckpt_path,
                             wal_autocheckpoint=autocheckpoint)
        ckpt_recovery_s = time.perf_counter() - start
        check("checkpointed recovery", recovered, reference)
        recovered.close()
        report["autocheckpoint_bytes"] = autocheckpoint
        report["recovery"]["checkpointed"] = {
            "log_bytes": ckpt_log_bytes,
            "checkpoint_bytes": os.path.getsize(ckpt_path + ".ckpt")
            if os.path.exists(ckpt_path + ".ckpt") else 0,
            "wall_s": round(ckpt_recovery_s, 6),
        }

        # Wall-clock load cost of the three durability levels.
        def timed(**db_kwargs):
            def run():
                with Database(n_partitions=4, **db_kwargs) as database:
                    full_load(database)
            return run

        wall_off = _wall(timed(), repeats)
        wall_on = _wall(
            lambda: timed(wal_path=fresh_path(), wal_autocheckpoint=None)(),
            repeats,
        )
        wall_ckpt = _wall(
            lambda: timed(wal_path=fresh_path(),
                          wal_autocheckpoint=autocheckpoint)(),
            repeats,
        )
        report["wall_load_s"] = {
            "wal_off": round(wall_off, 6),
            "wal_on": round(wall_on, 6),
            "wal_on_checkpoint": round(wall_ckpt, 6),
        }
        report["wal_overhead"] = round(wall_on / wall_off, 3)
        report["checkpoint_overhead"] = round(wall_ckpt / wall_off, 3)
        report["contents_identical"] = loaded_identical and recovered_identical
    return report


def _e11_run(database):
    """The E9 statements, returning both rows and the full QueryStats."""
    results = [database.query(sql, params) for sql, params in _E9_QUERIES]
    return [r.rows for r in results], [r.stats for r in results]


def bench_e11(repeats: int, failures: list) -> dict:
    """Vectorized columnar scans vs. row-at-a-time (wall clock).

    The same scan-heavy E9 workload through the same sequential executor,
    with only the scan representation changed: batch-compiled predicates
    over cached columnar chunks vs. the row-at-a-time closure pipeline.
    Rows *and* QueryStats must be byte-identical — the columnar path does
    the same logical work, only batched — so the wall-clock gap is pure
    interpreter-dispatch overhead.
    """
    rowwise = _e9_database(vectorized=False)
    vectorized = _e9_database()

    row_results = _e11_run(rowwise)
    vec_results = _e11_run(vectorized)
    if vec_results[0] != row_results[0]:
        failures.append("E11: vectorized rows diverge from row-at-a-time")
    if vec_results[1] != row_results[1]:
        failures.append("E11: vectorized QueryStats diverge from row-at-a-time")

    row_wall = _wall(lambda: _e11_run(rowwise), repeats)
    vec_wall = _wall(lambda: _e11_run(vectorized), repeats)
    rowwise.close()
    vectorized.close()

    speedup = row_wall / vec_wall
    if speedup < 1.0:
        failures.append(
            f"E11: vectorized scan is slower than row-at-a-time "
            f"({speedup:.3f}x, expected >= 1.0x)"
        )
    return {
        "rows": _E9_ROWS,
        "partitions": _E9_PARTITIONS,
        "statements": len(_E9_QUERIES),
        "rowwise_wall_s": round(row_wall, 6),
        "vectorized_wall_s": round(vec_wall, 6),
        "speedup": round(speedup, 3),
        "results_identical": vec_results == row_results,
        "meets_local_target": speedup >= 1.5,
    }


#: The E12 aggregation-heavy variant of the E9 workload: unfiltered (or
#: barely filtered) GROUP BYs with many aggregates per row, so per-group
#: fold work — not the driving scan — dominates the wall clock.
_E12_AGG_QUERIES = [
    (
        "SELECT region, COUNT(*), COUNT(incl), SUM(incl), MIN(incl), "
        "MAX(excl), AVG(excl) FROM samples GROUP BY region ORDER BY region",
        [],
    ),
    (
        "SELECT pe, region, COUNT(*), SUM(incl), AVG(incl) FROM samples "
        "GROUP BY pe, region ORDER BY pe, region",
        [],
    ),
    (
        "SELECT region, COUNT(*), MAX(incl) FROM samples WHERE excl > ? "
        "GROUP BY region ORDER BY region",
        [40.0],
    ),
]

#: The join-heavy variant: every sample row flows through an (unindexed →
#: hash-join) probe into the regions dimension before being aggregated.
_E12_JOIN_QUERIES = [
    (
        "SELECT r.label, COUNT(*), SUM(s.incl), MAX(s.excl) "
        "FROM samples s, regions r WHERE s.region = r.region "
        "GROUP BY r.label ORDER BY label",
        [],
    ),
    (
        "SELECT s.id, r.label FROM samples s, regions r "
        "WHERE s.region = r.region AND s.incl > ? ORDER BY s.id LIMIT 50",
        [95.0],
    ),
]

_E12_REGIONS = 24


def _e12_database(**kwargs):
    database = _e9_database(**kwargs)
    # No PRIMARY KEY / index on regions.region: the join must take the
    # hash-join access path the batch probe rides, not an index probe.
    database.execute("CREATE TABLE regions (region INTEGER, label VARCHAR)")
    database.executemany(
        "INSERT INTO regions (region, label) VALUES (?, ?)",
        [(i, f"region-{i:02d}") for i in range(_E12_REGIONS)],
    )
    return database


def _e12_run(database, queries):
    results = [database.query(sql, params) for sql, params in queries]
    return [r.rows for r in results], [r.stats for r in results]


def _e12_disable_batch_rungs(database, queries):
    """Warm the plan cache, then strip the post-scan batch rungs.

    The resulting database runs PR 7's pipeline exactly — vectorized
    driving scan, row-at-a-time aggregation/probing/projection — which
    isolates this PR's contribution from the scan vectorization win E11
    already measures.
    """
    for sql, params in queries:
        database.query(sql, params)
    for _snapshot, plan in database._plan_cache.values():
        plan.vector_aggregate = None
        plan.vector_join_key = None
        plan.vector_projector = None


def bench_e12(repeats: int, failures: list) -> dict:
    """Vectorized aggregation / join probing vs. row-at-a-time (wall clock).

    The aggregation-heavy and join-heavy E9 variants through the sequential
    executor three ways: the full batch pipeline, the scan-only pipeline
    (batch rungs stripped from warmed plans — PR 7 behavior) and the
    row-at-a-time engine.  Rows *and* QueryStats must be byte-identical
    across all three; the local target is the batch aggregation beating
    row-at-a-time aggregation ≥ 1.5× on the aggregation-heavy workload.
    """
    report: dict = {
        "rows": _E9_ROWS,
        "partitions": _E9_PARTITIONS,
        "workloads": {},
    }
    for name, queries in (
        ("aggregate", _E12_AGG_QUERIES),
        ("join", _E12_JOIN_QUERIES),
    ):
        full = _e12_database()
        scan_only = _e12_database()
        rowwise = _e12_database(vectorized=False)
        _e12_disable_batch_rungs(scan_only, queries)

        full_results = _e12_run(full, queries)
        scan_results = _e12_run(scan_only, queries)
        row_results = _e12_run(rowwise, queries)
        if full_results[0] != row_results[0] or (
            scan_results[0] != row_results[0]
        ):
            failures.append(f"E12/{name}: rows diverge from row-at-a-time")
        if full_results[1] != row_results[1] or (
            scan_results[1] != row_results[1]
        ):
            failures.append(
                f"E12/{name}: QueryStats diverge from row-at-a-time"
            )

        full_wall = _wall(lambda: _e12_run(full, queries), repeats)
        scan_wall = _wall(lambda: _e12_run(scan_only, queries), repeats)
        row_wall = _wall(lambda: _e12_run(rowwise, queries), repeats)
        full.close()
        scan_only.close()
        rowwise.close()

        report["workloads"][name] = {
            "statements": len(queries),
            "rowwise_wall_s": round(row_wall, 6),
            "scan_only_wall_s": round(scan_wall, 6),
            "vectorized_wall_s": round(full_wall, 6),
            "speedup_vs_scan_only": round(scan_wall / full_wall, 3),
            "speedup_vs_rowwise": round(row_wall / full_wall, 3),
            "results_identical": (
                full_results == row_results and scan_results == row_results
            ),
        }
    agg_speedup = report["workloads"]["aggregate"]["speedup_vs_scan_only"]
    if agg_speedup < 1.5:
        failures.append(
            f"E12: batch aggregation speedup {agg_speedup}x below the "
            f"1.5x local target"
        )
    report["meets_local_target"] = agg_speedup >= 1.5
    return report


_E13_QUERIES = [
    (
        "SELECT id, incl FROM samples WHERE incl > ? AND incl <= ? ORDER BY id",
        [97.5, 99.0],
    ),
    (
        "SELECT COUNT(*), SUM(excl), MIN(incl) FROM samples "
        "WHERE incl BETWEEN ? AND ?",
        [98.0, 99.5],
    ),
    (
        "SELECT region, COUNT(*) FROM samples WHERE incl >= ? "
        "GROUP BY region ORDER BY region",
        [99.0],
    ),
    ("SELECT id, incl FROM samples ORDER BY incl LIMIT 40 OFFSET 8", []),
]


def _e13_database(ordered: bool = True, **kwargs):
    from repro.relalg import Database

    database = Database(n_partitions=_E9_PARTITIONS, **kwargs)
    database.execute(
        "CREATE TABLE samples (id INTEGER PRIMARY KEY, region INTEGER, "
        "pe INTEGER, incl FLOAT, excl FLOAT)"
    )
    database.executemany(
        "INSERT INTO samples (id, region, pe, incl, excl) VALUES (?, ?, ?, ?, ?)",
        _e9_sample_rows(),
    )
    if ordered:
        database.execute(
            "CREATE INDEX idx_samples_incl ON samples (incl) ORDERED"
        )
    return database


def _e13_run(database):
    rows, stats = [], []
    for sql, params in _E13_QUERIES:
        result = database.query(sql, params)
        rows.append(result.rows)
        stats.append(result.stats)
    return rows, stats


def bench_e13(repeats: int, failures: list) -> dict:
    """Range probes and index-order pushdown vs. full-partition scans.

    The range-heavy E9 variant (selective sargable predicates, BETWEEN, and
    a single-key top-k) twice: with the ordered index on ``incl`` and
    without it.  Rows must be byte-identical between the two — an ordered
    index is an access-path accelerator, never a semantics change — and
    QueryStats must be byte-identical across the row-at-a-time, vectorized
    and thread fan-out engines at a fixed index configuration (range probes
    and index-order pushdown are mode-independent).  The local target is the
    probe path beating the full-partition scan ≥ 2× on wall clock.
    """
    ordered = _e13_database()
    plain = _e13_database(ordered=False)
    ordered_rows, ordered_stats = _e13_run(ordered)
    plain_rows, plain_stats = _e13_run(plain)
    if ordered_rows != plain_rows:
        failures.append("E13: rows diverge between ordered-index on/off")

    # Mode identity at each index configuration: the physical access path
    # (probe or scan) does identical counted work in every engine mode.
    for label, factory, reference in (
        ("ordered", _e13_database, ordered_stats),
        ("full-scan", lambda **kw: _e13_database(ordered=False, **kw), plain_stats),
    ):
        for mode, kwargs in (
            ("rowwise", {"vectorized": False}),
            ("thread4", {"parallel": 4, "executor": "thread"}),
        ):
            with factory(**kwargs) as database:
                mode_rows, mode_stats = _e13_run(database)
            if mode_rows != ordered_rows:
                failures.append(f"E13/{label}: {mode} rows diverge")
            if mode_stats != reference:
                failures.append(f"E13/{label}: {mode} QueryStats diverge")

    probed = sum(stats.range_probes for stats in ordered_stats)
    scanned_probe = sum(stats.rows_scanned for stats in ordered_stats)
    scanned_full = sum(stats.rows_scanned for stats in plain_stats)
    if probed == 0:
        failures.append("E13: no range probe was charged on the ordered run")
    if scanned_probe >= scanned_full:
        failures.append(
            f"E13: probe path scanned {scanned_probe} rows, full scan "
            f"{scanned_full} — no work reduction"
        )

    probe_wall = _wall(lambda: _e13_run(ordered), repeats)
    scan_wall = _wall(lambda: _e13_run(plain), repeats)
    ordered.close()
    plain.close()

    speedup = round(scan_wall / probe_wall, 3)
    if speedup < 2.0:
        failures.append(
            f"E13: range-probe speedup {speedup}x below the 2x local target"
        )
    return {
        "rows": _E9_ROWS,
        "partitions": _E9_PARTITIONS,
        "statements": len(_E13_QUERIES),
        "range_probes": probed,
        "rows_scanned_probe": scanned_probe,
        "rows_scanned_full": scanned_full,
        "scan_reduction": round(scanned_full / max(scanned_probe, 1), 3),
        "full_scan_wall_s": round(scan_wall, 6),
        "range_probe_wall_s": round(probe_wall, 6),
        "speedup": speedup,
        "rows_identical": ordered_rows == plain_rows,
        "meets_local_target": speedup >= 2.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_relalg.json"),
        help="where to write the JSON report (default: repo root)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="wall-time repetitions per measurement (median is reported)",
    )
    args = parser.parse_args(argv)

    specification = cosy_specification()
    small = build_scenario("mixed", pe_counts=(1, 2, 4, 8),
                           specification=specification)
    medium = build_scenario(
        "scalable", pe_counts=(1, 4, 16), specification=specification,
        functions=8, regions_per_function=6, calls_per_region=2,
    )

    failures: list = []
    report = {
        "schema_version": 1,
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeats": args.repeats,
        "scenarios": {
            "A1_index_ablation": bench_a1(medium, args.repeats, failures),
            "A2_interp_vs_sql": bench_a2(small, args.repeats, failures),
            "E3_pushdown": bench_e3(medium, args.repeats, failures),
            "E6_bulk_load": bench_e6(medium, args.repeats, failures),
            "partition_sweep": bench_partition_sweep(
                medium, args.repeats, failures
            ),
            "E8_overlap": bench_e8(medium, failures),
            "E9_wallclock": bench_e9(args.repeats, failures),
            "E10_durability": bench_e10(medium, args.repeats, failures),
            "E11_columnar": bench_e11(args.repeats, failures),
            "E12_vector_agg": bench_e12(args.repeats, failures),
            "E13_range_probe": bench_e13(args.repeats, failures),
        },
    }

    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")

    e3 = report["scenarios"]["E3_pushdown"]
    a1 = report["scenarios"]["A1_index_ablation"]
    print(f"wrote {output}")
    print(f"A1  scan reduction (indexed vs full scan): "
          f"{a1['scan_reduction']}x, stats identical to seed: "
          f"{a1['indexed']['stats_identical_to_seed'] and a1['full_scan']['stats_identical_to_seed']}")
    print(f"A2  interpreter {report['scenarios']['A2_interp_vs_sql']['interpreter_wall_s']}s "
          f"vs SQL {report['scenarios']['A2_interp_vs_sql']['sql_wall_s']}s")
    print(f"E3  pushdown virtual advantage: {e3['virtual_advantage']}x; "
          f"compiled engine speedup over seed executor: "
          f"{e3['speedup_vs_seed_executor']}x")
    e6 = report["scenarios"]["E6_bulk_load"]["backends"]
    print("E6  batched bulk-load speedup: "
          + ", ".join(
              f"{name} {entry['batched_speedup']}x" for name, entry in e6.items()
          ))
    sweep = report["scenarios"]["partition_sweep"]
    print("P   partition sweep (E3 wall): "
          + ", ".join(
              f"{parts}p {entry['wall_s']}s"
              for parts, entry in sweep["E3"].items()
              if isinstance(entry, dict)
          ))
    e8 = report["scenarios"]["E8_overlap"]
    parity = all(e8["depth1_parity"].values())
    print(f"E8  overlap speedup at depth 8: fetch "
          f"{e8['fetch_speedup_depth8']}x, scan {e8['scan_speedup_depth8']}x, "
          f"analysis {e8['analysis_speedup_depth8']}x; depth-1 parity: {parity}")
    e9 = report["scenarios"]["E9_wallclock"]
    print(f"E9  wall-clock at 8 partitions ({e9['cpu_count']} cpu): "
          f"thread x4 {e9['thread4_speedup']}x, process "
          + ", ".join(
              f"x{w} {entry['speedup']}x" for w, entry in e9["process"].items()
          )
          + f"; virtual prediction {e9['virtual_predicted_speedup']}x")
    e10 = report["scenarios"]["E10_durability"]
    print(f"E10 WAL overhead on the E6 load: {e10['wal_overhead']}x "
          f"(with checkpoints {e10['checkpoint_overhead']}x); recovery "
          f"{e10['recovery']['full_log']['wall_s']}s from "
          f"{e10['recovery']['full_log']['log_bytes']}B log, "
          f"{e10['recovery']['checkpointed']['wall_s']}s checkpointed; "
          f"consistent: {e10['contents_identical']}")
    e11 = report["scenarios"]["E11_columnar"]
    print(f"E11 columnar scan: vectorized {e11['vectorized_wall_s']}s vs "
          f"row-at-a-time {e11['rowwise_wall_s']}s ({e11['speedup']}x); "
          f"identical: {e11['results_identical']}")
    e12 = report["scenarios"]["E12_vector_agg"]
    print("E12 batch pipeline: "
          + ", ".join(
              f"{name} {entry['speedup_vs_scan_only']}x vs scan-only "
              f"({entry['speedup_vs_rowwise']}x vs rowwise, identical: "
              f"{entry['results_identical']})"
              for name, entry in e12["workloads"].items()
          ))
    e13 = report["scenarios"]["E13_range_probe"]
    print(f"E13 range probes: {e13['speedup']}x wall clock vs full scan "
          f"({e13['scan_reduction']}x fewer rows scanned, "
          f"{e13['range_probes']} probes; rows identical: "
          f"{e13['rows_identical']})")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
