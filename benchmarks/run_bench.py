#!/usr/bin/env python
"""Persistent relalg benchmark baseline: the A1 / A2 / E3 / E6 scenarios.

Runs the engine-bound experiments against the plan-then-execute engine
and writes ``BENCH_relalg.json`` (wall time + QueryStats per scenario), so the
performance trajectory of the relational substrate is tracked from PR to PR:

* **A1** — index ablation on the medium "scalable" scenario: full COSY
  pushdown analysis with and without the generated foreign-key indexes.  The
  compiled engine's :class:`QueryStats` are asserted byte-identical to the
  seed (interpreted) engine on both variants.
* **A2** — ASL reference interpreter (compiled closures) vs. generated SQL on
  the small mixed scenario, with a severity-identity check between the paths.
* **E3** — client-side vs. pushdown work distribution on the medium scenario:
  virtual elapsed time advantage, plus the wall-time speedup of the compiled
  engine over the seed executor on the pushdown path (the PR's headline
  number; property SQL is precompiled so the measurement isolates query
  execution, exactly as the A2 pytest benchmark does).
* **E6** — batched vs. row-at-a-time bulk loading of the medium (E1) data
  set: virtual load-time speedup of the ``executemany`` batch pipeline (one
  round trip + one per-statement insert overhead per batch) over per-row
  submission, consistency-checked to load byte-identical table contents.
* **partition sweep** — the E3 analysis and the E6 bulk load at 1 / 4 / 8
  hash partitions per table, consistency-checked to produce the same
  analysis at every count; the 8-partition entry also records the virtual
  elapsed time under 4 parallel scan workers (per-partition makespan
  charging).

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [--output PATH] [--repeats N]

Exits non-zero if a consistency check fails (stats mismatch between engines,
severity mismatch between strategies).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.asl.specs import cosy_specification
from repro.bench import build_scenario, identical_table_contents, load_into_backend
from repro.cosy import ClientSideStrategy, PushdownStrategy


def _wall(fn, repeats: int) -> float:
    """Median wall time of ``fn`` over ``repeats`` runs (seconds)."""
    times = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    times.sort()
    return times[len(times) // 2]


def _summary_fingerprint(database) -> dict:
    summary = database.summary
    return {
        "statements": summary.statements,
        "selects": summary.selects,
        "rows_returned": summary.rows_returned,
        "rows_scanned": summary.rows_scanned,
        "index_lookups": summary.index_lookups,
    }


def _pushdown_setup(scenario, backend_name, with_indexes, engine,
                    n_partitions=1, parallelism=1):
    """Load a backend and precompile the pushdown strategy (not measured).

    The wall-time measurements below time :meth:`CosyAnalyzer.analyze` only —
    the repeated per-query work the plan cache and compiled expressions
    target — not the one-time data load (E1's concern) or the one-time
    ASL→SQL property compilation (reported separately by A2).
    """
    client, ids = load_into_backend(
        scenario, backend_name, with_indexes=with_indexes, engine=engine,
        n_partitions=n_partitions, parallelism=parallelism,
    )
    strategy = PushdownStrategy(
        scenario.specification, scenario.mapping, client, ids
    )
    for name in scenario.specification.index.properties:
        strategy.compiled(name)
    return client, strategy


def bench_a1(scenario, repeats: int, failures: list) -> dict:
    report: dict = {}
    for with_indexes, key in ((True, "indexed"), (False, "full_scan")):
        fingerprints = {}
        instances = {}
        for engine in ("compiled", "interpreted"):
            client, strategy = _pushdown_setup(
                scenario, "ms_access", with_indexes, engine
            )
            result = scenario.analyzer.analyze(strategy=strategy)
            fingerprints[engine] = _summary_fingerprint(client.backend.database)
            instances[engine] = sorted(
                (i.property_name, i.subject, round(i.severity, 12))
                for i in result.instances
            )
        identical = (
            fingerprints["compiled"] == fingerprints["interpreted"]
            and instances["compiled"] == instances["interpreted"]
        )
        if not identical:
            failures.append(
                f"A1/{key}: compiled engine diverges from the seed engine: "
                f"{fingerprints}"
            )
        _, timed_strategy = _pushdown_setup(
            scenario, "ms_access", with_indexes, "compiled"
        )
        wall = _wall(
            lambda: scenario.analyzer.analyze(strategy=timed_strategy),
            repeats,
        )
        report[key] = {
            "wall_s": round(wall, 6),
            "query_stats": fingerprints["compiled"],
            "stats_identical_to_seed": identical,
        }
    indexed_scanned = report["indexed"]["query_stats"]["rows_scanned"]
    scanned = report["full_scan"]["query_stats"]["rows_scanned"]
    report["scan_reduction"] = round(scanned / max(indexed_scanned, 1), 3)
    return report


def bench_a2(scenario, repeats: int, failures: list) -> dict:
    interp_strategy = ClientSideStrategy(scenario.specification)
    interp_strategy.precompile()
    interp_wall = _wall(
        lambda: scenario.analyzer.analyze(strategy=interp_strategy), repeats
    )

    client, ids = load_into_backend(scenario, "ms_access", engine="compiled")
    sql_strategy = PushdownStrategy(
        scenario.specification, scenario.mapping, client, ids
    )
    for name in scenario.specification.index.properties:
        sql_strategy.compiled(name)
    sql_wall = _wall(
        lambda: scenario.analyzer.analyze(strategy=sql_strategy), repeats
    )

    push = scenario.analyzer.analyze(strategy=sql_strategy)
    interp = scenario.analyzer.analyze(strategy=interp_strategy)
    push_map = {(i.property_name, i.subject): i.severity for i in push.instances}
    interp_map = {(i.property_name, i.subject): i.severity for i in interp.instances}
    identical = set(push_map) == set(interp_map) and all(
        abs(push_map[key] - interp_map[key]) <= 1e-9 * max(1.0, abs(interp_map[key]))
        for key in push_map
    )
    if not identical:
        failures.append("A2: interpreter and SQL paths disagree on severities")
    return {
        "interpreter_wall_s": round(interp_wall, 6),
        "sql_wall_s": round(sql_wall, 6),
        "severities_identical": identical,
        "instances": len(push.instances),
    }


def bench_e3(scenario, repeats: int, failures: list) -> dict:
    # Virtual-cost comparison of the two work distributions (paper, Sec. 5).
    push_client, push_strategy = _pushdown_setup(scenario, "oracle7", True,
                                                 "compiled")
    push_client.backend.reset_clock()
    scenario.analyzer.analyze(strategy=push_strategy)
    fetch_client, ids = load_into_backend(scenario, "oracle7", engine="compiled")
    fetch_strategy = ClientSideStrategy(
        scenario.specification, client=fetch_client, ids=ids
    )
    fetch_strategy.precompile()
    fetch_client.backend.reset_clock()
    scenario.analyzer.analyze(strategy=fetch_strategy)

    # Wall-time speedup of the compiled engine over the seed executor on the
    # pushdown path (the acceptance number of this PR).
    _, compiled_strategy = _pushdown_setup(scenario, "oracle7", True, "compiled")
    compiled_wall = _wall(
        lambda: scenario.analyzer.analyze(strategy=compiled_strategy), repeats
    )
    _, interpreted_strategy = _pushdown_setup(scenario, "oracle7", True,
                                              "interpreted")
    interpreted_wall = _wall(
        lambda: scenario.analyzer.analyze(strategy=interpreted_strategy), repeats
    )
    speedup = interpreted_wall / compiled_wall
    if speedup < 3.0:
        failures.append(
            f"E3: compiled-engine speedup over the seed executor is "
            f"{speedup:.2f}x (expected >= 3x)"
        )
    return {
        "pushdown": {
            "wall_s": round(compiled_wall, 6),
            "virtual_s": round(push_client.elapsed, 6),
            "rows_transferred": push_client.rows_fetched,
            "statements": push_strategy.statements_issued,
            "plan_cache": push_client.plan_cache_info(),
        },
        "client": {
            "virtual_s": round(fetch_client.elapsed, 6),
            "rows_transferred": fetch_client.rows_fetched,
        },
        "virtual_advantage": round(
            fetch_client.elapsed / push_client.elapsed, 3
        ),
        "seed_executor_wall_s": round(interpreted_wall, 6),
        "speedup_vs_seed_executor": round(speedup, 3),
    }


def bench_e6(scenario, repeats: int, failures: list) -> dict:
    """Batched vs. row-at-a-time bulk load (virtual + wall time, per backend)."""
    report: dict = {"backends": {}}
    for backend_name in ("oracle7", "ms_access"):
        batched, _ = load_into_backend(scenario, backend_name)
        row_wise, _ = load_into_backend(scenario, backend_name, batch_size=None)
        connect = batched.backend.profile.connect_latency
        batched_s = batched.elapsed - connect
        row_s = row_wise.elapsed - connect
        speedup = row_s / batched_s
        identical = identical_table_contents(
            batched.backend.database, row_wise.backend.database
        )
        if not identical:
            failures.append(
                f"E6/{backend_name}: batched load diverges from the "
                f"row-at-a-time load"
            )
        if speedup < 5.0:
            failures.append(
                f"E6/{backend_name}: batched-load speedup is {speedup:.2f}x "
                f"(expected >= 5x)"
            )
        report["backends"][backend_name] = {
            "rows_loaded": batched.backend.rows_inserted,
            "virtual_batched_s": round(batched_s, 6),
            "virtual_row_at_a_time_s": round(row_s, 6),
            "batched_speedup": round(speedup, 3),
            "contents_identical": identical,
        }
    report["wall_batched_s"] = round(
        _wall(lambda: load_into_backend(scenario, "oracle7"), repeats), 6
    )
    report["wall_row_at_a_time_s"] = round(
        _wall(
            lambda: load_into_backend(scenario, "oracle7", batch_size=None),
            repeats,
        ),
        6,
    )
    return report


def bench_partition_sweep(scenario, repeats: int, failures: list) -> dict:
    """E3 analysis and E6 bulk load at 1 / 4 / 8 table partitions.

    The partitioned engine must produce the same analysis at every partition
    count (severities compared with the A2 tolerance — float aggregation
    order differs across partition layouts) while the recorded wall and
    virtual times track what the sharding costs or buys.  The 8-partition E3
    entry additionally records the virtual elapsed time when the simulated
    server fans scans out over 4 workers (per-partition makespan charging).
    """
    report: dict = {"E3": {}, "E6": {}}
    reference = None
    for parts in (1, 4, 8):
        push_client, strategy = _pushdown_setup(
            scenario, "oracle7", True, "compiled", n_partitions=parts
        )
        result = scenario.analyzer.analyze(strategy=strategy)
        instances = {
            (i.property_name, i.subject): i.severity for i in result.instances
        }
        if reference is None:
            reference = instances
        else:
            identical = set(instances) == set(reference) and all(
                abs(instances[key] - reference[key])
                <= 1e-9 * max(1.0, abs(reference[key]))
                for key in instances
            )
            if not identical:
                failures.append(
                    f"partition sweep: E3 analysis diverges at "
                    f"{parts} partitions"
                )
        push_client.backend.reset_clock()
        scenario.analyzer.analyze(strategy=strategy)
        virtual = push_client.elapsed
        wall = _wall(
            lambda: scenario.analyzer.analyze(strategy=strategy), repeats
        )
        report["E3"][str(parts)] = {
            "wall_s": round(wall, 6),
            "virtual_s": round(virtual, 6),
        }
        loaded, _ = load_into_backend(scenario, "oracle7", n_partitions=parts)
        connect = loaded.backend.profile.connect_latency
        report["E6"][str(parts)] = {
            "rows_loaded": loaded.backend.rows_inserted,
            "virtual_batched_s": round(loaded.elapsed - connect, 6),
        }
    fanout_client, fanout_strategy = _pushdown_setup(
        scenario, "oracle7", True, "compiled", n_partitions=8, parallelism=4
    )
    fanout_client.backend.reset_clock()
    scenario.analyzer.analyze(strategy=fanout_strategy)
    report["E3"]["8_parallel4_virtual_s"] = round(fanout_client.elapsed, 6)
    fanout_client.close()
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_relalg.json"),
        help="where to write the JSON report (default: repo root)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="wall-time repetitions per measurement (median is reported)",
    )
    args = parser.parse_args(argv)

    specification = cosy_specification()
    small = build_scenario("mixed", pe_counts=(1, 2, 4, 8),
                           specification=specification)
    medium = build_scenario(
        "scalable", pe_counts=(1, 4, 16), specification=specification,
        functions=8, regions_per_function=6, calls_per_region=2,
    )

    failures: list = []
    report = {
        "schema_version": 1,
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeats": args.repeats,
        "scenarios": {
            "A1_index_ablation": bench_a1(medium, args.repeats, failures),
            "A2_interp_vs_sql": bench_a2(small, args.repeats, failures),
            "E3_pushdown": bench_e3(medium, args.repeats, failures),
            "E6_bulk_load": bench_e6(medium, args.repeats, failures),
            "partition_sweep": bench_partition_sweep(
                medium, args.repeats, failures
            ),
        },
    }

    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")

    e3 = report["scenarios"]["E3_pushdown"]
    a1 = report["scenarios"]["A1_index_ablation"]
    print(f"wrote {output}")
    print(f"A1  scan reduction (indexed vs full scan): "
          f"{a1['scan_reduction']}x, stats identical to seed: "
          f"{a1['indexed']['stats_identical_to_seed'] and a1['full_scan']['stats_identical_to_seed']}")
    print(f"A2  interpreter {report['scenarios']['A2_interp_vs_sql']['interpreter_wall_s']}s "
          f"vs SQL {report['scenarios']['A2_interp_vs_sql']['sql_wall_s']}s")
    print(f"E3  pushdown virtual advantage: {e3['virtual_advantage']}x; "
          f"compiled engine speedup over seed executor: "
          f"{e3['speedup_vs_seed_executor']}x")
    e6 = report["scenarios"]["E6_bulk_load"]["backends"]
    print("E6  batched bulk-load speedup: "
          + ", ".join(
              f"{name} {entry['batched_speedup']}x" for name, entry in e6.items()
          ))
    sweep = report["scenarios"]["partition_sweep"]
    print("P   partition sweep (E3 wall): "
          + ", ".join(
              f"{parts}p {entry['wall_s']}s"
              for parts, entry in sweep["E3"].items()
              if isinstance(entry, dict)
          ))
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
