"""E1 — Section 5: comparison of the four database backends.

Paper observations to reproduce (shape, not absolute numbers):

* bulk insertion of the performance data into the local MS Access database is
  about a factor of 20 faster than into the Oracle server;
* Oracle query processing is about a factor of 2 slower than MS SQL Server and
  Postgres;
* the local MS Access backend outperforms all server-based systems.

The wall-clock benchmark measures the in-process engine doing the actual work;
the *virtual* backend times (network round trips + per-row costs) are reported
via ``benchmark.extra_info`` and asserted against the paper's factors.
"""

from __future__ import annotations

import pytest

from repro.bench import load_into_backend
from repro.cosy import PushdownStrategy
from repro.relalg import BACKEND_PROFILES

BACKENDS = tuple(BACKEND_PROFILES)


def _load(scenario, backend_name):
    # Row-at-a-time loading (batch_size=None): the paper's bulk-insert
    # observation was measured submitting one record per statement — the
    # batched pipeline's gain over this path is E6's experiment.
    client, ids = load_into_backend(scenario, backend_name, batch_size=None)
    return client, ids


class TestE1BulkInsertion:
    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_bulk_insert_per_backend(self, benchmark, medium_scenario, backend_name):
        """Transfer the whole Apprentice data set into one backend."""

        def run():
            return _load(medium_scenario, backend_name)

        client, ids = benchmark(run)
        benchmark.extra_info["virtual_insert_seconds"] = client.elapsed
        benchmark.extra_info["rows_inserted"] = client.backend.rows_inserted
        assert ids.total() == client.backend.rows_inserted - 1  # minus the dual row

    def test_access_insertion_is_about_twenty_times_faster_than_oracle(
        self, benchmark, medium_scenario
    ):
        def measure():
            times = {}
            for name in ("oracle7", "ms_access"):
                client, _ = _load(medium_scenario, name)
                times[name] = client.elapsed - client.backend.profile.connect_latency
            return times

        times = benchmark.pedantic(measure, rounds=1, iterations=1)
        ratio = times["oracle7"] / times["ms_access"]
        benchmark.extra_info["oracle_over_access_insert_ratio"] = ratio
        assert 10 <= ratio <= 30  # paper: "a factor of 20"


class TestE1QueryProcessing:
    def _query_time(self, scenario, backend_name):
        client, ids = _load(scenario, backend_name)
        client.backend.reset_clock()
        strategy = PushdownStrategy(scenario.specification, scenario.mapping, client, ids)
        scenario.analyzer.analyze(strategy=strategy)
        return client.elapsed

    def test_property_queries_per_backend(self, benchmark, medium_scenario):
        """Evaluate the full COSY property set on every backend (virtual time)."""

        def measure():
            return {
                name: self._query_time(medium_scenario, name) for name in BACKENDS
            }

        times = benchmark.pedantic(measure, rounds=1, iterations=1)
        for name, seconds in times.items():
            benchmark.extra_info[f"virtual_query_seconds[{name}]"] = seconds
        # Oracle ≈ 2x slower than MS SQL Server / Postgres.
        assert 1.4 <= times["oracle7"] / times["ms_sql_server"] <= 2.6
        assert 1.4 <= times["oracle7"] / times["postgres"] <= 2.6
        # The local MS Access backend outperforms every server backend.
        assert times["ms_access"] < min(
            times["oracle7"], times["ms_sql_server"], times["postgres"]
        )
