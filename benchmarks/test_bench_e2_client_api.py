"""E2 — Section 5: client API overhead and per-record fetch latency.

Paper observations to reproduce:

* fetching a record from the Oracle server takes about 1 ms;
* accessing the database through the bridged (JDBC-like) client stack is a
  factor of two to four slower than through the native (C-like) stack —
  measured on the API marshalling overhead that the bridge adds.
"""

from __future__ import annotations

import pytest

from repro.relalg import BridgedClient, NativeClient, backend


def prepare(client):
    client.execute("CREATE TABLE probe (id INTEGER PRIMARY KEY, x FLOAT)")
    client.executemany(
        "INSERT INTO probe (id, x) VALUES (?, ?)", [(i + 1, float(i)) for i in range(64)]
    )
    client.backend.reset_clock()
    client.client_time = 0.0
    return client


class TestE2RecordFetch:
    @pytest.mark.parametrize("api", ["native", "bridged"])
    def test_fetch_record_through_each_client_stack(self, benchmark, api):
        """Wall-clock cost of a single-record fetch through each client stack."""
        factory = NativeClient if api == "native" else BridgedClient
        client = prepare(factory(backend("oracle7")))

        def fetch():
            return client.fetch_record("SELECT x FROM probe WHERE id = ?", [7])

        row = benchmark(fetch)
        assert row == (6.0,)
        per_record_virtual = client.elapsed / max(client.calls, 1)
        benchmark.extra_info["virtual_ms_per_record"] = per_record_virtual * 1e3

    def test_oracle_record_fetch_is_about_one_millisecond(self, benchmark):
        client = prepare(NativeClient(backend("oracle7")))

        def fetch_many():
            for _ in range(100):
                client.fetch_record("SELECT x FROM probe WHERE id = ?", [3])
            return client.elapsed / client.calls

        per_record = benchmark.pedantic(fetch_many, rounds=1, iterations=1)
        benchmark.extra_info["virtual_ms_per_record"] = per_record * 1e3
        # Paper: "fetching a record from the Oracle server takes about 1 ms".
        assert 0.5e-3 <= per_record <= 2.0e-3

    def test_bridged_stack_is_two_to_four_times_slower_than_native(self, benchmark):
        def measure():
            overheads = {}
            for factory in (NativeClient, BridgedClient):
                client = prepare(factory(backend("oracle7")))
                for _ in range(500):
                    client.fetch_record("SELECT x FROM probe WHERE id = ?", [5])
                overheads[client.api_name] = client.client_time / client.calls
            return overheads

        overheads = benchmark.pedantic(measure, rounds=1, iterations=1)
        ratio = overheads["bridged"] / overheads["native"]
        benchmark.extra_info["bridged_over_native_ratio"] = ratio
        assert 2.0 <= ratio <= 4.0  # paper: "a factor of two to four"
