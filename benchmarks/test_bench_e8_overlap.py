"""E8 — request pipelining: overlapping round trips vs. the serial clock.

The paper's Section-5 observation — a per-record fetch costs ~1 ms, dominated
by the network round trip — makes the serialized fetch loop round-trip-bound.
This benchmark drives the same E2-style fetch loop through the pipelined
:class:`~repro.relalg.client.AsyncClient` and checks the overlap-aware
virtual clock's contract:

* at pipeline depth 1 the virtual time is **byte-identical** to the serial
  client stack (the timeline refactor changes nothing when nothing overlaps);
* at depth 8 the overlapping round trips yield a **> 2× virtual speedup**
  while the results stay identical.
"""

from __future__ import annotations

import pytest

from repro.relalg import AsyncClient, NativeClient, backend

TABLE_ROWS = 256
FETCHES = 64


def prepare_client():
    client = NativeClient(backend("oracle7"))
    client.execute("CREATE TABLE probe (id INTEGER PRIMARY KEY, x FLOAT)")
    client.executemany(
        "INSERT INTO probe (id, x) VALUES (?, ?)",
        [(i + 1, float(i)) for i in range(TABLE_ROWS)],
    )
    client.backend.reset_clock()
    client.client_time = 0.0
    return client


def fetch_ids():
    return [(i * 37) % TABLE_ROWS + 1 for i in range(FETCHES)]


class TestE8OverlapBenchmark:
    def test_pipelined_fetch_loop_overlaps_round_trips(self, benchmark):
        def measure():
            virtual, rows = {}, {}
            for window in (1, 8):
                client = prepare_client()
                pipeline = AsyncClient(client, window=window)
                for fid in fetch_ids():
                    pipeline.submit("SELECT x FROM probe WHERE id = ?", [fid])
                rows[window] = [r.rows for r in pipeline.gather()]
                virtual[window] = pipeline.elapsed
            serial = prepare_client()
            serial_rows = [
                serial.query("SELECT x FROM probe WHERE id = ?", [fid]).rows
                for fid in fetch_ids()
            ]
            return virtual, rows, serial.elapsed, serial_rows

        virtual, rows, serial_elapsed, serial_rows = benchmark.pedantic(
            measure, rounds=1, iterations=1
        )
        # Pipelining changes when statements are charged, never what they
        # return.
        assert rows[1] == rows[8] == serial_rows
        # Depth-1 parity: the event-timeline clock replays the serial clock
        # byte for byte.
        assert virtual[1] == serial_elapsed
        speedup = virtual[1] / virtual[8]
        benchmark.extra_info["overlap_speedup_depth8"] = round(speedup, 3)
        assert speedup > 1.0
        # Round-trip-bound: a window of 8 must at least halve the loop.
        assert speedup >= 2.0

    def test_depth_one_executemany_parity(self, benchmark):
        def measure():
            rows = [(i + 1, float(i)) for i in range(200)]
            serial = NativeClient(backend("oracle7"))
            serial.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x FLOAT)")
            serial.executemany("INSERT INTO t (id, x) VALUES (?, ?)", rows)
            piped = AsyncClient(NativeClient(backend("oracle7")), window=1)
            piped.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x FLOAT)")
            piped.executemany("INSERT INTO t (id, x) VALUES (?, ?)", rows)
            return serial.elapsed, piped.elapsed

        serial_elapsed, piped_elapsed = benchmark.pedantic(
            measure, rounds=1, iterations=1
        )
        assert piped_elapsed == serial_elapsed
