"""A1 — ablation: hash indexes on the generated foreign-key columns.

The ASL→SQL compiler generates an index for every foreign-key column of the
relational schema (see ``SchemaMapping.index_statements``).  This ablation
loads the same performance data with and without those indexes and measures
the COSY property queries on the in-process engine: the indexed variant must
scan far fewer rows and answer faster — the design choice DESIGN.md calls out."""

from __future__ import annotations

import pytest

from repro.bench import load_into_backend
from repro.cosy import PushdownStrategy
from repro.relalg import NativeClient


def analyze(scenario, with_indexes: bool):
    client, ids = load_into_backend(
        scenario, "ms_access", with_indexes=with_indexes, client_factory=NativeClient
    )
    database = client.backend.database
    before = database.summary.rows_scanned
    strategy = PushdownStrategy(scenario.specification, scenario.mapping, client, ids)
    result = scenario.analyzer.analyze(strategy=strategy)
    scanned = database.summary.rows_scanned - before
    return result, scanned, database.summary.index_lookups


class TestA1IndexAblation:
    @pytest.mark.parametrize("with_indexes", [True, False],
                             ids=["indexed", "full-scan"])
    def test_property_queries_with_and_without_indexes(
        self, benchmark, medium_scenario, with_indexes
    ):
        def run():
            return analyze(medium_scenario, with_indexes)

        result, scanned, lookups = benchmark.pedantic(run, rounds=1, iterations=1)
        assert result.instances
        benchmark.extra_info["rows_scanned"] = scanned
        benchmark.extra_info["index_lookups"] = lookups

    def test_indexes_reduce_scanned_rows(self, benchmark, medium_scenario):
        def measure():
            _, scanned_indexed, lookups = analyze(medium_scenario, True)
            _, scanned_scan, _ = analyze(medium_scenario, False)
            return scanned_indexed, scanned_scan, lookups

        scanned_indexed, scanned_scan, lookups = benchmark.pedantic(
            measure, rounds=1, iterations=1
        )
        benchmark.extra_info["rows_scanned_indexed"] = scanned_indexed
        benchmark.extra_info["rows_scanned_full_scan"] = scanned_scan
        benchmark.extra_info["scan_reduction"] = scanned_scan / max(scanned_indexed, 1)
        assert lookups > 0
        # The indexed plans must scan at least 5x fewer rows on this database.
        assert scanned_indexed * 5 <= scanned_scan
