"""E13 — ordered range indexes vs. full-partition scans.

The range-heavy E9 variant (selective sargable predicates, a BETWEEN
aggregate, and a single-key top-k) with and without the ordered index on
``incl``.  Two properties:

* the index is result-transparent — byte-identical rows with the index on
  or off, and byte-identical :class:`QueryStats` between the row-at-a-time
  and vectorized engines on the probe path;
* the probe path does strictly less counted work (``range_probes``
  charged, ``rows_scanned`` collapses to the in-range rows) and is not
  slower on wall clock (deliberately relaxed — CI machines are noisy; the
  persistent baseline in ``BENCH_relalg.json`` records the real ratio,
  ≥ 2× locally).
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from run_bench import _e13_database, _e13_run  # noqa: E402


def _wall(database, repeats: int = 3) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        _e13_run(database)
        times.append(time.perf_counter() - start)
    return min(times)


class TestRangeProbeBaseline:
    def test_probe_transparent_and_not_slower_than_full_scan(self):
        with _e13_database() as ordered, (
            _e13_database(ordered=False)
        ) as plain, _e13_database(vectorized=False) as rowwise:
            ordered_rows, ordered_stats = _e13_run(ordered)
            plain_rows, plain_stats = _e13_run(plain)
            row_rows, row_stats = _e13_run(rowwise)

            assert ordered_rows == plain_rows
            assert row_rows == ordered_rows
            assert row_stats == ordered_stats

            assert sum(stats.range_probes for stats in ordered_stats) > 0
            assert sum(stats.range_probes for stats in plain_stats) == 0
            assert (
                sum(stats.rows_scanned for stats in ordered_stats)
                < sum(stats.rows_scanned for stats in plain_stats)
            )

            probe_wall = _wall(ordered)
            scan_wall = _wall(plain)
            assert probe_wall <= scan_wall, (
                f"range probes {probe_wall:.4f}s slower than "
                f"full scans {scan_wall:.4f}s"
            )
