"""E3 — Section 5: work distribution between the client and the database.

Paper observation to reproduce: *"It is a significant advantage to translate
the conditions of performance properties entirely into SQL queries instead of
first accessing the data components and evaluating the expressions in the
analysis tool."*

Both strategies are run against the same Oracle-like backend; the virtual
elapsed time (round trips + transferred rows) and the number of issued
statements are compared.  The advantage must grow with the database size.
"""

from __future__ import annotations

import pytest

from repro.asl.specs import cosy_specification
from repro.bench import build_scenario, load_into_backend
from repro.cosy import ClientSideStrategy, PushdownStrategy


def evaluate(scenario, strategy_name, backend_name="oracle7"):
    client, ids = load_into_backend(scenario, backend_name)
    client.backend.reset_clock()
    if strategy_name == "pushdown":
        strategy = PushdownStrategy(scenario.specification, scenario.mapping, client, ids)
    else:
        strategy = ClientSideStrategy(scenario.specification, client=client, ids=ids)
    result = scenario.analyzer.analyze(strategy=strategy)
    return result, client


class TestE3Pushdown:
    @pytest.mark.parametrize("strategy_name", ["pushdown", "client"])
    def test_full_property_evaluation_per_strategy(
        self, benchmark, medium_scenario, strategy_name
    ):
        """Wall-clock and virtual cost of one full COSY analysis per strategy."""

        def run():
            return evaluate(medium_scenario, strategy_name)

        result, client = benchmark.pedantic(run, rounds=1, iterations=1)
        assert result.instances
        benchmark.extra_info["virtual_seconds"] = client.elapsed
        benchmark.extra_info["rows_transferred"] = client.rows_fetched

    def test_pushdown_beats_client_side_evaluation(self, benchmark, medium_scenario):
        def measure():
            _, push_client = evaluate(medium_scenario, "pushdown")
            _, fetch_client = evaluate(medium_scenario, "client")
            return push_client, fetch_client

        push_client, fetch_client = benchmark.pedantic(measure, rounds=1, iterations=1)
        advantage = fetch_client.elapsed / push_client.elapsed
        benchmark.extra_info["client_over_pushdown_ratio"] = advantage
        benchmark.extra_info["rows_transferred_pushdown"] = push_client.rows_fetched
        benchmark.extra_info["rows_transferred_client"] = fetch_client.rows_fetched
        # The pushdown strategy ships only scalar results over the (virtual)
        # network; the fetch-and-evaluate strategy ships whole data components.
        assert push_client.rows_fetched < fetch_client.rows_fetched
        assert advantage > 1.0

    def test_pushdown_advantage_grows_with_database_size(self, benchmark, cosy_spec):
        sizes = (2, 6)

        def measure():
            ratios = {}
            for functions in sizes:
                scenario = build_scenario(
                    "scalable",
                    pe_counts=(1, 4, 16),
                    specification=cosy_spec,
                    functions=functions,
                    regions_per_function=6,
                )
                _, push_client = evaluate(scenario, "pushdown")
                _, fetch_client = evaluate(scenario, "client")
                ratios[functions] = fetch_client.elapsed / push_client.elapsed
            return ratios

        ratios = benchmark.pedantic(measure, rounds=1, iterations=1)
        for functions, ratio in ratios.items():
            benchmark.extra_info[f"advantage_at_{functions}_functions"] = ratio
        assert ratios[sizes[-1]] >= ratios[sizes[0]] * 0.9
        assert all(ratio > 1.0 for ratio in ratios.values())
