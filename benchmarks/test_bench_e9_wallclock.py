"""E9 — wall-clock process-parallel partition execution.

Every scenario before this one measures the *virtual* clock; E9 pins the
first path whose **real** elapsed time can track the virtual per-partition
makespan: the shared-nothing process executor (PR 5).  Three properties:

* the executor matrix (sequential, GIL-bound threads, worker processes) is
  result-transparent on the scan-heavy workload — byte-identical rows, no
  float tolerance, since all executors enumerate in partition order;
* on a multi-core machine the process executor's wall clock beats the GIL:
  process wall-clock ≤ thread wall-clock and speedup vs. sequential ≥ 1.0
  (deliberately relaxed — CI machines are noisy and have few cores; the
  persistent baseline in ``BENCH_relalg.json`` records the real ratios);
* the assertions are scaled to the hardware: a single-core machine checks
  result transparency only, because no executor can beat sequential there.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.relalg import Database, ProcessScanExecutor

_ROWS = 24_000
_PARTITIONS = 8
_QUERIES = [
    (
        "SELECT region, COUNT(*), SUM(incl), MAX(excl) FROM samples "
        "WHERE excl > ? GROUP BY region ORDER BY region",
        [97.0],
    ),
    ("SELECT COUNT(*), SUM(incl) FROM samples WHERE incl > ? AND pe <= ?", [95.0, 8]),
    ("SELECT id, incl FROM samples WHERE incl > ? AND excl > ? ORDER BY id", [98.0, 98.0]),
    ("SELECT pe, COUNT(*) FROM samples WHERE excl > ? GROUP BY pe ORDER BY pe", [96.0]),
]


def _build(**kwargs) -> Database:
    database = Database(n_partitions=_PARTITIONS, **kwargs)
    database.execute(
        "CREATE TABLE samples (id INTEGER PRIMARY KEY, region INTEGER, "
        "pe INTEGER, incl FLOAT, excl FLOAT)"
    )
    database.executemany(
        "INSERT INTO samples (id, region, pe, incl, excl) VALUES (?, ?, ?, ?, ?)",
        [
            (i, i % 24, i % 16, (i * 37 % 1000) / 10.0, (i * 59 % 1000) / 10.0)
            for i in range(_ROWS)
        ],
    )
    return database


def _run(database: Database):
    return [database.query(sql, params).rows for sql, params in _QUERIES]


def _best_wall(database: Database, rounds: int = 3) -> float:
    """Best-of-N wall time (the standard noise-resistant benchmark read)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        _run(database)
        best = min(best, time.perf_counter() - start)
    return best


class TestE9WallClock:
    def test_executor_matrix_is_result_transparent(self, process_pool):
        sequential = _build()
        reference = _run(sequential)
        assert reference[0], "the workload must produce rows"
        with _build(parallel=2, executor="thread") as threaded:
            assert _run(threaded) == reference
        with _build(executor=process_pool) as parallel:
            assert _run(parallel) == reference

    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 2,
        reason="multi-core wall-clock speedup needs more than one core",
    )
    def test_process_wall_clock_beats_the_gil(self, benchmark):
        workers = min(4, os.cpu_count() or 1)
        sequential = _build()
        reference = _run(sequential)

        def measure():
            sequential_wall = _best_wall(sequential)
            with _build(parallel=workers, executor="thread") as threaded:
                assert _run(threaded) == reference
                thread_wall = _best_wall(threaded)
            with ProcessScanExecutor(workers=workers) as pool, \
                    _build(executor=pool) as parallel:
                assert _run(parallel) == reference
                process_wall = _best_wall(parallel)
            return sequential_wall, thread_wall, process_wall

        sequential_wall, thread_wall, process_wall = benchmark.pedantic(
            measure, rounds=1, iterations=1
        )
        speedup = sequential_wall / process_wall
        benchmark.extra_info["sequential_wall_s"] = round(sequential_wall, 6)
        benchmark.extra_info["thread_wall_s"] = round(thread_wall, 6)
        benchmark.extra_info["process_wall_s"] = round(process_wall, 6)
        benchmark.extra_info["process_speedup"] = round(speedup, 3)
        # Relaxed CI bounds (see module docstring): the process executor
        # must not lose to the GIL-bound thread pool, and must not lose to
        # plain sequential execution.
        assert process_wall <= thread_wall
        assert speedup >= 1.0
