"""E11 — vectorized columnar scans vs. row-at-a-time execution.

The same sequential executor over the same scan-heavy workload, with only
the scan representation changed: batch-compiled predicates over cached
columnar chunks (PR 7, the ``vectorized=True`` default) vs. the
row-at-a-time closure pipeline.  Two properties:

* the columnar path is result-transparent — byte-identical rows *and*
  byte-identical :class:`QueryStats` (it does the same logical work, only
  batched, so every counter must agree with the row-at-a-time engine);
* it is not slower: vectorized wall ≤ row-at-a-time wall (deliberately
  relaxed — CI machines are noisy; the persistent baseline in
  ``BENCH_relalg.json`` records the real ratio, ≥ 1.5× locally).
"""

from __future__ import annotations

import time

from repro.relalg import Database

_ROWS = 24_000
_PARTITIONS = 8
_QUERIES = [
    (
        "SELECT region, COUNT(*), SUM(incl), MAX(excl) FROM samples "
        "WHERE excl > ? GROUP BY region ORDER BY region",
        [97.0],
    ),
    ("SELECT COUNT(*), SUM(incl) FROM samples WHERE incl > ? AND pe <= ?", [95.0, 8]),
    ("SELECT id, incl FROM samples WHERE incl > ? AND excl > ? ORDER BY id", [98.0, 98.0]),
    ("SELECT pe, COUNT(*) FROM samples WHERE excl > ? GROUP BY pe ORDER BY pe", [96.0]),
    ("SELECT COUNT(*) FROM samples WHERE incl > ? AND excl < ?", [90.0, 20.0]),
]


def _build(**kwargs) -> Database:
    database = Database(n_partitions=_PARTITIONS, **kwargs)
    database.execute(
        "CREATE TABLE samples (id INTEGER PRIMARY KEY, region INTEGER, "
        "pe INTEGER, incl FLOAT, excl FLOAT)"
    )
    database.executemany(
        "INSERT INTO samples (id, region, pe, incl, excl) VALUES (?, ?, ?, ?, ?)",
        [
            (i, i % 24, i % 16, (i * 37 % 1000) / 10.0, (i * 59 % 1000) / 10.0)
            for i in range(_ROWS)
        ],
    )
    return database


def _run(database: Database):
    results = [database.query(sql, params) for sql, params in _QUERIES]
    return [r.rows for r in results], [r.stats for r in results]


def _wall(database: Database, repeats: int = 3) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        _run(database)
        times.append(time.perf_counter() - start)
    return min(times)


class TestColumnarScanBaseline:
    def test_vectorized_is_transparent_and_not_slower(self):
        with _build(vectorized=False) as rowwise, _build() as vectorized:
            row_rows, row_stats = _run(rowwise)
            vec_rows, vec_stats = _run(vectorized)
            assert vec_rows == row_rows
            assert vec_stats == row_stats

            # Warm both (plan caches and the vectorized chunk caches are
            # already hot from the parity run), then race them.
            row_wall = _wall(rowwise)
            vec_wall = _wall(vectorized)
            assert vec_wall <= row_wall, (
                f"vectorized {vec_wall:.4f}s slower than "
                f"row-at-a-time {row_wall:.4f}s"
            )

    def test_vectorized_transparent_under_dml_and_transactions(self):
        with _build(vectorized=False) as rowwise, _build() as vectorized:
            for database in (rowwise, vectorized):
                database.execute("DELETE FROM samples WHERE pe = ?", [3])
                database.begin()
                database.executemany(
                    "INSERT INTO samples (id, region, pe, incl, excl) "
                    "VALUES (?, ?, ?, ?, ?)",
                    [(100_000 + i, 0, 1, 99.5, 99.5) for i in range(8)],
                )
                database.commit()
            row_rows, row_stats = _run(rowwise)
            vec_rows, vec_stats = _run(vectorized)
            assert vec_rows == row_rows
            assert vec_stats == row_stats
