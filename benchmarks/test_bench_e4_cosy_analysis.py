"""E4 — Sections 3/4: the COSY cost analysis itself.

The paper's COSY identifies regions with high parallelization overhead from
the region's speedup, explains the overhead through the performance
properties, and ranks the properties by severity (total cost, measured /
unmeasured cost, synchronisation, communication, I/O, load imbalance).

This benchmark regenerates that analysis for the mixed synthetic application:
the per-run cost series (duration, speedup, SublinearSpeedup severity) and the
severity ranking of the largest run, and checks the qualitative shape — the
total cost grows with the processor count, and the injected bottlenecks are
found with the expected ordering."""

from __future__ import annotations

import pytest

from repro.bench import speedup_series
from repro.cosy import ClientSideStrategy


class TestE4CostAnalysis:
    def test_full_analysis_of_the_largest_run(self, benchmark, small_scenario):
        """One complete property evaluation + ranking (client-side strategy)."""

        def analyze():
            return small_scenario.analyzer.analyze(
                strategy=ClientSideStrategy(small_scenario.specification)
            )

        result = benchmark(analyze)
        bottleneck = result.bottleneck()
        assert bottleneck is not None
        # The whole-program total cost is the main property (paper, Section 3).
        assert bottleneck.property_name == "SublinearSpeedup"
        assert bottleneck.subject == "app_main"
        benchmark.extra_info["bottleneck_severity"] = bottleneck.severity
        benchmark.extra_info["problems"] = len(result.problems())

    def test_cost_series_over_the_test_runs(self, benchmark, small_scenario):
        """The per-run table: summed duration, speedup and total-cost severity."""

        def series():
            return speedup_series(small_scenario)

        rows = benchmark(series)
        for row in rows:
            benchmark.extra_info[f"severity_at_{int(row['pes'])}_pes"] = row["severity"]
        severities = [row["severity"] for row in rows]
        durations = [row["duration"] for row in rows]
        # Shape: the lost cycles (and their severity) grow monotonically with
        # the processor count; the reference run has none.
        assert severities[0] == pytest.approx(0.0)
        assert severities == sorted(severities)
        assert durations == sorted(durations)
        # Speedup stays above 1 but clearly below the ideal P.
        assert all(1.0 <= row["speedup"] <= row["pes"] for row in rows[1:])

    def test_severity_ranking_orders_the_injected_bottlenecks(
        self, benchmark, small_scenario
    ):
        """The ranked breakdown: sync cost of the imbalanced region dominates
        communication, which dominates the (small) serialized I/O phase."""

        def analyze():
            return small_scenario.analyzer.analyze()

        result = benchmark.pedantic(analyze, rounds=1, iterations=1)
        sync = result.severity_of("SyncCost", "assemble_matrix")
        comm = result.severity_of("CommunicationCost", "field_exchange")
        io = result.severity_of("IOCost", "write_results")
        benchmark.extra_info["sync_severity"] = sync
        benchmark.extra_info["comm_severity"] = comm
        benchmark.extra_info["io_severity"] = io
        assert sync > comm > io > 0
        # MeasuredCost + UnmeasuredCost ≈ total cost on the basis region.
        measured = result.severity_of("MeasuredCost", "app_main")
        unmeasured = result.severity_of("UnmeasuredCost", "app_main")
        total = result.total_cost_severity()
        assert measured + unmeasured == pytest.approx(total, rel=0.01)
