"""E5 — Section 2: specification-based analysis vs. the related-work baselines.

The paper positions ASL/COSY against Paradyn (fixed bottleneck set), OPAL
(rule base in the tool), EDL (compound event patterns) and EARL (procedural
trace scripts).  The benchmark runs all five analyses on the same simulated
application with a known injected bottleneck (severe load imbalance) and
checks that (a) every approach locates the bottleneck region and (b) reports
the analysis cost of each approach for comparison."""

from __future__ import annotations

import pytest

from repro.apprentice import ExecutionSimulator, SimulationConfig, synthetic_workload
from repro.asl.specs import cosy_specification
from repro.baselines import (
    EarlAnalyzer,
    EdlAnalyzer,
    ParadynSearch,
    RuleEngine,
    default_rule_base,
)
from repro.cosy import CosyAnalyzer
from repro.traces import generate_trace

PES = 16
BOTTLENECK_REGION = "particle_push"


@pytest.fixture(scope="module")
def setting():
    workload = synthetic_workload("imbalanced", imbalance=0.8)
    repository = ExecutionSimulator(
        workload, SimulationConfig(pe_counts=(1, PES))
    ).run()
    version = repository.programs[0].latest_version()
    return {
        "workload": workload,
        "repository": repository,
        "version": version,
        "run": version.run_with_pes(PES),
        "trace": generate_trace(workload, PES),
        "spec": cosy_specification(),
    }


class TestE5BaselineComparison:
    def test_cosy_specification_based_analysis(self, benchmark, setting):
        analyzer = CosyAnalyzer(setting["repository"], specification=setting["spec"])

        def run():
            return analyzer.analyze(pes=PES)

        result = benchmark(run)
        assert result.severity_of("SyncCost", BOTTLENECK_REGION) > 0.05
        assert any(
            BOTTLENECK_REGION in i.subject for i in result.by_property("LoadImbalance")
        )
        benchmark.extra_info["instances"] = len(result.instances)

    def test_paradyn_like_fixed_search(self, benchmark, setting):
        search = ParadynSearch(setting["repository"])

        def run():
            return search.search(setting["version"], setting["run"])

        findings = benchmark(run)
        assert any(
            f.problem == "ExcessiveSyncWaitingTime" and f.location == BOTTLENECK_REGION
            for f in findings
        )
        benchmark.extra_info["findings"] = len(findings)

    def test_opal_like_rule_engine(self, benchmark, setting):
        def run():
            engine = RuleEngine(setting["repository"], default_rule_base())
            return engine.analyze(setting["version"], setting["run"])

        findings = benchmark(run)
        assert any(
            f.problem == "LoadImbalance" and BOTTLENECK_REGION in f.location
            for f in findings
        )
        benchmark.extra_info["findings"] = len(findings)

    def test_edl_like_event_patterns(self, benchmark, setting):
        analyzer = EdlAnalyzer()

        def run():
            return analyzer.analyze(setting["trace"])

        findings = benchmark(run)
        assert any(
            f.problem == "BarrierWait" and f.location == BOTTLENECK_REGION
            for f in findings
        )
        benchmark.extra_info["findings"] = len(findings)

    def test_earl_like_trace_scripts(self, benchmark, setting):
        def run():
            return EarlAnalyzer().analyze(setting["trace"])

        findings = benchmark(run)
        assert any(
            f.problem == "BarrierWait" and f.location == BOTTLENECK_REGION
            for f in findings
        )
        benchmark.extra_info["findings"] = len(findings)
