"""E7 — partitioned storage: the COSY pushdown analysis across shard counts.

The storage engine hash-partitions every table by primary key (PR 3).  This
experiment pins the two properties the partition-count sweep in
``run_bench.py`` relies on:

* the full pushdown analysis is *partition-transparent* — the same property
  instances and severities (up to float-aggregation order) at 1, 4 and 8
  partitions per table;
* partition pruning holds on the virtual cost model: a primary-key point
  probe does the same physical work regardless of the partition count, and a
  simulated backend with parallel scan workers charges strictly less virtual
  time for the scan-heavy analysis than the serial charging of the same
  partitioned database.
"""

from __future__ import annotations

import pytest

from repro.bench import load_into_backend
from repro.cosy import PushdownStrategy


def analyze(scenario, n_partitions, parallelism=1):
    client, ids = load_into_backend(
        scenario, "oracle7", n_partitions=n_partitions, parallelism=parallelism
    )
    client.backend.reset_clock()
    strategy = PushdownStrategy(
        scenario.specification, scenario.mapping, client, ids
    )
    result = scenario.analyzer.analyze(strategy=strategy)
    return result, client


def severity_map(result):
    return {(i.property_name, i.subject): i.severity for i in result.instances}


class TestE7PartitionSweep:
    def test_analysis_is_partition_transparent(self, benchmark, medium_scenario):
        def run():
            return {
                parts: analyze(medium_scenario, parts)
                for parts in (1, 4, 8)
            }

        outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
        reference = severity_map(outcomes[1][0])
        assert reference
        for parts, (result, client) in outcomes.items():
            severities = severity_map(result)
            assert set(severities) == set(reference), parts
            for key, severity in severities.items():
                assert severity == pytest.approx(reference[key], rel=1e-9)
            benchmark.extra_info[f"virtual_s_at_{parts}"] = client.elapsed

    def test_pk_probe_work_is_partition_invariant(self, medium_scenario):
        probes = {}
        for parts in (1, 8):
            client, ids = load_into_backend(
                medium_scenario, "oracle7", n_partitions=parts
            )
            database = client.backend.database
            table = database.table_names()[0]
            result = database.query(f"SELECT * FROM {table} WHERE id = 1")
            probes[parts] = result.stats
        assert probes[1].rows_scanned == probes[8].rows_scanned
        assert probes[1].index_lookups == probes[8].index_lookups == 1
        # The 8-way probe touched at most one partition.
        assert len(probes[8].partition_rows_scanned) <= 1

    def test_parallel_scan_charging_beats_serial(self, benchmark, medium_scenario):
        def run():
            _, serial = analyze(medium_scenario, 8, parallelism=1)
            _, fanout = analyze(medium_scenario, 8, parallelism=4)
            return serial, fanout

        serial, fanout = benchmark.pedantic(run, rounds=1, iterations=1)
        benchmark.extra_info["serial_virtual_s"] = serial.elapsed
        benchmark.extra_info["parallel_virtual_s"] = fanout.elapsed
        assert fanout.elapsed < serial.elapsed
        fanout.close()
