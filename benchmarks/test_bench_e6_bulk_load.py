"""E6 — bulk/batched loading of the performance data (paper, Section 5).

The paper's bulk-insertion observation (MS Access ingesting the performance
data about 20× faster than the Oracle server) is fundamentally about per-row
round trips: the local database pays almost none, the remote server pays one
per statement.  The batched ``executemany`` pipeline removes that per-row
cost on every backend — one virtual round trip plus one per-statement insert
overhead per batch — so this experiment measures the gap the batch path
closes:

* load the E1 medium scenario **batched** (the loader default) and **row at a
  time** (``batch_size=None``, the pre-batching behaviour) into the same
  backend profile and compare virtual load times;
* differentially check that both paths load byte-identical table contents —
  batching must be a pure cost optimisation.
"""

from __future__ import annotations

import pytest

from repro.bench import identical_table_contents, load_into_backend

#: The paper's remote server and the local backend — the two extremes.
BULK_BACKENDS = ("oracle7", "ms_access")


def _virtual_load_seconds(client):
    """Load time excluding the one-time connection establishment."""
    return client.elapsed - client.backend.profile.connect_latency


class TestE6BulkLoad:
    @pytest.mark.parametrize("backend_name", BULK_BACKENDS)
    def test_batched_load_is_at_least_five_times_faster(
        self, benchmark, medium_scenario, backend_name
    ):
        def measure():
            batched, _ = load_into_backend(medium_scenario, backend_name)
            row_at_a_time, _ = load_into_backend(
                medium_scenario, backend_name, batch_size=None
            )
            return batched, row_at_a_time

        batched, row_at_a_time = benchmark.pedantic(measure, rounds=1, iterations=1)
        batched_s = _virtual_load_seconds(batched)
        row_s = _virtual_load_seconds(row_at_a_time)
        speedup = row_s / batched_s
        benchmark.extra_info["virtual_batched_seconds"] = batched_s
        benchmark.extra_info["virtual_row_at_a_time_seconds"] = row_s
        benchmark.extra_info["batched_speedup"] = speedup
        assert speedup >= 5.0
        # Batching is a pure cost optimisation: same rows, same order.
        assert batched.backend.rows_inserted == row_at_a_time.backend.rows_inserted
        assert identical_table_contents(
            batched.backend.database, row_at_a_time.backend.database
        )

    def test_batch_charges_one_round_trip_per_batch(self, medium_scenario):
        """The batched path issues ~rows/batch_size insert round trips."""
        batched, _ = load_into_backend(medium_scenario, "oracle7")
        row_at_a_time, _ = load_into_backend(
            medium_scenario, "oracle7", batch_size=None
        )
        rows = batched.backend.rows_inserted
        assert rows == row_at_a_time.backend.rows_inserted
        # Row at a time: one statement per row (plus DDL); batched: far fewer.
        assert row_at_a_time.backend.statements_executed > rows
        assert batched.backend.statements_executed < rows / 2
