"""E12 — batch execution past the driving scan vs. the scan-only pipeline.

The same sequential executor over aggregation-heavy and join-heavy
variants of the E9 workload, three ways: the full batch pipeline
(vectorized aggregation, join probing, projection, top-k), the scan-only
pipeline (post-scan batch rungs stripped from warmed plans — exactly the
PR 7 engine), and the row-at-a-time engine.  Two properties:

* every batch rung is result-transparent — byte-identical rows *and*
  byte-identical :class:`QueryStats` across all three pipelines;
* the full pipeline is not slower than scan-only (deliberately relaxed —
  CI machines are noisy; the persistent baseline in ``BENCH_relalg.json``
  records the real ratio, ≥ 1.5× locally on the aggregation workload).
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from run_bench import (  # noqa: E402
    _E12_AGG_QUERIES,
    _E12_JOIN_QUERIES,
    _e12_database,
    _e12_disable_batch_rungs,
    _e12_run,
)


def _wall(database, queries, repeats: int = 3) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        _e12_run(database, queries)
        times.append(time.perf_counter() - start)
    return min(times)


class TestBatchPipelineBaseline:
    def test_aggregate_workload_transparent_and_not_slower(self):
        queries = _E12_AGG_QUERIES
        with _e12_database() as full, _e12_database() as scan_only, (
            _e12_database(vectorized=False)
        ) as rowwise:
            _e12_disable_batch_rungs(scan_only, queries)
            full_results = _e12_run(full, queries)
            scan_results = _e12_run(scan_only, queries)
            row_results = _e12_run(rowwise, queries)
            assert full_results[0] == row_results[0]
            assert full_results[1] == row_results[1]
            assert scan_results == row_results

            full_wall = _wall(full, queries)
            scan_wall = _wall(scan_only, queries)
            assert full_wall <= scan_wall, (
                f"batch pipeline {full_wall:.4f}s slower than "
                f"scan-only {scan_wall:.4f}s"
            )

    def test_join_workload_transparent(self):
        queries = _E12_JOIN_QUERIES
        with _e12_database() as full, _e12_database(
            vectorized=False
        ) as rowwise:
            assert _e12_run(full, queries) == _e12_run(rowwise, queries)

    def test_scan_only_plans_actually_lose_their_batch_rungs(self):
        # The stripped plans are the control group: if the attributes were
        # renamed the "scan-only" measurement would silently become the
        # full pipeline and the speedup would read as 1.0x.
        with _e12_database() as scan_only:
            _e12_disable_batch_rungs(scan_only, _E12_AGG_QUERIES)
            assert scan_only._plan_cache, "plan cache should be warm"
            for _snapshot, plan in scan_only._plan_cache.values():
                assert plan.vector_aggregate is None
                assert plan.vector_join_key is None
                assert plan.vector_projector is None
