"""E10 — write-ahead durability: load overhead, checkpointing, recovery.

Every earlier scenario treats the database as a process-lifetime object; E10
pins the durability leg added in PR 6: the E6 bulk load with a write-ahead
log attached must (a) evolve byte-identical state to the pure in-memory
load, (b) recover that exact state from the log alone after the process is
gone, and (c) keep recovering it when size-triggered checkpoints have
truncated the log mid-load.  The wall-clock ratios (fsync cost per durable
batch) are recorded as benchmark info, not asserted — fsync latency varies
by orders of magnitude across CI disks; the persistent baseline in
``BENCH_relalg.json`` tracks the real overheads.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.compiler import DatabaseLoader
from repro.relalg import Database, fingerprint_hash, state_fingerprint


def _load(scenario, database: Database) -> int:
    loader = DatabaseLoader(scenario.mapping, database)
    loader.create_schema()
    loader.load(scenario.repository)
    return loader.rows_inserted


def _state(database: Database) -> str:
    return fingerprint_hash(state_fingerprint(database))


class TestE10Durability:
    def test_wal_backed_load_matches_in_memory_load(self, medium_scenario, tmp_path):
        with Database(n_partitions=4) as plain:
            rows = _load(medium_scenario, plain)
            reference = _state(plain)
        assert rows > 1000, "the medium scenario must load a real data set"
        wal_path = tmp_path / "e10.wal"
        with Database(n_partitions=4, wal_path=str(wal_path),
                      wal_autocheckpoint=None) as walled:
            _load(medium_scenario, walled)
            assert _state(walled) == reference
        assert wal_path.stat().st_size > 0
        with Database(n_partitions=4, wal_path=str(wal_path)) as recovered:
            assert _state(recovered) == reference

    def test_checkpointed_load_truncates_and_recovers(self, medium_scenario, tmp_path):
        full_path = tmp_path / "full.wal"
        with Database(n_partitions=4, wal_path=str(full_path),
                      wal_autocheckpoint=None) as walled:
            _load(medium_scenario, walled)
            reference = _state(walled)
        full_bytes = full_path.stat().st_size

        ckpt_path = tmp_path / "ckpt.wal"
        threshold = max(16_000, full_bytes // 4)
        with Database(n_partitions=4, wal_path=str(ckpt_path),
                      wal_autocheckpoint=threshold) as checkpointed:
            _load(medium_scenario, checkpointed)
            assert _state(checkpointed) == reference
        assert (tmp_path / "ckpt.wal.ckpt").exists(), \
            "the size-triggered checkpoint must fire during the load"
        assert ckpt_path.stat().st_size < full_bytes
        with Database(n_partitions=4, wal_path=str(ckpt_path),
                      wal_autocheckpoint=threshold) as recovered:
            assert _state(recovered) == reference

    def test_durability_overheads_recorded(self, benchmark, medium_scenario, tmp_path):
        """Wall-clock load at the three durability levels (info, not gates)."""
        def timed(**db_kwargs) -> float:
            start = time.perf_counter()
            with Database(n_partitions=4, **db_kwargs) as database:
                _load(medium_scenario, database)
                fingerprint = _state(database)
            return time.perf_counter() - start, fingerprint

        def measure():
            off_s, reference = timed()
            on_s, on_print = timed(
                wal_path=str(tmp_path / "on.wal"), wal_autocheckpoint=None
            )
            full_bytes = os.path.getsize(tmp_path / "on.wal")
            ckpt_s, ckpt_print = timed(
                wal_path=str(tmp_path / "ckpt.wal"),
                wal_autocheckpoint=max(16_000, full_bytes // 4),
            )
            assert on_print == reference and ckpt_print == reference
            return off_s, on_s, ckpt_s, full_bytes

        off_s, on_s, ckpt_s, full_bytes = benchmark.pedantic(
            measure, rounds=1, iterations=1
        )
        benchmark.extra_info["wal_off_s"] = round(off_s, 6)
        benchmark.extra_info["wal_on_s"] = round(on_s, 6)
        benchmark.extra_info["wal_on_checkpoint_s"] = round(ckpt_s, 6)
        benchmark.extra_info["log_bytes"] = full_bytes
        benchmark.extra_info["wal_overhead"] = round(on_s / off_s, 3)
        assert full_bytes > 0
