"""Shared fixtures for the benchmark harness (one module per experiment id)."""

from __future__ import annotations

import pytest

from repro.asl.specs import cosy_specification
from repro.bench import build_scenario
from repro.relalg import ProcessScanExecutor


@pytest.fixture(scope="session")
def cosy_spec():
    """The checked bundled COSY specification."""
    return cosy_specification()


@pytest.fixture(scope="session")
def process_pool():
    """A shared spawn-safe worker pool for the wall-clock experiments."""
    executor = ProcessScanExecutor(workers=2)
    yield executor
    executor.shutdown()


@pytest.fixture(scope="session")
def small_scenario(cosy_spec):
    """The mixed workload on 1..8 PEs (fast, used by several experiments)."""
    return build_scenario("mixed", pe_counts=(1, 2, 4, 8), specification=cosy_spec)


@pytest.fixture(scope="session")
def medium_scenario(cosy_spec):
    """A scalable workload producing a database of a few thousand rows (E1/E3/A1)."""
    return build_scenario(
        "scalable",
        pe_counts=(1, 4, 16),
        specification=cosy_spec,
        functions=8,
        regions_per_function=6,
        calls_per_region=2,
    )
