"""F1 — Figure 1: the ASL property grammar.

The paper's only figure is the grammar of the property specification language.
This benchmark regenerates the corresponding artifact of this reproduction:
parsing and checking complete ASL specification documents — the bundled COSY
documents exactly as printed in the paper, and synthetically grown documents
with many properties (the cost of re-targeting the tool to a large
specification)."""

from __future__ import annotations

import pytest

from repro.asl import check_asl, parse_asl, unparse
from repro.asl.specs import COSY_DATA_MODEL, COSY_PROPERTIES


def synthetic_property(index: int) -> str:
    """One generated property exercising every production of Figure 1."""
    return f"""
    Property Generated{index:04d}(Region r, TestRun t, Region Basis) {{
        LET float Cost{index} = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run == t
                AND tt.Type == Barrier);
            float Reference = Duration(Basis, t)
        IN
        CONDITION: (low) Cost{index} > 0 OR (high) Cost{index} > 0.5 * Reference;
        CONFIDENCE: MAX((low) -> 0.5, (high) -> 0.9);
        SEVERITY: MAX((low) -> Cost{index} / Reference, (high) -> 1);
    }}
    """


def grown_document(properties: int) -> str:
    return COSY_PROPERTIES + "\n".join(
        synthetic_property(index) for index in range(properties)
    )


class TestF1Grammar:
    def test_parse_and_check_the_paper_specification(self, benchmark):
        """Parse + type-check the COSY data model and property documents."""

        def parse_and_check():
            model = parse_asl(COSY_DATA_MODEL)
            properties = parse_asl(COSY_PROPERTIES)
            return check_asl(model.merge(properties))

        checked = benchmark(parse_and_check)
        assert len(checked.index.properties) >= 8
        assert len(checked.index.classes) == 9

    @pytest.mark.parametrize("properties", [25, 100])
    def test_parse_grown_specification_documents(self, benchmark, properties):
        """Parsing scales to specification documents with many properties."""
        source = grown_document(properties)
        program = benchmark(parse_asl, source)
        assert len(program.properties) == properties + 8

    def test_round_trip_through_the_pretty_printer(self, benchmark):
        """unparse(parse(document)) is stable — the grammar is self-consistent."""
        source = COSY_DATA_MODEL + "\n" + COSY_PROPERTIES

        def round_trip():
            once = unparse(parse_asl(source))
            twice = unparse(parse_asl(once))
            return once, twice

        once, twice = benchmark(round_trip)
        assert once == twice
