"""Columnar chunk layout and its boundary conditions.

The vectorized scan path reads per-partition columnar chunks
(:meth:`Partition.column_chunks`) that are rebuilt lazily from the live
rows after any mutation.  These tests pin the boundaries where a batch
layout can silently go wrong: chunk size one, partitions smaller than one
chunk, tombstones in the middle of a chunk, and DML invalidating a cached
chunk inside an open transaction (where the engine must fall back to
row-at-a-time so staged writes stay visible).
"""

import pytest

from repro.relalg import CHUNK_ROWS, Database

_DDL = "CREATE TABLE t (id INTEGER PRIMARY KEY, g INTEGER, x FLOAT)"
_INS = "INSERT INTO t (id, g, x) VALUES (?, ?, ?)"


def _filled(n_rows=50, **kwargs):
    database = Database(n_partitions=4, **kwargs)
    database.execute(_DDL)
    database.executemany(
        _INS, [(i, i % 5, float(i) / 2) for i in range(1, n_rows + 1)]
    )
    return database


class TestChunkLayout:
    def test_chunks_transpose_live_rows_in_order(self):
        with _filled(n_rows=10) as database:
            partition = database.tables["t"].partitions[0]
            chunks = partition.column_chunks(chunk_size=4)
            rebuilt = [row for block, _cols in chunks for row in block]
            assert rebuilt == [r for r in partition.rows if r is not None]
            for block, cols in chunks:
                assert len(cols) == 3
                for j, column in enumerate(cols):
                    assert column == [row[j] for row in block]

    def test_chunk_size_one_yields_one_row_per_chunk(self):
        with _filled(n_rows=9) as database:
            partition = database.tables["t"].partitions[1]
            chunks = partition.column_chunks(chunk_size=1)
            assert len(chunks) == partition.live_count
            assert all(len(block) == 1 for block, _cols in chunks)

    def test_partition_smaller_than_one_chunk_is_a_single_chunk(self):
        with _filled(n_rows=6) as database:
            partition = database.tables["t"].partitions[2]
            assert partition.live_count < CHUNK_ROWS
            chunks = partition.column_chunks()
            assert len(chunks) <= 1
            if chunks:
                assert len(chunks[0][0]) == partition.live_count

    def test_cache_reused_until_invalidated(self):
        with _filled() as database:
            partition = database.tables["t"].partitions[0]
            first = partition.column_chunks(chunk_size=8)
            assert partition.column_chunks(chunk_size=8) is first
            # A different chunk size rebuilds; a mutation invalidates.
            assert partition.column_chunks(chunk_size=16) is not first
            database.execute(_INS, [1000, 0, 0.0])
            fresh = [
                p.column_chunks(chunk_size=16)
                for p in database.tables["t"].partitions
            ]
            assert sum(len(b) for chunks in fresh for b, _ in chunks) == 51


@pytest.mark.parametrize("chunk_size", [1, 3, CHUNK_ROWS])
class TestChunkedQueriesMatchRowwise:
    def test_tombstones_mid_chunk(self, chunk_size):
        # Delete a stripe of rows (far below the compaction threshold, so
        # the row lists keep tombstones in the middle of every chunk), then
        # compare the vectorized scan against row-at-a-time.
        with _filled(vectorized_chunk_size=chunk_size) as vectorized, _filled(
            vectorized=False
        ) as rowwise:
            for database in (vectorized, rowwise):
                deleted = database.execute("DELETE FROM t WHERE g = ?", [2])
                assert deleted == 10
            for sql, params in [
                ("SELECT id, x FROM t WHERE x > ? ORDER BY id", [5.0]),
                ("SELECT g, COUNT(*) FROM t GROUP BY g ORDER BY g", []),
                ("SELECT id FROM t ORDER BY id", []),
            ]:
                got = vectorized.query(sql, params)
                expected = rowwise.query(sql, params)
                assert got.rows == expected.rows, sql
                assert got.stats == expected.stats, sql

    def test_dml_inside_open_transaction(self, chunk_size):
        with _filled(vectorized_chunk_size=chunk_size) as database:
            count_sql = "SELECT COUNT(*) FROM t WHERE x > ?"
            # Warm the chunk caches with a vectorized scan.
            assert database.query(count_sql, [10.0]).rows == [(30,)]
            database.begin()
            database.execute(_INS, [2000, 1, 99.0])
            database.execute("DELETE FROM t WHERE id = ?", [1])
            # Inside the transaction the engine reads its own staged writes
            # (the vectorized path is disabled while writes are staged).
            assert database.query(count_sql, [10.0]).rows == [(31,)]
            assert database.query(
                "SELECT id FROM t WHERE id = ?", [2000]
            ).rows == [(2000,)]
            assert database.query(
                "SELECT id FROM t WHERE id = ?", [1]
            ).rows == []
            database.rollback()
            # After rollback the staged rows are gone and the (invalidated,
            # rebuilt) chunks serve the original data again.
            assert database.query(count_sql, [10.0]).rows == [(30,)]
            assert database.query(
                "SELECT id FROM t WHERE id = ?", [2000]
            ).rows == []
            assert database.query(
                "SELECT id FROM t WHERE id = ?", [1]
            ).rows == [(1,)]

    def test_commit_inside_transaction_then_vectorized_reads(self, chunk_size):
        with _filled(vectorized_chunk_size=chunk_size) as database:
            assert database.query("SELECT COUNT(*) FROM t").rows == [(50,)]
            database.begin()
            database.executemany(
                _INS, [(3000 + i, 9, -1.0) for i in range(5)]
            )
            database.commit()
            result = database.query(
                "SELECT id FROM t WHERE g = ? ORDER BY id", [9]
            )
            assert result.rows == [(3000 + i,) for i in range(5)]


class TestVectorizationReport:
    """EXPLAIN reports per-rung vectorization eligibility and fallback reasons."""

    def test_fully_vectorized_aggregate(self):
        with _filled() as database:
            text = database.explain(
                "SELECT g, COUNT(*), SUM(id) FROM t GROUP BY g"
            )
            assert "vectorization:" in text
            assert "scan: vectorized (columnar chunks)" in text
            assert "aggregate: vectorized (per-group column folds)" in text
            assert "join-probe: n/a (no join levels)" in text
            assert "projection: n/a (aggregate query)" in text
            assert "top-k: n/a (no ORDER BY)" in text
            assert "partial-aggregation: mergeable" in text

    def test_row_fallback_reasons_are_reported(self):
        with _filled() as database:
            probe = database.explain("SELECT x FROM t WHERE id = ?")
            assert (
                "scan: row-at-a-time (driving access is index-probe)" in probe
            )
            subquery = database.explain(
                "SELECT id FROM t WHERE x > (SELECT AVG(x) FROM t)"
            )
            assert (
                "scan: row-at-a-time (driving filters do not batch-compile)"
                in subquery
            )
            # A float SUM is not mergeable across process shards, yet still
            # batch-aggregates locally.
            floats = database.explain("SELECT g, SUM(x) FROM t GROUP BY g")
            assert "aggregate: vectorized (per-group column folds)" in floats
            assert "partial-aggregation" not in floats

    def test_top_k_report(self):
        with _filled() as database:
            top_k = database.explain("SELECT id FROM t ORDER BY x LIMIT 3")
            assert "top-k: vectorized (bounded heap)" in top_k
            distinct = database.explain(
                "SELECT DISTINCT g FROM t ORDER BY g LIMIT 3"
            )
            assert (
                "top-k: full sort (DISTINCT dedups after ordering)" in distinct
            )
            unlimited = database.explain("SELECT id FROM t ORDER BY x")
            assert "top-k: full sort (no LIMIT)" in unlimited

    def test_projection_report(self):
        with _filled() as database:
            exprs = database.explain("SELECT id * 2 + 1, COALESCE(g, -1) FROM t")
            assert "projection: vectorized (batch expressions)" in exprs
            slots = database.explain("SELECT id, g FROM t")
            assert "projection: vectorized (slot projection)" in slots

    def test_join_probe_report(self):
        with _filled() as database:
            database.execute("CREATE TABLE d (g INTEGER, label TEXT)")
            database.executemany(
                "INSERT INTO d (g, label) VALUES (?, ?)",
                [(i, f"g{i}") for i in range(5)],
            )
            text = database.explain(
                "SELECT t.id, d.label FROM t, d WHERE t.g = d.g"
            )
            assert "join-probe: vectorized (batch probe)" in text

    def test_disabled_banner(self):
        with _filled(vectorized=False) as database:
            text = database.explain("SELECT g, COUNT(*) FROM t GROUP BY g")
            assert "vectorization (disabled: vectorized=False):" in text
