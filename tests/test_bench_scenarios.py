"""Tests of the shared scenario builders used by the benchmarks and examples."""

import pytest

from repro.bench import build_scenario, load_into_backend, speedup_series
from repro.relalg import BridgedClient, NativeClient


class TestBuildScenario:
    def test_scenario_contains_everything_the_experiments_need(self, cosy_spec):
        scenario = build_scenario("stencil", pe_counts=(1, 4), specification=cosy_spec)
        assert scenario.workload_kind == "stencil"
        assert scenario.pe_counts == (1, 4)
        assert scenario.repository.stats()["runs"] == 2
        assert scenario.specification is cosy_spec
        assert scenario.run_with_pes(4).NoPe == 4
        assert scenario.version.main_region.name == "stencil_main"

    def test_workload_kwargs_are_forwarded(self, cosy_spec):
        scenario = build_scenario(
            "scalable", pe_counts=(1,), specification=cosy_spec,
            functions=3, regions_per_function=2,
        )
        assert scenario.repository.stats()["functions"] == 3

    def test_threshold_is_applied_to_the_analyzer(self, cosy_spec):
        scenario = build_scenario(
            "stencil", pe_counts=(1, 4), specification=cosy_spec, threshold=0.5
        )
        assert scenario.analyzer.threshold == 0.5


class TestLoadIntoBackend:
    def test_backend_contains_all_rows(self, cosy_spec):
        scenario = build_scenario("stencil", pe_counts=(1, 4), specification=cosy_spec)
        client, ids = load_into_backend(scenario, "ms_access")
        assert isinstance(client, NativeClient)
        assert client.backend.database.total_rows() == ids.total() + 1  # + dual

    def test_client_factory_is_respected(self, cosy_spec):
        scenario = build_scenario("stencil", pe_counts=(1, 4), specification=cosy_spec)
        client, _ = load_into_backend(
            scenario, "postgres", client_factory=BridgedClient
        )
        assert isinstance(client, BridgedClient)
        assert client.backend.profile.name == "postgres"

    def test_without_indexes_no_secondary_indexes_exist(self, cosy_spec):
        scenario = build_scenario("stencil", pe_counts=(1,), specification=cosy_spec)
        client, _ = load_into_backend(scenario, "ms_access", with_indexes=False)
        table = client.backend.database.table("TotalTiming")
        assert table.index_for("owner_Region_TotTimes_id") is None


class TestSpeedupSeries:
    def test_series_has_one_row_per_run(self, cosy_spec):
        scenario = build_scenario(
            "mixed", pe_counts=(1, 2, 8), specification=cosy_spec
        )
        series = speedup_series(scenario)
        assert [row["pes"] for row in series] == [1.0, 2.0, 8.0]
        assert series[0]["severity"] == pytest.approx(0.0)
        assert series[-1]["total_cost"] > series[1]["total_cost"] > 0
        for row in series:
            assert row["severity"] == pytest.approx(
                row["total_cost"] / row["duration"] if row["duration"] else 0.0
            )
