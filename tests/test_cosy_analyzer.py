"""Tests of the COSY analyzer: ranking, bottleneck, registry, strategies."""

import pytest

from repro.bench import build_scenario, load_into_backend
from repro.cosy import (
    ClientSideStrategy,
    CosyAnalyzer,
    PipelinedPushdownStrategy,
    PropertyRegistration,
    PropertyRegistry,
    PushdownStrategy,
    SubjectKind,
    default_registry,
    render_report,
)
from repro.cosy.report import format_table, render_speedup_table
from repro.datamodel import PerformanceDatabase
from repro.relalg import ExecutionError


@pytest.fixture(scope="module")
def scenario():
    return build_scenario("mixed", pe_counts=(1, 2, 4, 8))


@pytest.fixture(scope="module")
def analysis(scenario):
    return scenario.analyzer.analyze()


class TestRegistry:
    def test_default_registry_contains_the_paper_properties(self):
        registry = default_registry()
        assert {"SublinearSpeedup", "MeasuredCost", "SyncCost", "LoadImbalance"} <= set(
            registry.names()
        )

    def test_load_imbalance_is_restricted_to_barrier_calls(self):
        registry = default_registry()
        registration = registry.get("LoadImbalance")
        assert registration.subject == SubjectKind.CALL
        assert registration.accepts_callee("barrier")
        assert not registration.accepts_callee("mpi_send")

    def test_register_and_unregister(self):
        registry = PropertyRegistry()
        registry.register(PropertyRegistration(name="Custom"))
        assert "Custom" in registry
        registry.unregister("Custom")
        assert "Custom" not in registry
        with pytest.raises(KeyError):
            registry.get("Custom")

    def test_region_and_call_partitions(self):
        registry = default_registry()
        region_names = {r.name for r in registry.region_properties()}
        call_names = {r.name for r in registry.call_properties()}
        assert "SublinearSpeedup" in region_names
        assert "LoadImbalance" in call_names
        assert not region_names & call_names


class TestAnalysisResult:
    def test_instances_cover_regions_and_barrier_calls(self, analysis, scenario):
        region_count = sum(1 for _ in scenario.repository.regions())
        region_properties = len(default_registry().region_properties())
        region_instances = [
            i for i in analysis.instances if i.subject_kind == SubjectKind.REGION
        ]
        assert len(region_instances) == region_count * region_properties

    def test_ranking_is_sorted_by_severity(self, analysis):
        ranked = analysis.ranked()
        severities = [i.severity for i in ranked]
        assert severities == sorted(severities, reverse=True)
        assert all(i.holds for i in ranked)

    def test_bottleneck_is_the_most_severe_property(self, analysis):
        bottleneck = analysis.bottleneck()
        assert bottleneck is analysis.ranked()[0]
        assert bottleneck.property_name == "SublinearSpeedup"
        assert bottleneck.subject == "app_main"

    def test_the_injected_bottlenecks_are_detected(self, analysis):
        # The mixed workload injects load imbalance into assemble_matrix and
        # serialized I/O into write_results.
        assert analysis.severity_of("SyncCost", "assemble_matrix") > 0.05
        assert analysis.severity_of("IOCost", "write_results") > 0.005
        load_imbalance = analysis.by_property("LoadImbalance")
        assert any("assemble_matrix" in i.subject for i in load_imbalance)

    def test_problems_respect_the_threshold(self, analysis):
        for instance in analysis.problems():
            assert instance.severity > analysis.threshold
        assert analysis.needs_tuning()

    def test_total_cost_severity_matches_sublinear_speedup_on_the_basis(self, analysis):
        assert analysis.total_cost_severity() == pytest.approx(
            analysis.severity_of("SublinearSpeedup", "app_main")
        )

    def test_severity_of_unknown_instance_is_zero(self, analysis):
        assert analysis.severity_of("SyncCost", "no_such_region") == 0.0


class TestAnalyzerSelection:
    def test_default_selection_uses_the_largest_run(self, analysis):
        assert analysis.run_pes == 8

    def test_explicit_run_selection(self, scenario):
        result = scenario.analyzer.analyze(pes=2)
        assert result.run_pes == 2
        assert result.total_cost_severity() < scenario.analyzer.analyze(pes=8).total_cost_severity()

    def test_reference_run_has_no_sublinear_speedup(self, scenario):
        result = scenario.analyzer.analyze(pes=1)
        assert result.severity_of("SublinearSpeedup", "app_main") == 0.0

    def test_property_subset_selection(self, scenario):
        result = scenario.analyzer.analyze(properties=["SyncCost"])
        assert {i.property_name for i in result.instances} == {"SyncCost"}

    def test_unknown_registered_property_is_reported(self, scenario):
        registry = default_registry()
        registry.register(PropertyRegistration(name="NotInTheSpec"))
        analyzer = CosyAnalyzer(
            scenario.repository,
            specification=scenario.specification,
            registry=registry,
        )
        with pytest.raises(KeyError, match="NotInTheSpec"):
            analyzer.analyze()

    def test_empty_repository_is_rejected(self, scenario):
        analyzer = CosyAnalyzer(
            PerformanceDatabase(), specification=scenario.specification
        )
        with pytest.raises(ValueError, match="no programs"):
            analyzer.analyze()

    def test_threshold_controls_problem_classification(self, scenario):
        strict = CosyAnalyzer(
            scenario.repository, specification=scenario.specification, threshold=0.9
        ).analyze()
        assert strict.problems() == []
        assert not strict.needs_tuning()


class TestStrategyEquivalence:
    def test_pushdown_matches_client_side_evaluation(self, scenario):
        client, ids = load_into_backend(scenario, "ms_access")
        pushdown = PushdownStrategy(
            scenario.specification, scenario.mapping, client, ids
        )
        result_push = scenario.analyzer.analyze(strategy=pushdown)
        result_client = scenario.analyzer.analyze(
            strategy=ClientSideStrategy(scenario.specification)
        )
        assert pushdown.fallbacks == 0
        by_key_push = {
            (i.property_name, i.subject): i for i in result_push.instances
        }
        by_key_client = {
            (i.property_name, i.subject): i for i in result_client.instances
        }
        assert set(by_key_push) == set(by_key_client)
        for key, push_instance in by_key_push.items():
            client_instance = by_key_client[key]
            assert push_instance.holds == client_instance.holds, key
            assert push_instance.severity == pytest.approx(
                client_instance.severity, rel=1e-9, abs=1e-12
            ), key

    def test_client_strategy_with_database_charges_fetches(self, scenario):
        client, ids = load_into_backend(scenario, "oracle7")
        client.backend.reset_clock()
        strategy = ClientSideStrategy(
            scenario.specification, client=client, ids=ids
        )
        scenario.analyzer.analyze(strategy=strategy)
        assert strategy.statements_issued > 0
        assert client.backend.elapsed > 0

    def test_pushdown_issues_one_statement_per_expression(self, scenario):
        client, ids = load_into_backend(scenario, "ms_access")
        pushdown = PushdownStrategy(
            scenario.specification, scenario.mapping, client, ids
        )
        evaluation = pushdown.evaluate(
            "SyncCost",
            {
                "r": scenario.repository.region_by_name("assemble_matrix"),
                "t": scenario.run_with_pes(8),
                "Basis": scenario.repository.region_by_name("app_main"),
            },
        )
        assert evaluation.holds
        # one condition + one confidence + one severity query
        assert pushdown.statements_issued == 3

    def test_pipelined_pushdown_matches_serial_pushdown(self, scenario):
        serial_client, serial_ids = load_into_backend(scenario, "oracle7")
        serial = PushdownStrategy(
            scenario.specification, scenario.mapping, serial_client, serial_ids
        )
        serial_result = scenario.analyzer.analyze(strategy=serial)

        piped_client, piped_ids = load_into_backend(scenario, "oracle7")
        piped = PipelinedPushdownStrategy(
            scenario.specification, scenario.mapping, piped_client, piped_ids,
            window=8,
        )
        piped_result = scenario.analyzer.analyze(strategy=piped)

        assert piped.statements_issued == serial.statements_issued
        serial_map = {
            (i.property_name, i.subject): i.severity
            for i in serial_result.instances
        }
        piped_map = {
            (i.property_name, i.subject): i.severity
            for i in piped_result.instances
        }
        assert serial_map == piped_map
        # Overlapping the per-property round trips can only help.
        assert piped_client.elapsed <= serial_client.elapsed

    def test_pipelined_pushdown_at_window_one_is_byte_identical(self, scenario):
        serial_client, serial_ids = load_into_backend(scenario, "oracle7")
        serial_client.backend.reset_clock()
        serial = PushdownStrategy(
            scenario.specification, scenario.mapping, serial_client, serial_ids
        )
        scenario.analyzer.analyze(strategy=serial)

        piped_client, piped_ids = load_into_backend(scenario, "oracle7")
        piped_client.backend.reset_clock()
        piped = PipelinedPushdownStrategy(
            scenario.specification, scenario.mapping, piped_client, piped_ids,
            window=1,
        )
        scenario.analyzer.analyze(strategy=piped)
        assert piped_client.elapsed == serial_client.elapsed


class TestStrategyGuards:
    """The strategy preconditions are real checks, not bare asserts —
    they must also hold under ``python -O``."""

    def test_fetch_without_client_raises_execution_error(self, scenario):
        strategy = ClientSideStrategy(scenario.specification)
        with pytest.raises(ExecutionError, match="database client"):
            strategy._fetch_data_components({})

    def test_query_without_client_raises_execution_error(self, scenario):
        strategy = ClientSideStrategy(scenario.specification)
        with pytest.raises(ExecutionError, match="no database client"):
            strategy._query("SELECT 1 FROM Dual", [])


class TestReports:
    def test_report_mentions_the_bottleneck_and_problems(self, analysis):
        report = render_report(analysis)
        assert "Bottleneck" in report
        assert "SublinearSpeedup" in report
        assert "needs tuning" in report
        assert "app_main" in report

    def test_report_top_limits_the_ranking(self, analysis):
        report = render_report(analysis, top=3)
        assert report.count("\n") < render_report(analysis).count("\n")

    def test_report_for_empty_result(self, scenario):
        result = scenario.analyzer.analyze(pes=1, properties=["SublinearSpeedup"])
        report = render_report(result)
        assert "nothing to tune" in report or "does not need" in report

    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_speedup_table(self):
        text = render_speedup_table([(1, 10.0, 1.0, 0.0), (8, 16.0, 5.0, 0.4)])
        assert "PEs" in text and "speedup" in text
