"""Tests of the ASL semantic checker (name resolution and type rules)."""

import pytest

from repro.asl import (
    AslNameError,
    AslTypeError,
    check_asl,
    parse_asl,
)
from repro.asl.types import BOOL, FLOAT, INT, ClassType, SetType


MODEL = """
enum TimingType { Barrier, IORead };

class TestRun { int NoPe; int Clockspeed; }

class TotalTiming { TestRun Run; float Excl; float Incl; float Ovhd; }

class TypedTiming { TestRun Run; TimingType Type; float Time; }

class Region {
    Region ParentRegion;
    setof TotalTiming TotTimes;
    setof TypedTiming TypTimes;
}
"""


def check(extra: str):
    return check_asl(parse_asl(MODEL + extra))


class TestDataModelChecks:
    def test_valid_model_checks(self):
        checked = check("")
        assert set(checked.index.classes) == {
            "TestRun", "TotalTiming", "TypedTiming", "Region",
        }
        assert checked.index.enums["TimingType"].members == ["Barrier", "IORead"]

    def test_attribute_types_are_resolved(self):
        checked = check("")
        assert checked.index.attribute_type("TotalTiming", "Incl") == FLOAT
        assert checked.index.attribute_type("TotalTiming", "Run") == ClassType("TestRun")
        tot_times = checked.index.attribute_type("Region", "TotTimes")
        assert isinstance(tot_times, SetType)
        assert tot_times.element == ClassType("TotalTiming")

    def test_unknown_attribute_type_is_reported(self):
        with pytest.raises(AslNameError, match="unknown type"):
            check("class Broken { Widget W; }")

    def test_duplicate_class_is_reported(self):
        with pytest.raises(AslNameError, match="more than once"):
            check("class Region { int X; }")

    def test_unknown_base_class_is_reported(self):
        with pytest.raises(AslNameError, match="extends unknown class"):
            check("class Sub extends Missing { int X; }")

    def test_inheritance_cycle_is_reported(self):
        source = MODEL + "class A extends B { int X; } class B extends A { int Y; }"
        with pytest.raises((AslTypeError, AslNameError), match="cycle"):
            check_asl(parse_asl(source))

    def test_inherited_attributes_are_visible(self):
        checked = check(
            "class Base { float Time; } class Derived extends Base { int Count; }"
        )
        assert checked.index.attribute_type("Derived", "Time") == FLOAT
        assert checked.index.attribute_type("Derived", "Count") == INT

    def test_unknown_attribute_lookup_reports_known_names(self):
        checked = check("")
        with pytest.raises(AslNameError, match="Excl"):
            checked.index.attribute_type("TotalTiming", "Missing")

    def test_duplicate_enum_member_across_enums_is_reported(self):
        with pytest.raises(AslNameError, match="more than one enum"):
            check("enum Other { Barrier };")


class TestFunctionChecks:
    def test_paper_functions_check(self):
        checked = check(
            """
            TotalTiming Summary(Region r, TestRun t) =
                UNIQUE({s IN r.TotTimes WITH s.Run == t});
            float Duration(Region r, TestRun t) = Summary(r, t).Incl;
            """
        )
        params, return_type = checked.index.function_types["Duration"]
        assert return_type == FLOAT
        assert params == (ClassType("Region"), ClassType("TestRun"))

    def test_return_type_mismatch_is_reported(self):
        with pytest.raises(AslTypeError, match="return type"):
            check("int Wrong(Region r) = r.TotTimes;")

    def test_wrong_argument_count_is_reported(self):
        with pytest.raises(AslTypeError, match="expects 2 arguments"):
            check(
                """
                float Duration(Region r, TestRun t) = 1.0;
                float Bad(Region r) = Duration(r);
                """
            )

    def test_wrong_argument_type_is_reported(self):
        with pytest.raises(AslTypeError, match="not assignable"):
            check(
                """
                float Duration(Region r, TestRun t) = 1.0;
                float Bad(Region r) = Duration(r, r);
                """
            )

    def test_functions_may_call_each_other_in_any_order(self):
        checked = check(
            """
            float A(Region r, TestRun t) = B(r, t) + 1;
            float B(Region r, TestRun t) = 2.0;
            """
        )
        assert set(checked.index.functions) == {"A", "B"}

    def test_unknown_name_in_body_is_reported(self):
        with pytest.raises(AslNameError, match="unknown name"):
            check("float Bad(Region r) = NotDefined;")

    def test_int_is_assignable_to_float(self):
        check("float Ok() = 1;")

    def test_float_is_not_assignable_to_int(self):
        with pytest.raises(AslTypeError):
            check("int Bad() = 1.5;")


class TestPropertyChecks:
    GOOD = """
    constant float Threshold = 0.25;
    float Duration(Region r, TestRun t) =
        UNIQUE({s IN r.TotTimes WITH s.Run == t}).Incl;

    Property SyncCost(Region r, TestRun t, Region Basis) {
        LET float Barrier = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run == t
                AND tt.Type == Barrier);
        IN
        CONDITION: Barrier > 0;
        CONFIDENCE: 1;
        SEVERITY: Barrier / Duration(Basis, t);
    }
    """

    def test_paper_style_property_checks(self):
        checked = check(self.GOOD)
        assert "SyncCost" in checked.index.properties

    def test_non_boolean_condition_is_reported(self):
        with pytest.raises(AslTypeError, match="must be boolean"):
            check(
                """
                Property Bad(Region r, TestRun t) {
                    CONDITION: 1 + 1;
                    CONFIDENCE: 1;
                    SEVERITY: 1;
                }
                """
            )

    def test_non_numeric_severity_is_reported(self):
        with pytest.raises(AslTypeError, match="severity.*numeric"):
            check(
                """
                Property Bad(Region r, TestRun t) {
                    CONDITION: r.TotTimes == r.TotTimes;
                    CONFIDENCE: 1;
                    SEVERITY: r.ParentRegion;
                }
                """
            )

    def test_duplicate_condition_identifier_is_reported(self):
        with pytest.raises(AslTypeError, match="used .*more than once|more than once"):
            check(
                """
                Property Bad(Region r, TestRun t) {
                    CONDITION: (c1) 1 > 0 OR (c1) 2 > 0;
                    CONFIDENCE: 1;
                    SEVERITY: 1;
                }
                """
            )

    def test_guard_must_reference_declared_condition(self):
        with pytest.raises(AslNameError, match="does not name a declared condition"):
            check(
                """
                Property Bad(Region r, TestRun t) {
                    CONDITION: (c1) 1 > 0;
                    CONFIDENCE: MAX((c2) -> 1);
                    SEVERITY: 1;
                }
                """
            )

    def test_let_definitions_see_earlier_definitions(self):
        check(
            """
            Property Chained(Region r, TestRun t) {
                LET float A = 1.0;
                    float B = A * 2
                IN
                CONDITION: B > 0;
                CONFIDENCE: 1;
                SEVERITY: B;
            }
            """
        )

    def test_let_type_mismatch_is_reported(self):
        with pytest.raises(AslTypeError, match="LET definition"):
            check(
                """
                Property Bad(Region r, TestRun t) {
                    LET int A = r.TotTimes
                    IN
                    CONDITION: A > 0; CONFIDENCE: 1; SEVERITY: 1;
                }
                """
            )

    def test_duplicate_property_is_reported(self):
        duplicated = """
        Property Twice(Region r, TestRun t) {
            CONDITION: 1 > 0; CONFIDENCE: 1; SEVERITY: 1;
        }
        Property Twice(Region r, TestRun t) {
            CONDITION: 2 > 0; CONFIDENCE: 1; SEVERITY: 2;
        }
        """
        with pytest.raises(AslNameError, match="more than once"):
            check(duplicated)

    def test_unknown_property_parameter_type_is_reported(self):
        with pytest.raises(AslNameError, match="unknown type"):
            check(
                """
                Property Bad(Widget w) {
                    CONDITION: 1 > 0; CONFIDENCE: 1; SEVERITY: 1;
                }
                """
            )


class TestExpressionTyping:
    def test_attribute_access_on_set_is_rejected(self):
        with pytest.raises(AslTypeError, match="on a set"):
            check("float Bad(Region r) = r.TotTimes.Incl;")

    def test_unique_requires_a_set(self):
        with pytest.raises(AslTypeError, match="UNIQUE requires a set"):
            check("float Bad(TotalTiming s) = UNIQUE(s.Incl);")

    def test_aggregate_source_must_be_a_set(self):
        with pytest.raises(AslTypeError, match="set-valued source"):
            check("float Bad(TotalTiming s) = SUM(x.Incl WHERE x IN s.Incl);")

    def test_comparison_of_incompatible_types_is_rejected(self):
        with pytest.raises(AslTypeError, match="incompatible types"):
            check("bool Bad(Region r, TestRun t) = r == t;")

    def test_logical_operator_requires_booleans(self):
        with pytest.raises(AslTypeError, match="requires boolean operands"):
            check("bool Bad(TestRun t) = t.NoPe AND true;")

    def test_arithmetic_requires_numbers(self):
        with pytest.raises(AslTypeError, match="numeric operands"):
            check("float Bad(Region r) = r.ParentRegion + 1;")

    def test_count_returns_int(self):
        check("int Ok(Region r) = COUNT(1 WHERE s IN r.TotTimes);")

    def test_enum_comparison_is_allowed(self):
        check("bool Ok(TypedTiming tt) = tt.Type == Barrier;")

    def test_object_equality_with_subtyping(self):
        check(
            """
            class SpecialRun extends TestRun { int Priority; }
            bool Ok(TotalTiming s, SpecialRun sp) = s.Run == sp;
            """
        )
