"""Partitioned storage: edge cases, statistics, pruning and parallelism.

Covers the hash-partitioned :class:`~repro.relalg.storage.Table` (composite
and absent partition keys, cross-partition batch atomicity, per-partition
tombstone compaction), the maintained cardinality statistics (including
staleness after DELETE-heavy workloads), partition-pruned index probes, the
EXPLAIN surface, the thread-pool partition fan-out and the per-partition
virtual cost charging of the simulated backends.
"""

import pytest

from repro.relalg import (
    Column,
    ColumnType,
    Database,
    ExecutionError,
    IntegrityError,
    Table,
    TableSchema,
    backend,
    stable_hash,
)


def _pk_schema(name="t"):
    return TableSchema(
        name=name,
        columns=[
            Column("id", ColumnType.INTEGER, primary_key=True),
            Column("g", ColumnType.INTEGER),
            Column("x", ColumnType.FLOAT),
        ],
    )


def _composite_schema():
    return TableSchema(
        name="edge",
        columns=[
            Column("src", ColumnType.INTEGER, primary_key=True),
            Column("dst", ColumnType.INTEGER, primary_key=True),
            Column("w", ColumnType.FLOAT),
        ],
    )


def _keyless_schema():
    return TableSchema(
        name="log",
        columns=[
            Column("tag", ColumnType.VARCHAR),
            Column("v", ColumnType.INTEGER),
        ],
    )


class TestStableHash:
    def test_numeric_cross_type_equality(self):
        # `=` treats 3, 3.0 and True/1 as equal; pruning must agree.
        assert stable_hash(3) == stable_hash(3.0)
        assert stable_hash(1) == stable_hash(True)
        assert stable_hash(0) == stable_hash(False)

    def test_strings_are_seed_independent(self):
        # crc32-based: a fixed value, not PYTHONHASHSEED-dependent.
        assert stable_hash("alpha") == stable_hash("alpha")
        assert stable_hash("alpha") != stable_hash("beta")

    def test_containers_and_null(self):
        assert stable_hash((1, "a")) == stable_hash((1, "a"))
        assert stable_hash(None) == stable_hash(None)


class TestPartitionedTableBasics:
    @pytest.mark.parametrize("parts", [1, 3, 7])
    def test_scan_sees_every_row_exactly_once(self, parts):
        table = Table(_pk_schema(), n_partitions=parts)
        table.insert_many([(i, i % 3, float(i)) for i in range(50)])
        assert table.row_count == 50
        assert sorted(row[0] for row in table.scan()) == list(range(50))

    def test_partition_layout_is_deterministic(self):
        rows = [(i, i % 3, float(i)) for i in range(40)]
        first = Table(_pk_schema(), n_partitions=5)
        second = Table(_pk_schema(), n_partitions=5)
        first.insert_many(rows)
        for row in rows:
            second.insert(row)
        for p_first, p_second in zip(first.partitions, second.partitions):
            assert p_first.rows == p_second.rows

    def test_duplicate_primary_key_detected_across_the_right_partition(self):
        table = Table(_pk_schema(), n_partitions=4)
        table.insert_many([(i, 0, 0.0) for i in range(20)])
        with pytest.raises(IntegrityError, match="duplicate primary key"):
            table.insert((7, 1, 1.0))

    def test_indexed_lookup_matches_scan_at_every_partition_count(self):
        for parts in (1, 2, 5):
            table = Table(_pk_schema(), n_partitions=parts)
            table.create_index("idx_g", "g")
            table.insert_many([(i, i % 4, float(i)) for i in range(60)])
            for needle in range(4):
                via_index = sorted(row[0] for row in table.lookup("g", needle))
                via_scan = sorted(
                    row[0] for row in table.scan() if row[1] == needle
                )
                assert via_index == via_scan

    def test_rows_property_concatenates_partitions(self):
        table = Table(_pk_schema(), n_partitions=3)
        table.insert_many([(i, 0, 0.0) for i in range(9)])
        assert sorted(row[0] for row in table.rows if row is not None) == list(
            range(9)
        )

    def test_invalid_partition_count_rejected(self):
        from repro.relalg import SchemaError

        with pytest.raises(SchemaError, match="n_partitions"):
            Table(_pk_schema(), n_partitions=0)
        with pytest.raises(ValueError, match="n_partitions"):
            Database(n_partitions=0)


class TestPartitionKeys:
    def test_composite_primary_key_partitions_by_key_tuple(self):
        table = Table(_composite_schema(), n_partitions=4)
        rows = [(s, d, float(s + d)) for s in range(6) for d in range(6)]
        table.insert_many(rows)
        assert table.row_count == 36
        assert sorted((r[0], r[1]) for r in table.scan()) == sorted(
            (s, d) for s in range(6) for d in range(6)
        )
        # The same key tuple always lands in the same partition.
        reference = Table(_composite_schema(), n_partitions=4)
        reference.insert_many(rows)
        assert [p.rows for p in table.partitions] == [
            p.rows for p in reference.partitions
        ]
        # Composite keys cannot prune single-column equality probes.
        assert table.partition_column is None

    def test_keyless_table_partitions_by_whole_row_including_nulls(self):
        table = Table(_keyless_schema(), n_partitions=3)
        rows = [("a", 1), (None, 2), ("b", None), (None, None), ("a", 1)]
        table.insert_many(rows)
        assert table.row_count == 5
        assert sorted(
            table.scan(), key=lambda r: (str(r[0]), str(r[1]))
        ) == sorted(rows, key=lambda r: (str(r[0]), str(r[1])))
        # NULL-bearing rows are deletable (the partition is re-derivable).
        deleted = table.delete_where(lambda row: row[0] is None)
        assert deleted == 2
        assert table.row_count == 3

    def test_null_primary_key_rejected_and_leaves_partitions_untouched(self):
        table = Table(_pk_schema(), n_partitions=4)
        table.insert_many([(i, 0, 0.0) for i in range(8)])
        before = [list(p.rows) for p in table.partitions]
        with pytest.raises(IntegrityError, match="must not be NULL"):
            table.insert((None, 1, 1.0))
        assert [list(p.rows) for p in table.partitions] == before


class TestCrossPartitionBatchAtomicity:
    def test_mid_batch_failure_spanning_partitions_inserts_nothing(self):
        table = Table(_pk_schema(), n_partitions=4)
        table.insert((100, 0, 0.0))
        # The batch spreads over all partitions; the last row collides.
        batch = [(i, 1, float(i)) for i in range(20)] + [(100, 1, 1.0)]
        with pytest.raises(IntegrityError, match="duplicate primary key"):
            table.insert_many(batch)
        assert table.row_count == 1
        assert table.dead_count == 0
        assert [len(index) for index in (table.index_for("id"),)] == [1]
        for pid, partition in enumerate(table.partitions):
            live = [row for row in partition.rows if row is not None]
            assert len(live) == partition.live_count
        assert sorted(row[0] for row in table.scan()) == [100]

    def test_mid_batch_validation_failure_spanning_partitions(self):
        table = Table(_pk_schema(), n_partitions=3)
        from repro.relalg import SchemaError

        with pytest.raises(SchemaError):
            table.insert_many([(1, 0, 0.0), (2, 0, 1.0), (3, "bad", 2.0)])
        assert table.row_count == 0
        assert all(not p.rows for p in table.partitions)


class TestPerPartitionCompaction:
    def test_delete_heavy_partition_compacts_independently(self):
        table = Table(_pk_schema(), n_partitions=2)
        table.create_index("idx_g", "g")
        table.insert_many([(i, i % 2, float(i)) for i in range(400)])
        victim = 0
        victim_keys = [
            row[0] for row in table.partitions[victim].scan()
        ]
        doomed = set(victim_keys[: int(len(victim_keys) * 0.9)])
        table.delete_where(lambda row: row[0] in doomed)
        # The victim partition crossed its tombstone threshold and rebuilt;
        # the sibling was never touched.
        assert table.partitions[victim].dead_count == 0
        assert (
            len(table.partitions[victim].rows)
            == table.partitions[victim].live_count
        )
        other = 1 - victim
        assert table.partitions[other].dead_count == 0
        assert sorted(row[0] for row in table.scan()) == sorted(
            set(range(400)) - doomed
        )
        # Indexes survived the partial rebuild.
        assert sorted(row[0] for row in table.lookup("g", 0)) == sorted(
            i for i in range(0, 400, 2) if i not in doomed
        )

    def test_spread_deletes_stay_below_per_partition_threshold(self):
        # 120 tombstones spread over 4 partitions (~30 each) stay below the
        # per-partition floor of 64: no partition compacts on its own.
        table = Table(_pk_schema(), n_partitions=4)
        table.insert_many([(i, 0, 0.0) for i in range(240)])
        table.delete_where(lambda row: row[0] < 120)
        assert table.row_count == 120
        assert table.dead_count == 120
        assert table.compact() == 120
        assert table.dead_count == 0


class TestStatistics:
    def test_row_counts_and_distinct_estimates(self):
        table = Table(_pk_schema(), n_partitions=4)
        table.create_index("idx_g", "g")
        table.insert_many([(i, i % 5, float(i)) for i in range(100)])
        statistics = table.statistics()
        assert statistics.row_count == 100
        assert sum(statistics.partition_rows) == 100
        assert len(statistics.partition_rows) == 4
        # The PK is the partition key: shards are disjoint, the sum is exact.
        assert statistics.distinct_for("id") == 100
        # Secondary indexes estimate via the per-partition maximum (a lower
        # bound on the true distinct count — summing shards would over-count
        # keys that appear in several partitions and make probes look
        # cheaper than they are).  All 5 group values land in every shard
        # here, so the estimate is exact.
        assert statistics.distinct_for("g") == 5

    def test_statistics_track_dml_and_staleness(self):
        table = Table(_pk_schema())
        table.create_index("idx_g", "g")
        table.insert_many([(i, i % 5, float(i)) for i in range(100)])
        snapshot = table.statistics()
        table.delete_where(lambda row: row[1] != 0)  # DELETE-heavy: 80 rows
        fresh = table.statistics()
        # The old snapshot is stale and says so via the mutation counter.
        assert snapshot.row_count == 100
        assert fresh.row_count == 20
        assert fresh.mutations == snapshot.mutations + 80
        assert table.mutations == fresh.mutations
        # Distinct estimates follow the live index buckets through deletes
        # (and any compaction they triggered).
        assert fresh.distinct_for("g") == 1
        assert fresh.distinct_for("id") == 20

    def test_planner_estimates_follow_statistics(self):
        from repro.relalg import parse_sql, plan_select

        db = Database(n_partitions=2)
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, g INTEGER)")
        db.executemany(
            "INSERT INTO t (id, g) VALUES (?, ?)", [(i, i % 4) for i in range(80)]
        )
        plan = plan_select(parse_sql("SELECT * FROM t WHERE id = 3"), db.tables)
        (level,) = plan.describe()
        assert level["pruned"] is True
        assert level["partitions"] == 2
        # 80 rows / 80 distinct keys.
        assert level["estimated_rows"] == 1.0


class TestPartitionPruning:
    @pytest.fixture()
    def db(self):
        db = Database(n_partitions=4)
        db.execute(
            "CREATE TABLE m (id INTEGER PRIMARY KEY, g INTEGER, x FLOAT)"
        )
        db.executemany(
            "INSERT INTO m (id, g, x) VALUES (?, ?, ?)",
            [(i, i % 3, float(i)) for i in range(64)],
        )
        return db

    def test_pk_equality_touches_exactly_one_partition(self, db):
        result = db.query("SELECT * FROM m WHERE id = ?", [17])
        assert result.rows == [(17, 2, 17.0)]
        assert result.stats.index_lookups == 1
        assert result.stats.rows_scanned == 1
        # All scan work was attributed to a single partition.
        assert len(result.stats.partition_rows_scanned) == 1
        (pid,) = result.stats.partition_rows_scanned
        assert pid == db.table("m").partition_of_key(17)

    def test_full_scan_touches_every_nonempty_partition(self, db):
        result = db.query("SELECT COUNT(*) FROM m")
        assert result.scalar() == 64
        assert result.stats.rows_scanned == 64
        assert sum(result.stats.partition_rows_scanned.values()) == 64
        assert len(result.stats.partition_rows_scanned) == 4

    def test_secondary_index_probe_is_not_pruned(self, db):
        from repro.relalg import parse_sql, plan_select

        db.execute("CREATE INDEX idx_g ON m (g)")
        plan = plan_select(parse_sql("SELECT id FROM m WHERE g = 1"), db.tables)
        (level,) = plan.describe()
        assert level["access"] == "index-probe"
        assert level["pruned"] is False
        result = db.query("SELECT id FROM m WHERE g = ?", [1])
        assert sorted(row[0] for row in result) == [
            i for i in range(64) if i % 3 == 1
        ]

    def test_explain_reports_pruning(self, db):
        text = db.explain("SELECT * FROM m WHERE id = 3")
        assert "index-probe on id" in text
        assert "1 of 4 partition(s) [pruned]" in text

    def test_explain_rejects_non_select(self, db):
        with pytest.raises(ExecutionError, match="SELECT"):
            db.explain("DELETE FROM m")


class TestParallelExecution:
    def _make(self, **kwargs):
        db = Database(n_partitions=4, **kwargs)
        db.execute(
            "CREATE TABLE m (id INTEGER PRIMARY KEY, g INTEGER, x FLOAT)"
        )
        db.execute("CREATE TABLE r (id INTEGER PRIMARY KEY, m_id INTEGER)")
        db.executemany(
            "INSERT INTO m (id, g, x) VALUES (?, ?, ?)",
            [(i, i % 5, float(i)) for i in range(100)],
        )
        db.executemany(
            "INSERT INTO r (id, m_id) VALUES (?, ?)",
            [(i, (i * 7) % 100) for i in range(40)],
        )
        return db

    @pytest.mark.parametrize("executor", ["thread", "process"])
    @pytest.mark.parametrize(
        "sql, params",
        [
            ("SELECT id, g FROM m WHERE g = ? ORDER BY id", [2]),
            ("SELECT COUNT(*), SUM(x) FROM m WHERE x > ?", [10.0]),
            (
                "SELECT m.id, r.id FROM m, r WHERE m.g = r.m_id "
                "ORDER BY m.id, r.id",
                [],
            ),
        ],
    )
    def test_parallel_matches_sequential(self, sql, params, executor, process_pool):
        kwargs = (
            {"parallel": 3} if executor == "thread"
            else {"executor": process_pool}
        )
        sequential = self._make()
        with self._make(**kwargs) as parallel:
            expected = sequential.query(sql, params)
            got = parallel.query(sql, params)
            assert got.columns == expected.columns
            assert got.rows == expected.rows
            assert got.stats.rows_scanned == expected.stats.rows_scanned
            assert (
                got.stats.partition_rows_scanned
                == expected.stats.partition_rows_scanned
            )

    def test_parallel_validation(self):
        with pytest.raises(ExecutionError, match="parallel"):
            Database(parallel=1)
        with pytest.raises(ExecutionError, match="parallel"):
            Database(parallel="2")
        with pytest.raises(ExecutionError, match="parallel"):
            Database(parallel=True)
        with Database(parallel=2) as db:
            db.close()  # idempotent even if the pool was never created

    def test_vectorized_chunk_size_validation(self):
        with pytest.raises(ExecutionError, match="vectorized_chunk_size"):
            Database(vectorized_chunk_size=0)
        with pytest.raises(ExecutionError, match="vectorized_chunk_size"):
            Database(vectorized_chunk_size=-5)
        with pytest.raises(ExecutionError, match="vectorized_chunk_size"):
            Database(vectorized_chunk_size="1024")
        with pytest.raises(ExecutionError, match="vectorized_chunk_size"):
            Database(vectorized_chunk_size=True)
        with Database(vectorized_chunk_size=1) as db:
            db.execute("CREATE TABLE t (id INTEGER)")
            db.execute("INSERT INTO t VALUES (1)")
            assert db.query("SELECT COUNT(*) FROM t").scalar() == 1


class TestBackendPartitionCharging:
    def test_effective_scan_rows_makespan(self):
        simulated = backend("oracle7", n_partitions=4, parallelism=2)
        # 4 partitions with 10 rows each over 2 workers: makespan 20.
        assert simulated._effective_scan_rows(
            {0: 10, 1: 10, 2: 10, 3: 10}, 40
        ) == 20
        # A dominant partition bounds the makespan from below.
        assert simulated._effective_scan_rows({0: 30, 1: 2}, 32) == 30
        # Unattributed (serial) work is added on top.
        assert simulated._effective_scan_rows({0: 10, 1: 10}, 25) == 15
        # Serial backends charge the plain total.
        serial = backend("oracle7")
        assert serial._effective_scan_rows({0: 10, 1: 10}, 20) == 20

    def test_parallel_backend_charges_less_for_partitioned_scans(self):
        rows = [(i, i % 3, float(i)) for i in range(400)]
        serial = backend("oracle7", n_partitions=4)
        fanout = backend("oracle7", n_partitions=4, parallelism=4)
        for simulated in (serial, fanout):
            simulated.execute(
                "CREATE TABLE t (id INTEGER PRIMARY KEY, g INTEGER, x FLOAT)"
            )
            simulated.executemany(
                "INSERT INTO t (id, g, x) VALUES (?, ?, ?)", rows
            )
            simulated.reset_clock()
            result = simulated.query("SELECT COUNT(*) FROM t WHERE g = 1")
            assert result.scalar() == len([r for r in rows if r[1] == 1])
        assert fanout.elapsed < serial.elapsed
        # Pruned point probes cost the same either way: one row each.
        serial.reset_clock()
        fanout.reset_clock()
        serial.query("SELECT * FROM t WHERE id = 7")
        fanout.query("SELECT * FROM t WHERE id = 7")
        assert fanout.elapsed == pytest.approx(serial.elapsed)

    def test_backend_parallelism_validation(self):
        with pytest.raises(ValueError, match="parallelism"):
            backend("oracle7", parallelism=0)
