"""Tests of the pretty-printer and of the bundled COSY specification."""

import pytest

from repro.asl import (
    check_asl,
    parse_asl,
    parse_expression,
    unparse,
    unparse_expr,
)
from repro.asl.specs import (
    COSY_DATA_MODEL,
    COSY_PROPERTIES,
    COSY_PROPERTY_NAMES,
    cosy_specification,
)
from repro.asl.types import ClassType, SetType
from repro.datamodel import NUM_TIMING_TYPES, TimingType


class TestUnparseExpressions:
    @pytest.mark.parametrize(
        "source",
        [
            "1 + 2 * 3",
            "(1 + 2) * 3",
            "a.b.c",
            "Duration(r, t) - Duration(r, s)",
            "SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run == t AND tt.Type == Barrier)",
            "UNIQUE({s IN r.TotTimes WITH s.Run == t}).Incl",
            "MIN(s.Run.NoPe WHERE s IN r.TotTimes)",
            "NOT a > 1 AND b < 2",
            "-x / (y + 1)",
            "{c IN Call.Sums WITH c.Run == t}",
        ],
    )
    def test_round_trip_is_stable(self, source):
        once = unparse_expr(parse_expression(source))
        twice = unparse_expr(parse_expression(once))
        assert once == twice

    def test_parentheses_are_preserved_semantically(self):
        expr = parse_expression("(1 + 2) * 3")
        assert unparse_expr(expr) == "(1 + 2) * 3"

    def test_needless_parentheses_are_dropped(self):
        expr = parse_expression("(((1))) + 2")
        assert unparse_expr(expr) == "1 + 2"


class TestUnparseDeclarations:
    def test_document_round_trip(self):
        source = """
        enum TimingType { Barrier, IORead };
        class Region { Region ParentRegion; setof TotalTiming TotTimes; }
        class TotalTiming { float Incl; }
        constant float Threshold = 0.25;
        float Duration(Region r) = UNIQUE({s IN r.TotTimes}).Incl;
        Property P(Region r) {
            LET float D = Duration(r)
            IN
            CONDITION: (c1) D > Threshold;
            CONFIDENCE: MAX((c1) -> 1);
            SEVERITY: (c1) -> D;
        };
        """
        once = unparse(parse_asl(source))
        twice = unparse(parse_asl(once))
        assert once == twice

    def test_cosy_documents_round_trip(self):
        for document in (COSY_DATA_MODEL, COSY_PROPERTIES):
            once = unparse(parse_asl(document))
            twice = unparse(parse_asl(once))
            assert once == twice


class TestBundledSpecification:
    def test_specification_checks(self):
        checked = cosy_specification()
        assert set(COSY_PROPERTY_NAMES) <= set(checked.index.properties)

    def test_data_model_matches_the_paper_classes(self):
        checked = cosy_specification()
        assert set(checked.index.classes) == {
            "Program", "ProgVersion", "TestRun", "Function", "Region",
            "TotalTiming", "TypedTiming", "FunctionCall", "CallTiming",
        }

    def test_paper_attribute_names(self):
        checked = cosy_specification()
        region = checked.index.classes["Region"]
        assert set(region.attributes) == {"ParentRegion", "TotTimes", "TypTimes"}
        total = checked.index.classes["TotalTiming"]
        assert set(total.attributes) == {"Run", "Excl", "Incl", "Ovhd"}
        run = checked.index.classes["TestRun"]
        assert set(run.attributes) == {"Start", "NoPe", "Clockspeed"}

    def test_timing_type_enum_matches_the_runtime_enum(self):
        checked = cosy_specification()
        members = checked.index.enums["TimingType"].members
        assert len(members) == NUM_TIMING_TYPES == 25
        assert set(members) == {t.value for t in TimingType}

    def test_collection_attributes_have_set_types(self):
        checked = cosy_specification()
        tot_times = checked.index.attribute_type("Region", "TotTimes")
        assert tot_times == SetType(element=ClassType("TotalTiming"))

    def test_paper_properties_take_the_paper_parameters(self):
        checked = cosy_specification()
        sublinear = checked.index.properties["SublinearSpeedup"]
        assert [(p.type.name, p.name) for p in sublinear.params] == [
            ("Region", "r"), ("TestRun", "t"), ("Region", "Basis"),
        ]
        imbalance = checked.index.properties["LoadImbalance"]
        assert imbalance.params[0].type.name == "FunctionCall"

    def test_helper_functions_are_defined(self):
        checked = cosy_specification()
        assert {"Summary", "Duration", "MinPeSummary", "TypedCost"} <= set(
            checked.index.functions
        )

    def test_imbalance_threshold_constant_is_declared(self):
        checked = cosy_specification()
        assert "ImbalanceThreshold" in checked.index.constants
