"""Tests of the SQL parser, the executor and the database facade."""

import datetime as dt

import pytest
from hypothesis import given, settings, strategies as st

from repro.relalg import (
    Database,
    ExecutionError,
    IntegrityError,
    ResultSet,
    SchemaError,
    SqlSyntaxError,
    parse_sql,
)
from repro.relalg.sqlast import (
    BinaryOperation,
    BinaryOperator,
    CreateTableStatement,
    InsertStatement,
    ScalarSubquery,
    SelectStatement,
)


@pytest.fixture()
def db():
    """A small two-table database mirroring the COSY timing tables."""
    database = Database()
    database.execute(
        "CREATE TABLE TestRun (id INTEGER PRIMARY KEY, NoPe INTEGER, Clockspeed INTEGER)"
    )
    database.execute(
        "CREATE TABLE TotalTiming (id INTEGER PRIMARY KEY, region_id INTEGER, "
        "run_id INTEGER, Incl FLOAT, Ovhd FLOAT)"
    )
    runs = [(1, 2, 300), (2, 4, 300), (3, 8, 300)]
    database.executemany("INSERT INTO TestRun (id, NoPe, Clockspeed) VALUES (?, ?, ?)", runs)
    timings = [
        (1, 10, 1, 10.0, 1.0),
        (2, 10, 2, 12.0, 2.0),
        (3, 10, 3, 16.0, 6.0),
        (4, 20, 1, 5.0, 0.5),
        (5, 20, 3, 9.0, 3.0),
    ]
    database.executemany(
        "INSERT INTO TotalTiming (id, region_id, run_id, Incl, Ovhd) VALUES (?, ?, ?, ?, ?)",
        timings,
    )
    return database


class TestSqlParser:
    def test_create_table_statement(self):
        statement = parse_sql(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR NOT NULL, x FLOAT)"
        )
        assert isinstance(statement, CreateTableStatement)
        assert [c.name for c in statement.columns] == ["id", "name", "x"]
        assert statement.columns[0].primary_key
        assert not statement.columns[1].nullable

    def test_insert_with_placeholders(self):
        statement = parse_sql("INSERT INTO t (a, b) VALUES (?, ?)")
        assert isinstance(statement, InsertStatement)
        assert statement.columns == ["a", "b"]
        assert len(statement.rows[0]) == 2

    def test_multi_row_insert(self):
        statement = parse_sql("INSERT INTO t (a) VALUES (1), (2), (3)")
        assert len(statement.rows) == 3

    def test_select_with_everything(self):
        statement = parse_sql(
            "SELECT r.NoPe, SUM(t.Incl) AS total FROM TotalTiming t "
            "JOIN TestRun r ON t.run_id = r.id "
            "WHERE t.region_id = 10 GROUP BY r.NoPe HAVING SUM(t.Incl) > 5 "
            "ORDER BY total DESC LIMIT 2"
        )
        assert isinstance(statement, SelectStatement)
        assert statement.joins[0].table.name == "TestRun"
        assert statement.group_by and statement.having is not None
        assert statement.order_by[0].ascending is False
        assert statement.limit == 2
        assert statement.is_aggregate_query

    def test_scalar_subquery(self):
        statement = parse_sql(
            "SELECT Incl FROM TotalTiming WHERE run_id = (SELECT MIN(id) FROM TestRun)"
        )
        assert isinstance(statement.where, BinaryOperation)
        assert isinstance(statement.where.right, ScalarSubquery)

    def test_string_literals_with_quotes(self):
        statement = parse_sql("SELECT * FROM t WHERE name = 'O''Brien'")
        assert statement.where.right.value == "O'Brien"

    def test_syntax_errors_are_reported_with_position(self):
        with pytest.raises(SqlSyntaxError, match="expected"):
            parse_sql("SELECT FROM t")
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELEC * FROM t")
        with pytest.raises(SqlSyntaxError, match="unexpected character"):
            parse_sql("SELECT # FROM t")
        with pytest.raises(SqlSyntaxError, match="unterminated string"):
            parse_sql("SELECT 'oops FROM t")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError, match="trailing"):
            parse_sql("SELECT * FROM t garbage extra")


class TestSelectExecution:
    def test_simple_projection_and_filter(self, db):
        result = db.query("SELECT Incl FROM TotalTiming WHERE region_id = 10")
        assert sorted(row[0] for row in result) == [10.0, 12.0, 16.0]

    def test_select_star(self, db):
        result = db.query("SELECT * FROM TestRun")
        assert result.columns == ["id", "NoPe", "Clockspeed"]
        assert len(result) == 3

    def test_parameterised_query(self, db):
        result = db.query(
            "SELECT Incl FROM TotalTiming WHERE region_id = ? AND run_id = ?", [10, 3]
        )
        assert result.scalar() == 16.0

    def test_join_via_on_clause(self, db):
        result = db.query(
            "SELECT r.NoPe, t.Incl FROM TotalTiming t JOIN TestRun r ON t.run_id = r.id "
            "WHERE t.region_id = 10 ORDER BY r.NoPe"
        )
        assert result.rows == [(2, 10.0), (4, 12.0), (8, 16.0)]

    def test_implicit_join_with_where(self, db):
        result = db.query(
            "SELECT r.NoPe FROM TotalTiming t, TestRun r "
            "WHERE t.run_id = r.id AND t.Incl = 9.0"
        )
        assert result.scalar() == 8

    def test_aggregates_without_group_by(self, db):
        result = db.query("SELECT COUNT(*), SUM(Incl), MIN(Incl), MAX(Incl), AVG(Ovhd) "
                          "FROM TotalTiming WHERE region_id = 10")
        assert result.rows[0] == (3, 38.0, 10.0, 16.0, pytest.approx(3.0))

    def test_group_by_and_having(self, db):
        result = db.query(
            "SELECT region_id, SUM(Incl) AS total FROM TotalTiming "
            "GROUP BY region_id HAVING SUM(Incl) > 20 ORDER BY total DESC"
        )
        assert result.rows == [(10, 38.0)]

    def test_order_by_and_limit(self, db):
        result = db.query("SELECT Incl FROM TotalTiming ORDER BY Incl DESC LIMIT 2")
        assert [row[0] for row in result] == [16.0, 12.0]

    def test_distinct(self, db):
        result = db.query("SELECT DISTINCT region_id FROM TotalTiming ORDER BY region_id")
        assert [row[0] for row in result] == [10, 20]

    def test_scalar_subquery_in_where(self, db):
        result = db.query(
            "SELECT Incl FROM TotalTiming WHERE region_id = 10 AND run_id = "
            "(SELECT id FROM TestRun WHERE NoPe = (SELECT MIN(NoPe) FROM TestRun))"
        )
        assert result.scalar() == 10.0

    def test_scalar_subquery_in_select_list(self, db):
        db.execute("CREATE TABLE dual (one INTEGER)")
        db.execute("INSERT INTO dual (one) VALUES (1)")
        result = db.query(
            "SELECT (SELECT SUM(Incl) FROM TotalTiming WHERE region_id = ?) - "
            "(SELECT SUM(Incl) FROM TotalTiming WHERE region_id = ?) AS diff FROM dual",
            [10, 20],
        )
        assert result.scalar() == pytest.approx(38.0 - 14.0)

    def test_arithmetic_and_comparison_in_where(self, db):
        result = db.query(
            "SELECT Incl FROM TotalTiming WHERE Incl - Ovhd > 9 AND region_id = 10"
        )
        assert sorted(row[0] for row in result) == [12.0, 16.0]

    def test_in_list_and_is_null(self, db):
        db.execute("INSERT INTO TotalTiming (id, region_id, run_id, Incl, Ovhd) "
                   "VALUES (99, 30, NULL, NULL, NULL)")
        result = db.query("SELECT id FROM TotalTiming WHERE run_id IS NULL")
        assert result.scalar() == 99
        result = db.query(
            "SELECT COUNT(*) FROM TotalTiming WHERE region_id IN (10, 30)"
        )
        assert result.scalar() == 4

    def test_not_and_boolean_logic(self, db):
        result = db.query(
            "SELECT COUNT(*) FROM TotalTiming WHERE NOT region_id = 10 AND Incl > 4"
        )
        assert result.scalar() == 2

    def test_count_distinct(self, db):
        result = db.query("SELECT COUNT(DISTINCT region_id) FROM TotalTiming")
        assert result.scalar() == 2

    def test_division_by_zero_is_reported(self, db):
        with pytest.raises(ExecutionError, match="division by zero"):
            db.query("SELECT Incl / 0 FROM TotalTiming")

    def test_unknown_table_and_column_errors(self, db):
        with pytest.raises(SchemaError, match="unknown table"):
            db.query("SELECT * FROM Missing")
        with pytest.raises(ExecutionError, match="unknown column"):
            db.query("SELECT bogus_column FROM TestRun")

    def test_ambiguous_column_is_reported(self, db):
        with pytest.raises(ExecutionError, match="ambiguous"):
            db.query("SELECT id FROM TestRun r, TotalTiming t WHERE t.run_id = r.id")

    def test_result_set_helpers(self, db):
        result = db.query("SELECT id, NoPe FROM TestRun ORDER BY NoPe")
        assert result.column("nope") == [2, 4, 8]
        assert result.as_dicts()[0] == {"id": 1, "NoPe": 2}
        with pytest.raises(ExecutionError):
            result.scalar()

    def test_index_is_used_for_equality_probe(self, db):
        db.execute("CREATE INDEX idx_region ON TotalTiming (region_id)")
        before = db.summary.rows_scanned
        db.query("SELECT Incl FROM TotalTiming WHERE region_id = ?", [20])
        scanned = db.summary.rows_scanned - before
        assert scanned == 2  # only the two rows of region 20, not all five

    def test_null_comparison_is_falsy(self, db):
        db.execute("INSERT INTO TotalTiming (id, region_id, run_id, Incl, Ovhd) "
                   "VALUES (50, 40, 1, NULL, 0.0)")
        result = db.query("SELECT COUNT(*) FROM TotalTiming WHERE Incl > 0")
        assert result.scalar() == 5  # the NULL row does not match


class TestDmlAndDdl:
    def test_insert_without_column_list(self, db):
        affected = db.execute("INSERT INTO TestRun VALUES (4, 16, 300)")
        assert affected == 1
        assert db.query("SELECT COUNT(*) FROM TestRun").scalar() == 4

    def test_insert_arity_mismatch(self, db):
        with pytest.raises(ExecutionError, match="column"):
            db.execute("INSERT INTO TestRun (id, NoPe) VALUES (9, 2, 3)")

    def test_delete_with_where(self, db):
        deleted = db.execute("DELETE FROM TotalTiming WHERE region_id = 20")
        assert deleted == 2
        assert db.query("SELECT COUNT(*) FROM TotalTiming").scalar() == 3

    def test_delete_all(self, db):
        assert db.execute("DELETE FROM TotalTiming") == 5

    def test_drop_table(self, db):
        db.execute("DROP TABLE TotalTiming")
        with pytest.raises(SchemaError):
            db.query("SELECT * FROM TotalTiming")
        db.execute("DROP TABLE IF EXISTS TotalTiming")
        with pytest.raises(SchemaError):
            db.execute("DROP TABLE TotalTiming")

    def test_create_table_if_not_exists(self, db):
        db.execute("CREATE TABLE IF NOT EXISTS TestRun (id INTEGER)")
        with pytest.raises(SchemaError, match="already exists"):
            db.execute("CREATE TABLE TestRun (id INTEGER)")

    def test_duplicate_primary_key_through_sql(self, db):
        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO TestRun (id, NoPe, Clockspeed) VALUES (1, 2, 300)")

    def test_query_requires_select(self, db):
        with pytest.raises(ExecutionError, match="SELECT"):
            db.query("DELETE FROM TestRun")

    def test_execution_summary_counts(self, db):
        db.query("SELECT * FROM TestRun")
        summary = db.summary
        assert summary.selects >= 1
        assert summary.inserts >= 2
        assert summary.rows_inserted == 8
        assert db.total_rows() == 8
        assert db.row_counts()["TestRun"] == 3


class TestAggregateSemanticsAgainstPython:
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_sum_min_max_avg_match_python(self, values):
        database = Database()
        database.execute("CREATE TABLE v (id INTEGER PRIMARY KEY, x FLOAT)")
        database.executemany(
            "INSERT INTO v (id, x) VALUES (?, ?)",
            [(i + 1, value) for i, value in enumerate(values)],
        )
        result = database.query("SELECT SUM(x), MIN(x), MAX(x), AVG(x), COUNT(*) FROM v")
        total, minimum, maximum, average, count = result.rows[0]
        assert total == pytest.approx(sum(values), rel=1e-9, abs=1e-6)
        assert minimum == min(values)
        assert maximum == max(values)
        assert average == pytest.approx(sum(values) / len(values), rel=1e-9, abs=1e-6)
        assert count == len(values)

    @given(
        pairs=st.lists(
            st.tuples(st.integers(min_value=0, max_value=4),
                      st.integers(min_value=-100, max_value=100)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_group_by_matches_python(self, pairs):
        database = Database()
        database.execute("CREATE TABLE v (id INTEGER PRIMARY KEY, g INTEGER, x INTEGER)")
        database.executemany(
            "INSERT INTO v (id, g, x) VALUES (?, ?, ?)",
            [(i + 1, g, x) for i, (g, x) in enumerate(pairs)],
        )
        result = database.query("SELECT g, SUM(x) FROM v GROUP BY g ORDER BY g")
        expected = {}
        for g, x in pairs:
            expected[g] = expected.get(g, 0) + x
        assert result.rows == [(g, expected[g]) for g in sorted(expected)]
