"""Tests of the COSY data-model entity classes."""

import datetime as dt

import pytest

from repro.datamodel import (
    CallTiming,
    DataModelError,
    Function,
    FunctionCall,
    Program,
    ProgVersion,
    Region,
    RegionKind,
    SourceCode,
    TestRun,
    TimingType,
    TotalTiming,
    TypedTiming,
)


def make_run(nope=4, clock=300):
    return TestRun(Start=dt.datetime(2000, 1, 17, 9, 0), NoPe=nope, Clockspeed=clock)


class TestTestRun:
    def test_valid_run(self):
        run = make_run(8)
        assert run.NoPe == 8
        assert run.Clockspeed == 300

    def test_rejects_non_positive_pe_count(self):
        with pytest.raises(DataModelError, match="NoPe"):
            make_run(0)

    def test_rejects_non_positive_clockspeed(self):
        with pytest.raises(DataModelError, match="Clockspeed"):
            make_run(4, clock=0)

    def test_runs_are_identified_by_uid(self):
        a, b = make_run(4), make_run(4)
        assert a != b
        assert a == a
        assert len({a, b}) == 2


class TestTotalTiming:
    def test_inclusive_must_cover_exclusive(self):
        run = make_run()
        with pytest.raises(DataModelError, match="Incl"):
            TotalTiming(Run=run, Excl=5.0, Incl=4.0, Ovhd=0.0)

    def test_negative_times_rejected(self):
        run = make_run()
        with pytest.raises(DataModelError):
            TotalTiming(Run=run, Excl=-1.0, Incl=1.0, Ovhd=0.0)

    def test_valid_timing(self):
        run = make_run()
        timing = TotalTiming(Run=run, Excl=2.0, Incl=3.0, Ovhd=0.5)
        assert timing.Incl == 3.0


class TestTypedTiming:
    def test_requires_timing_type(self):
        run = make_run()
        with pytest.raises(DataModelError, match="TimingType"):
            TypedTiming(Run=run, Type="Barrier", Time=1.0)  # type: ignore[arg-type]

    def test_negative_time_rejected(self):
        run = make_run()
        with pytest.raises(DataModelError):
            TypedTiming(Run=run, Type=TimingType.Barrier, Time=-0.1)


class TestCallTiming:
    def test_min_must_not_exceed_max(self):
        run = make_run()
        with pytest.raises(DataModelError, match="MinTime"):
            CallTiming(
                Run=run,
                MinCalls=1, MaxCalls=2, MeanCalls=1.5, StdevCalls=0.1,
                MinTime=2.0, MaxTime=1.0, MeanTime=1.5, StdevTime=0.1,
            )

    def test_imbalance_ratio(self):
        run = make_run()
        timing = CallTiming(
            Run=run,
            MinCalls=1, MaxCalls=1, MeanCalls=1, StdevCalls=0,
            MinTime=0.5, MaxTime=1.5, MeanTime=1.0, StdevTime=0.5,
        )
        assert timing.imbalance_ratio == pytest.approx(0.5)

    def test_imbalance_ratio_is_zero_for_zero_mean(self):
        run = make_run()
        timing = CallTiming(
            Run=run,
            MinCalls=0, MaxCalls=0, MeanCalls=0, StdevCalls=0,
            MinTime=0, MaxTime=0, MeanTime=0, StdevTime=0,
        )
        assert timing.imbalance_ratio == 0.0


class TestRegion:
    def test_duplicate_total_timing_for_same_run_rejected(self):
        region = Region(name="loop")
        run = make_run()
        region.add_total_timing(TotalTiming(Run=run, Excl=1, Incl=1, Ovhd=0))
        with pytest.raises(DataModelError, match="already has a TotalTiming"):
            region.add_total_timing(TotalTiming(Run=run, Excl=2, Incl=2, Ovhd=0))

    def test_duplicate_typed_timing_for_same_run_and_type_rejected(self):
        region = Region(name="loop")
        run = make_run()
        region.add_typed_timing(TypedTiming(Run=run, Type=TimingType.Barrier, Time=1))
        with pytest.raises(DataModelError, match="already has a TypedTiming"):
            region.add_typed_timing(
                TypedTiming(Run=run, Type=TimingType.Barrier, Time=2)
            )

    def test_same_type_different_runs_is_allowed(self):
        region = Region(name="loop")
        run_a, run_b = make_run(2), make_run(4)
        region.add_typed_timing(TypedTiming(Run=run_a, Type=TimingType.Barrier, Time=1))
        region.add_typed_timing(TypedTiming(Run=run_b, Type=TimingType.Barrier, Time=2))
        assert region.typed_time(run_b, TimingType.Barrier) == 2

    def test_summary_returns_the_unique_total_timing(self):
        region = Region(name="loop")
        run = make_run()
        timing = TotalTiming(Run=run, Excl=1, Incl=4, Ovhd=0.5)
        region.add_total_timing(timing)
        assert region.summary(run) is timing
        assert region.duration(run) == 4
        assert region.overhead(run) == 0.5

    def test_summary_of_unknown_run_raises(self):
        region = Region(name="loop")
        with pytest.raises(DataModelError, match="expected exactly one"):
            region.summary(make_run())

    def test_typed_time_defaults_to_zero(self):
        region = Region(name="loop")
        assert region.typed_time(make_run(), TimingType.IOWrite) == 0.0

    def test_ancestors_and_depth(self):
        root = Region(name="main", kind=RegionKind.PROGRAM)
        loop = Region(name="loop", ParentRegion=root)
        block = Region(name="block", ParentRegion=loop)
        assert [r.name for r in block.ancestors()] == ["loop", "main"]
        assert block.depth() == 2
        assert root.depth() == 0

    def test_ancestor_cycle_detection(self):
        a = Region(name="a")
        b = Region(name="b", ParentRegion=a)
        a.ParentRegion = b
        with pytest.raises(DataModelError, match="cycle"):
            list(a.ancestors())


class TestFunctionAndCalls:
    def test_add_region_registers_children(self):
        function = Function(Name="solve")
        body = function.add_region(Region(name="body", kind=RegionKind.SUBPROGRAM))
        loop = function.add_region(Region(name="loop", ParentRegion=body))
        assert loop in body.children
        assert function.body_region is body

    def test_region_by_name(self):
        function = Function(Name="solve")
        function.add_region(Region(name="body"))
        assert function.region_by_name("body").name == "body"
        with pytest.raises(KeyError):
            function.region_by_name("missing")

    def test_body_region_requires_a_root(self):
        function = Function(Name="empty")
        with pytest.raises(DataModelError, match="no root region"):
            _ = function.body_region

    def test_call_timing_uniqueness_per_run(self):
        function = Function(Name="solve")
        region = function.add_region(Region(name="body"))
        call = FunctionCall(Caller=function, CallingReg=region, callee_name="barrier")
        run = make_run()
        timing = CallTiming(
            Run=run, MinCalls=1, MaxCalls=1, MeanCalls=1, StdevCalls=0,
            MinTime=0.1, MaxTime=0.2, MeanTime=0.15, StdevTime=0.05,
        )
        call.add_call_timing(timing)
        with pytest.raises(DataModelError, match="already has a CallTiming"):
            call.add_call_timing(timing)
        assert call.timing_for(run) is timing


class TestProgramAndVersion:
    def test_duplicate_function_names_rejected(self):
        version = ProgVersion(Compilation=dt.datetime(2000, 1, 1))
        version.add_function(Function(Name="main"))
        with pytest.raises(DataModelError, match="already has a function"):
            version.add_function(Function(Name="main"))

    def test_smallest_run_is_the_reference(self):
        version = ProgVersion(Compilation=dt.datetime(2000, 1, 1))
        version.add_run(make_run(8))
        version.add_run(make_run(2))
        version.add_run(make_run(16))
        assert version.smallest_run().NoPe == 2

    def test_smallest_run_requires_runs(self):
        version = ProgVersion(Compilation=dt.datetime(2000, 1, 1))
        with pytest.raises(DataModelError, match="no test runs"):
            version.smallest_run()

    def test_run_with_pes(self):
        version = ProgVersion(Compilation=dt.datetime(2000, 1, 1))
        version.add_run(make_run(4))
        assert version.run_with_pes(4).NoPe == 4
        with pytest.raises(KeyError):
            version.run_with_pes(64)

    def test_main_region_prefers_program_kind(self):
        version = ProgVersion(Compilation=dt.datetime(2000, 1, 1))
        helper = version.add_function(Function(Name="helper"))
        helper.add_region(Region(name="helper_body", kind=RegionKind.SUBPROGRAM))
        main = version.add_function(Function(Name="main"))
        program_region = main.add_region(Region(name="main_body", kind=RegionKind.PROGRAM))
        assert version.main_region is program_region

    def test_latest_version_by_compilation_time(self):
        program = Program(Name="app")
        old = program.add_version(ProgVersion(Compilation=dt.datetime(1999, 1, 1), label="v1"))
        new = program.add_version(ProgVersion(Compilation=dt.datetime(2000, 1, 1), label="v2"))
        assert program.latest_version() is new
        assert program.version_by_label("v1") is old
        with pytest.raises(KeyError):
            program.version_by_label("v9")

    def test_latest_version_requires_versions(self):
        with pytest.raises(DataModelError):
            Program(Name="empty").latest_version()


class TestSourceCode:
    def test_line_lookup(self):
        code = SourceCode()
        code.add_file("a.f90", "line one\nline two\n")
        assert code.line("a.f90", 2) == "line two"
        assert code.total_lines == 2
