"""Tests of the ASL scope, symbol index and type-system helpers."""

import pytest

from repro.asl import Scope, SpecificationIndex
from repro.asl.ast_nodes import EnumDecl
from repro.asl.errors import AslNameError
from repro.asl.types import (
    ANY,
    BOOL,
    DATETIME,
    FLOAT,
    INT,
    STRING,
    ClassType,
    EnumType,
    ScalarKind,
    ScalarType,
    SetType,
    common_numeric,
    is_assignable,
    is_numeric,
)


class TestScope:
    def test_define_and_lookup(self):
        scope = Scope()
        scope.define("x", 1)
        assert scope.lookup("x") == 1
        assert "x" in scope
        assert scope.lookup("y") is None

    def test_redefinition_in_same_scope_fails(self):
        scope = Scope()
        scope.define("x", 1)
        with pytest.raises(AslNameError, match="already defined"):
            scope.define("x", 2)

    def test_child_scopes_shadow_but_do_not_leak(self):
        outer = Scope()
        outer.define("x", "outer")
        inner = outer.child()
        inner.define("x", "inner")
        assert inner.lookup("x") == "inner"
        assert outer.lookup("x") == "outer"
        inner.define("y", 2)
        assert outer.lookup("y") is None

    def test_assign_rebinds_nearest_definition(self):
        outer = Scope()
        outer.define("x", 1)
        inner = outer.child()
        inner.assign("x", 5)
        assert outer.lookup("x") == 5
        inner.assign("fresh", 7)
        assert inner.lookup("fresh") == 7

    def test_names_lists_visible_bindings(self):
        outer = Scope()
        outer.define("a", 1)
        inner = outer.child()
        inner.define("b", 2)
        assert set(inner.names()) == {"a", "b"}


class TestSpecificationIndex:
    def test_enum_members_map_to_their_enum_type(self):
        index = SpecificationIndex()
        index.add_enum(EnumDecl(name="Colour", members=["Red", "Green"]))
        assert index.enum_members["Red"] == EnumType("Colour", ("Red", "Green"))

    def test_unknown_class_lookup(self):
        index = SpecificationIndex()
        with pytest.raises(AslNameError, match="unknown class"):
            index.class_info("Nope")


class TestTypePredicates:
    def test_numeric_types(self):
        assert is_numeric(INT) and is_numeric(FLOAT) and is_numeric(ANY)
        assert not is_numeric(BOOL) and not is_numeric(STRING)

    def test_common_numeric_widens_to_float(self):
        assert common_numeric(INT, INT) == INT
        assert common_numeric(INT, FLOAT) == FLOAT
        assert common_numeric(ANY, INT) == ANY

    def test_int_assignable_to_float_but_not_reverse(self):
        assert is_assignable(INT, FLOAT)
        assert not is_assignable(FLOAT, INT)

    def test_any_is_assignable_in_both_directions(self):
        assert is_assignable(ANY, STRING)
        assert is_assignable(STRING, ANY)

    def test_set_assignability_is_elementwise(self):
        assert is_assignable(SetType(INT), SetType(FLOAT))
        assert not is_assignable(SetType(FLOAT), SetType(INT))

    def test_class_assignability_follows_single_inheritance(self):
        subclasses = {"Derived": "Base", "Base": None}
        assert is_assignable(ClassType("Derived"), ClassType("Base"), subclasses)
        assert not is_assignable(ClassType("Base"), ClassType("Derived"), subclasses)
        assert not is_assignable(ClassType("Other"), ClassType("Base"), subclasses)

    def test_type_str_representations(self):
        assert str(SetType(ClassType("Region"))) == "setof Region"
        assert str(ScalarType(ScalarKind.DATETIME)) == "DateTime"
        assert str(EnumType("TimingType")) == "TimingType"
        assert str(ANY) == "<any>"
        assert str(DATETIME) == "DateTime"
