"""SQL NULL semantics of aggregates, pinned against explicit expected
values and across every engine flavour.

SQL-92 aggregate rules the engine must follow:

* ``COUNT(*)`` counts rows; ``COUNT(col)`` counts non-NULL values only.
* ``SUM``/``MIN``/``MAX``/``AVG`` skip NULL inputs; over an all-NULL (or
  empty) input set they return NULL, never 0.
* ``AVG`` divides by the non-NULL count, not the row count.
* ``DISTINCT`` inside an aggregate deduplicates the non-NULL values.
* ``SELECT DISTINCT`` treats NULL as one distinct value.

Every statement runs on the interpreted reference, the row-at-a-time
compiled engine, the vectorized compiled engine (the default) and a
multi-partition vectorized database; all four must return the same rows,
and they must equal the hand-computed expectation.
"""

import pytest

from repro.relalg import Database

_M_ROWS = [
    # (id, g, x):  g=1 is all-NULL in x, g=2 is mixed, g=3 has no NULLs.
    (1, 1, None),
    (2, 1, None),
    (3, 1, None),
    (4, 2, 10.0),
    (5, 2, None),
    (6, 2, 30.0),
    (7, 3, 5.0),
    (8, 3, 5.0),
    (9, None, 7.0),
]


def _databases():
    flavours = {
        "interpreted": Database(engine="interpreted"),
        "rowwise": Database(engine="compiled", n_partitions=1, vectorized=False),
        "vectorized": Database(engine="compiled", n_partitions=1),
        "partitioned": Database(engine="compiled", n_partitions=4),
    }
    for database in flavours.values():
        database.execute(
            "CREATE TABLE m (id INTEGER PRIMARY KEY, g INTEGER, x FLOAT)"
        )
        database.executemany(
            "INSERT INTO m (id, g, x) VALUES (?, ?, ?)", _M_ROWS
        )
    return flavours


@pytest.fixture(name="flavours")
def _flavours_fixture():
    flavours = _databases()
    yield flavours
    for database in flavours.values():
        database.close()


def _assert_everywhere(flavours, sql, params, expected_rows):
    for name, database in flavours.items():
        result = database.query(sql, params)
        assert result.rows == expected_rows, (name, sql)


class TestAggregateNullSkipping:
    def test_count_star_vs_count_column(self, flavours):
        _assert_everywhere(
            flavours,
            "SELECT g, COUNT(*), COUNT(x) FROM m GROUP BY g ORDER BY g",
            [],
            # NULL grouping keys sort last in this engine's ORDER BY.
            [(1, 3, 0), (2, 3, 2), (3, 2, 2), (None, 1, 1)],
        )

    def test_sum_min_max_skip_nulls_and_all_null_group_is_null(self, flavours):
        _assert_everywhere(
            flavours,
            "SELECT g, SUM(x), MIN(x), MAX(x) FROM m GROUP BY g ORDER BY g",
            [],
            [
                (1, None, None, None),
                (2, 40.0, 10.0, 30.0),
                (3, 10.0, 5.0, 5.0),
                (None, 7.0, 7.0, 7.0),
            ],
        )

    def test_avg_divides_by_non_null_count(self, flavours):
        # g=2 has rows (10.0, NULL, 30.0): AVG is 40/2 = 20, not 40/3.
        _assert_everywhere(
            flavours,
            "SELECT g, AVG(x) FROM m GROUP BY g ORDER BY g",
            [],
            [(1, None), (2, 20.0), (3, 5.0), (None, 7.0)],
        )

    def test_count_distinct_excludes_nulls(self, flavours):
        # x values: {NULL×4, 10.0, 30.0, 5.0×2, 7.0} → 4 distinct non-NULL.
        _assert_everywhere(
            flavours,
            "SELECT COUNT(DISTINCT x), COUNT(x), COUNT(*) FROM m",
            [],
            [(4, 5, 9)],
        )

    def test_ungrouped_aggregates_over_empty_input(self, flavours):
        _assert_everywhere(
            flavours,
            "SELECT COUNT(*), COUNT(x), SUM(x), MIN(x), MAX(x), AVG(x) "
            "FROM m WHERE id > ?",
            [100],
            [(0, 0, None, None, None, None)],
        )

    def test_select_distinct_keeps_one_null(self, flavours):
        _assert_everywhere(
            flavours,
            "SELECT DISTINCT g FROM m ORDER BY g",
            [],
            [(1,), (2,), (3,), (None,)],
        )

    def test_stats_identical_between_vectorized_and_rowwise(self, flavours):
        sql = "SELECT g, COUNT(*), SUM(x), AVG(x) FROM m GROUP BY g ORDER BY g"
        rowwise = flavours["rowwise"].query(sql)
        vectorized = flavours["vectorized"].query(sql)
        assert vectorized.rows == rowwise.rows
        assert vectorized.stats == rowwise.stats
