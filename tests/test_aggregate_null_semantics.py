"""SQL NULL semantics of aggregates, pinned against explicit expected
values and across every engine flavour.

SQL-92 aggregate rules the engine must follow:

* ``COUNT(*)`` counts rows; ``COUNT(col)`` counts non-NULL values only.
* ``SUM``/``MIN``/``MAX``/``AVG`` skip NULL inputs; over an all-NULL (or
  empty) input set they return NULL, never 0.
* ``AVG`` divides by the non-NULL count, not the row count.
* ``DISTINCT`` inside an aggregate deduplicates the non-NULL values.
* ``SELECT DISTINCT`` treats NULL as one distinct value.

Every statement runs on the interpreted reference, the row-at-a-time
compiled engine, the vectorized compiled engine (the default), a
multi-partition vectorized database, the thread fan-out and the
process-pool executor (which merges partial aggregate states where
provably mergeable); all flavours must return the same rows, and they
must equal the hand-computed expectation.
"""

import pytest

from repro.relalg import Database

_M_ROWS = [
    # (id, g, x):  g=1 is all-NULL in x, g=2 is mixed, g=3 has no NULLs.
    (1, 1, None),
    (2, 1, None),
    (3, 1, None),
    (4, 2, 10.0),
    (5, 2, None),
    (6, 2, 30.0),
    (7, 3, 5.0),
    (8, 3, 5.0),
    (9, None, 7.0),
]


def _databases(process_pool=None):
    flavours = {
        "interpreted": Database(engine="interpreted"),
        "rowwise": Database(engine="compiled", n_partitions=1, vectorized=False),
        "vectorized": Database(engine="compiled", n_partitions=1),
        "partitioned": Database(engine="compiled", n_partitions=4),
        "thread": Database(
            engine="compiled", n_partitions=4, parallel=2, executor="thread"
        ),
    }
    if process_pool is not None:
        flavours["process"] = Database(
            engine="compiled", n_partitions=4, executor=process_pool
        )
    for database in flavours.values():
        database.execute(
            "CREATE TABLE m (id INTEGER PRIMARY KEY, g INTEGER, x FLOAT)"
        )
        database.executemany(
            "INSERT INTO m (id, g, x) VALUES (?, ?, ?)", _M_ROWS
        )
    return flavours


@pytest.fixture(name="flavours")
def _flavours_fixture(process_pool):
    flavours = _databases(process_pool)
    yield flavours
    for database in flavours.values():
        database.close()


def _assert_everywhere(flavours, sql, params, expected_rows):
    for name, database in flavours.items():
        result = database.query(sql, params)
        assert result.rows == expected_rows, (name, sql)


class TestAggregateNullSkipping:
    def test_count_star_vs_count_column(self, flavours):
        _assert_everywhere(
            flavours,
            "SELECT g, COUNT(*), COUNT(x) FROM m GROUP BY g ORDER BY g",
            [],
            # NULL grouping keys sort last in this engine's ORDER BY.
            [(1, 3, 0), (2, 3, 2), (3, 2, 2), (None, 1, 1)],
        )

    def test_sum_min_max_skip_nulls_and_all_null_group_is_null(self, flavours):
        _assert_everywhere(
            flavours,
            "SELECT g, SUM(x), MIN(x), MAX(x) FROM m GROUP BY g ORDER BY g",
            [],
            [
                (1, None, None, None),
                (2, 40.0, 10.0, 30.0),
                (3, 10.0, 5.0, 5.0),
                (None, 7.0, 7.0, 7.0),
            ],
        )

    def test_avg_divides_by_non_null_count(self, flavours):
        # g=2 has rows (10.0, NULL, 30.0): AVG is 40/2 = 20, not 40/3.
        _assert_everywhere(
            flavours,
            "SELECT g, AVG(x) FROM m GROUP BY g ORDER BY g",
            [],
            [(1, None), (2, 20.0), (3, 5.0), (None, 7.0)],
        )

    def test_count_distinct_excludes_nulls(self, flavours):
        # x values: {NULL×4, 10.0, 30.0, 5.0×2, 7.0} → 4 distinct non-NULL.
        _assert_everywhere(
            flavours,
            "SELECT COUNT(DISTINCT x), COUNT(x), COUNT(*) FROM m",
            [],
            [(4, 5, 9)],
        )

    def test_ungrouped_aggregates_over_empty_input(self, flavours):
        _assert_everywhere(
            flavours,
            "SELECT COUNT(*), COUNT(x), SUM(x), MIN(x), MAX(x), AVG(x) "
            "FROM m WHERE id > ?",
            [100],
            [(0, 0, None, None, None, None)],
        )

    def test_select_distinct_keeps_one_null(self, flavours):
        _assert_everywhere(
            flavours,
            "SELECT DISTINCT g FROM m ORDER BY g",
            [],
            [(1,), (2,), (3,), (None,)],
        )

    def test_stats_identical_between_vectorized_and_rowwise(self, flavours):
        sql = "SELECT g, COUNT(*), SUM(x), AVG(x) FROM m GROUP BY g ORDER BY g"
        rowwise = flavours["rowwise"].query(sql)
        vectorized = flavours["vectorized"].query(sql)
        assert vectorized.rows == rowwise.rows
        assert vectorized.stats == rowwise.stats

    def test_distinct_in_aggregate_per_group(self, flavours):
        # g=3 holds (5.0, 5.0): SUM(DISTINCT x) dedups to 5.0 there.
        _assert_everywhere(
            flavours,
            "SELECT g, SUM(DISTINCT x), COUNT(DISTINCT x) FROM m "
            "GROUP BY g ORDER BY g",
            [],
            [
                (1, None, 0),
                (2, 40.0, 2),
                (3, 5.0, 1),
                (None, 7.0, 1),
            ],
        )

    def test_avg_of_integer_column_divides_exactly(self, flavours):
        # Integer sums stay exact ints until the final division — including
        # across process workers merging (sum, count) partial states.
        _assert_everywhere(
            flavours,
            "SELECT g, SUM(id), AVG(id) FROM m GROUP BY g ORDER BY g",
            [],
            [(1, 6, 2.0), (2, 15, 5.0), (3, 15, 7.5), (None, 9, 9.0)],
        )

    def test_avg_of_mixed_int_float_expression(self, flavours):
        # id (int) + x (float) widens per row; NULL x rows drop out.
        _assert_everywhere(
            flavours,
            "SELECT g, AVG(id + x) FROM m GROUP BY g ORDER BY g",
            [],
            [(1, None), (2, 25.0), (3, 12.5), (None, 16.0)],
        )


class TestFloatGroupKeys:
    """Float edge-case group keys: -0.0 folds with 0.0, NaN never matches."""

    def _fill(self, flavours, rows):
        for database in flavours.values():
            database.execute(
                "CREATE TABLE fk (id INTEGER PRIMARY KEY, k FLOAT)"
            )
            database.executemany(
                "INSERT INTO fk (id, k) VALUES (?, ?)", rows
            )

    def test_negative_zero_groups_with_positive_zero(self, flavours):
        self._fill(
            flavours, [(1, 0.0), (2, -0.0), (3, 1.0), (4, -0.0), (5, 0.0)]
        )
        _assert_everywhere(
            flavours,
            "SELECT k, COUNT(*) FROM fk GROUP BY k ORDER BY k",
            [],
            # 0.0 == -0.0 (and hashes identically): one group of four.
            [(0.0, 4), (1.0, 1)],
        )

    def test_nan_keys_never_merge(self, flavours):
        # Distinct NaN objects per row: each is its own group everywhere
        # (NaN != NaN), including across the process executor's pickling.
        rows = [(i, float("nan")) for i in range(1, 5)] + [(5, 2.0), (6, 2.0)]
        self._fill(flavours, rows)
        for name, database in flavours.items():
            result = database.query("SELECT COUNT(*) FROM fk GROUP BY k")
            assert sorted(r[0] for r in result.rows) == [1, 1, 1, 1, 2], name
