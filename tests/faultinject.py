"""Crash-point fault injection for the write-ahead log.

The WAL (:mod:`repro.relalg.wal`) reports every write-path event — each
record append, each fsync, each checkpoint file step — to a hook *after* the
event completes, and keeps its log file unbuffered.  This module turns that
seam into a crash harness:

* :class:`CrashHook` counts events and raises :class:`SimulatedCrash` once
  the ``crash_after``-th event has completed — "the process died right
  there".  Because the log file is unbuffered, the bytes on disk at that
  moment are exactly what a SIGKILL at the same point would leave behind.
  The hook also tracks, in WAL order, how many **durable records** (commit
  markers, autocommit DML, DDL) have been appended and how many of those an
  fsync has covered — the two indexes the recovery oracle is phrased in.
* :func:`run_with_crash` executes a deterministic operation stream against a
  WAL-backed database until the simulated crash (or completion) and abandons
  the database without any orderly shutdown.
* :func:`crash_images` derives the three on-disk images a real crash could
  have left: the **full** file (in-process death after the write syscall),
  the file truncated to the **fsynced** prefix (power loss: unsynced page
  cache gone), and a **torn** truncation at a random byte in between
  (partial sector write).
* :func:`shadow_fingerprints` replays the same operation stream on a plain
  in-memory database and records the
  :func:`~repro.relalg.wal.state_fingerprint` hash after every durable
  boundary — ``F[0]`` (empty) through ``F[n]``.  Recovery of a crash image
  must land exactly on the oracle's predicted boundary: ``F[appended]`` for
  the full image, ``F[durable]`` for the fsynced image, and one of the two
  for a torn image.

The module doubles as the SIGKILL child (``python tests/faultinject.py
--child ...``): a subprocess runs a seeded stream against a WAL, reporting
its durable progress through a side file, while the parent test kills it
mid-run and checks the recovered state against the same oracle.
"""

from __future__ import annotations

import os
import random
import shutil
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if REPO_SRC not in sys.path:  # direct child invocation: python tests/faultinject.py
    sys.path.insert(0, REPO_SRC)

from repro.relalg import Database  # noqa: E402
from repro.relalg.wal import fingerprint_hash, state_fingerprint  # noqa: E402


def _state_hash(database: Database) -> str:
    return fingerprint_hash(state_fingerprint(database))

#: WAL record labels whose fsync marks a durable boundary (state visible
#: after recovery).  "begin"/"ins"/"del" (in-transaction) and "abort" carry
#: no durability; "header" is generation bookkeeping, not state.
DURABLE_LABELS = frozenset({"commit", "auto-ins", "auto-del", "ddl"})


class SimulatedCrash(BaseException):
    """Raised from the WAL hook to simulate dying at one write-path event.

    Derives from ``BaseException`` so no engine-level ``except Exception``
    can accidentally swallow the crash and keep executing.
    """

    def __init__(self, label: str, event: int) -> None:
        super().__init__(f"simulated crash at event {event} ({label})")
        self.label = label
        self.event = event


class CrashHook:
    """Counts WAL events; optionally crashes after the ``crash_after``-th.

    ``appended`` / ``durable`` track the recovery oracle: how many durable
    records the log contains in full (the full-image recovery point) and how
    many of those are covered by an fsync (the power-loss recovery point).
    Counter updates happen *before* a potential crash — the event itself did
    complete.
    """

    def __init__(self, crash_after: Optional[int] = None) -> None:
        self.crash_after = crash_after
        self.events = 0
        self.appended = 0
        self.durable = 0
        self.bytes_fsynced = 0  # filled in by run_with_crash at crash time
        self.labels: List[str] = []

    def __call__(self, label: str, event: int) -> None:
        self.events = event
        self.labels.append(label)
        kind, _, name = label.partition(":")
        if name in DURABLE_LABELS:
            if kind == "append":
                self.appended += 1
            elif kind == "fsync":
                # fsync covers every byte appended so far, so every durable
                # record already in the file becomes durable with it.
                self.durable = self.appended
        if self.crash_after is not None and event >= self.crash_after:
            raise SimulatedCrash(label, event)


# --------------------------------------------------------------------------- #
# operation streams
# --------------------------------------------------------------------------- #

_STRINGS = ["alpha", "beta", "gamma", "", "päper", "x" * 40]


def make_ops(seed: int, length: int = 14, with_checkpoints: bool = True) -> List[Tuple]:
    """A deterministic operation stream: DDL up front, then mixed DML.

    Each op is plain data so the crash run and the shadow run execute the
    identical statements: ``("execute", sql, params)``,
    ``("executemany", sql, rows)`` or ``("checkpoint",)``.  Streams mix
    autocommit statements, committed and rolled-back transactions, deletes
    that race compaction thresholds, and awkward floats (NaN, ``-0.0``) that
    exercise the replay row matcher.
    """
    rng = random.Random(seed)
    ops: List[Tuple] = [
        ("execute", "CREATE TABLE t (id INTEGER PRIMARY KEY, g INTEGER, x FLOAT, s TEXT)", ()),
        ("execute", "CREATE INDEX t_g ON t (g)", ()),
        # Ordered index over the NaN/NULL/-0.0-bearing float column: crash
        # recovery and checkpoint restore must rebuild the sorted run and
        # its NULL/NaN side-sets to match the shadow database.
        ("execute", "CREATE INDEX t_x ON t (x) ORDERED", ()),
    ]
    next_id = iter(range(1, 100_000))

    def value() -> Any:
        roll = rng.random()
        if roll < 0.08:
            return None
        if roll < 0.13:
            return float("nan")
        if roll < 0.18:
            return -0.0
        return round(rng.uniform(-40.0, 40.0), 3)

    def insert_rows(n: int) -> List[Tuple]:
        return [
            (next(next_id), rng.choice([None, 0, 1, 2, 3]), value(), rng.choice(_STRINGS))
            for _ in range(n)
        ]

    def dml() -> Tuple:
        kind = rng.choice(["ins", "ins", "ins", "del_g", "del_x"])
        if kind == "ins":
            return (
                "executemany",
                "INSERT INTO t (id, g, x, s) VALUES (?, ?, ?, ?)",
                insert_rows(rng.randint(1, 8)),
            )
        if kind == "del_g":
            return ("execute", "DELETE FROM t WHERE g = ?", [rng.randint(0, 4)])
        return (
            "execute",
            "DELETE FROM t WHERE x > ?",
            [round(rng.uniform(10.0, 40.0), 3)],
        )

    for _ in range(length):
        roll = rng.random()
        if with_checkpoints and roll < 0.08:
            ops.append(("checkpoint",))
        elif roll < 0.45:
            ops.append(dml())
        else:
            ops.append(("execute", "BEGIN", ()))
            for _ in range(rng.randint(1, 3)):
                ops.append(dml())
            ops.append(
                ("execute", "COMMIT" if rng.random() < 0.7 else "ROLLBACK", ())
            )
    return ops


def apply_op(database: Database, op: Tuple) -> Any:
    if op[0] == "checkpoint":
        if database._wal is not None:
            return database.checkpoint()
        return None
    if op[0] == "executemany":
        return database.executemany(op[1], op[2])
    return database.execute(op[1], op[2])


def shadow_fingerprints(ops: Sequence[Tuple]) -> List[str]:
    """Fingerprint hashes at every durable boundary of ``ops``.

    Runs the stream on a WAL-less database (byte-identical state evolution:
    that is the engine contract the tier-1 suite pins) and records the state
    hash after each operation that the WAL run would fsync: DDL, autocommit
    INSERT, autocommit DELETE *that deleted rows* (a no-op delete logs
    nothing), and COMMIT.  ``F[0]`` is the empty database.
    """
    database = Database(name="shadow", n_partitions=4)
    hashes = [_state_hash(database)]
    try:
        for op in ops:
            if op[0] == "checkpoint":
                continue
            result = apply_op(database, op)
            if _is_boundary(database, op[1], result):
                hashes.append(_state_hash(database))
    finally:
        database.close()
    return hashes


def _is_boundary(database: Database, sql: str, result: Any) -> bool:
    """Did this statement end on a durable WAL boundary?

    Mirrors the WAL's fsync points exactly: DDL, autocommit INSERT,
    autocommit DELETE that removed at least one row (a no-op delete logs
    nothing), and COMMIT (always — the marker is fsynced even for an empty
    transaction).  Statements inside an open transaction are never
    boundaries; neither are BEGIN and ROLLBACK.
    """
    if database.in_transaction:
        return False
    head = sql.lstrip().upper()
    if head.startswith(("CREATE", "DROP", "INSERT", "COMMIT")):
        return True
    return head.startswith("DELETE") and bool(result)


class RecordingExecutor:
    """A duck-typed ``SqlExecutor`` wrapping a :class:`Database`.

    Used by the SIGKILL variants in two roles: in the parent it records the
    state-fingerprint hash after every durable boundary (the oracle a killed
    child's recovered state must land on); in the child it reports each
    boundary index through a progress file the instant the boundary's WAL
    record is durable, so the parent knows a lower bound on what recovery
    must preserve.
    """

    def __init__(
        self,
        database: Database,
        record_hashes: bool = True,
        progress_path: Optional[str] = None,
    ) -> None:
        self.database = database
        self.boundary = 0
        self.hashes = [_state_hash(database)] if record_hashes else None
        self.progress_path = progress_path

    def execute(self, sql: str, params: Sequence[Any] = ()) -> Any:
        result = self.database.execute(sql, params)
        self._record(sql, result)
        return result

    def executemany(self, sql: str, rows: Any) -> Any:
        result = self.database.executemany(sql, rows)
        self._record(sql, result)
        return result

    def _record(self, sql: str, result: Any) -> None:
        if not _is_boundary(self.database, sql, result):
            return
        self.boundary += 1
        if self.hashes is not None:
            self.hashes.append(_state_hash(self.database))
        if self.progress_path is not None:
            # By the time execute returned, the statement's WAL record was
            # fsynced, so advertising the boundary as durable is truthful.
            with open(self.progress_path, "w", encoding="utf-8") as handle:
                handle.write(str(self.boundary))
                handle.flush()
                os.fsync(handle.fileno())


# --------------------------------------------------------------------------- #
# crash execution and recovery images
# --------------------------------------------------------------------------- #


def abandon(database: Database) -> None:
    """Drop a crashed database without any orderly shutdown.

    No rollback, no abort record, no buffered flushes — only the raw file
    descriptor is closed (the container would leak it otherwise; a closed fd
    does not change the file's bytes).
    """
    wal = database._wal
    if wal is not None and wal._file is not None:
        wal._file.close()
        wal._file = None
    database._wal = None
    database._txn = None
    database.close()


def run_with_crash(
    wal_path: str, ops: Sequence[Tuple], crash_after: Optional[int]
) -> Tuple[CrashHook, bool]:
    """Run ``ops`` against a fresh WAL database, crashing at the given event.

    Returns the hook (carrying the oracle indexes at crash time) and whether
    the crash actually fired (``False``: the stream completed first).
    """
    hook = CrashHook(crash_after)
    database = None
    try:
        database = Database(
            name="crash", n_partitions=4, wal_path=wal_path,
            wal_autocheckpoint=None, wal_hook=hook,
        )
        for op in ops:
            apply_op(database, op)
    except SimulatedCrash:
        # Snapshot the fsynced prefix before abandon() detaches the WAL; a
        # crash inside Database.__init__ leaves nothing fsynced.
        if database is not None and database._wal is not None:
            hook.bytes_fsynced = database._wal.bytes_fsynced
        return hook, True
    finally:
        if database is not None:
            abandon(database)
    return hook, False


def stage_crash_state(
    wal_path: str, bytes_fsynced: int, scratch_dir: str, rng: random.Random
) -> Dict[str, str]:
    """Copy the crashed WAL (+ checkpoint) into per-mode directories.

    * ``full`` — every write syscall made it to disk (in-process death).
    * ``fsynced`` — only fsynced bytes survive (a power loss drops the
      unsynced page cache).
    * ``torn`` — a random cut strictly inside the unsynced tail (partial
      line write).  Present only when an unsynced tail exists.
    """
    images: Dict[str, str] = {}
    size = os.path.getsize(wal_path) if os.path.exists(wal_path) else 0
    modes = [("full", size), ("fsynced", min(bytes_fsynced, size))]
    if size > bytes_fsynced:
        modes.append(("torn", rng.randint(bytes_fsynced, size - 1)))
    for mode, cut in modes:
        mode_dir = os.path.join(scratch_dir, mode)
        os.makedirs(mode_dir, exist_ok=True)
        copy = os.path.join(mode_dir, os.path.basename(wal_path))
        if os.path.exists(wal_path):
            shutil.copyfile(wal_path, copy)
            with open(copy, "rb+") as handle:
                handle.truncate(cut)
        ckpt = wal_path + ".ckpt"
        if os.path.exists(ckpt):
            # The checkpoint is written via fsync + atomic rename, so every
            # crash mode sees the same (old or new, never partial) file.
            shutil.copyfile(ckpt, copy + ".ckpt")
        images[mode] = copy
    return images


def recover_hash(wal_path: str) -> str:
    """Open a crash image and return the recovered state's fingerprint hash."""
    database = Database(name="recover", n_partitions=4, wal_path=wal_path,
                        wal_autocheckpoint=None)
    try:
        return fingerprint_hash(state_fingerprint(database))
    finally:
        database.close()


def run_crash_case(
    seed: int,
    crash_after: int,
    scratch_dir: str,
    ops: Optional[List[Tuple]] = None,
    boundaries: Optional[List[str]] = None,
) -> List[str]:
    """One full crash-recovery check; returns failure descriptions (empty = ok).

    Executes the seeded stream, crashes at ``crash_after``, derives the three
    crash images, recovers each, and compares against the shadow oracle.
    ``ops``/``boundaries`` may be passed precomputed when sweeping many crash
    points of the same seed.
    """
    if ops is None:
        ops = make_ops(seed)
    if boundaries is None:
        boundaries = shadow_fingerprints(ops)
    wal_path = os.path.join(scratch_dir, "crash.wal")
    hook, crashed = run_with_crash(wal_path, ops, crash_after)
    if not crashed:
        return []
    failures: List[str] = []
    label = hook.labels[-1]
    rng = random.Random((seed << 20) ^ crash_after)
    images = stage_crash_state(wal_path, hook.bytes_fsynced, scratch_dir, rng)
    expected = {
        "full": [boundaries[hook.appended]],
        "fsynced": [boundaries[hook.durable]],
        "torn": [boundaries[hook.durable], boundaries[hook.appended]],
    }
    for mode, image in images.items():
        got = recover_hash(image)
        if got not in expected[mode]:
            failures.append(
                f"seed={seed} crash_after={crash_after} label={label} "
                f"mode={mode}: recovered state is not the oracle's "
                f"boundary (appended={hook.appended}, durable={hook.durable})"
            )
    return failures


def count_events(seed: int, scratch_dir: str) -> int:
    """Events of a crash-free run of the seeded stream (the sweep range)."""
    ops = make_ops(seed)
    wal_path = os.path.join(scratch_dir, "count.wal")
    hook, crashed = run_with_crash(wal_path, ops, None)
    assert not crashed
    return hook.events


# --------------------------------------------------------------------------- #
# SIGKILL child
# --------------------------------------------------------------------------- #


def child_ops(seed: int, length: int) -> List[Tuple]:
    """The SIGKILL child's stream: autocommit-only, every op durable.

    Autocommit DML fsyncs per statement, so after each op the child can
    truthfully report "boundary k is durable" through the progress file.
    """
    rng = random.Random(seed)
    ops: List[Tuple] = [
        ("execute", "CREATE TABLE t (id INTEGER PRIMARY KEY, g INTEGER, x FLOAT, s TEXT)", ()),
        ("execute", "CREATE INDEX t_x ON t (x) ORDERED", ()),
    ]
    next_id = iter(range(1, 1_000_000))
    for _ in range(length):
        if rng.random() < 0.85:
            rows = [
                (next(next_id), rng.randint(0, 5), round(rng.uniform(0, 10), 3), "r")
                for _ in range(rng.randint(1, 4))
            ]
            ops.append(("executemany", "INSERT INTO t (id, g, x, s) VALUES (?, ?, ?, ?)", rows))
        else:
            ops.append(("execute", "DELETE FROM t WHERE g = ?", [rng.randint(0, 5)]))
    return ops


def child_shadow_fingerprints(seed: int, length: int) -> List[str]:
    return shadow_fingerprints(child_ops(seed, length))


def _child_main(wal_path: str, progress_path: str, seed: int, length: int) -> None:
    """Run the child stream, reporting durable progress after every boundary."""
    database = Database(name="child", n_partitions=4, wal_path=wal_path,
                        wal_autocheckpoint=None)
    executor = RecordingExecutor(database, record_hashes=False,
                                 progress_path=progress_path)
    for op in child_ops(seed, length):
        if op[0] == "executemany":
            executor.executemany(op[1], op[2])
        else:
            executor.execute(op[1], op[2])
    database.close()


# --------------------------------------------------------------------------- #
# E6-dataset SIGKILL smoke
# --------------------------------------------------------------------------- #


def e6_scenario():
    """A reduced, deterministic E6-style scenario for the recovery smoke.

    ``SimulationConfig`` seeds every random draw from a fixed seed, so the
    parent process and the SIGKILL child build byte-identical repositories
    and issue byte-identical loader statement streams.  The scalable workload
    is sized to yield a few thousand rows — enough batches (and enough
    per-batch fsyncs) that the parent usually lands its SIGKILL mid-load.
    """
    from repro.bench.scenarios import build_scenario

    return build_scenario(
        "scalable", pe_counts=(1, 2, 4, 8),
        functions=10, regions_per_function=6, calls_per_region=2,
    )


def e6_load(database: Database, executor_kwargs: Dict[str, Any]) -> RecordingExecutor:
    """Load the reduced E6 repository through a recording executor."""
    from repro.compiler import load_repository

    scenario = e6_scenario()
    executor = RecordingExecutor(database, **executor_kwargs)
    load_repository(scenario.repository, scenario.mapping, executor,
                    batch_size=64)
    return executor


def e6_boundary_hashes() -> List[str]:
    """The clean run's fingerprint hash after every durable load boundary."""
    database = Database(name="e6", n_partitions=4)
    try:
        return e6_load(database, {"record_hashes": True}).hashes
    finally:
        database.close()


def _child_e6_main(wal_path: str, progress_path: str) -> None:
    database = Database(name="e6", n_partitions=4, wal_path=wal_path,
                        wal_autocheckpoint=None)
    e6_load(database, {"record_hashes": False, "progress_path": progress_path})
    database.close()


if __name__ == "__main__":
    if len(sys.argv) == 6 and sys.argv[1] == "--child":
        _child_main(sys.argv[2], sys.argv[3], int(sys.argv[4]), int(sys.argv[5]))
    elif len(sys.argv) == 4 and sys.argv[1] == "--child-e6":
        _child_e6_main(sys.argv[2], sys.argv[3])
    else:  # pragma: no cover - manual use
        raise SystemExit(
            "usage: python tests/faultinject.py --child <wal> <progress> <seed> <n_ops>\n"
            "       python tests/faultinject.py --child-e6 <wal> <progress>"
        )
