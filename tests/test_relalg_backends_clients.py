"""Tests of the simulated backend cost models and the client API layers."""

import pytest

from repro.relalg import (
    BACKEND_PROFILES,
    BridgedClient,
    NativeClient,
    SimulatedBackend,
    VirtualClock,
    backend,
)


def prepare(simulated: SimulatedBackend, rows: int = 50) -> None:
    simulated.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x FLOAT)")
    simulated.executemany(
        "INSERT INTO t (id, x) VALUES (?, ?)", [(i + 1, float(i)) for i in range(rows)]
    )


class TestVirtualClock:
    def test_advance_and_reset(self):
        clock = VirtualClock()
        clock.advance(0.5)
        clock.advance(0.25)
        assert clock.elapsed == pytest.approx(0.75)
        clock.reset()
        assert clock.elapsed == 0.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)


class TestBackendProfiles:
    def test_the_four_paper_backends_exist(self):
        assert set(BACKEND_PROFILES) == {
            "oracle7", "ms_sql_server", "postgres", "ms_access",
        }

    def test_only_ms_access_is_local(self):
        assert not BACKEND_PROFILES["ms_access"].remote
        assert BACKEND_PROFILES["oracle7"].remote

    def test_single_record_fetch_from_oracle_is_about_one_millisecond(self):
        # Paper: "fetching a record from the Oracle server takes about 1 ms".
        cost = BACKEND_PROFILES["oracle7"].statement_cost(rows_returned=1)
        assert 0.5e-3 <= cost <= 1.5e-3

    def test_oracle_queries_are_about_twice_as_slow_as_sql_server_and_postgres(self):
        oracle = BACKEND_PROFILES["oracle7"].statement_cost(rows_returned=1)
        mssql = BACKEND_PROFILES["ms_sql_server"].statement_cost(rows_returned=1)
        postgres = BACKEND_PROFILES["postgres"].statement_cost(rows_returned=1)
        assert 1.5 <= oracle / mssql <= 2.5
        assert 1.5 <= oracle / postgres <= 2.5

    def test_ms_access_outperforms_the_server_backends(self):
        access = BACKEND_PROFILES["ms_access"].statement_cost(rows_returned=1)
        for name in ("oracle7", "ms_sql_server", "postgres"):
            assert access < BACKEND_PROFILES[name].statement_cost(rows_returned=1)

    def test_insertion_into_access_is_about_twenty_times_faster_than_oracle(self):
        oracle = BACKEND_PROFILES["oracle7"].statement_cost(rows_inserted=1)
        access = BACKEND_PROFILES["ms_access"].statement_cost(rows_inserted=1)
        assert 10 <= oracle / access <= 30

    def test_unknown_backend_name(self):
        with pytest.raises(KeyError, match="unknown backend"):
            backend("db2")


class TestSimulatedBackend:
    def test_statements_advance_the_virtual_clock(self):
        simulated = backend("oracle7")
        prepare(simulated, rows=10)
        elapsed_after_insert = simulated.elapsed
        assert elapsed_after_insert > 0
        simulated.query("SELECT * FROM t")
        assert simulated.elapsed > elapsed_after_insert

    def test_connection_latency_charged_once(self):
        simulated = backend("oracle7")
        simulated.connect()
        first = simulated.elapsed
        simulated.connect()
        assert simulated.elapsed == first

    def test_bulk_insert_is_cheaper_on_access_than_on_oracle(self):
        oracle = backend("oracle7")
        access = backend("ms_access")
        prepare(oracle, rows=200)
        prepare(access, rows=200)
        # Subtract the one-time connection latencies before comparing.
        oracle_time = oracle.elapsed - oracle.profile.connect_latency
        access_time = access.elapsed - access.profile.connect_latency
        assert 10 <= oracle_time / access_time <= 30

    def test_counters(self):
        simulated = backend("postgres")
        prepare(simulated, rows=5)
        simulated.query("SELECT * FROM t")
        assert simulated.rows_inserted == 5
        assert simulated.rows_fetched == 5
        # create + one executemany insert batch + select
        assert simulated.statements_executed == 3
        simulated.reset_clock()
        assert simulated.elapsed == 0.0
        assert simulated.statements_executed == 0

    def test_results_are_identical_across_backends(self):
        results = {}
        for name in BACKEND_PROFILES:
            simulated = backend(name)
            prepare(simulated, rows=20)
            results[name] = simulated.query("SELECT SUM(x) FROM t").scalar()
        assert len(set(results.values())) == 1


class TestClientLayers:
    def test_bridged_client_is_two_to_four_times_slower(self):
        # Paper: JDBC access is a factor of two to four slower than C.
        native = NativeClient(backend("oracle7"))
        bridged = BridgedClient(backend("oracle7"))
        for client in (native, bridged):
            prepare(client.backend, rows=1)
            client.backend.reset_clock()
            for i in range(100):
                client.fetch_record("SELECT x FROM t WHERE id = ?", [1])
        assert bridged.client_time / native.client_time == pytest.approx(3.0, rel=0.01)
        assert 2.0 <= bridged.slowdown <= 4.0

    def test_fetch_record_requires_a_row(self):
        client = NativeClient(backend("ms_access"))
        prepare(client.backend, rows=1)
        with pytest.raises(LookupError):
            client.fetch_record("SELECT x FROM t WHERE id = ?", [999])

    def test_client_overhead_is_added_to_the_backend_clock(self):
        client = NativeClient(backend("ms_access"))
        prepare(client.backend, rows=1)
        before = client.backend.elapsed
        client.query("SELECT * FROM t")
        assert client.backend.elapsed > before
        assert client.calls == 1
        assert client.rows_fetched == 1

    def test_executemany_counts_affected_rows(self):
        client = NativeClient(backend("ms_access"))
        client.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x FLOAT)")
        affected = client.executemany(
            "INSERT INTO t (id, x) VALUES (?, ?)", [(1, 1.0), (2, 2.0)]
        )
        assert affected == 2

    def test_bridged_slowdown_must_exceed_one(self):
        with pytest.raises(ValueError):
            BridgedClient(backend("ms_access"), slowdown=0.5)
