"""Tests of the simulated backend cost models and the client API layers."""

import pytest

from repro.relalg import (
    BACKEND_PROFILES,
    BridgedClient,
    ExecutionError,
    NativeClient,
    SimulatedBackend,
    SqlSyntaxError,
    VirtualClock,
    backend,
)


def prepare(simulated: SimulatedBackend, rows: int = 50) -> None:
    simulated.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x FLOAT)")
    simulated.executemany(
        "INSERT INTO t (id, x) VALUES (?, ?)", [(i + 1, float(i)) for i in range(rows)]
    )


class TestVirtualClock:
    def test_advance_and_reset(self):
        clock = VirtualClock()
        clock.advance(0.5)
        clock.advance(0.25)
        assert clock.elapsed == pytest.approx(0.75)
        clock.reset()
        assert clock.elapsed == 0.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)


class TestBackendProfiles:
    def test_the_four_paper_backends_exist(self):
        assert set(BACKEND_PROFILES) == {
            "oracle7", "ms_sql_server", "postgres", "ms_access",
        }

    def test_only_ms_access_is_local(self):
        assert not BACKEND_PROFILES["ms_access"].remote
        assert BACKEND_PROFILES["oracle7"].remote

    def test_single_record_fetch_from_oracle_is_about_one_millisecond(self):
        # Paper: "fetching a record from the Oracle server takes about 1 ms".
        cost = BACKEND_PROFILES["oracle7"].statement_cost(rows_returned=1)
        assert 0.5e-3 <= cost <= 1.5e-3

    def test_oracle_queries_are_about_twice_as_slow_as_sql_server_and_postgres(self):
        oracle = BACKEND_PROFILES["oracle7"].statement_cost(rows_returned=1)
        mssql = BACKEND_PROFILES["ms_sql_server"].statement_cost(rows_returned=1)
        postgres = BACKEND_PROFILES["postgres"].statement_cost(rows_returned=1)
        assert 1.5 <= oracle / mssql <= 2.5
        assert 1.5 <= oracle / postgres <= 2.5

    def test_ms_access_outperforms_the_server_backends(self):
        access = BACKEND_PROFILES["ms_access"].statement_cost(rows_returned=1)
        for name in ("oracle7", "ms_sql_server", "postgres"):
            assert access < BACKEND_PROFILES[name].statement_cost(rows_returned=1)

    def test_insertion_into_access_is_about_twenty_times_faster_than_oracle(self):
        oracle = BACKEND_PROFILES["oracle7"].statement_cost(rows_inserted=1)
        access = BACKEND_PROFILES["ms_access"].statement_cost(rows_inserted=1)
        assert 10 <= oracle / access <= 30

    def test_unknown_backend_name(self):
        with pytest.raises(KeyError, match="unknown backend"):
            backend("db2")


class TestSimulatedBackend:
    def test_statements_advance_the_virtual_clock(self):
        simulated = backend("oracle7")
        prepare(simulated, rows=10)
        elapsed_after_insert = simulated.elapsed
        assert elapsed_after_insert > 0
        simulated.query("SELECT * FROM t")
        assert simulated.elapsed > elapsed_after_insert

    def test_connection_latency_charged_once(self):
        simulated = backend("oracle7")
        simulated.connect()
        first = simulated.elapsed
        simulated.connect()
        assert simulated.elapsed == first

    def test_bulk_insert_is_cheaper_on_access_than_on_oracle(self):
        oracle = backend("oracle7")
        access = backend("ms_access")
        prepare(oracle, rows=200)
        prepare(access, rows=200)
        # Subtract the one-time connection latencies before comparing.
        oracle_time = oracle.elapsed - oracle.profile.connect_latency
        access_time = access.elapsed - access.profile.connect_latency
        assert 10 <= oracle_time / access_time <= 30

    def test_counters(self):
        simulated = backend("postgres")
        prepare(simulated, rows=5)
        simulated.query("SELECT * FROM t")
        assert simulated.rows_inserted == 5
        assert simulated.rows_fetched == 5
        # create + one executemany insert batch + select
        assert simulated.statements_executed == 3
        simulated.reset_clock()
        assert simulated.elapsed == 0.0
        assert simulated.statements_executed == 0

    def test_results_are_identical_across_backends(self):
        results = {}
        for name in BACKEND_PROFILES:
            simulated = backend(name)
            prepare(simulated, rows=20)
            results[name] = simulated.query("SELECT SUM(x) FROM t").scalar()
        assert len(set(results.values())) == 1


class TestClientLayers:
    def test_bridged_client_is_two_to_four_times_slower(self):
        # Paper: JDBC access is a factor of two to four slower than C.
        native = NativeClient(backend("oracle7"))
        bridged = BridgedClient(backend("oracle7"))
        for client in (native, bridged):
            prepare(client.backend, rows=1)
            client.backend.reset_clock()
            for i in range(100):
                client.fetch_record("SELECT x FROM t WHERE id = ?", [1])
        assert bridged.client_time / native.client_time == pytest.approx(3.0, rel=0.01)
        assert 2.0 <= bridged.slowdown <= 4.0

    def test_fetch_record_requires_a_row(self):
        client = NativeClient(backend("ms_access"))
        prepare(client.backend, rows=1)
        with pytest.raises(LookupError):
            client.fetch_record("SELECT x FROM t WHERE id = ?", [999])

    def test_client_overhead_is_added_to_the_backend_clock(self):
        client = NativeClient(backend("ms_access"))
        prepare(client.backend, rows=1)
        before = client.backend.elapsed
        client.query("SELECT * FROM t")
        assert client.backend.elapsed > before
        assert client.calls == 1
        assert client.rows_fetched == 1

    def test_executemany_counts_affected_rows(self):
        client = NativeClient(backend("ms_access"))
        client.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x FLOAT)")
        affected = client.executemany(
            "INSERT INTO t (id, x) VALUES (?, ?)", [(1, 1.0), (2, 2.0)]
        )
        assert affected == 2

    def test_bridged_slowdown_must_exceed_one(self):
        with pytest.raises(ValueError):
            BridgedClient(backend("ms_access"), slowdown=0.5)


class TestExecutemanyAccounting:
    """Regression pins for the client-side executemany marshalling charge.

    ``executemany`` over a SELECT executes one backend statement *per
    parameter row* (result sets cannot be batched on the wire), so the
    per-parameter binding charge must follow the per-row statement count —
    not the DML batch size, which used to over-slice the shipped rows on a
    mid-run failure.
    """

    def _client(self, rows=10):
        client = NativeClient(backend("oracle7"))
        prepare(client.backend, rows=rows)
        client.backend.reset_clock()
        client.client_time = 0.0
        client.calls = 0
        client.rows_fetched = 0
        return client

    def test_select_executemany_charges_one_row_per_statement(self):
        client = self._client()
        param_rows = [(1,), (2,), (999,)]
        total = client.executemany("SELECT x FROM t WHERE id = ?", param_rows)
        assert total == 2  # id 999 matches nothing
        assert client.calls == 3
        expected = (
            client.costs.per_call * 3
            + client.costs.per_param * 3
            + client.costs.per_row * 2
        )
        assert client.client_time == expected

    def test_select_mid_run_failure_charges_only_shipped_rows(self):
        client = self._client()
        # The third parameter row is missing its binding: the first two
        # statements execute (and are charged), the rest never ship.
        with pytest.raises(ExecutionError):
            client.executemany(
                "SELECT x FROM t WHERE id = ?", [(1,), (2,), (), (4,), (5,)]
            )
        assert client.calls == 2
        expected = (
            client.costs.per_call * 2
            + client.costs.per_param * 2
            + client.costs.per_row * 2
        )
        assert client.client_time == expected

    def test_dml_mid_batch_failure_charges_committed_batches(self):
        client = NativeClient(backend("oracle7"))
        client.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x FLOAT)")
        client.client_time = 0.0
        client.calls = 0
        rows = [(i + 1, float(i)) for i in range(120)]
        rows.append((1, 0.0))  # duplicate key in the second batch
        from repro.relalg import IntegrityError

        with pytest.raises(IntegrityError):
            client.executemany("INSERT INTO t (id, x) VALUES (?, ?)", rows)
        # One full batch of batch_size rows committed and is charged.
        assert client.calls == 1
        size = client.backend.batch_size
        expected = client.costs.per_call + client.costs.per_param * 2 * size
        assert client.client_time == expected

    def test_parse_failure_ships_and_charges_nothing(self):
        client = self._client()
        with pytest.raises(SqlSyntaxError):
            client.executemany("SELEC x FROM t", [(1,), (2,)])
        assert client.calls == 0
        assert client.client_time == 0.0
