"""End-to-end integration tests: the full COSY data flow and the CLI."""

import pytest

from repro.apprentice import (
    ApprenticeExport,
    ApprenticeParser,
    ExecutionSimulator,
    SimulationConfig,
    synthetic_workload,
)
from repro.asl import parse_asl, unparse
from repro.asl.specs import COSY_DATA_MODEL, COSY_PROPERTIES
from repro.bench import build_scenario, load_into_backend, speedup_series
from repro.cosy import ClientSideStrategy, CosyAnalyzer, PushdownStrategy
from repro.cosy.cli import build_parser, main


class TestFullPipeline:
    """Simulate → export summary file → parse → database → analyse (the paper's
    complete data flow from Section 3)."""

    def test_summary_file_to_ranked_report(self, cosy_spec, tmp_path):
        # 1. "Measurement": simulate the application on several PE counts.
        workload = synthetic_workload("imbalanced", imbalance=0.7)
        repository = ExecutionSimulator(
            workload, SimulationConfig(pe_counts=(1, 4, 16))
        ).run()
        # 2. Apprentice writes its summary file ...
        summary_path = tmp_path / "apprentice.sum"
        ApprenticeExport(repository).dump_path(str(summary_path))
        # 3. ... which is transferred into the (object) database ...
        reloaded = ApprenticeParser().load_path(str(summary_path))
        # 4. ... and analysed by COSY.
        analyzer = CosyAnalyzer(reloaded, specification=cosy_spec)
        result = analyzer.analyze()
        assert result.run_pes == 16
        bottleneck = result.bottleneck()
        assert bottleneck is not None
        assert bottleneck.property_name == "SublinearSpeedup"
        # The injected load imbalance must surface through the refinement chain.
        assert result.severity_of("SyncCost", "particle_push") > 0.05
        assert any(
            "particle_push" in i.subject for i in result.by_property("LoadImbalance")
        )

    def test_pushdown_and_client_agree_on_every_workload(self, cosy_spec):
        for kind in ("stencil", "io_bound", "comm_bound"):
            scenario = build_scenario(kind, pe_counts=(1, 4), specification=cosy_spec)
            client, ids = load_into_backend(scenario, "ms_access")
            push_result = scenario.analyzer.analyze(
                strategy=PushdownStrategy(
                    scenario.specification, scenario.mapping, client, ids
                )
            )
            client_result = scenario.analyzer.analyze(
                strategy=ClientSideStrategy(scenario.specification)
            )
            push = {
                (i.property_name, i.subject): round(i.severity, 9)
                for i in push_result.instances
            }
            ref = {
                (i.property_name, i.subject): round(i.severity, 9)
                for i in client_result.instances
            }
            assert push == ref, kind

    def test_speedup_series_is_monotone_in_cost(self):
        scenario = build_scenario("mixed", pe_counts=(1, 2, 4, 8))
        series = speedup_series(scenario)
        assert [row["pes"] for row in series] == [1.0, 2.0, 4.0, 8.0]
        costs = [row["total_cost"] for row in series]
        assert costs == sorted(costs)
        assert series[0]["total_cost"] == pytest.approx(0.0)
        assert all(row["speedup"] >= 0.99 for row in series)

    def test_bundled_documents_round_trip_through_the_pretty_printer(self, cosy_spec):
        merged_source = COSY_DATA_MODEL + "\n" + COSY_PROPERTIES
        reparsed = parse_asl(unparse(parse_asl(merged_source)))
        assert {d.name for d in reparsed.properties} == set(
            cosy_spec.index.properties
        )


class TestCommandLineInterface:
    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.workload == "mixed"
        assert args.strategy == "client"

    def test_client_strategy_run(self, capsys):
        exit_code = main(
            ["--workload", "imbalanced", "--pes", "1", "4", "--threshold", "0.05"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "KOJAK Cost Analyzer" in output
        assert "Bottleneck" in output
        assert "SublinearSpeedup" in output

    def test_pushdown_strategy_run(self, capsys):
        exit_code = main(
            [
                "--workload", "stencil",
                "--pes", "1", "4",
                "--strategy", "pushdown",
                "--db-backend", "ms_access",
                "--top", "5",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "strategy       : pushdown" in output

    def test_pipelined_pushdown_run(self, capsys):
        exit_code = main(
            [
                "--workload", "stencil",
                "--pes", "1", "4",
                "--strategy", "pushdown",
                "--db-backend", "oracle7",
                "--pipeline-depth", "4",
                "--top", "5",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "strategy       : pushdown-pipelined" in output

    def test_process_executor_pushdown_run(self, capsys):
        exit_code = main(
            [
                "--workload", "stencil",
                "--pes", "1", "4",
                "--strategy", "pushdown",
                "--db-backend", "ms_access",
                "--db-partitions", "4",
                "--db-parallelism", "2",
                "--db-executor", "process",
                "--top", "5",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "strategy       : pushdown" in output

    def test_db_executor_requires_parallelism(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--strategy", "pushdown", "--db-executor", "process"])
        assert excinfo.value.code == 2
        assert "--db-parallelism >= 2" in capsys.readouterr().err

    def test_pipeline_depth_requires_pushdown(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--strategy", "client", "--pipeline-depth", "4"])
        assert excinfo.value.code == 2
        assert "requires --strategy pushdown" in capsys.readouterr().err

    def test_pipeline_depth_must_be_positive(self, capsys):
        with pytest.raises(SystemExit):
            main(["--strategy", "pushdown", "--pipeline-depth", "0"])
        assert "must be >= 1" in capsys.readouterr().err

    def test_show_sql(self, capsys):
        exit_code = main(["--show-sql"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "-- property SublinearSpeedup" in output
        assert "SELECT" in output
        assert "FROM dual" in output
