"""Plan-time semantic analysis: typed rejections identical across every
engine, the conservative-acceptance contract, constant folding and
contradiction pruning with exact stats, the EXPLAIN ``analysis:`` section,
partial-aggregate widening over proven-INTEGER expressions, error
attribution, and the engine-invariant lint pass."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.relalg import (
    Database,
    ExecutionError,
    QueryPlan,
    SemanticError,
    analyze_select,
    parse_sql,
    plan_select,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

_ROWS = [
    (i, i % 5, float(i) * 1.5, ["alpha", "beta", None][i % 3])
    for i in range(60)
]


def _populate(db: Database) -> Database:
    db.execute(
        "CREATE TABLE m (id INTEGER PRIMARY KEY, g INTEGER, x FLOAT, s VARCHAR)"
    )
    db.execute("CREATE TABLE r (id INTEGER PRIMARY KEY, m_id INTEGER, v FLOAT)")
    db.executemany("INSERT INTO m (id, g, x, s) VALUES (?, ?, ?, ?)", _ROWS)
    db.executemany(
        "INSERT INTO r (id, m_id, v) VALUES (?, ?, ?)",
        [(i, (i * 7) % 60, float(i % 11)) for i in range(30)],
    )
    return db


def _engines(process_pool):
    """One database per engine mode; every mode must behave identically."""
    return {
        "interpreted": _populate(Database(engine="interpreted")),
        "vectorized": _populate(Database(n_partitions=3)),
        "row-at-a-time": _populate(Database(n_partitions=3, vectorized=False)),
        "thread": _populate(Database(n_partitions=3, parallel=3)),
        "process": _populate(Database(n_partitions=3, executor=process_pool)),
    }


# --------------------------------------------------------------------------- #
# typed rejection, identical across engines
# --------------------------------------------------------------------------- #

REJECTED = [
    ("SELECT id FROM m WHERE s > 5", "cannot compare VARCHAR and INTEGER"),
    ("SELECT id FROM m WHERE x < s", "cannot compare FLOAT and VARCHAR"),
    ("SELECT id FROM m WHERE s", "WHERE clause must be a condition"),
    ("SELECT id FROM m GROUP BY g HAVING s", "HAVING clause must be a condition"),
    ("SELECT id + s FROM m", "invalid operands for +"),
    ("SELECT -s FROM m", "invalid operand for unary -"),
    ("SELECT SUM(s) FROM m", "SUM requires numeric values"),
    ("SELECT AVG(s) FROM m", "AVG requires numeric values"),
    ("SELECT ABS(s) FROM m", "ABS requires a numeric value"),
    ("SELECT LENGTH(id) FROM m", "LENGTH requires a string value"),
    ("SELECT id FROM m WHERE SUM(id) > 3", "aggregate function SUM is not allowed"),
    ("SELECT nope FROM m", "unknown column nope"),
    ("SELECT id FROM m, r", "ambiguous column reference 'id'"),
]


class TestTypedRejection:
    @pytest.mark.parametrize("sql,needle", REJECTED, ids=[s for s, _ in REJECTED])
    def test_identical_semantic_error_across_engines(
        self, sql, needle, process_pool
    ):
        messages = set()
        for name, db in _engines(process_pool).items():
            with pytest.raises(SemanticError, match=needle) as excinfo:
                db.execute(sql)
            assert isinstance(excinfo.value, ExecutionError), name
            messages.add(str(excinfo.value))
        # byte-identical message (including the character position) everywhere
        assert len(messages) == 1, messages

    def test_error_carries_statement_position(self):
        db = _populate(Database())
        with pytest.raises(SemanticError) as excinfo:
            db.execute("SELECT id FROM m WHERE s > 5")
        assert excinfo.value.position == 25  # the comparison operator
        assert "(at character 25)" in str(excinfo.value)

    def test_rejection_happens_before_any_execution(self):
        db = _populate(Database())
        before = db.execute("SELECT COUNT(*) FROM m").rows
        with pytest.raises(SemanticError):
            db.execute("DELETE FROM m WHERE s > 5")
        assert db.execute("SELECT COUNT(*) FROM m").rows == before

    def test_delete_rejection_identical_across_engines(self, process_pool):
        messages = set()
        for db in _engines(process_pool).values():
            with pytest.raises(SemanticError) as excinfo:
                db.execute("DELETE FROM m WHERE s > 5")
            messages.add(str(excinfo.value))
        assert len(messages) == 1, messages

    def test_rejected_statements_are_not_plan_cached(self):
        db = _populate(Database())
        for _ in range(2):
            with pytest.raises(SemanticError):
                db.execute("SELECT id FROM m WHERE s > 5")
        assert db.plan_cache_info()["size"] == 0


# --------------------------------------------------------------------------- #
# the conservative contract: anything that can succeed at runtime passes
# --------------------------------------------------------------------------- #

ACCEPTED = [
    # truthiness-as-condition is engine behavior; only VARCHAR/TIMESTAMP
    # conditions deterministically mean a bug
    ("SELECT id FROM m WHERE g", []),
    ("SELECT id FROM m WHERE 1", []),
    # EQ/NE across type classes never raises in the engine — rows just
    # compare unequal, so the analyzer must not reject (warn only)
    ("SELECT id FROM m WHERE s = 5", []),
    # VARCHAR + VARCHAR is concatenation, VARCHAR * INTEGER is repetition
    ("SELECT s + s FROM m WHERE s IS NOT NULL", []),
    ("SELECT s * 3 FROM m WHERE s IS NOT NULL", []),
    # placeholders are untypable at plan time: must pass through
    ("SELECT x + ? FROM m", [2.0]),
    # LOWER/UPPER coerce via str() and never raise
    ("SELECT LOWER(id) FROM m", []),
    # NULL literals are valid in any position
    ("SELECT id FROM m WHERE s IS NULL", []),
    ("SELECT COALESCE(s, 'none') FROM m", []),
]


class TestConservativeAcceptance:
    @pytest.mark.parametrize("sql,params", ACCEPTED, ids=[s for s, _ in ACCEPTED])
    def test_statement_accepted_and_engines_agree(self, sql, params, process_pool):
        engines = _engines(process_pool)
        reference = engines.pop("interpreted")
        # no ORDER BY in these statements: compare as multisets
        expected = sorted(map(repr, reference.execute(sql, params).rows))
        for name, db in engines.items():
            got = sorted(map(repr, db.execute(sql, params).rows))
            assert got == expected, name

    def test_mistyped_equality_returns_empty_not_error(self):
        db = _populate(Database())
        assert db.execute("SELECT id FROM m WHERE s = 5").rows == []

    def test_analyzer_marks_accepted_statements_clean(self):
        db = _populate(Database())
        for sql, _ in ACCEPTED:
            analysis = analyze_select(parse_sql(sql), db.tables)
            assert not analysis.errors, sql


# --------------------------------------------------------------------------- #
# constant folding
# --------------------------------------------------------------------------- #

class TestConstantFolding:
    def test_folded_predicate_matches_handwritten(self):
        folded = _populate(Database(n_partitions=3))
        handwritten = _populate(Database(n_partitions=3))
        a = folded.execute("SELECT id, x FROM m WHERE id = 1 + 1")
        b = handwritten.execute("SELECT id, x FROM m WHERE id = 2")
        assert a.rows == b.rows
        assert a.stats == b.stats

    def test_folding_upgrades_to_index_probe(self):
        db = _populate(Database(n_partitions=3))
        text = db.explain("SELECT id FROM m WHERE id = 1 + 1")
        assert "index-probe on id" in text
        assert "folded: id = (1 + 1) -> id = 2" in text

    def test_interpreted_rows_agree_on_folded_statement(self):
        compiled = _populate(Database())
        interp = _populate(Database(engine="interpreted"))
        sql = "SELECT id FROM m WHERE g = 6 - 4 ORDER BY id"
        assert compiled.execute(sql).rows == interp.execute(sql).rows

    def test_raising_constants_stay_in_the_tree(self):
        # 1/0 must NOT fold away: the engine reports it at execution time.
        db = _populate(Database())
        with pytest.raises(ExecutionError, match="division by zero"):
            db.execute("SELECT id FROM m WHERE x > 1 / 0")


# --------------------------------------------------------------------------- #
# contradiction pruning with exact stats
# --------------------------------------------------------------------------- #

class TestContradictionPruning:
    def test_always_false_conjuncts_skip_the_scan(self, process_pool):
        for name, db in _engines(process_pool).items():
            if name == "interpreted":
                continue  # the AST walker has no plan to prune
            result = db.execute("SELECT id FROM m WHERE g = 1 AND g = 2")
            assert result.rows == [], name
            assert result.stats.rows_scanned == 0, name

    def test_ungrouped_aggregate_over_contradiction(self):
        db = _populate(Database())
        result = db.execute("SELECT COUNT(*), SUM(x) FROM m WHERE g = 1 AND g = 2")
        assert result.rows == [(0, None)]
        assert result.stats.rows_scanned == 0

    def test_null_operand_comparison_skips_the_scan(self):
        db = _populate(Database())
        result = db.execute("SELECT id FROM m WHERE g = NULL")
        assert result.rows == []
        assert result.stats.rows_scanned == 0

    def test_always_true_conjunct_dropped_without_changing_rows(self):
        with_tautology = _populate(Database(n_partitions=3))
        without = _populate(Database(n_partitions=3))
        a = with_tautology.execute("SELECT id FROM m WHERE g = 2 AND 1 = 1")
        b = without.execute("SELECT id FROM m WHERE g = 2")
        assert a.rows == b.rows
        assert a.stats.rows_scanned == b.stats.rows_scanned
        assert "always-true: 1 = 1 (conjunct dropped)" in with_tautology.explain(
            "SELECT id FROM m WHERE g = 2 AND 1 = 1"
        )

    def test_interpreted_rows_agree_on_contradictions(self):
        interp = _populate(Database(engine="interpreted"))
        assert interp.execute("SELECT id FROM m WHERE g = 1 AND g = 2").rows == []
        assert interp.execute("SELECT id FROM m WHERE g = NULL").rows == []


# --------------------------------------------------------------------------- #
# EXPLAIN analysis section
# --------------------------------------------------------------------------- #

class TestExplainAnalysis:
    def test_no_findings(self):
        db = _populate(Database())
        text = db.explain("SELECT id FROM m WHERE g = 2")
        assert "analysis:" in text
        assert "no findings" in text

    def test_contradiction_reported(self):
        db = _populate(Database())
        text = db.explain("SELECT id FROM m WHERE g = 1 AND g = 2")
        assert "contradiction: g = 1 AND g = 2 (scan skipped)" in text

    def test_null_operand_reported(self):
        db = _populate(Database())
        text = db.explain("SELECT id FROM m WHERE g = NULL")
        assert "always-false: g = NULL (NULL operand; scan skipped)" in text

    def test_cross_join_warning(self):
        db = _populate(Database())
        text = db.explain("SELECT m.id, r.v FROM m, r LIMIT 3")
        assert "warning: cross join: no predicate connects m, r" in text

    def test_no_cross_join_warning_when_connected(self):
        db = _populate(Database())
        text = db.explain("SELECT m.id, r.v FROM m, r WHERE m.id = r.m_id")
        assert "cross join" not in text

    def test_non_sargable_warning(self):
        db = _populate(Database())
        text = db.explain("SELECT id FROM m WHERE id + 1 = 10")
        assert "warning: non-sargable predicate on indexed column id" in text

    def test_mixed_type_equality_warning(self):
        db = _populate(Database())
        text = db.explain("SELECT id FROM m WHERE s = 5")
        assert "mixed-type comparison s = 5" in text


# --------------------------------------------------------------------------- #
# partial-aggregate widening over proven-INTEGER expressions
# --------------------------------------------------------------------------- #

class TestPartialAggregateWidening:
    def test_integer_expression_ships_partial_states(self):
        db = _populate(Database(n_partitions=3))
        plan = plan_select(
            parse_sql("SELECT g, SUM(g + id) FROM m GROUP BY g"), db.tables
        )
        assert plan.partial_aggregate_spec is not None
        kinds = [kind for kind, _ in plan.partial_aggregate_spec[1]]
        assert "sum" in kinds

    def test_float_sum_stays_unmergeable(self):
        # Pinned: float addition is not associative across shards.
        db = _populate(Database(n_partitions=3))
        plan = plan_select(
            parse_sql("SELECT g, SUM(x) FROM m GROUP BY g"), db.tables
        )
        assert plan.partial_aggregate_spec is None
        assert "partial-aggregation" not in db.explain(
            "SELECT g, SUM(x) FROM m GROUP BY g"
        )

    def test_untyped_expressions_stay_unmergeable(self):
        db = _populate(Database(n_partitions=3))
        for sql in (
            "SELECT g, SUM(id / 2) FROM m GROUP BY g",  # DIV may yield float
            "SELECT g, SUM(id + ?) FROM m GROUP BY g",  # placeholder untyped
        ):
            plan = plan_select(parse_sql(sql), db.tables)
            assert plan.partial_aggregate_spec is None, sql

    def test_explain_reports_mergeable(self):
        db = _populate(Database(n_partitions=3))
        text = db.explain("SELECT g, SUM(g + id) FROM m GROUP BY g")
        assert "partial-aggregation: mergeable" in text

    def test_process_executor_takes_the_merge_path(
        self, process_pool, monkeypatch
    ):
        sql = "SELECT g, SUM(g + id), AVG(id + id), COUNT(*) FROM m GROUP BY g ORDER BY g"
        expected = _populate(Database(n_partitions=3)).execute(sql).rows

        merged = []
        original = QueryPlan._merge_partial_aggregate

        def spy(self, partials, ctx):
            merged.append(len(partials))
            return original(self, partials, ctx)

        monkeypatch.setattr(QueryPlan, "_merge_partial_aggregate", spy)
        db = _populate(Database(n_partitions=3, executor=process_pool))
        assert db.execute(sql).rows == expected
        assert merged, "partial-aggregate merge path was not taken"


# --------------------------------------------------------------------------- #
# error attribution
# --------------------------------------------------------------------------- #

class TestErrorAttribution:
    def test_division_by_zero_names_the_expression(self, process_pool):
        messages = set()
        for db in _engines(process_pool).values():
            with pytest.raises(ExecutionError, match="division by zero") as excinfo:
                db.execute("SELECT x / (g - g) FROM m")
            messages.add(str(excinfo.value))
        assert messages == {"division by zero in x / (g - g)"}

    def test_invalid_operands_name_the_expression(self, process_pool):
        messages = set()
        for db in _engines(process_pool).values():
            with pytest.raises(ExecutionError, match="invalid operands") as excinfo:
                db.execute("SELECT x + ? FROM m", ["oops"])
            messages.add(str(excinfo.value))
        assert len(messages) == 1
        assert "in x + ?" in next(iter(messages))


# --------------------------------------------------------------------------- #
# the engine-invariant lint pass
# --------------------------------------------------------------------------- #

class TestLintEngine:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "tools.lint_engine", *args],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )

    def test_engine_sources_are_clean(self):
        proc = self._run()
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_bare_assert_is_flagged(self, tmp_path):
        bad = tmp_path / "engine_module.py"
        bad.write_text("def f(x):\n    assert x > 0\n    return x\n")
        proc = self._run(str(bad))
        assert proc.returncode == 1
        assert "E100" in proc.stdout

    def test_swallowing_broad_except_is_flagged(self, tmp_path):
        bad = tmp_path / "engine_module.py"
        bad.write_text(
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            "    except Exception:\n"
            "        return None\n"
        )
        proc = self._run(str(bad))
        assert proc.returncode == 1
        assert "E200" in proc.stdout

    def test_pragma_and_reraise_are_allowed(self, tmp_path):
        good = tmp_path / "engine_module.py"
        good.write_text(
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            "    except Exception:  # lint: allow-broad-except\n"
            "        return None\n"
            "def g():\n"
            "    try:\n"
            "        return 1\n"
            "    except Exception as exc:\n"
            "        raise RuntimeError('wrapped') from exc\n"
        )
        proc = self._run(str(good))
        assert proc.returncode == 0, proc.stdout

    def test_wall_clock_in_relalg_is_flagged(self, tmp_path):
        relalg_dir = tmp_path / "relalg"
        relalg_dir.mkdir()
        bad = relalg_dir / "engine_module.py"
        bad.write_text("import time\n\ndef f():\n    return time.time()\n")
        proc = self._run(str(bad))
        assert proc.returncode == 1
        assert "E300" in proc.stdout
