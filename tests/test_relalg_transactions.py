"""Transaction semantics and write-ahead durability of the relalg engine.

Covers the BEGIN / COMMIT / ROLLBACK surface end to end: statement parsing,
read-your-writes inside a transaction, byte-identical rollback (rows, index
buckets, tombstones and table statistics, all via the state fingerprint),
snapshot isolation of the committed view, the autocommit-only DDL rule,
close()-time rollback, WAL recovery and checkpointing, the client and
backend pass-through, and the loader's atomic bulk-load mode.
"""

import warnings

import pytest

from repro.bench.scenarios import build_scenario, identical_table_contents
from repro.compiler import DatabaseLoader, load_repository
from repro.relalg import (
    AsyncClient,
    Database,
    ExecutionError,
    IntegrityError,
    NativeClient,
    RecoveryError,
    TransactionWarning,
    backend,
    fingerprint_hash,
    state_fingerprint,
)

_DDL = "CREATE TABLE t (id INTEGER PRIMARY KEY, g INTEGER, x FLOAT)"
_INS = "INSERT INTO t (id, g, x) VALUES (?, ?, ?)"


def _state(database):
    return fingerprint_hash(state_fingerprint(database))


def _fresh(**kwargs):
    database = Database(n_partitions=4, **kwargs)
    database.execute(_DDL)
    database.execute("CREATE INDEX t_g ON t (g)")
    database.executemany(_INS, [(i, i % 3, float(i)) for i in range(1, 41)])
    return database


def _count(database):
    return database.query("SELECT COUNT(*) FROM t").scalar()


class TestTransactionStatements:
    def test_begin_commit_makes_changes_permanent(self):
        with _fresh() as db:
            db.execute("BEGIN")
            assert db.in_transaction
            db.execute(_INS, (100, 0, 1.0))
            db.execute("COMMIT")
            assert not db.in_transaction
            assert _count(db) == 41

    def test_transaction_and_work_suffixes_parse(self):
        with _fresh() as db:
            for begin, end in (
                ("BEGIN TRANSACTION", "COMMIT TRANSACTION"),
                ("BEGIN WORK", "ROLLBACK WORK"),
                ("begin", "commit work"),
            ):
                db.execute(begin)
                assert db.in_transaction
                db.execute(end)
                assert not db.in_transaction

    def test_python_level_helpers(self):
        with _fresh() as db:
            db.begin()
            db.execute("DELETE FROM t WHERE g = ?", [0])
            db.rollback()
            assert _count(db) == 40

    def test_read_your_writes_inside_transaction(self):
        with _fresh() as db:
            db.begin()
            db.execute(_INS, (200, 1, 2.0))
            db.execute("DELETE FROM t WHERE id = ?", [1])
            assert _count(db) == 40
            assert db.query("SELECT g FROM t WHERE id = ?", [200]).scalar() == 1
            assert db.query("SELECT COUNT(*) FROM t WHERE id = ?", [1]).scalar() == 0
            db.rollback()

    def test_nested_begin_rejected(self):
        with _fresh() as db:
            db.begin()
            with pytest.raises(ExecutionError, match="nested"):
                db.execute("BEGIN")
            assert db.in_transaction  # the open transaction survives
            db.rollback()

    def test_commit_and_rollback_outside_transaction_rejected(self):
        with _fresh() as db:
            with pytest.raises(ExecutionError, match="COMMIT outside"):
                db.execute("COMMIT")
            with pytest.raises(ExecutionError, match="ROLLBACK outside"):
                db.execute("ROLLBACK")


class TestRollbackRestoresState:
    def test_rollback_is_byte_identical(self):
        with _fresh() as db:
            # Tombstones near the compaction threshold make the restore
            # interesting: deferred compaction must not fire mid-transaction.
            db.execute("DELETE FROM t WHERE g = ?", [2])
            before = _state(db)
            db.begin()
            db.executemany(_INS, [(500 + i, i % 3, -1.0) for i in range(25)])
            db.execute("DELETE FROM t WHERE x > ?", [10.0])
            db.execute("DELETE FROM t WHERE g = ?", [1])
            db.rollback()
            assert _state(db) == before

    def test_commit_then_new_rollback_only_undoes_second_txn(self):
        with _fresh() as db:
            db.begin()
            db.execute(_INS, (300, 2, 3.0))
            db.commit()
            committed = _state(db)
            db.begin()
            db.execute("DELETE FROM t WHERE id = ?", [300])
            db.rollback()
            assert _state(db) == committed

    def test_mid_batch_integrity_error_inside_transaction(self):
        """A duplicate key mid-executemany leaves the batch unapplied and the
        transaction alive; rollback then restores the pre-BEGIN state."""
        with _fresh() as db:
            before = _state(db)
            db.begin()
            db.execute(_INS, (400, 0, 4.0))
            with pytest.raises(IntegrityError, match="duplicate primary key"):
                db.executemany(_INS, [(401, 0, 1.0), (5, 0, 1.0), (402, 0, 1.0)])
            assert db.in_transaction
            # The failed batch vanished; the transaction's own insert stays
            # visible until the rollback.
            assert db.query(
                "SELECT COUNT(*) FROM t WHERE id >= ?", [400]
            ).scalar() == 1
            db.rollback()
            assert _state(db) == before

    def test_rollback_restores_statistics_and_indexes(self):
        with _fresh() as db:
            stats_before = db.table("t").statistics()
            db.begin()
            db.executemany(_INS, [(600 + i, 0, 0.5) for i in range(10)])
            db.execute("DELETE FROM t WHERE g = ?", [0])
            db.rollback()
            assert db.table("t").statistics() == stats_before
            assert db.query("SELECT COUNT(*) FROM t WHERE g = ?", [0]).scalar() > 0


class TestAutocommitOnlyOperations:
    def test_ddl_inside_transaction_rejected(self, tmp_path):
        with _fresh(wal_path=str(tmp_path / "d.wal")) as db:
            db.begin()
            for sql in (
                "CREATE TABLE u (id INTEGER PRIMARY KEY)",
                "CREATE INDEX t_x ON t (x)",
                "DROP TABLE t",
            ):
                with pytest.raises(ExecutionError, match="inside a transaction"):
                    db.execute(sql)
            with pytest.raises(ExecutionError, match="inside a transaction"):
                db.checkpoint()
            assert db.in_transaction  # still usable after every refusal
            db.execute(_INS, (700, 0, 7.0))
            db.commit()
            assert _count(db) == 41

    def test_checkpoint_without_wal_rejected(self):
        with _fresh() as db:
            with pytest.raises(ExecutionError, match="write-ahead log"):
                db.checkpoint()


class TestSnapshotIsolation:
    def test_partition_snapshot_hides_staged_rows(self):
        with _fresh() as db:
            table = db.table("t")
            committed = [
                table.partition_snapshot(pid)[1]
                for pid in range(table.n_partitions)
            ]
            db.begin()
            db.executemany(_INS, [(800 + i, i % 3, 8.0) for i in range(16)])
            db.execute("DELETE FROM t WHERE g = ?", [1])
            staged_view = [
                table.partition_snapshot(pid)[1]
                for pid in range(table.n_partitions)
            ]
            assert staged_view == committed
            assert staged_view == [
                table.committed_rows(pid) for pid in range(table.n_partitions)
            ]
            db.rollback()

    def test_process_fanout_falls_back_while_staged(self, process_pool):
        """With staged writes, the process executor's shards only hold
        committed versions — the query must still see the staged rows."""
        with Database(n_partitions=4, executor=process_pool) as db:
            db.execute(_DDL)
            db.executemany(_INS, [(i, i % 3, float(i)) for i in range(1, 41)])
            assert _count(db) == 40  # warm the shard sync on the pool
            db.begin()
            db.execute(_INS, (900, 0, 9.0))
            assert _count(db) == 41
            db.commit()
            assert _count(db) == 41


class TestCloseWithOpenTransaction:
    def test_close_rolls_back_with_warning(self, tmp_path):
        wal_path = tmp_path / "close.wal"
        db = _fresh(wal_path=str(wal_path))
        db.begin()
        db.execute(_INS, (1000, 0, 1.0))
        with pytest.warns(TransactionWarning, match="rolling back"):
            db.close()
        with Database(n_partitions=4, wal_path=str(wal_path)) as recovered:
            assert _count(recovered) == 40

    def test_context_exit_rolls_back(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", TransactionWarning)
            with _fresh() as db:
                db.begin()
                db.execute(_INS, (1001, 0, 1.0))
        assert not db.in_transaction


class TestWriteAheadLog:
    def test_recovery_is_byte_identical(self, tmp_path):
        wal_path = tmp_path / "r.wal"
        db = _fresh(wal_path=str(wal_path))
        db.begin()
        db.executemany(_INS, [(1100 + i, i % 3, 0.25) for i in range(12)])
        db.execute("DELETE FROM t WHERE g = ?", [2])
        db.commit()
        db.begin()
        db.execute(_INS, (1200, 0, 0.0))
        db.rollback()
        expected = _state(db)
        db.close()
        with Database(n_partitions=4, wal_path=str(wal_path)) as recovered:
            assert _state(recovered) == expected

    def test_wal_run_matches_pure_in_memory_run(self, tmp_path):
        with _fresh() as plain, _fresh(wal_path=str(tmp_path / "m.wal")) as walled:
            for db in (plain, walled):
                db.begin()
                db.execute("DELETE FROM t WHERE x < ?", [5.0])
                db.commit()
            assert _state(walled) == _state(plain)

    def test_checkpoint_truncates_and_recovers(self, tmp_path):
        wal_path = tmp_path / "c.wal"
        db = _fresh(wal_path=str(wal_path), wal_autocheckpoint=None)
        grown = wal_path.stat().st_size
        db.checkpoint()
        assert (tmp_path / "c.wal.ckpt").exists()
        assert wal_path.stat().st_size < grown
        db.execute(_INS, (1300, 1, 13.0))
        expected = _state(db)
        db.close()
        with Database(n_partitions=4, wal_path=str(wal_path)) as recovered:
            assert _state(recovered) == expected

    def test_autocheckpoint_triggers_by_log_size(self, tmp_path):
        wal_path = tmp_path / "a.wal"
        with Database(n_partitions=4, wal_path=str(wal_path),
                      wal_autocheckpoint=2_000) as db:
            db.execute(_DDL)
            for i in range(40):
                db.execute(_INS, (i, i % 3, float(i)))
            assert (tmp_path / "a.wal.ckpt").exists()
            assert wal_path.stat().st_size < 2_000 + 500

    def test_stale_checkpoint_generation_rejected(self, tmp_path):
        """A log generation newer than the checkpoint's is unrecoverable —
        restoring an old checkpoint under a new log must fail loudly, not
        replay new records onto old state."""
        wal_path = tmp_path / "g.wal"
        ckpt_path = tmp_path / "g.wal.ckpt"
        db = _fresh(wal_path=str(wal_path), wal_autocheckpoint=None)
        db.checkpoint()
        stale = ckpt_path.read_bytes()
        db.execute(_INS, (1400, 0, 14.0))
        db.checkpoint()
        db.execute(_INS, (1401, 0, 14.0))
        db.close()
        ckpt_path.write_bytes(stale)
        with pytest.raises(RecoveryError, match="generation"):
            Database(n_partitions=4, wal_path=str(wal_path))


class TestClientPassThrough:
    def test_native_client_charges_transaction_statements(self):
        client = NativeClient(backend("oracle7"))
        client.execute(_DDL)
        client.backend.reset_clock()
        client.begin()
        charged = client.elapsed
        assert charged > 0.0
        client.execute(_INS, (1, 0, 1.0))
        client.commit()
        assert client.elapsed > charged
        assert client.backend.database.query("SELECT COUNT(*) FROM t").scalar() == 1

    def test_rollback_through_client(self):
        client = NativeClient(backend("ms_access"))
        client.execute(_DDL)
        client.begin()
        client.execute(_INS, (1, 0, 1.0))
        client.rollback()
        assert client.backend.database.query("SELECT COUNT(*) FROM t").scalar() == 0

    def test_async_client_begin_is_a_sync_point(self):
        pipeline = AsyncClient(NativeClient(backend("oracle7")), window=4)
        pipeline.execute(_DDL)
        for i in range(1, 4):
            pipeline.submit(_INS, (i, 0, float(i)))
        # begin() must gather the in-flight autocommit inserts first, so none
        # of them lands inside (and could be undone with) the transaction.
        pipeline.begin()
        database = pipeline.client.backend.database
        assert database.in_transaction
        assert database.query("SELECT COUNT(*) FROM t").scalar() == 3
        pipeline.submit(_INS, (10, 1, 10.0))
        pipeline.rollback()
        assert not database.in_transaction
        assert database.query("SELECT COUNT(*) FROM t").scalar() == 3


class TestAtomicBulkLoad:
    @pytest.fixture(scope="class")
    def scenario(self):
        return build_scenario(pe_counts=(1, 2))

    def test_atomic_load_matches_plain_load(self, scenario):
        with Database(n_partitions=2) as plain, Database(n_partitions=2) as atomic:
            load_repository(scenario.repository, scenario.mapping, plain,
                            batch_size=16)
            load_repository(scenario.repository, scenario.mapping, atomic,
                            batch_size=16, atomic=True)
            assert not atomic.in_transaction
            assert identical_table_contents(plain, atomic)
            assert _state(atomic) == _state(plain)

    def test_failed_atomic_load_rolls_back(self, scenario):
        class FailingExecutor:
            """Delegates to a database, failing one execute() mid-load."""

            def __init__(self, database, fail_at):
                self.database = database
                self.calls = 0
                self.fail_at = fail_at

            def execute(self, sql, params=()):
                self.calls += 1
                if self.calls == self.fail_at:
                    raise RuntimeError("simulated load failure")
                return self.database.execute(sql, params)

            def executemany(self, sql, rows):
                self.calls += 1
                if self.calls == self.fail_at:
                    raise RuntimeError("simulated load failure")
                return self.database.executemany(sql, rows)

        with Database(n_partitions=2) as db:
            executor = FailingExecutor(db, fail_at=10_000)
            loader = DatabaseLoader(scenario.mapping, executor, batch_size=16)
            loader.create_schema()
            after_schema = _state(db)
            executor.fail_at = executor.calls + 12  # mid-load, past BEGIN
            with pytest.raises(RuntimeError, match="simulated load failure"):
                loader.load(scenario.repository, atomic=True)
            assert not db.in_transaction
            assert _state(db) == after_schema

    def test_atomic_load_is_durable(self, scenario, tmp_path):
        wal_path = tmp_path / "load.wal"
        with Database(n_partitions=2, wal_path=str(wal_path)) as db:
            load_repository(scenario.repository, scenario.mapping, db,
                            batch_size=16, atomic=True)
            expected = _state(db)
        with Database(n_partitions=2, wal_path=str(wal_path)) as recovered:
            assert _state(recovered) == expected
