"""Tests of the event-trace substrate and the related-work baseline analyzers."""

import pytest

from repro.apprentice import synthetic_workload
from repro.baselines import (
    EarlAnalyzer,
    EdlAnalyzer,
    Finding,
    ParadynSearch,
    RuleEngine,
    default_rule_base,
    match_stream,
    prim,
    rank_findings,
    seq,
    star,
    alt,
    plus,
)
from repro.traces import Event, EventKind, Trace, generate_trace


@pytest.fixture(scope="module")
def mixed_trace():
    return generate_trace(synthetic_workload("mixed"), pes=8)


@pytest.fixture(scope="module")
def imbalanced_version_and_run(imbalanced_repository):
    version = imbalanced_repository.programs[0].latest_version()
    return version, version.run_with_pes(16)


class TestTraceModel:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            Event(time=-1.0, pe=0, kind=EventKind.ENTER)
        with pytest.raises(ValueError):
            Event(time=0.0, pe=-1, kind=EventKind.ENTER)

    def test_trace_requires_processes(self):
        with pytest.raises(ValueError):
            Trace(pes=0)

    def test_events_are_sorted_by_time(self, mixed_trace):
        times = [event.time for event in mixed_trace]
        assert times == sorted(times)

    def test_per_pe_and_kind_filters(self, mixed_trace):
        pe0 = mixed_trace.for_pe(0)
        assert pe0 and all(event.pe == 0 for event in pe0)
        barriers = mixed_trace.of_kind(EventKind.BARRIER_ENTER)
        assert barriers and all(
            event.kind is EventKind.BARRIER_ENTER for event in barriers
        )

    def test_enter_exit_pairs_balance(self, mixed_trace):
        enters = len(mixed_trace.of_kind(EventKind.ENTER))
        exits = len(mixed_trace.of_kind(EventKind.EXIT))
        assert enters == exits > 0

    def test_region_times_include_the_injected_regions(self, mixed_trace):
        times = mixed_trace.region_times()
        assert times["app_main"] > 0
        assert "assemble_matrix" in times

    def test_barrier_wait_times_peak_in_the_imbalanced_region(self, mixed_trace):
        waits = mixed_trace.barrier_wait_times()
        assert waits
        assert max(waits, key=waits.get) == "assemble_matrix"

    def test_message_statistics(self, mixed_trace):
        stats = mixed_trace.message_statistics()
        assert stats["messages"] > 0
        assert stats["bytes"] > 0
        assert stats["mean_size"] > 0

    def test_trace_generation_is_deterministic(self):
        workload = synthetic_workload("stencil")
        a = generate_trace(workload, 4)
        b = generate_trace(synthetic_workload("stencil"), 4)
        assert len(a) == len(b)
        assert a.duration() == pytest.approx(b.duration())

    def test_generator_rejects_invalid_pe_count(self):
        with pytest.raises(ValueError):
            generate_trace(synthetic_workload("stencil"), 0)


class TestEdlPatterns:
    def events(self):
        return [
            Event(time=float(i), pe=0, kind=kind, region="r")
            for i, kind in enumerate(
                [
                    EventKind.ENTER,
                    EventKind.SEND,
                    EventKind.SEND,
                    EventKind.RECV,
                    EventKind.EXIT,
                ]
            )
        ]

    def test_prim_and_seq(self):
        pattern = seq(
            prim(lambda e: e.kind is EventKind.ENTER),
            prim(lambda e: e.kind is EventKind.SEND),
        )
        matches = match_stream(pattern, self.events())
        assert len(matches) == 1
        assert matches[0].start == 0 and matches[0].end == 2

    def test_star_matches_repetitions(self):
        pattern = seq(
            prim(lambda e: e.kind is EventKind.ENTER),
            star(prim(lambda e: e.kind is EventKind.SEND)),
            prim(lambda e: e.kind is EventKind.RECV),
        )
        matches = match_stream(pattern, self.events())
        assert len(matches) == 1
        assert matches[0].end == 4

    def test_plus_requires_at_least_one(self):
        pattern = plus(prim(lambda e: e.kind is EventKind.RECV))
        assert not match_stream(pattern, self.events()[:3])
        assert match_stream(pattern, self.events())

    def test_alt_matches_either_branch(self):
        pattern = alt(
            prim(lambda e: e.kind is EventKind.RECV),
            prim(lambda e: e.kind is EventKind.ENTER),
        )
        matches = match_stream(pattern, self.events())
        assert len(matches) == 2

    def test_match_duration(self):
        pattern = seq(
            prim(lambda e: e.kind is EventKind.ENTER),
            star(prim(lambda e: True)),
        )
        matches = match_stream(pattern, self.events())
        assert matches[0].duration == pytest.approx(4.0)


class TestBaselineAnalyzers:
    def test_paradyn_detects_sync_waiting_in_the_imbalanced_region(
        self, mixed_repository, mixed_run
    ):
        version = mixed_repository.programs[0].latest_version()
        findings = ParadynSearch(mixed_repository).search(version, mixed_run)
        sync = [f for f in findings if f.problem == "ExcessiveSyncWaitingTime"]
        assert any(f.location == "assemble_matrix" for f in sync)

    def test_paradyn_refines_down_the_region_tree(self, mixed_repository, mixed_run):
        version = mixed_repository.programs[0].latest_version()
        findings = ParadynSearch(mixed_repository).search(version, mixed_run)
        locations = {f.location for f in findings}
        assert "app_main" in locations
        assert len(locations) > 1

    def test_paradyn_hypothesis_set_is_fixed(self, mixed_repository, mixed_run):
        version = mixed_repository.programs[0].latest_version()
        findings = ParadynSearch(mixed_repository).search(version, mixed_run)
        assert {f.problem for f in findings} <= {
            "CPUbound",
            "ExcessiveSyncWaitingTime",
            "ExcessiveIOBlockingTime",
            "ExcessiveCommunication",
        }

    def test_opal_refinement_reaches_load_imbalance(
        self, imbalanced_repository, imbalanced_version_and_run
    ):
        version, run = imbalanced_version_and_run
        engine = RuleEngine(imbalanced_repository, default_rule_base())
        findings = engine.analyze(version, run)
        problems = {f.problem for f in findings}
        assert "ParallelizationOverhead" in problems
        assert "SyncProblem" in problems
        assert "LoadImbalance" in problems
        assert engine.evaluated > 3

    def test_opal_findings_are_ranked(self, mixed_repository, mixed_run):
        version = mixed_repository.programs[0].latest_version()
        findings = RuleEngine(mixed_repository, default_rule_base()).analyze(
            version, mixed_run
        )
        severities = [f.severity for f in findings]
        assert severities == sorted(severities, reverse=True)

    def test_edl_detects_barrier_wait_and_serialized_io(self, mixed_trace):
        findings = EdlAnalyzer().analyze(mixed_trace)
        problems = {(f.problem, f.location) for f in findings}
        assert ("BarrierWait", "assemble_matrix") in problems
        assert any(p == "SerializedIO" for p, _ in problems)

    def test_earl_scripts_find_the_dominant_region_and_barrier_wait(self, mixed_trace):
        findings = EarlAnalyzer().analyze(mixed_trace)
        problems = {f.problem for f in findings}
        assert "DominantRegion" in problems
        assert "BarrierWait" in problems

    def test_rank_findings_orders_by_severity(self):
        findings = [
            Finding(problem="A", location="x", severity=0.1),
            Finding(problem="B", location="y", severity=0.9),
        ]
        assert rank_findings(findings)[0].problem == "B"

    def test_all_approaches_agree_on_the_injected_bottleneck(
        self, mixed_repository, mixed_run, mixed_trace
    ):
        """COSY, Paradyn-, OPAL-, EDL- and EARL-like analyses all point at the
        barrier / load-imbalance problem in assemble_matrix (E5's claim)."""
        version = mixed_repository.programs[0].latest_version()
        paradyn = ParadynSearch(mixed_repository).search(version, mixed_run)
        opal = RuleEngine(mixed_repository, default_rule_base()).analyze(
            version, mixed_run
        )
        edl = EdlAnalyzer().analyze(mixed_trace)
        earl = EarlAnalyzer().analyze(mixed_trace)
        for findings in (paradyn, opal, edl, earl):
            assert any(
                "assemble_matrix" in f.location for f in findings
            ), findings[:3]
