"""Crash-recovery differential tests for the write-ahead log.

Every test compares *recovered* state against a shadow run that never
crashed, using the oracle of :mod:`tests.faultinject`: a crash at WAL event
``k`` must recover to exactly the durable boundary the log's content
predicts — the last appended durable record for an in-process death, the
last fsynced one for a power loss, and either of the two for a torn tail.

Three layers, in increasing realism:

* **corpus replay** — recorded seeds sweep first, failing fast by seed;
* **crash-point sweep fuzzer** — for each exploration seed, the seeded
  operation stream is run once to count its WAL events, then crashed at
  *every* event, and each of the three crash images is recovered and
  checked (seeds whose sweep diverges are appended to the corpus);
* **SIGKILL subprocesses** — a child process is killed for real mid-stream
  (and mid-E6-bulk-load) and its recovered state must land on a clean-run
  boundary at or past the durable progress the child had advertised.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import faultinject as fi

_CORPUS_PATH = Path(__file__).resolve().parent / "corpus" / "crash_seeds.json"

#: Exploration seeds for the full crash-point sweep.  Four seeds yield
#: roughly 230 crash points (each recovered in up to three images), well
#: past the 100-case acceptance floor; seeds 1, 3 and 7 include mid-stream
#: checkpoints, 5 is checkpoint-free.
_SWEEP_SEEDS = (1, 3, 5, 7)


def _corpus_seeds():
    data = json.loads(_CORPUS_PATH.read_text())
    seeds = [entry["seed"] for entry in data["seeds"]]
    assert seeds == sorted(set(seeds)), "corpus seeds must be unique and sorted"
    return seeds


def _persist_counterexample(seed: int, note: str) -> None:
    """Pin a diverging seed in the replay corpus (idempotent)."""
    data = json.loads(_CORPUS_PATH.read_text())
    if all(entry["seed"] != seed for entry in data["seeds"]):
        data["seeds"].append({"seed": seed, "note": note})
        data["seeds"].sort(key=lambda entry: entry["seed"])
        _CORPUS_PATH.write_text(json.dumps(data, indent=2) + "\n")


def _run_crash_sweep(seed, tmp_path, persist=False):
    """Crash the seeded stream at every WAL event and check every recovery."""
    ops = fi.make_ops(seed)
    boundaries = fi.shadow_fingerprints(ops)
    n_events = fi.count_events(seed, str(tmp_path))
    assert n_events > 0
    failures = []
    for point in range(1, n_events + 1):
        case_dir = tmp_path / f"point{point}"
        case_dir.mkdir()
        failures.extend(
            fi.run_crash_case(seed, point, str(case_dir), ops, boundaries)
        )
    if failures and persist:
        _persist_counterexample(seed, failures[0])
    assert not failures, "\n".join(failures)


# --------------------------------------------------------------------------- #
# Seed corpus: previously recorded fuzzer seeds replay before exploration
# --------------------------------------------------------------------------- #


class TestCrashSeedCorpus:
    """Deterministic replay of the recorded crash-seed corpus.

    These run before (and independently of) the random exploration below: a
    regression on a recovery path the corpus pins fails fast, by seed, with
    the note recorded in ``tests/corpus/crash_seeds.json``.
    """

    @pytest.mark.parametrize("seed", _corpus_seeds())
    def test_corpus_crash_sweep(self, seed, tmp_path):
        _run_crash_sweep(seed, tmp_path)


class TestCrashPointFuzzer:
    @pytest.mark.parametrize("seed", _SWEEP_SEEDS)
    def test_every_crash_point_recovers_to_a_boundary(self, seed, tmp_path):
        _run_crash_sweep(seed, tmp_path, persist=True)

    def test_sweep_covers_the_acceptance_floor(self, tmp_path):
        """The sweep seeds alone span >= 100 distinct crash points."""
        total = 0
        for index, seed in enumerate(_SWEEP_SEEDS):
            seed_dir = tmp_path / f"seed{index}"
            seed_dir.mkdir()
            total += fi.count_events(seed, str(seed_dir))
        assert total >= 100

    def test_crash_during_database_open_recovers_empty(self, tmp_path):
        """Dying inside ``Database.__init__`` (fresh-log reset) loses nothing."""
        failures = fi.run_crash_case(3, 1, str(tmp_path))
        assert not failures


# --------------------------------------------------------------------------- #
# SIGKILL subprocess variants: a real kill, not a simulated one
# --------------------------------------------------------------------------- #

_CHILD_SCRIPT = str(Path(fi.__file__).resolve())


def _spawn(args):
    return subprocess.Popen([sys.executable, _CHILD_SCRIPT, *args])


def _read_progress(progress_path):
    try:
        text = Path(progress_path).read_text().strip()
        return int(text) if text else 0
    except (FileNotFoundError, ValueError):
        # The child truncates before rewriting, so a read can catch the file
        # empty; treat it as "no newer boundary reported yet".
        return 0


def _kill_after_progress(proc, progress_path, threshold, timeout_s=60):
    """SIGKILL ``proc`` once it reports ``threshold`` durable boundaries.

    If the child finishes the whole stream first that is fine too — the
    recovery assertion below covers both outcomes.
    """
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        if _read_progress(progress_path) >= threshold or proc.poll() is not None:
            break
        time.sleep(0.005)
    proc.send_signal(signal.SIGKILL)
    proc.wait()
    return _read_progress(progress_path)


def _assert_recovers_reported_progress(wal_path, reported, clean_hashes):
    recovered = fi.recover_hash(str(wal_path))
    matches = [k for k, h in enumerate(clean_hashes) if h == recovered]
    assert matches, "recovered state is not any clean-run boundary"
    assert matches[0] >= reported, (
        f"recovery lost durable work: child reported boundary {reported} "
        f"as fsynced, recovered state is boundary {matches[0]}"
    )


class TestSigkillRecovery:
    @pytest.mark.parametrize("seed,kill_at", [(7, 12), (9, 35)])
    def test_sigkill_mid_stream_recovers_durable_prefix(
        self, seed, kill_at, tmp_path
    ):
        n_ops = 80
        clean_hashes = fi.child_shadow_fingerprints(seed, n_ops)
        wal_path = tmp_path / "child.wal"
        progress_path = tmp_path / "progress"
        proc = _spawn(
            ["--child", str(wal_path), str(progress_path), str(seed), str(n_ops)]
        )
        reported = _kill_after_progress(proc, progress_path, kill_at)
        assert reported > 0, "child was killed before reporting any progress"
        _assert_recovers_reported_progress(wal_path, reported, clean_hashes)

    def test_sigkill_mid_e6_bulk_load_recovers_durable_prefix(self, tmp_path):
        """The E6-style data set, killed mid-load, recovers a load prefix.

        The parent replays the identical loader statement stream against a
        WAL-less database, records the state fingerprint at every durable
        boundary, and the killed child's recovered state must be one of
        those boundaries at or past the progress the child had fsynced.
        """
        clean_hashes = fi.e6_boundary_hashes()
        wal_path = tmp_path / "e6.wal"
        progress_path = tmp_path / "progress"
        proc = _spawn(["--child-e6", str(wal_path), str(progress_path)])
        reported = _kill_after_progress(proc, progress_path, threshold=25)
        assert reported > 0, "child was killed before reporting any progress"
        _assert_recovers_reported_progress(wal_path, reported, clean_hashes)
