"""Tests of the parallel-execution simulator (the Apprentice substitute)."""

import pytest

from repro.apprentice import (
    ExecutionSimulator,
    SimulationConfig,
    simulate,
    synthetic_workload,
)
from repro.datamodel import RegionKind, TimingType


class TestSimulationConfig:
    def test_rejects_empty_pe_counts(self):
        with pytest.raises(ValueError):
            SimulationConfig(pe_counts=())

    def test_rejects_non_positive_pe_counts(self):
        with pytest.raises(ValueError):
            SimulationConfig(pe_counts=(4, 0))

    def test_rejects_negative_jitter(self):
        with pytest.raises(ValueError):
            SimulationConfig(pe_counts=(1,), measurement_jitter=-0.1)


class TestSimulatedRepositoryStructure:
    def test_one_run_per_pe_count(self, mixed_repository):
        runs = sorted(run.NoPe for run in mixed_repository.runs())
        assert runs == [1, 2, 4, 8]

    def test_repository_validates(self, mixed_repository):
        mixed_repository.validate()

    def test_every_region_has_a_summary_for_every_run(self, mixed_repository):
        runs = list(mixed_repository.runs())
        for region in mixed_repository.regions():
            for run in runs:
                summary = region.summary(run)
                assert summary.Incl >= summary.Excl >= 0

    def test_program_region_exists(self, mixed_version):
        assert mixed_version.main_region.kind is RegionKind.PROGRAM

    def test_region_structure_matches_workload(self, mixed_repository):
        names = {region.name for region in mixed_repository.regions()}
        assert {"app_main", "assemble_matrix", "solve_system", "write_results"} <= names

    def test_call_sites_materialised(self, mixed_version):
        callees = {call.callee_name for call in mixed_version.all_calls()}
        assert "barrier" in callees
        assert "io" in callees

    def test_source_code_attached(self, mixed_version):
        assert mixed_version.Code.total_lines > 0


class TestSimulatedTimings:
    def test_simulation_is_deterministic(self):
        workload = synthetic_workload("stencil")
        a = simulate(workload, pe_counts=(1, 4))
        b = simulate(synthetic_workload("stencil"), pe_counts=(1, 4))
        region_a = a.region_by_name("stencil_main")
        region_b = b.region_by_name("stencil_main")
        for run_a, run_b in zip(sorted(a.runs(), key=lambda r: r.NoPe),
                                sorted(b.runs(), key=lambda r: r.NoPe)):
            assert region_a.duration(run_a) == pytest.approx(region_b.duration(run_b))

    def test_summed_duration_grows_with_processor_count(self, mixed_repository):
        """With a serial fraction and overheads the summed time must grow."""
        main = mixed_repository.region_by_name("app_main")
        durations = [
            main.duration(run)
            for run in sorted(mixed_repository.runs(), key=lambda r: r.NoPe)
        ]
        assert durations == sorted(durations)
        assert durations[-1] > durations[0]

    def test_total_cost_is_positive_for_larger_runs(self, mixed_repository, mixed_run):
        main = mixed_repository.region_by_name("app_main")
        assert mixed_repository.total_cost(main, mixed_run) > 0

    def test_speedup_is_sublinear_but_above_one(self, mixed_repository, mixed_run):
        main = mixed_repository.region_by_name("app_main")
        speedup = mixed_repository.speedup(main, mixed_run)
        assert 1.0 < speedup < mixed_run.NoPe

    def test_single_pe_run_has_no_comm_and_only_barrier_latency(self, mixed_repository):
        run1 = next(run for run in mixed_repository.runs() if run.NoPe == 1)
        run8 = next(run for run in mixed_repository.runs() if run.NoPe == 8)
        assemble = mixed_repository.region_by_name("assemble_matrix")
        # No communication partners on one processor.
        assert assemble.typed_time(run1, TimingType.SendOverhead) == pytest.approx(0.0)
        # Barriers degenerate to their latency: negligible next to the 8-PE wait.
        assert assemble.typed_time(run1, TimingType.Barrier) < 1e-2
        assert assemble.typed_time(run8, TimingType.Barrier) > 100 * assemble.typed_time(
            run1, TimingType.Barrier
        )

    def test_imbalanced_region_accumulates_barrier_time(self, mixed_repository, mixed_run):
        assemble = mixed_repository.region_by_name("assemble_matrix")
        solve = mixed_repository.region_by_name("solve_system")
        # assemble_matrix has imbalance 0.5, solve_system only 0.08: the barrier
        # waiting time of the imbalanced region must be clearly higher.
        assert assemble.typed_time(mixed_run, TimingType.Barrier) > 2 * solve.typed_time(
            mixed_run, TimingType.Barrier
        )

    def test_serialized_io_region_has_io_and_wait_time(self, mixed_repository, mixed_run):
        output = mixed_repository.region_by_name("write_results")
        io_time = output.typed_time(mixed_run, TimingType.IOWrite) + output.typed_time(
            mixed_run, TimingType.IORead
        )
        assert io_time > 0
        assert output.typed_time(mixed_run, TimingType.EventWait) > 0

    def test_alltoall_region_scales_with_pes(self, mixed_repository):
        exchange = mixed_repository.region_by_name("field_exchange")
        runs = sorted(mixed_repository.runs(), key=lambda r: r.NoPe)
        alltoall = [exchange.typed_time(run, TimingType.AllToAll) for run in runs]
        assert alltoall[-1] > alltoall[1] > 0

    def test_inclusive_time_covers_children(self, mixed_repository, mixed_run):
        main = mixed_repository.region_by_name("app_main")
        child_incl = sum(child.duration(mixed_run) for child in main.children)
        assert main.duration(mixed_run) >= child_incl

    def test_overhead_is_consistent_with_typed_timings(self, mixed_repository, mixed_run):
        for region in mixed_repository.regions():
            summary = region.summary(mixed_run)
            typed_overhead = sum(
                t.Time for t in region.TypTimes if t.Run == mixed_run and t.Type.is_overhead
            )
            assert summary.Ovhd == pytest.approx(typed_overhead, rel=1e-9)

    def test_computation_breakdown_matches_compute_time(self):
        workload = synthetic_workload("stencil")
        repo = simulate(workload, pe_counts=(4,), measurement_jitter=0.0)
        run = next(iter(repo.runs()))
        region = repo.region_by_name("stencil_update")
        summary = region.summary(run)
        computation = sum(
            t.Time
            for t in region.TypTimes
            if t.Run == run and not t.Type.is_overhead
        )
        overhead = sum(
            t.Time for t in region.TypTimes if t.Run == run and t.Type.is_overhead
        )
        # Without jitter the exclusive time is exactly useful computation (the
        # FloatingPoint/IntegerOps/LoadStore breakdown) plus measured overhead.
        assert summary.Excl == pytest.approx(computation + overhead, rel=1e-9)

    def test_barrier_call_site_reflects_imbalance(self, imbalanced_repository):
        version = imbalanced_repository.programs[0].latest_version()
        run = version.run_with_pes(16)
        barrier_calls = [
            call for call in version.all_calls()
            if call.callee_name == "barrier" and call.CallingReg.name == "particle_push"
        ]
        assert barrier_calls
        timing = barrier_calls[0].timing_for(run)
        assert timing.StdevTime > 0.25 * timing.MeanTime

    def test_clock_speed_scales_computation(self):
        workload = synthetic_workload("stencil")
        slow = simulate(workload, pe_counts=(4,), clock_mhz=150, measurement_jitter=0.0)
        fast = simulate(synthetic_workload("stencil"), pe_counts=(4,), clock_mhz=600,
                        measurement_jitter=0.0)
        slow_run = next(iter(slow.runs()))
        fast_run = next(iter(fast.runs()))
        slow_time = slow.region_by_name("stencil_update").duration(slow_run)
        fast_time = fast.region_by_name("stencil_update").duration(fast_run)
        assert slow_time > fast_time


class TestMultipleVersions:
    def test_two_versions_in_one_repository(self):
        workload = synthetic_workload("stencil")
        simulator = ExecutionSimulator(workload, SimulationConfig(pe_counts=(1, 2)))
        repo = simulator.run(version_label="v1")
        # A second simulation of the same program is stored as a new version.
        ExecutionSimulator(
            synthetic_workload("stencil"), SimulationConfig(pe_counts=(1, 4))
        ).run(database=repo, version_label="v2")
        program = repo.program("stencil")
        assert [v.label for v in program.Versions] == ["v1", "v2"]
        repo.validate()
