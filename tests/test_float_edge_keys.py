"""Float edge-case keys — ``-0.0`` and ``NaN`` — through every keyed layer.

Three layers key rows by value, each with its own equality notion, and they
must agree on the edge cases where IEEE-754 equality and bit identity
diverge:

* ``stable_hash`` partition routing: ``-0.0 == 0.0`` so both must land in
  the same partition (a pruned equality probe must never miss a match);
  ``NaN`` never equals anything, so any fixed deterministic bucket is fine.
* :class:`HashIndex` buckets are plain dict keys: Python dict lookup uses
  hash-then-``==`` with an identity shortcut, so ``0.0`` probes find rows
  indexed under ``-0.0``.  NaN keys are canonicalized to one shared bucket
  key on every maintenance path (add/remove/restore) — identity-keyed NaN
  buckets would make live mutation and WAL-replay rebuilds diverge — while
  equality probes still match no NaN row, as the reference engine demands.
* WAL ``row_key`` is ``repr``-based: strictly *finer* than ``==``
  (``-0.0`` and ``0.0`` are different keys, every NaN is ``'nan'``), which
  is exactly what replaying a DELETE against bit-identical replayed rows
  requires.
"""

import math

import pytest

from repro.relalg import Database, HashIndex, stable_hash
from repro.relalg.wal import fingerprint_hash, row_key, state_fingerprint

NAN = float("nan")


class TestStableHashRouting:
    def test_negative_zero_routes_with_positive_zero(self):
        assert stable_hash(-0.0) == stable_hash(0.0)
        # Cross-type numeric equality keeps the pruning contract too.
        assert stable_hash(0) == stable_hash(0.0) == stable_hash(False)

    def test_nan_bucket_is_fixed_and_object_independent(self):
        # hash(nan) is id-based on CPython 3.10+; stable_hash must not be.
        assert stable_hash(float("nan")) == stable_hash(float("nan"))
        assert stable_hash(NAN) == stable_hash(math.nan)

    def test_nested_containers_inherit_the_edge_cases(self):
        assert stable_hash((-0.0, "a")) == stable_hash((0.0, "a"))
        assert stable_hash([float("nan")]) == stable_hash([float("nan")])


class TestHashIndexEdgeKeys:
    def test_zero_probes_find_negative_zero_entries(self):
        index = HashIndex("idx", "x")
        index.add(-0.0, 3)
        assert list(index.lookup(0.0)) == [3]
        assert list(index.lookup(-0.0)) == [3]
        # Removal through the equal-but-not-identical key clears the entry.
        index.remove(0.0, 3)
        assert list(index.lookup(-0.0)) == []

    def test_nan_entries_share_one_bucket_and_never_match_probes(self):
        index = HashIndex("idx", "x")
        index.add(float("nan"), 7)
        index.add(math.nan, 9)
        # Every NaN object funnels into one canonical bucket, so live
        # mutation and a WAL-replay or compaction rebuild converge on the
        # same index state (raw NaN keys would bucket by object identity:
        # one bucket per inserted object live, shared buckets on rebuild).
        assert index.distinct_count() == 1
        # Equality probes still match nothing — dict lookup needs ``==``
        # after the identity check and ``NaN == NaN`` is false — matching
        # the reference engine's ``x = NaN`` semantics.
        assert list(index.lookup(float("nan"))) == []
        # Maintenance reaches the bucket through *any* NaN object: replayed
        # deletes carry a freshly decoded NaN, not the stored object.
        index.remove(float("nan"), 7)
        index.remove(math.nan, 9)
        assert index.distinct_count() == 0


def _edge_database(**kwargs):
    database = Database(n_partitions=4, **kwargs)
    database.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, x FLOAT, s VARCHAR)"
    )
    database.execute("CREATE INDEX idx_t_x ON t (x)")
    database.executemany(
        "INSERT INTO t (id, x, s) VALUES (?, ?, ?)",
        [
            (1, -0.0, "neg"),
            (2, 0.0, "pos"),
            (3, NAN, "nan"),
            (4, 1.5, "plain"),
        ],
    )
    return database


class TestQueryLayerAgreement:
    @pytest.mark.parametrize("vectorized", [True, False])
    def test_zero_probe_finds_both_zero_signs(self, vectorized):
        with _edge_database(vectorized=vectorized) as database:
            for probe in (0.0, -0.0):
                rows = database.query(
                    "SELECT id FROM t WHERE x = ? ORDER BY id", [probe]
                ).rows
                assert rows == [(1,), (2,)], probe

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_nan_probe_matches_nothing(self, vectorized):
        with _edge_database(vectorized=vectorized) as database:
            assert database.query(
                "SELECT id FROM t WHERE x = ?", [NAN]
            ).rows == []

    def test_interpreted_engine_agrees(self):
        with _edge_database() as compiled, Database(
            engine="interpreted"
        ) as interpreted:
            interpreted.execute(
                "CREATE TABLE t (id INTEGER PRIMARY KEY, x FLOAT, s VARCHAR)"
            )
            interpreted.executemany(
                "INSERT INTO t (id, x, s) VALUES (?, ?, ?)",
                [(1, -0.0, "neg"), (2, 0.0, "pos"), (3, NAN, "nan"), (4, 1.5, "plain")],
            )
            for sql, params in [
                ("SELECT id FROM t WHERE x = ? ORDER BY id", [0.0]),
                ("SELECT id FROM t WHERE x = ? ORDER BY id", [NAN]),
                ("SELECT id FROM t WHERE x > ? ORDER BY id", [-1.0]),
            ]:
                assert (
                    compiled.query(sql, params).rows
                    == interpreted.query(sql, params).rows
                ), (sql, params)

    def test_process_executor_agrees(self, process_pool):
        with _edge_database() as sequential, _edge_database(
            executor=process_pool
        ) as process:
            for sql, params in [
                ("SELECT id, s FROM t WHERE x = ? ORDER BY id", [0.0]),
                ("SELECT id, s FROM t WHERE x = ? ORDER BY id", [NAN]),
                ("SELECT id, s FROM t ORDER BY id", []),
            ]:
                reference = sequential.query(sql, params)
                result = process.query(sql, params)
                assert result.rows == reference.rows, (sql, params)
                assert result.stats == reference.stats, (sql, params)


class TestWalRowKeyEdgeCases:
    def test_row_key_separates_zero_signs_and_unifies_nans(self):
        assert row_key((1, -0.0)) != row_key((1, 0.0))
        assert row_key((1, float("nan"))) == row_key((1, float("nan")))
        # int 0 and float 0.0 are different stored values: different keys.
        assert row_key((1, 0)) != row_key((1, 0.0))

    def test_recovery_round_trips_edge_keys_bit_identically(self, tmp_path):
        wal_path = tmp_path / "edge.wal"
        database = _edge_database(wal_path=str(wal_path))
        # Deleting by == removes both zero signs; the logged row images must
        # replay against the bit-identical recovered rows.
        database.execute("DELETE FROM t WHERE x = ?", [0.0])
        database.executemany(
            "INSERT INTO t (id, x, s) VALUES (?, ?, ?)",
            [(5, -0.0, "back"), (6, NAN, "nan2")],
        )
        expected = fingerprint_hash(state_fingerprint(database))
        database.close()
        with Database(n_partitions=4, wal_path=str(wal_path)) as recovered:
            assert fingerprint_hash(state_fingerprint(recovered)) == expected
            rows = recovered.query("SELECT id, s FROM t ORDER BY id").rows
            assert rows == [
                (3, "nan"), (4, "plain"), (5, "back"), (6, "nan2"),
            ]
            # The recovered -0.0 kept its sign bit.
            back = recovered.query("SELECT x FROM t WHERE id = ?", [5]).rows
            assert math.copysign(1.0, back[0][0]) == -1.0
