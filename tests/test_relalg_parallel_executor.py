"""Process-pool partition execution: PlanSpec lowering, differential
equivalence against the sequential engine, DML shard re-sync, worker
robustness (killed/crashed workers, pool rebuild) and pool lifecycle
(context managers, idempotent close, shared pools)."""

from __future__ import annotations

import os
import pickle
import signal
import time

import pytest

from repro.relalg import (
    Database,
    ExecutionError,
    PlanSpec,
    ProcessScanExecutor,
    backend,
    lower_plan,
    parse_sql,
    plan_select,
)
from repro.relalg.compile import ExecContext, SlotLayout, compile_row_expr
from repro.relalg.executor import QueryStats
from repro.relalg.parallel import _compile_driving_scan


def _populate(db: Database) -> Database:
    db.execute(
        "CREATE TABLE m (id INTEGER PRIMARY KEY, g INTEGER, x FLOAT, s VARCHAR)"
    )
    db.execute("CREATE TABLE r (id INTEGER PRIMARY KEY, m_id INTEGER, v FLOAT)")
    db.executemany(
        "INSERT INTO m (id, g, x, s) VALUES (?, ?, ?, ?)",
        [
            (i, i % 7, float(i) * 1.5, ["alpha", "beta", None][i % 3])
            for i in range(120)
        ],
    )
    db.executemany(
        "INSERT INTO r (id, m_id, v) VALUES (?, ?, ?)",
        [(i, (i * 11) % 120, float(i % 13)) for i in range(60)],
    )
    return db


def _sequential(n_partitions=5) -> Database:
    return _populate(Database(n_partitions=n_partitions))


_QUERIES = [
    ("SELECT id, g, x FROM m WHERE g = ? AND x > ? ORDER BY id", [3, 20.0]),
    ("SELECT COUNT(*), SUM(x), MIN(x), MAX(x) FROM m WHERE x > ?", [30.0]),
    ("SELECT DISTINCT g FROM m WHERE s IS NOT NULL ORDER BY g", []),
    ("SELECT g, COUNT(*) AS c FROM m GROUP BY g HAVING COUNT(*) > ? ORDER BY g", [2]),
    (
        "SELECT m.id, r.id, r.v FROM m, r WHERE m.id = r.m_id AND m.x > ? "
        "ORDER BY m.id, r.id LIMIT 25",
        [5.0],
    ),
    ("SELECT m.id, r.id FROM m, r WHERE m.g = r.m_id ORDER BY m.id, r.id", []),
    ("SELECT id FROM m WHERE g IN (?, ?) ORDER BY id DESC LIMIT 7", [1, 5]),
]


class TestPlanSpecLowering:
    def test_spec_is_plain_picklable_data(self):
        db = _sequential()
        plan = plan_select(
            parse_sql("SELECT m.id, r.v FROM m, r WHERE m.id = r.m_id AND m.x > ?"),
            db.tables,
        )
        spec = lower_plan(plan)
        assert isinstance(spec, PlanSpec)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.width == plan.layout.width
        assert [level.binding for level in clone.levels] == [
            level.binding for level in plan.levels
        ]
        assert clone.driving.access == "scan"
        assert clone.driving.n_partitions == 5

    def test_spec_records_access_paths(self):
        db = _sequential()
        plan = plan_select(
            parse_sql("SELECT m.id, r.id FROM r, m WHERE m.id = r.m_id"),
            db.tables,
        )
        spec = lower_plan(plan)
        kinds = {level.binding: level.access for level in spec.levels}
        assert kinds["r"] == "scan"
        assert kinds["m"] == "index-probe"
        assert spec.driving.binding == "r"
        probe = next(l for l in spec.levels if l.binding == "m")
        assert probe.column == "id"
        assert probe.key_ast is not None
        assert probe.pruned  # PK equality on a 5-partition table
        hashed = lower_plan(
            plan_select(
                parse_sql("SELECT m.id, r.id FROM m, r WHERE m.id = r.m_id"),
                db.tables,
            )
        )
        hash_kinds = {level.binding: level.access for level in hashed.levels}
        assert hash_kinds == {"m": "scan", "r": "hash-probe"}
        assert next(
            l for l in hashed.levels if l.binding == "r"
        ).column == "m_id"

    def test_eligibility_gates(self):
        partitioned = _sequential()
        single = _populate(Database())
        scan = parse_sql("SELECT id FROM m WHERE x > ?")
        assert lower_plan(plan_select(scan, partitioned.tables)).process_eligible
        assert not lower_plan(plan_select(scan, single.tables)).process_eligible
        subquery = parse_sql(
            "SELECT id FROM m WHERE x > (SELECT MIN(v) FROM r)"
        )
        assert not lower_plan(
            plan_select(subquery, partitioned.tables)
        ).process_eligible
        point = parse_sql("SELECT * FROM m WHERE id = ?")
        assert not lower_plan(
            plan_select(point, partitioned.tables)
        ).process_eligible  # index-probe driving level: nothing to fan out

    def test_worker_rehydration_matches_parent_compilation(self):
        db = _sequential()
        plan = plan_select(
            parse_sql("SELECT id FROM m WHERE g = ? AND x > ?"), db.tables
        )
        spec = lower_plan(plan)
        entry = _compile_driving_scan(spec)
        table_uid, offset, end, width, filter_fns, batch_fn, partial = entry
        assert partial is None  # not an aggregate query
        assert table_uid == db.table("m").uid
        assert batch_fn is not None  # plain comparisons batch-compile
        assert (offset, end, width) == (0, 4, 4)
        ctx = ExecContext({}, [3, 20.0], QueryStats())
        survivors = []
        row = [None] * width
        for _pid, chunk in db.table("m").scan_chunks():
            for candidate in chunk:
                row[offset:end] = candidate
                if all(fn(row, ctx) for fn in filter_fns):
                    survivors.append(candidate[0])
        expected = [r[0] for r in db.query(
            "SELECT id FROM m WHERE g = ? AND x > ?", [3, 20.0]
        )]
        assert sorted(survivors) == sorted(expected)

    def test_layout_from_column_names_matches_table_layout(self):
        db = _sequential()
        bindings = [("m", db.table("m")), ("r", db.table("r"))]
        original = SlotLayout(bindings)
        rebuilt = SlotLayout.from_column_names(
            [("m", ["id", "g", "x", "s"]), ("r", ["id", "m_id", "v"])]
        )
        assert rebuilt.offsets == original.offsets
        assert rebuilt.columns == original.columns
        assert rebuilt.width == original.width


class TestProcessExecutorEquivalence:
    @pytest.mark.parametrize("sql, params", _QUERIES)
    def test_matches_sequential_results_and_stats(self, sql, params, process_pool):
        sequential = _sequential()
        with _populate(Database(n_partitions=5, executor=process_pool)) as db:
            expected = sequential.query(sql, params)
            got = db.query(sql, params)
            assert got.columns == expected.columns
            assert got.rows == expected.rows
            assert got.stats == expected.stats
            assert (
                got.stats.partition_rows_scanned
                == expected.stats.partition_rows_scanned
            )

    def test_dml_resyncs_stale_shards(self, process_pool):
        sequential = _sequential()
        with _populate(Database(n_partitions=5, executor=process_pool)) as db:
            sql = "SELECT g, COUNT(*), SUM(x) FROM m WHERE x > ? GROUP BY g ORDER BY g"
            assert db.query(sql, [0.0]).rows == sequential.query(sql, [0.0]).rows
            for target in (db, sequential):
                target.executemany(
                    "INSERT INTO m (id, g, x, s) VALUES (?, ?, ?, ?)",
                    [(1000 + i, i % 7, 999.0 + i, "new") for i in range(15)],
                )
                target.execute("DELETE FROM m WHERE g = ?", [2])
            got = db.query(sql, [0.0])
            expected = sequential.query(sql, [0.0])
            assert got.rows == expected.rows
            assert got.stats == expected.stats

    def test_ineligible_plans_fall_back_to_local_execution(self, process_pool):
        sequential = _sequential()
        with _populate(Database(n_partitions=5, executor=process_pool)) as db:
            for sql, params in [
                ("SELECT id FROM m WHERE x > (SELECT MIN(v) FROM r) ORDER BY id", []),
                ("SELECT * FROM m WHERE id = ?", [42]),
            ]:
                got = db.query(sql, params)
                expected = sequential.query(sql, params)
                assert got.rows == expected.rows
                assert got.stats == expected.stats

    def test_ddl_between_queries_reships_the_new_plan(self, process_pool):
        sequential = _sequential()
        with _populate(Database(n_partitions=5, executor=process_pool)) as db:
            sql = "SELECT id FROM m WHERE g = ? ORDER BY id"
            assert db.query(sql, [4]).rows == sequential.query(sql, [4]).rows
            for target in (db, sequential):
                target.execute("CREATE INDEX idx_m_g ON m (g)")
            got = db.query(sql, [4])
            expected = sequential.query(sql, [4])
            assert got.rows == expected.rows
            assert got.stats == expected.stats

    def test_shared_pool_serves_same_named_tables_of_two_databases(
        self, process_pool
    ):
        with Database(n_partitions=4, executor=process_pool) as first, \
                Database(n_partitions=4, executor=process_pool) as second:
            for db, rows in ((first, 40), (second, 7)):
                db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v FLOAT)")
                db.executemany(
                    "INSERT INTO t (id, v) VALUES (?, ?)",
                    [(i, float(i)) for i in range(rows)],
                )
            sql = "SELECT COUNT(*) FROM t WHERE v >= ?"
            assert first.query(sql, [0.0]).scalar() == 40
            assert second.query(sql, [0.0]).scalar() == 7

    def test_empty_partitions_and_empty_tables(self, process_pool):
        with Database(n_partitions=6, executor=process_pool) as db:
            db.execute("CREATE TABLE e (id INTEGER PRIMARY KEY, v FLOAT)")
            assert db.query("SELECT * FROM e WHERE v > ?", [0.0]).rows == []
            db.execute("INSERT INTO e (id, v) VALUES (?, ?)", [1, 5.0])
            assert db.query("SELECT id FROM e WHERE v > ?", [0.0]).rows == [(1,)]


class TestWorkerRobustness:
    def _fresh(self) -> Database:
        return _populate(
            Database(n_partitions=4, parallel=2, executor="process")
        )

    def test_killed_worker_raises_typed_error_then_pool_rebuilds(self):
        with self._fresh() as db:
            sql = "SELECT COUNT(*) FROM m WHERE x > ?"
            expected = db.query(sql, [10.0]).scalar()
            pool = db._process_pool()
            victim = pool.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                try:
                    os.kill(victim, 0)
                except OSError:
                    break
                time.sleep(0.01)
            with pytest.raises(ExecutionError, match="worker"):
                db.query(sql, [10.0])
            assert not pool.running
            # The next statement rebuilds the pool and re-syncs the shards.
            assert db.query(sql, [10.0]).scalar() == expected
            assert pool.running
            assert victim not in pool.worker_pids()

    def test_worker_side_engine_error_is_typed_and_pool_survives(self):
        with self._fresh() as db:
            with pytest.raises(ExecutionError, match="division by zero"):
                db.query("SELECT id FROM m WHERE x / ? > 1", [0])
            pool = db._process_pool()
            pids = pool.worker_pids()
            assert pool.running
            result = db.query("SELECT COUNT(*) FROM m WHERE x > ?", [0.0])
            assert result.scalar() == 119  # one row has x == 0.0
            assert pool.worker_pids() == pids

    def test_close_is_idempotent_across_all_executors(self, process_pool):
        databases = [
            Database(n_partitions=4),
            Database(n_partitions=4, parallel=2, executor="thread"),
            Database(n_partitions=4, parallel=2, executor="process"),
            Database(n_partitions=4, executor=process_pool),
        ]
        for db in databases:
            _populate(db)
            db.query("SELECT COUNT(*) FROM m WHERE x > ?", [0.0])
            db.close()
            db.close()

    def test_borrowed_pool_is_not_shut_down_by_database_close(self, process_pool):
        with Database(n_partitions=4, executor=process_pool) as db:
            db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v FLOAT)")
            db.executemany(
                "INSERT INTO t (id, v) VALUES (?, ?)",
                [(i, float(i)) for i in range(20)],
            )
            db.query("SELECT COUNT(*) FROM t WHERE v > ?", [1.0])
        assert process_pool.running  # close() only forgot this db's shards
        with Database(n_partitions=4, executor=process_pool) as db:
            db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v FLOAT)")
            db.execute("INSERT INTO t (id, v) VALUES (?, ?)", [1, 1.0])
            assert db.query("SELECT COUNT(*) FROM t WHERE v > ?", [0.0]).scalar() == 1

    def test_owned_pool_shuts_down_on_close_and_revives_lazily(self):
        db = self._fresh()
        db.query("SELECT COUNT(*) FROM m WHERE x > ?", [0.0])
        pool = db._process_pool()
        assert pool.running
        db.close()
        assert not pool.running
        # Mirroring the thread pool, a closed owned executor is recreated on
        # the next parallel statement.
        assert db.query("SELECT COUNT(*) FROM m WHERE x > ?", [0.0]).scalar() == 119
        db.close()

    def test_context_manager_shuts_the_owned_pool_down(self):
        with self._fresh() as db:
            db.query("SELECT COUNT(*) FROM m WHERE x > ?", [0.0])
            pool = db._process_pool()
            assert pool.running
        assert not pool.running

    def test_evicted_spec_is_reshipped_not_desynced(self):
        # Regression: the worker's FIFO spec cache evicted entries the
        # parent still believed were cached, permanently breaking any
        # statement whose plan outlived its worker-side compilation.  The
        # parent now mirrors the eviction rule and re-ships evicted specs.
        with ProcessScanExecutor(workers=1, spec_cache_limit=2) as pool, \
                _populate(Database(n_partitions=4, executor=pool)) as db:
            first = "SELECT id FROM m WHERE g = ? ORDER BY id"
            expected = db.query(first, [1]).rows
            for i in range(5):  # five distinct plans → first spec evicted
                db.query(
                    f"SELECT id FROM m WHERE g = ? AND x > {i}.0 ORDER BY id",
                    [1],
                )
            assert db.query(first, [1]).rows == expected

    def test_dropped_table_shards_are_forgotten(self, process_pool):
        # Regression: DROP TABLE left the dropped generation's shard
        # replicas in every worker forever (close() only forgets tables
        # still present).
        with Database(n_partitions=4, executor=process_pool) as db:
            for generation in range(3):
                db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v FLOAT)")
                db.executemany(
                    "INSERT INTO t (id, v) VALUES (?, ?)",
                    [(i, float(i + generation)) for i in range(30)],
                )
                uid = db.table("t").uid
                assert db.query(
                    "SELECT COUNT(*) FROM t WHERE v >= ?", [0.0]
                ).scalar() == 30
                db.execute("DROP TABLE t")
                for handle in process_pool._handles:
                    assert not any(
                        key[0] == uid for key in handle.versions
                    ), generation

    def test_shutdown_pool_refuses_new_work(self):
        pool = ProcessScanExecutor(workers=2)
        pool.shutdown()
        with Database(n_partitions=4, executor=pool) as db:
            _populate(db)
            with pytest.raises(ExecutionError, match="shut down"):
                db.query("SELECT COUNT(*) FROM m WHERE x > ?", [0.0])


class TestExecutorSelection:
    def test_default_is_sequential(self):
        assert Database().executor == "sequential"
        assert Database(parallel=2).executor == "thread"  # historical meaning

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown executor"):
            Database(executor="fibers")
        with pytest.raises(ValueError, match="parallel"):
            Database(executor="process")
        with pytest.raises(ValueError, match="parallel"):
            Database(executor="thread")
        with pytest.raises(ValueError, match="sequential"):
            Database(parallel=2, executor="sequential")
        with pytest.raises(ValueError, match="workers"):
            ProcessScanExecutor(workers=0)
        with pytest.raises(ValueError, match="timeout"):
            ProcessScanExecutor(timeout=0)
        with pytest.raises(ValueError, match="spec_cache_limit"):
            ProcessScanExecutor(spec_cache_limit=0)
        # The backend passthrough must not silently ignore a requested
        # fan-out (it would make wall-clock comparisons measure sequential
        # execution); it mirrors Database's validation instead.
        with pytest.raises(ValueError, match="parallelism"):
            backend("oracle7", executor="process")
        with pytest.raises(ValueError, match="parallelism"):
            backend("oracle7", executor="thread")

    def test_thread_executor_still_matches_sequential(self):
        sequential = _sequential()
        with _populate(
            Database(n_partitions=5, parallel=3, executor="thread")
        ) as db:
            sql, params = _QUERIES[0]
            expected = sequential.query(sql, params)
            got = db.query(sql, params)
            assert got.rows == expected.rows
            assert got.stats == expected.stats
