"""Tests of the relational engine's schemas, storage and indexes."""

import datetime as dt

import pytest
from hypothesis import given, settings, strategies as st

from repro.relalg import (
    Column,
    ColumnType,
    HashIndex,
    IntegrityError,
    SchemaError,
    Table,
    TableSchema,
)


def timing_schema():
    return TableSchema(
        name="TotalTiming",
        columns=[
            Column("id", ColumnType.INTEGER, nullable=False, primary_key=True),
            Column("region_id", ColumnType.INTEGER),
            Column("run_id", ColumnType.INTEGER),
            Column("incl", ColumnType.FLOAT),
            Column("label", ColumnType.VARCHAR),
        ],
    )


class TestColumnTypes:
    def test_sql_aliases(self):
        assert ColumnType.from_sql("INT") is ColumnType.INTEGER
        assert ColumnType.from_sql("double") is ColumnType.FLOAT
        assert ColumnType.from_sql("Text") is ColumnType.VARCHAR
        assert ColumnType.from_sql("DATETIME") is ColumnType.TIMESTAMP

    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError, match="unsupported column type"):
            ColumnType.from_sql("BLOB")

    def test_integer_validation(self):
        assert ColumnType.INTEGER.validate(4) == 4
        assert ColumnType.INTEGER.validate(4.0) == 4
        with pytest.raises(SchemaError):
            ColumnType.INTEGER.validate("four")
        with pytest.raises(SchemaError):
            ColumnType.INTEGER.validate(4.5)

    def test_float_validation_widens_ints(self):
        assert ColumnType.FLOAT.validate(3) == 3.0
        with pytest.raises(SchemaError):
            ColumnType.FLOAT.validate("x")

    def test_boolean_validation(self):
        assert ColumnType.BOOLEAN.validate(True) is True
        assert ColumnType.BOOLEAN.validate(1) is True
        with pytest.raises(SchemaError):
            ColumnType.BOOLEAN.validate("yes")

    def test_timestamp_validation_accepts_iso_strings(self):
        value = ColumnType.TIMESTAMP.validate("2000-01-17T09:00:00")
        assert value == dt.datetime(2000, 1, 17, 9)
        with pytest.raises(SchemaError):
            ColumnType.TIMESTAMP.validate("not a date")

    def test_null_is_always_accepted_by_types(self):
        for column_type in ColumnType:
            assert column_type.validate(None) is None


class TestTableSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError, match="duplicate column"):
            TableSchema(
                name="t",
                columns=[Column("x", ColumnType.INTEGER), Column("X", ColumnType.FLOAT)],
            )

    def test_column_lookup_is_case_insensitive(self):
        schema = timing_schema()
        assert schema.column("INCL").name == "incl"
        assert schema.column_index("Run_Id") == 2
        with pytest.raises(SchemaError):
            schema.column("missing")

    def test_validate_row_checks_arity(self):
        schema = timing_schema()
        with pytest.raises(SchemaError, match="5 columns"):
            schema.validate_row([1, 2, 3])

    def test_validate_row_rejects_null_primary_key(self):
        schema = timing_schema()
        with pytest.raises(IntegrityError, match="must not be NULL"):
            schema.validate_row([None, 1, 1, 1.0, "x"])

    def test_row_from_mapping_fills_missing_with_null(self):
        schema = timing_schema()
        row = schema.row_from_mapping({"id": 1, "incl": 2.5})
        assert row == (1, None, None, 2.5, None)

    def test_row_from_mapping_rejects_unknown_columns(self):
        schema = timing_schema()
        with pytest.raises(SchemaError, match="unknown column"):
            schema.row_from_mapping({"id": 1, "bogus": 2})

    def test_create_table_sql(self):
        sql = timing_schema().sql()
        assert sql.startswith("CREATE TABLE TotalTiming (")
        assert "id INTEGER PRIMARY KEY" in sql


class TestTable:
    def test_insert_and_scan(self):
        table = Table(timing_schema())
        table.insert([1, 10, 100, 1.5, "a"])
        table.insert([2, 10, 200, 2.5, "b"])
        assert table.row_count == 2
        assert [row[0] for row in table.scan()] == [1, 2]

    def test_primary_key_uniqueness_enforced(self):
        table = Table(timing_schema())
        table.insert([1, 10, 100, 1.5, "a"])
        with pytest.raises(IntegrityError, match="duplicate primary key"):
            table.insert([1, 11, 101, 2.5, "b"])

    def test_lookup_without_index_scans(self):
        table = Table(timing_schema())
        table.insert([1, 10, 100, 1.5, "a"])
        table.insert([2, 20, 100, 2.5, "b"])
        rows = list(table.lookup("region_id", 20))
        assert len(rows) == 1 and rows[0][0] == 2

    def test_index_creation_and_lookup(self):
        table = Table(timing_schema())
        for i in range(50):
            table.insert([i + 1, i % 5, i, float(i), "x"])
        table.create_index("idx_region", "region_id")
        assert len(list(table.lookup("region_id", 3))) == 10
        with pytest.raises(SchemaError, match="already has an index"):
            table.create_index("idx_region2", "region_id")

    def test_index_backfills_existing_rows(self):
        table = Table(timing_schema())
        table.insert([1, 7, 1, 0.0, "x"])
        index = table.create_index("idx", "region_id")
        assert index.lookup(7)

    def test_delete_where_updates_indexes(self):
        table = Table(timing_schema())
        table.create_index("idx", "region_id")
        for i in range(10):
            table.insert([i + 1, i % 2, i, float(i), "x"])
        deleted = table.delete_where(lambda row: row[1] == 0)
        assert deleted == 5
        assert table.row_count == 5
        assert list(table.lookup("region_id", 0)) == []

    def test_drop_index(self):
        table = Table(timing_schema())
        table.create_index("idx", "region_id")
        table.drop_index("region_id")
        assert table.index_for("region_id") is None

    def test_primary_key_index_cannot_be_dropped(self):
        # Regression: dropping the PK index used to leave a stale, no longer
        # maintained index behind that insert kept enforcing uniqueness
        # against (false duplicates after deletes, real ones missed after
        # compaction).
        table = Table(timing_schema())
        with pytest.raises(SchemaError, match="primary-key index"):
            table.drop_index("id")
        table.insert([1, 0, 0, 0.0, "x"])
        table.delete_where(lambda row: row[0] == 1)
        table.insert([1, 0, 0, 0.0, "again"])  # no false duplicate
        with pytest.raises(IntegrityError, match="duplicate primary key"):
            table.insert([1, 1, 1, 1.0, "dup"])

    @given(values=st.lists(st.integers(min_value=0, max_value=9), min_size=0, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_index_lookup_matches_scan(self, values):
        """Property: an indexed lookup returns exactly the rows a scan finds."""
        table = Table(timing_schema())
        table.create_index("idx", "region_id")
        for position, value in enumerate(values):
            table.insert([position + 1, value, position, float(position), "x"])
        for needle in range(10):
            via_index = sorted(row[0] for row in table.lookup("region_id", needle))
            via_scan = sorted(row[0] for row in table.scan() if row[1] == needle)
            assert via_index == via_scan


class TestHashIndex:
    def test_add_remove(self):
        index = HashIndex("idx", "col")
        index.add("a", 0)
        index.add("a", 1)
        index.remove("a", 0)
        assert index.lookup("a") == [1]
        index.remove("a", 1)
        assert index.lookup("a") == []
        # Removing a missing entry is a no-op.
        index.remove("zzz", 5)

    def test_len_counts_entries(self):
        index = HashIndex("idx", "col")
        index.add(1, 0)
        index.add(2, 1)
        assert len(index) == 2


class TestPositionsView:
    def test_lookup_returns_a_read_only_view_not_a_copy(self):
        from repro.relalg import PositionsView

        index = HashIndex("idx", "col")
        index.add("a", 3)
        index.add("a", 7)
        view = index.lookup("a")
        assert isinstance(view, PositionsView)
        assert list(view) == [3, 7]
        assert len(view) == 2
        assert 3 in view and 5 not in view
        assert view[1] == 7
        assert view == [3, 7] and view == (3, 7)
        assert not (view == [7, 3])
        # Views have no mutating API.
        assert not hasattr(view, "append")

    def test_view_reflects_later_index_changes(self):
        index = HashIndex("idx", "col")
        index.add("a", 1)
        view = index.lookup("a")
        index.add("a", 2)
        assert list(view) == [1, 2]

    def test_remove_is_order_preserving(self):
        index = HashIndex("idx", "col")
        for position in (5, 1, 9, 4):
            index.add("x", position)
        index.remove("x", 9)
        assert index.lookup("x") == [5, 1, 4]

    def test_empty_lookup_is_falsy(self):
        index = HashIndex("idx", "col")
        assert not index.lookup("nothing")
        assert list(index.lookup("nothing")) == []


class TestTombstoneCompaction:
    def fill(self, rows=200):
        table = Table(timing_schema())
        table.create_index("idx", "region_id")
        for i in range(rows):
            table.insert([i + 1, i % 4, i, float(i), "x"])
        return table

    def test_mass_delete_triggers_compaction(self):
        table = self.fill(200)
        deleted = table.delete_where(lambda row: row[1] != 0)
        assert deleted == 150
        assert table.row_count == 50
        # The tombstones were dropped: the row list holds only live rows.
        assert table.dead_count == 0
        assert len(table.rows) == 50

    def test_scan_and_indexes_survive_compaction(self):
        table = self.fill(200)
        table.delete_where(lambda row: row[1] != 0)
        scanned = [row[0] for row in table.scan()]
        assert scanned == [i + 1 for i in range(200) if i % 4 == 0]
        via_index = sorted(row[0] for row in table.lookup("region_id", 0))
        assert via_index == scanned
        assert list(table.lookup("region_id", 1)) == []
        # The primary key index was rebuilt too: inserts still detect dupes.
        with pytest.raises(IntegrityError):
            table.insert([1, 0, 0, 0.0, "dup"])
        table.insert([999, 1, 0, 0.0, "new"])
        assert [row[0] for row in table.lookup("region_id", 1)] == [999]

    def test_small_delete_leaves_tombstones(self):
        table = self.fill(10)
        table.delete_where(lambda row: row[0] == 1)
        assert table.dead_count == 1  # below the compaction threshold
        assert table.row_count == 9

    def test_explicit_compact(self):
        table = self.fill(10)
        table.delete_where(lambda row: row[0] <= 3)
        assert table.dead_count == 3
        assert table.compact() == 3
        assert table.dead_count == 0
        assert [row[0] for row in table.scan()] == list(range(4, 11))
        assert table.compact() == 0
