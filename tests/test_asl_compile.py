"""Tests of the compile-once ASL property evaluation and Scope.find."""

import datetime as dt

import pytest

from repro.asl import AslEvaluationError, AslNameError, check_asl, parse_asl
from repro.asl.compile import CompiledProperty
from repro.asl.evaluator import AslEvaluator
from repro.asl.specs import COSY_DATA_MODEL
from repro.asl.symbols import MISSING, Scope
from repro.datamodel import (
    Function,
    FunctionCall,
    CallTiming,
    Region,
    RegionKind,
    TestRun,
    TimingType,
    TotalTiming,
    TypedTiming,
)

PROPERTIES = """
constant float ImbalanceThreshold = 0.25;

TotalTiming Summary(Region r, TestRun t) = UNIQUE({s IN r.TotTimes WITH s.Run == t});
float Duration(Region r, TestRun t) = Summary(r, t).Incl;

Property SublinearSpeedup(Region r, TestRun t, Region Basis) {
    LET TotalTiming MinPeSum = UNIQUE({sum IN r.TotTimes WITH sum.Run.NoPe ==
            MIN(s.Run.NoPe WHERE s IN r.TotTimes)});
        float TotalCost = Duration(r, t) - Duration(r, MinPeSum.Run)
    IN
    CONDITION: TotalCost > 0;
    CONFIDENCE: 1;
    SEVERITY: TotalCost / Duration(Basis, t);
}

Property SyncCost(Region r, TestRun t, Region Basis) {
    LET float Barrier = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run == t
            AND tt.Type == Barrier);
    IN
    CONDITION: Barrier > 0;
    CONFIDENCE: 1;
    SEVERITY: Barrier / Duration(Basis, t);
}

Property Guarded(Region r, TestRun t) {
    CONDITION: (big) Duration(r, t) > 100 OR (small) Duration(r, t) > 1;
    CONFIDENCE: MAX((big) -> 0.9, (small) -> 0.4);
    SEVERITY: MAX((big) -> 2.0, (small) -> 0.5);
}
"""


@pytest.fixture(scope="module")
def checked_spec():
    model = parse_asl(COSY_DATA_MODEL)
    props = parse_asl(PROPERTIES)
    return check_asl(model.merge(props))


@pytest.fixture()
def scenario():
    run_small = TestRun(Start=dt.datetime(2000, 1, 1), NoPe=2, Clockspeed=300)
    run_large = TestRun(Start=dt.datetime(2000, 1, 1), NoPe=8, Clockspeed=300)
    function = Function(Name="main")
    basis = function.add_region(Region(name="main", kind=RegionKind.PROGRAM))
    basis.add_total_timing(TotalTiming(Run=run_small, Excl=10.0, Incl=10.0, Ovhd=1.0))
    basis.add_total_timing(TotalTiming(Run=run_large, Excl=16.0, Incl=16.0, Ovhd=6.0))
    basis.add_typed_timing(TypedTiming(Run=run_large, Type=TimingType.Barrier, Time=4.0))
    return {"run_small": run_small, "run_large": run_large, "basis": basis}


class TestCompiledPropertyParity:
    """The compiled closures must reproduce the interpretive semantics."""

    @pytest.mark.parametrize("prop", ["SublinearSpeedup", "SyncCost", "Guarded"])
    @pytest.mark.parametrize("run_key", ["run_small", "run_large"])
    def test_compiled_equals_interpreted(self, checked_spec, scenario, prop, run_key):
        evaluator = AslEvaluator(checked_spec)
        params = {"r": scenario["basis"], "t": scenario[run_key],
                  "Basis": scenario["basis"]}
        decl = evaluator.index.properties[prop]
        params = {p.name: params[p.name] for p in decl.params}
        compiled = evaluator.evaluate_property(prop, params)
        interpreted = evaluator.evaluate_property_interpreted(prop, params)
        assert compiled.holds == interpreted.holds
        assert compiled.conditions == interpreted.conditions
        assert compiled.confidence == pytest.approx(interpreted.confidence)
        assert compiled.severity == pytest.approx(interpreted.severity)
        assert compiled.let_values == interpreted.let_values
        assert compiled.parameters == interpreted.parameters

    def test_constant_overrides_are_honoured(self, checked_spec, scenario):
        evaluator = AslEvaluator(checked_spec, constants={"ImbalanceThreshold": 0.9})
        assert evaluator.constant_value("ImbalanceThreshold") == 0.9

    def test_compiled_errors_match(self, checked_spec, scenario):
        evaluator = AslEvaluator(checked_spec)
        empty_region = Region(name="empty")
        with pytest.raises(AslEvaluationError, match="UNIQUE"):
            evaluator.evaluate_property(
                "SublinearSpeedup",
                {"r": empty_region, "t": scenario["run_large"],
                 "Basis": scenario["basis"]},
            )
        with pytest.raises(AslEvaluationError, match="missing parameter"):
            evaluator.evaluate_property("SyncCost", {"r": scenario["basis"]})
        with pytest.raises(AslNameError, match="unknown property"):
            evaluator.evaluate_property("Nope", {})


class TestCompileOnceCaching:
    def test_property_is_compiled_once_and_reused(self, checked_spec, scenario):
        evaluator = AslEvaluator(checked_spec)
        params = {"r": scenario["basis"], "t": scenario["run_large"],
                  "Basis": scenario["basis"]}
        assert evaluator.compiled_properties == {}
        evaluator.evaluate_property("SyncCost", params)
        assert set(evaluator.compiled_properties) == {"SyncCost"}
        program = evaluator.compiled_properties["SyncCost"]
        assert isinstance(program, CompiledProperty)
        evaluator.evaluate_property("SyncCost", params)
        assert evaluator.compiled_properties["SyncCost"] is program

    def test_compile_property_is_idempotent(self, checked_spec):
        evaluator = AslEvaluator(checked_spec)
        first = evaluator.compile_property("Guarded")
        second = evaluator.compile_property("Guarded")
        assert first is second

    def test_client_strategy_precompiles(self, checked_spec):
        from repro.cosy.strategies import ClientSideStrategy

        strategy = ClientSideStrategy(checked_spec)
        strategy.precompile()
        assert set(strategy.evaluator.compiled_properties) == set(
            checked_spec.index.properties
        )


class TestScopeFind:
    """Scope.lookup resolves in one walk; None-valued bindings are 'bound'."""

    def test_find_returns_missing_for_unbound_names(self):
        scope = Scope()
        assert scope.find("x") is MISSING
        scope.define("x", 1)
        assert scope.find("x") == 1

    def test_none_valued_binding_is_contained(self):
        scope = Scope()
        scope.define("maybe", None)
        assert "maybe" in scope
        assert scope.find("maybe") is None
        assert scope.lookup("maybe") is None

    def test_find_walks_outwards_once(self):
        outer = Scope()
        outer.define("x", "outer")
        inner = outer.child()
        assert inner.find("x") == "outer"
        inner.define("x", None)
        assert inner.find("x") is None
        assert outer.find("x") == "outer"
