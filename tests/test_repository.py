"""Tests of the in-memory performance-data repository."""

import datetime as dt

import pytest

from repro.datamodel import (
    DataModelError,
    Function,
    PerformanceDatabase,
    Region,
    RegionKind,
    TestRun,
    TimingType,
    TotalTiming,
    TypedTiming,
)


def build_small_repository():
    """A hand-built repository with two runs and one region hierarchy."""
    repo = PerformanceDatabase()
    version = repo.create_version("app", label="v1")
    run_small = version.add_run(
        TestRun(Start=dt.datetime(2000, 1, 1), NoPe=2, Clockspeed=300)
    )
    run_large = version.add_run(
        TestRun(Start=dt.datetime(2000, 1, 1, 1), NoPe=8, Clockspeed=300)
    )
    main = version.add_function(Function(Name="main"))
    body = main.add_region(Region(name="main_body", kind=RegionKind.PROGRAM))
    loop = main.add_region(Region(name="loop", ParentRegion=body))
    body.add_total_timing(TotalTiming(Run=run_small, Excl=2.0, Incl=10.0, Ovhd=1.0))
    body.add_total_timing(TotalTiming(Run=run_large, Excl=3.0, Incl=16.0, Ovhd=4.0))
    loop.add_total_timing(TotalTiming(Run=run_small, Excl=8.0, Incl=8.0, Ovhd=0.5))
    loop.add_total_timing(TotalTiming(Run=run_large, Excl=13.0, Incl=13.0, Ovhd=3.0))
    loop.add_typed_timing(TypedTiming(Run=run_large, Type=TimingType.Barrier, Time=2.5))
    return repo, version, run_small, run_large, body, loop


class TestPopulation:
    def test_duplicate_program_rejected(self):
        repo = PerformanceDatabase()
        repo.create_program("app")
        with pytest.raises(DataModelError, match="already registered"):
            repo.create_program("app")

    def test_create_version_creates_program_on_demand(self):
        repo = PerformanceDatabase()
        version = repo.create_version("new_app")
        assert "new_app" in repo
        assert version.label == "v1"

    def test_program_lookup_error_lists_known_programs(self):
        repo = PerformanceDatabase()
        repo.create_program("app")
        with pytest.raises(KeyError, match="app"):
            repo.program("missing")


class TestNavigation:
    def test_region_iteration_and_lookup(self):
        repo, *_ = build_small_repository()
        names = {r.name for r in repo.regions()}
        assert names == {"main_body", "loop"}
        assert repo.region_by_name("loop").name == "loop"
        with pytest.raises(KeyError):
            repo.region_by_name("nope")

    def test_stats_counts_every_entity(self):
        repo, *_ = build_small_repository()
        stats = repo.stats()
        assert stats["programs"] == 1
        assert stats["runs"] == 2
        assert stats["regions"] == 2
        assert stats["total_timings"] == 4
        assert stats["typed_timings"] == 1
        assert stats.total_rows() == 1 + 1 + 2 + 1 + 2 + 4 + 1


class TestAslHelperSemantics:
    def test_duration_is_inclusive_time(self):
        repo, _, run_small, run_large, body, _ = build_small_repository()
        assert repo.duration(body, run_small) == 10.0
        assert repo.duration(body, run_large) == 16.0

    def test_min_pe_summary_selects_the_smallest_run(self):
        repo, _, run_small, _, body, _ = build_small_repository()
        assert repo.min_pe_summary(body).Run is run_small

    def test_total_cost_matches_the_paper_definition(self):
        repo, _, _, run_large, body, _ = build_small_repository()
        # TotalCost = Duration(r, t) - Duration(r, MinPeSum.Run) = 16 - 10
        assert repo.total_cost(body, run_large) == pytest.approx(6.0)

    def test_total_cost_of_the_reference_run_is_zero(self):
        repo, _, run_small, _, body, _ = build_small_repository()
        assert repo.total_cost(body, run_small) == pytest.approx(0.0)

    def test_speedup_uses_wall_clock_semantics(self):
        repo, _, _, run_large, body, _ = build_small_repository()
        # reference wall clock = 10/2 = 5; run wall clock = 16/8 = 2 → speedup 2.5
        assert repo.speedup(body, run_large) == pytest.approx(2.5)

    def test_typed_cost(self):
        repo, _, _, run_large, _, loop = build_small_repository()
        assert repo.typed_cost(loop, run_large, TimingType.Barrier) == 2.5
        assert repo.typed_cost(loop, run_large, TimingType.IOWrite) == 0.0

    def test_min_pe_summary_requires_data(self):
        with pytest.raises(DataModelError):
            PerformanceDatabase.min_pe_summary(Region(name="empty"))


class TestValidation:
    def test_valid_repository_passes(self):
        repo, *_ = build_small_repository()
        repo.validate()

    def test_timing_for_unregistered_run_is_detected(self):
        repo, version, *_rest = build_small_repository()
        rogue_run = TestRun(Start=dt.datetime(2000, 2, 1), NoPe=32, Clockspeed=300)
        region = repo.region_by_name("loop")
        region.TotTimes.append(TotalTiming(Run=rogue_run, Excl=1, Incl=1, Ovhd=0))
        with pytest.raises(DataModelError, match="unregistered run"):
            repo.validate()

    def test_duplicate_total_timing_is_detected(self):
        repo, _, run_small, *_rest = build_small_repository()
        region = repo.region_by_name("loop")
        region.TotTimes.append(TotalTiming(Run=run_small, Excl=1, Incl=1, Ovhd=0))
        with pytest.raises(DataModelError, match="duplicate TotalTiming"):
            repo.validate()

    def test_duplicate_typed_timing_is_detected(self):
        repo, _, _, run_large, _, loop = build_small_repository()
        loop.TypTimes.append(
            TypedTiming(Run=run_large, Type=TimingType.Barrier, Time=1.0)
        )
        with pytest.raises(DataModelError, match="duplicate TypedTiming"):
            repo.validate()
