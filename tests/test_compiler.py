"""Tests of the ASL→SQL compiler: schema generation, loading, query generation."""

import pytest

from repro.asl import parse_asl, check_asl
from repro.compiler import (
    DUAL_TABLE,
    PRIMARY_KEY,
    DatabaseLoader,
    PropertyCompiler,
    PushdownError,
    generate_schema,
    load_repository,
)
from repro.relalg import Database
from repro.relalg.sqlparser import parse_sql


class TestSchemaGeneration:
    def test_one_table_per_class_plus_dual(self, cosy_spec, schema_mapping):
        tables = {schema.name for schema in schema_mapping.table_schemas()}
        assert tables == set(cosy_spec.index.classes) | {DUAL_TABLE}

    def test_every_table_has_a_primary_key(self, schema_mapping):
        for schema in schema_mapping.table_schemas():
            if schema.name == DUAL_TABLE:
                continue
            assert schema.columns[0].name == PRIMARY_KEY
            assert schema.columns[0].primary_key

    def test_scalar_attributes_become_columns(self, schema_mapping):
        total = schema_mapping.schemas["TotalTiming"]
        names = set(total.column_names)
        assert {"Excl", "Incl", "Ovhd", "Run_id"} <= names

    def test_reference_attribute_becomes_fk_column(self, schema_mapping):
        attribute = schema_mapping.attribute("TotalTiming", "Run")
        assert attribute.kind == "reference"
        assert attribute.column == "Run_id"
        assert attribute.target_class == "TestRun"

    def test_collection_attribute_becomes_owner_fk_on_element_table(self, schema_mapping):
        attribute = schema_mapping.attribute("Region", "TotTimes")
        assert attribute.kind == "collection"
        assert attribute.table == "TotalTiming"
        assert attribute.column == "owner_Region_TotTimes_id"
        assert "owner_Region_TotTimes_id" in schema_mapping.schemas["TotalTiming"].column_names

    def test_enum_attribute_becomes_varchar(self, schema_mapping):
        attribute = schema_mapping.attribute("TypedTiming", "Type")
        assert attribute.kind == "enum"
        column = schema_mapping.schemas["TypedTiming"].column("Type")
        assert column.type.value == "VARCHAR"

    def test_generated_ddl_parses(self, schema_mapping):
        for statement in schema_mapping.create_statements():
            parse_sql(statement)
        for statement in schema_mapping.index_statements():
            parse_sql(statement)

    def test_index_statements_cover_foreign_keys(self, schema_mapping):
        statements = "\n".join(schema_mapping.index_statements())
        assert "owner_Region_TotTimes_id" in statements
        assert "Run_id" in statements

    def test_unknown_class_or_attribute_lookup(self, schema_mapping):
        with pytest.raises(Exception):
            schema_mapping.table_for("Widget")
        with pytest.raises(Exception):
            schema_mapping.attribute("Region", "Widget")

    def test_collections_of_scalars_are_rejected(self):
        spec = check_asl(parse_asl("class Weird { setof int Values; }"))
        with pytest.raises(Exception, match="collection attribute"):
            generate_schema(spec)


class TestLoader:
    def test_row_counts_match_repository_stats(self, cosy_spec, schema_mapping,
                                               mixed_repository):
        database = Database()
        ids = load_repository(mixed_repository, schema_mapping, database)
        stats = mixed_repository.stats()
        counts = database.row_counts()
        assert counts["Program"] == stats["programs"]
        assert counts["ProgVersion"] == stats["versions"]
        assert counts["TestRun"] == stats["runs"]
        assert counts["Region"] == stats["regions"]
        assert counts["TotalTiming"] == stats["total_timings"]
        assert counts["TypedTiming"] == stats["typed_timings"]
        assert counts["FunctionCall"] == stats["calls"]
        assert counts["CallTiming"] == stats["call_timings"]
        assert counts[DUAL_TABLE] == 1
        assert ids.total() == sum(
            stats[key] for key in (
                "programs", "versions", "runs", "functions", "regions",
                "total_timings", "typed_timings", "calls", "call_timings",
            )
        )

    def test_loaded_values_can_be_queried_back(self, schema_mapping, mixed_repository,
                                               mixed_run):
        database = Database()
        ids = load_repository(mixed_repository, schema_mapping, database)
        region = mixed_repository.region_by_name("app_main")
        region_id = ids.id_for(region)
        run_id = ids.id_for(mixed_run)
        incl = database.query(
            "SELECT Incl FROM TotalTiming WHERE owner_Region_TotTimes_id = ? AND Run_id = ?",
            [region_id, run_id],
        ).scalar()
        assert incl == pytest.approx(region.duration(mixed_run))

    def test_parent_region_foreign_keys_resolved(self, schema_mapping, mixed_repository):
        database = Database()
        ids = load_repository(mixed_repository, schema_mapping, database)
        child = mixed_repository.region_by_name("assemble_matrix")
        parent = mixed_repository.region_by_name("app_main")
        parent_id = database.query(
            "SELECT ParentRegion_id FROM Region WHERE id = ?", [ids.id_for(child)]
        ).scalar()
        assert parent_id == ids.id_for(parent)

    def test_id_lookup_errors(self, schema_mapping, mixed_repository):
        database = Database()
        ids = load_repository(mixed_repository, schema_mapping, database)
        with pytest.raises(KeyError):
            ids.id_of("Region", 10**9)

    def test_loading_without_indexes(self, schema_mapping, mixed_repository):
        database = Database()
        load_repository(
            mixed_repository, schema_mapping, database, with_indexes=False
        )
        assert database.table("TotalTiming").index_for("owner_Region_TotTimes_id") is None


class TestPropertyCompilation:
    def test_all_bundled_properties_compile(self, cosy_spec, schema_mapping):
        compiler = PropertyCompiler(cosy_spec, schema_mapping)
        compiled = compiler.compile_all()
        assert set(compiled) == set(cosy_spec.index.properties)
        for name, prop in compiled.items():
            assert prop.conditions, name
            assert prop.severity, name

    def test_generated_queries_parse(self, cosy_spec, schema_mapping):
        compiler = PropertyCompiler(cosy_spec, schema_mapping)
        for prop in compiler.compile_all().values():
            for query in prop.all_queries():
                statement = parse_sql(query.sql)
                placeholder_count = query.sql.count("?")
                assert placeholder_count == len(query.param_slots)

    def test_sync_cost_condition_query_shape(self, cosy_spec, schema_mapping):
        compiler = PropertyCompiler(cosy_spec, schema_mapping)
        compiled = compiler.compile_property("SyncCost")
        sql = compiled.conditions[0][1].sql
        assert "SUM(" in sql
        assert "TypedTiming" in sql
        assert "'Barrier'" in sql
        assert compiled.conditions[0][1].param_slots == ["r", "t"]

    def test_sublinear_speedup_uses_a_join_for_nope(self, cosy_spec, schema_mapping):
        compiler = PropertyCompiler(cosy_spec, schema_mapping)
        compiled = compiler.compile_property("SublinearSpeedup")
        sql = compiled.severity[0][1].sql
        assert "JOIN TestRun" in sql
        assert "MIN(" in sql

    def test_load_imbalance_parameters(self, cosy_spec, schema_mapping):
        compiler = PropertyCompiler(cosy_spec, schema_mapping)
        compiled = compiler.compile_property("LoadImbalance")
        slots = compiled.conditions[0][1].param_slots
        assert set(slots) == {"Call", "t"}

    def test_bind_orders_parameters_by_slot(self, cosy_spec, schema_mapping):
        compiler = PropertyCompiler(cosy_spec, schema_mapping)
        compiled = compiler.compile_property("MeasuredCost")
        query = compiled.conditions[0][1]
        values = query.bind({"r": 7, "t": 3, "Basis": 1})
        assert values == [7, 3] or values == [3, 7]
        with pytest.raises(KeyError, match="missing value"):
            query.bind({"r": 7})

    def test_unknown_property_is_reported(self, cosy_spec, schema_mapping):
        compiler = PropertyCompiler(cosy_spec, schema_mapping)
        with pytest.raises(Exception, match="unknown property"):
            compiler.compile_property("Nope")

    def test_unsupported_constructs_raise_pushdown_error(self):
        source = """
        class Region { setof TotalTiming TotTimes; }
        class TotalTiming { float Incl; }
        Property Weird(Region r) {
            LET float X = AVG(s.Incl WHERE s IN r.TotTimes)
            IN
            CONDITION: MAX(X, 1) > 0;
            CONFIDENCE: 1;
            SEVERITY: X;
        }
        """
        spec = check_asl(parse_asl(source))
        mapping = generate_schema(spec)
        compiler = PropertyCompiler(spec, mapping)
        # The scalar MAX(a, b) builtin is outside the SQL subset; the compiler
        # must refuse rather than emit wrong SQL (COSY then falls back to
        # client-side evaluation for this property).
        with pytest.raises(PushdownError):
            compiler.compile_property("Weird")


class TestCompiledQueriesAgainstTheEngine:
    def test_compiled_sync_cost_matches_reference_value(
        self, cosy_spec, schema_mapping, mixed_repository, mixed_run
    ):
        from repro.asl.evaluator import AslEvaluator

        database = Database()
        ids = load_repository(mixed_repository, schema_mapping, database)
        compiler = PropertyCompiler(cosy_spec, schema_mapping)
        compiled = compiler.compile_property("SyncCost")
        region = mixed_repository.region_by_name("assemble_matrix")
        basis = mixed_repository.region_by_name("app_main")
        binding = {
            "r": ids.id_for(region),
            "t": ids.id_for(mixed_run),
            "Basis": ids.id_for(basis),
        }
        guard, severity_query = compiled.severity[0]
        sql_value = database.query(
            severity_query.sql, severity_query.bind(binding)
        ).scalar()
        evaluator = AslEvaluator(cosy_spec)
        reference = evaluator.evaluate_property(
            "SyncCost", {"r": region, "t": mixed_run, "Basis": basis}
        )
        assert sql_value == pytest.approx(reference.severity, rel=1e-9)
