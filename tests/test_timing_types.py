"""Tests of the Apprentice timing-type enumeration."""

import pytest

from repro.datamodel import (
    COMMUNICATION_TYPES,
    IO_TYPES,
    NUM_TIMING_TYPES,
    SYNCHRONIZATION_TYPES,
    TimingCategory,
    TimingType,
)


class TestTimingTypeCount:
    def test_there_are_exactly_25_types(self):
        # The paper: "Apprentice knows 25 such types."
        assert NUM_TIMING_TYPES == 25
        assert len(list(TimingType)) == 25

    def test_values_are_unique(self):
        values = [t.value for t in TimingType]
        assert len(values) == len(set(values))

    def test_every_type_has_a_category(self):
        for timing_type in TimingType:
            assert isinstance(timing_type.category, TimingCategory)


class TestOverheadClassification:
    def test_computation_types_are_not_overhead(self):
        assert not TimingType.FloatingPoint.is_overhead
        assert not TimingType.IntegerOps.is_overhead
        assert not TimingType.LoadStore.is_overhead

    def test_barrier_is_overhead(self):
        assert TimingType.Barrier.is_overhead

    def test_io_is_overhead(self):
        assert TimingType.IOWrite.is_overhead
        assert TimingType.IORead.is_overhead

    def test_overhead_and_computation_partition_the_types(self):
        overhead = set(TimingType.overhead_types())
        computation = set(TimingType.computation_types())
        assert overhead | computation == set(TimingType)
        assert not (overhead & computation)

    def test_computation_types_are_exactly_three(self):
        assert len(TimingType.computation_types()) == 3


class TestCategoryGroups:
    def test_communication_types_include_point_to_point_and_collectives(self):
        assert TimingType.SendOverhead in COMMUNICATION_TYPES
        assert TimingType.AllToAll in COMMUNICATION_TYPES
        assert TimingType.Barrier not in COMMUNICATION_TYPES

    def test_synchronization_types(self):
        assert TimingType.Barrier in SYNCHRONIZATION_TYPES
        assert TimingType.LockWait in SYNCHRONIZATION_TYPES
        assert TimingType.IORead not in SYNCHRONIZATION_TYPES

    def test_io_types(self):
        assert IO_TYPES == {
            TimingType.IORead,
            TimingType.IOWrite,
            TimingType.IOOpenClose,
            TimingType.IOSeek,
        }

    def test_groups_are_disjoint(self):
        assert not (COMMUNICATION_TYPES & SYNCHRONIZATION_TYPES)
        assert not (COMMUNICATION_TYPES & IO_TYPES)
        assert not (SYNCHRONIZATION_TYPES & IO_TYPES)


class TestLookup:
    def test_from_name_finds_every_type(self):
        for timing_type in TimingType:
            assert TimingType.from_name(timing_type.value) is timing_type

    def test_from_name_rejects_unknown_names(self):
        with pytest.raises(KeyError, match="unknown timing type"):
            TimingType.from_name("NotATimingType")

    def test_from_name_error_lists_known_types(self):
        with pytest.raises(KeyError, match="Barrier"):
            TimingType.from_name("nope")
