"""Ordered secondary indexes: range probes, index-order top-k pushdown,
and the range-predicate correctness sweep.

Every test pins the same contract the differential fuzzers sweep at random:
an ordered index is an access-path accelerator, never a semantics change —
rows are byte-identical with the index on or off, across all five engine
modes, through ROLLBACK, checkpoint restore and WAL replay.  Only the
physical-work counters (``range_probes``, ``rows_scanned``) may differ from
the scan-everything reference, and those are asserted exactly.
"""

from __future__ import annotations

import pytest

from repro.relalg import Database
from repro.relalg.errors import ExecutionError, SemanticError
from repro.relalg.planner import plan_select
from repro.relalg.sqlparser import parse_sql


def _fill(database, rows, ordered=True):
    database.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v FLOAT, g INTEGER)"
    )
    if ordered:
        database.execute("CREATE INDEX t_v ON t (v) ORDERED")
    database.executemany("INSERT INTO t (id, v, g) VALUES (?, ?, ?)", rows)
    return database


def _rows(n=60):
    """n rows: v cycles a shuffled residue pattern, every 7th v is NULL."""
    out = []
    for i in range(n):
        value = None if i % 7 == 3 else float((i * 37) % n) / 2.0
        out.append((i + 1, value, i % 5))
    return out


def _pair(n_partitions=3, rows=None):
    """The same data with and without the ordered index."""
    rows = _rows() if rows is None else rows
    indexed = _fill(Database(n_partitions=n_partitions), rows)
    plain = _fill(Database(n_partitions=n_partitions), rows, ordered=False)
    return indexed, plain


def _access_kinds(database, sql):
    plan = plan_select(parse_sql(sql), database.tables)
    return [level["access"] for level in plan.describe()]


class TestRangeProbe:
    def test_probe_matches_scan_with_exact_stats(self):
        indexed, plain = _pair()
        sql = "SELECT id, v FROM t WHERE v > ? AND v <= ? ORDER BY id"
        assert _access_kinds(indexed, sql) == ["range-probe"]
        assert _access_kinds(plain, sql) == ["scan"]
        for lo, hi in [(4.0, 11.0), (-5.0, 0.0), (25.0, 20.0), (0.0, 100.0)]:
            got = indexed.query(sql, [lo, hi])
            expected = plain.query(sql, [lo, hi])
            assert got.rows == expected.rows
            assert got.stats.range_probes == 1
            assert expected.stats.range_probes == 0
            # The probe touches exactly the in-range rows; the scan touches
            # everything.
            assert got.stats.rows_scanned == len(got.rows)
            assert expected.stats.rows_scanned == 60

    def test_inclusivity_all_four_operators(self):
        indexed, plain = _pair()
        for op in (">", ">=", "<", "<="):
            sql = f"SELECT id FROM t WHERE v {op} ? ORDER BY id"
            assert _access_kinds(indexed, sql) == ["range-probe"]
            got = indexed.query(sql, [10.0])
            assert got.rows == plain.query(sql, [10.0]).rows
            assert got.stats.range_probes == 1

    def test_between_desugars_to_range_probe(self):
        indexed, plain = _pair()
        sql = "SELECT id, v FROM t WHERE v BETWEEN ? AND ? ORDER BY id"
        assert _access_kinds(indexed, sql) == ["range-probe"]
        assert indexed.query(sql, [3.0, 9.0]).rows == plain.query(sql, [3.0, 9.0]).rows
        # Inverted bounds: BETWEEN desugars to v >= lo AND v <= hi, which no
        # value satisfies — an empty slice, still one charged probe.
        inverted = indexed.query(sql, [9.0, 3.0])
        assert inverted.rows == []
        assert inverted.stats.range_probes == 1

    def test_null_bound_matches_nothing(self):
        indexed, plain = _pair()
        sql = "SELECT id FROM t WHERE v > ?"
        for database in (indexed, plain):
            assert database.query(sql, [None]).rows == []
        # The comparison is UNKNOWN for every row: the probe is charged but
        # no candidates are visited.
        got = indexed.query(sql, [None])
        assert got.stats.range_probes == 1
        assert got.stats.rows_scanned == 0

    def test_nan_bound_matches_nothing(self):
        indexed, plain = _pair()
        sql = "SELECT id FROM t WHERE v < ?"
        for database in (indexed, plain):
            assert database.query(sql, [float("nan")]).rows == []
        assert indexed.query(sql, [float("nan")]).stats.range_probes == 1

    def test_incompatible_bound_reproduces_reference_error(self):
        # A string bound over a float run cannot be bisected; the probe
        # falls back to a filtered scan so the reference engine's per-row
        # typed error surfaces identically (same first row, same message).
        indexed, plain = _pair()
        sql = "SELECT id FROM t WHERE v > ?"
        messages = set()
        for database in (indexed, plain):
            with pytest.raises(ExecutionError) as excinfo:
                database.query(sql, ["abc"])
            messages.add(str(excinfo.value))
        assert len(messages) == 1

    def test_contradictory_literals_scan_nothing(self):
        indexed, _plain = _pair()
        got = indexed.query("SELECT id FROM t WHERE v > 10 AND v < 5")
        assert got.rows == []
        assert got.stats.rows_scanned == 0
        assert got.stats.range_probes == 0

    def test_redundant_conjuncts_fold_to_tightest_interval(self):
        # v > 5 AND v > 20 folds to v > 20 at plan time: the estimate must
        # match the estimate of the already-tight statement instead of
        # multiplying both selectivities.
        indexed, _plain = _pair()
        redundant = plan_select(
            parse_sql("SELECT id FROM t WHERE v > 5 AND v > 20 AND v < 28"),
            indexed.tables,
        )
        tight = plan_select(
            parse_sql("SELECT id FROM t WHERE v > 20 AND v < 28"),
            indexed.tables,
        )
        assert (
            redundant.describe()[0]["estimated_rows"]
            == tight.describe()[0]["estimated_rows"]
        )

    def test_residual_filters_still_apply(self):
        indexed, plain = _pair()
        sql = "SELECT id, v, g FROM t WHERE v >= ? AND v < ? AND g = ? ORDER BY id"
        assert _access_kinds(indexed, sql) == ["range-probe"]
        args = [2.0, 21.0, 3]
        assert indexed.query(sql, args).rows == plain.query(sql, args).rows


class TestIndexOrderPushdown:
    def test_pushdown_engages_and_plain_sort_does_not(self):
        indexed, plain = _pair()
        sql = "SELECT id, v FROM t ORDER BY v LIMIT 6"
        assert plan_select(parse_sql(sql), indexed.tables).index_order == ("v", True)
        assert plan_select(parse_sql(sql), plain.tables).index_order is None
        desc = "SELECT id, v FROM t ORDER BY v DESC LIMIT 6"
        assert plan_select(parse_sql(desc), indexed.tables).index_order == ("v", False)

    @pytest.mark.parametrize("n_partitions", [1, 3, 5])
    def test_pushdown_is_invisible_across_partition_layouts(self, n_partitions):
        # Same partition count with and without the index: the k-way merge
        # must reproduce the stable sort's partition-major tie order and
        # NULL placement exactly, for every direction/limit/offset shape.
        indexed, plain = _pair(n_partitions=n_partitions)
        for sql in (
            "SELECT id, v FROM t ORDER BY v LIMIT 7",
            "SELECT id, v FROM t ORDER BY v DESC LIMIT 7",
            "SELECT id, v FROM t ORDER BY v LIMIT 5 OFFSET 4",
            "SELECT id, v FROM t ORDER BY v DESC LIMIT 5 OFFSET 4",
            "SELECT id, v FROM t ORDER BY v LIMIT 100",
            "SELECT id, v FROM t ORDER BY v LIMIT 3 OFFSET 200",
        ):
            assert indexed.query(sql).rows == plain.query(sql).rows, sql

    def test_pushdown_stops_early(self):
        indexed, plain = _pair()
        sql = "SELECT id, v FROM t ORDER BY v LIMIT 4 OFFSET 2"
        got = indexed.query(sql)
        assert got.rows == plain.query(sql).rows
        # The merge stops after limit+offset survivors; the sort reference
        # scans the whole table.
        assert got.stats.rows_scanned == 6
        assert plain.query(sql).stats.rows_scanned == 60

    def test_signed_zero_ties_keep_position_order(self):
        rows = [(1, 0.0, 0), (2, -0.0, 0), (3, 0.0, 0), (4, -1.0, 0), (5, 1.0, 0)]
        indexed, plain = _pair(n_partitions=1, rows=rows)
        for sql in (
            "SELECT id FROM t ORDER BY v LIMIT 5",
            "SELECT id FROM t ORDER BY v DESC LIMIT 5",
        ):
            assert indexed.query(sql).rows == plain.query(sql).rows, sql

    def test_nan_in_data_forces_runtime_fallback(self):
        rows = [(i + 1, float(v), 0) for i, v in enumerate([5, 2, 9, 1])]
        rows.append((5, float("nan"), 0))
        indexed, plain = _pair(n_partitions=2, rows=rows)
        sql = "SELECT id FROM t ORDER BY v LIMIT 3"
        # Eligible at plan time, but a NaN entry poisons the sorted run, so
        # execution falls back to the full stable sort.
        assert plan_select(parse_sql(sql), indexed.tables).index_order == ("v", True)
        got = indexed.query(sql)
        assert got.rows == plain.query(sql).rows
        assert got.stats.rows_scanned == len(rows)

    def test_two_sort_keys_disable_pushdown(self):
        indexed, _plain = _pair()
        sql = "SELECT id, v FROM t ORDER BY v, id LIMIT 5"
        assert plan_select(parse_sql(sql), indexed.tables).index_order is None


class TestFiveModeParity:
    def _everywhere(self, process_pool, sql, params=()):
        rows = _rows()
        databases = {
            "interp": _fill(Database(engine="interpreted"), rows),
            "rowwise": _fill(Database(n_partitions=1, vectorized=False), rows),
            "vector": _fill(Database(n_partitions=1), rows),
            "thread": _fill(Database(n_partitions=1, parallel=2), rows),
            "process": _fill(Database(n_partitions=1, executor=process_pool), rows),
        }
        results = {name: db.query(sql, params) for name, db in databases.items()}
        reference = results["interp"]
        for name, result in results.items():
            assert result.columns == reference.columns, (name, sql)
            assert result.rows == reference.rows, (name, sql)
        return results

    def test_range_and_pushdown_rows_identical_in_all_modes(self, process_pool):
        for sql, params in [
            ("SELECT id, v FROM t WHERE v > ? AND v < ? ORDER BY id", [3.0, 17.0]),
            ("SELECT id FROM t WHERE v BETWEEN ? AND ? ORDER BY id DESC", [5.0, 12.5]),
            ("SELECT id, v FROM t ORDER BY v LIMIT 8", []),
            ("SELECT id, v FROM t ORDER BY v DESC LIMIT 6 OFFSET 3", []),
            ("SELECT id, g FROM t WHERE v IS NULL ORDER BY id LIMIT 4 OFFSET 1", []),
        ]:
            self._everywhere(process_pool, sql, params)

    def test_order_by_aggregate_output_expression(self, process_pool):
        results = self._everywhere(
            process_pool,
            "SELECT g, COUNT(*) AS c FROM t GROUP BY g ORDER BY COUNT(*), g",
        )
        counts = [row[1] for row in results["interp"].rows]
        assert counts == sorted(counts)

    def test_order_by_aggregate_not_in_output_rejected_identically(
        self, process_pool
    ):
        rows = _rows()
        sql = "SELECT g, COUNT(*) FROM t GROUP BY g ORDER BY SUM(v)"
        messages = set()
        for database in (
            _fill(Database(engine="interpreted"), rows),
            _fill(Database(n_partitions=2), rows),
        ):
            with pytest.raises((SemanticError, ExecutionError)) as excinfo:
                database.query(sql)
            messages.add(str(excinfo.value))
        assert len(messages) == 1


class TestMaintenance:
    def test_rolled_back_inserts_stay_invisible_to_the_probe(self):
        indexed, plain = _pair(n_partitions=2)
        for database in (indexed, plain):
            database.execute("BEGIN")
            database.executemany(
                "INSERT INTO t (id, v, g) VALUES (?, ?, ?)",
                [(100 + i, 7.0 + i, 0) for i in range(5)],
            )
            database.execute("ROLLBACK")
        sql = "SELECT id, v FROM t WHERE v >= ? AND v < ? ORDER BY id"
        got = indexed.query(sql, [6.0, 14.0])
        assert got.rows == plain.query(sql, [6.0, 14.0]).rows
        assert got.stats.range_probes == 1
        assert all(row[0] < 100 for row in got.rows)

    def test_rolled_back_delete_keeps_rows_probeable(self):
        indexed, plain = _pair(n_partitions=2)
        for database in (indexed, plain):
            database.execute("BEGIN")
            database.execute("DELETE FROM t WHERE v > ?", [5.0])
            database.execute("ROLLBACK")
        sql = "SELECT id, v FROM t WHERE v > ? ORDER BY id"
        assert indexed.query(sql, [5.0]).rows == plain.query(sql, [5.0]).rows
        assert indexed.query(sql, [5.0]).rows != []

    def test_delete_then_probe(self):
        indexed, plain = _pair(n_partitions=2)
        for database in (indexed, plain):
            database.execute("DELETE FROM t WHERE g = ?", [2])
        sql = "SELECT id, v, g FROM t WHERE v >= ? AND v <= ? ORDER BY id"
        got = indexed.query(sql, [0.0, 50.0])
        assert got.rows == plain.query(sql, [0.0, 50.0]).rows
        assert all(row[2] != 2 for row in got.rows)

    def test_pushdown_after_dml_churn(self):
        indexed, plain = _pair(n_partitions=3)
        for database in (indexed, plain):
            database.execute("DELETE FROM t WHERE g = ?", [1])
            database.executemany(
                "INSERT INTO t (id, v, g) VALUES (?, ?, ?)",
                [(200 + i, float(i) / 3.0, 1) for i in range(12)],
            )
        for sql in (
            "SELECT id, v FROM t ORDER BY v LIMIT 9",
            "SELECT id, v FROM t ORDER BY v DESC LIMIT 9 OFFSET 2",
        ):
            assert indexed.query(sql).rows == plain.query(sql).rows, sql


class TestDurability:
    def test_ordered_index_survives_wal_replay(self, tmp_path):
        wal_path = str(tmp_path / "ordered.wal")
        database = _fill(
            Database(n_partitions=2, wal_path=wal_path, wal_autocheckpoint=None),
            _rows(),
        )
        expected = database.query(
            "SELECT id, v FROM t WHERE v > ? AND v < ? ORDER BY id", [4.0, 16.0]
        )
        database.close()
        with Database(n_partitions=2, wal_path=wal_path) as recovered:
            got = recovered.query(
                "SELECT id, v FROM t WHERE v > ? AND v < ? ORDER BY id", [4.0, 16.0]
            )
            assert got.rows == expected.rows
            # The replayed CREATE INDEX record carries the ordered flag:
            # the probe path is live again, not a silent downgrade to scan.
            assert got.stats.range_probes == 1

    def test_ordered_index_survives_checkpoint_restore(self, tmp_path):
        wal_path = str(tmp_path / "ordered-ckpt.wal")
        database = _fill(
            Database(n_partitions=3, wal_path=wal_path, wal_autocheckpoint=None),
            _rows(),
        )
        database.checkpoint()
        database.executemany(
            "INSERT INTO t (id, v, g) VALUES (?, ?, ?)",
            [(500, 4.25, 0), (501, None, 1)],
        )
        expected = database.query(
            "SELECT id, v FROM t WHERE v BETWEEN ? AND ? ORDER BY id", [4.0, 9.0]
        )
        database.close()
        with Database(n_partitions=3, wal_path=wal_path) as recovered:
            got = recovered.query(
                "SELECT id, v FROM t WHERE v BETWEEN ? AND ? ORDER BY id", [4.0, 9.0]
            )
            assert got.rows == expected.rows
            assert got.stats.range_probes == 1
            assert any(row[0] == 500 for row in got.rows)


class TestExplain:
    def test_explain_shows_range_probe_and_estimates(self):
        indexed, _plain = _pair()
        text = indexed.explain("SELECT id FROM t WHERE v > 10 AND v < 20")
        assert "range-probe" in text

    def test_explain_analyze_reports_estimated_vs_actual(self):
        indexed, _plain = _pair()
        text = indexed.explain(
            "SELECT id FROM t WHERE v > 10 AND v < 20", analyze=True
        )
        assert "analyze:" in text
        assert "actual_rows" in text
        assert "range probes 1" in text

    def test_explain_analyze_counts_land_in_summary(self):
        indexed, _plain = _pair()
        before = indexed.summary.selects
        indexed.explain("SELECT id FROM t WHERE v > 10", analyze=True)
        assert indexed.summary.selects == before + 1
