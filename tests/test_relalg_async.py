"""Tests of the overlap-aware virtual clock and the pipelined client layer.

Covers the PR-4 contract:

* the serial clock is now an explicit event timeline whose totals are
  byte-identical to the historical scalar accumulator;
* ``AsyncClient`` at ``window=1`` is byte-identical to the serial client
  stack (the E2 fetch loop and the E6 bulk load are the anchors);
* at ``window>1`` round trips overlap but the reported elapsed time never
  drops below the serialized server work;
* results through the pipeline are identical to serial execution —
  including a replay of the engine differential fuzzer's seeded cases.
"""

import random

import pytest

from repro.bench import identical_table_contents
from repro.relalg import (
    BACKEND_PROFILES,
    AsyncClient,
    BridgedClient,
    Database,
    ExecutionError,
    IntegrityError,
    NativeClient,
    PipelinedTimeline,
    SimulatedBackend,
    StatementCost,
    VirtualClock,
    backend,
)

from test_property_based import _random_databases, _random_select, _rows_equivalent


def prepare(client, rows=64):
    client.execute("CREATE TABLE probe (id INTEGER PRIMARY KEY, x FLOAT)")
    client.executemany(
        "INSERT INTO probe (id, x) VALUES (?, ?)",
        [(i + 1, float(i)) for i in range(rows)],
    )
    client.backend.reset_clock()
    client.client_time = 0.0
    return client


def fetch_ids(count, table_rows=64):
    return [(i * 37) % table_rows + 1 for i in range(count)]


class TestTimelineClock:
    def test_advance_records_back_to_back_events(self):
        clock = VirtualClock()
        clock.advance(0.5, kind="statement", label="one")
        clock.advance(0.25, kind="client")
        assert [e.kind for e in clock.events] == ["statement", "client"]
        assert clock.events[0].start == 0.0
        assert clock.events[0].end == 0.5
        assert clock.events[1].start == 0.5
        assert clock.events[0].label == "one"
        assert clock.elapsed == clock.events[-1].end

    def test_serial_totals_match_the_scalar_arithmetic(self):
        # The frontier accumulates with `elapsed += seconds`, exactly like
        # the pre-timeline scalar clock.
        clock = VirtualClock()
        scalar = 0.0
        for seconds in (0.1, 0.07, 1.3e-4, 2.9e-7):
            clock.advance(seconds)
            scalar += seconds
        assert clock.elapsed == scalar

    def test_advance_to_is_monotone(self):
        clock = VirtualClock()
        clock.advance(1.0)
        clock.advance_to(0.5)  # behind the frontier: no-op
        assert clock.elapsed == 1.0
        clock.advance_to(2.5)
        assert clock.elapsed == 2.5

    def test_reset_clears_the_timeline(self):
        clock = VirtualClock()
        clock.advance(1.0)
        clock.reset()
        assert clock.elapsed == 0.0
        assert clock.events == []

    def test_event_trace_is_bounded(self):
        from repro.relalg.backends import MAX_TIMELINE_EVENTS

        clock = VirtualClock()
        for _ in range(MAX_TIMELINE_EVENTS + 10):
            clock.advance(1e-9)
        # The trace keeps a recent-history window; the frontier keeps the
        # full total regardless of compaction.
        assert len(clock.events) <= MAX_TIMELINE_EVENTS
        assert clock.events[-1].end == clock.elapsed
        assert clock.elapsed == pytest.approx(1e-9 * (MAX_TIMELINE_EVENTS + 10))


class TestStatementCost:
    def test_total_reproduces_the_profile_arithmetic(self):
        profile = BACKEND_PROFILES["oracle7"]
        cost = StatementCost(profile, rows_inserted=3, rows_returned=2, rows_scanned=7)
        assert cost.total == profile.statement_cost(
            rows_inserted=3, rows_returned=2, rows_scanned=7
        )

    def test_component_split_covers_the_round_trip(self):
        profile = BACKEND_PROFILES["postgres"]
        cost = StatementCost(profile, 0, 5, 100)
        wire = cost.request_seconds + cost.response_seconds
        assert wire == pytest.approx(profile.round_trip + 5 * profile.per_fetch_row)
        assert cost.server_seconds == pytest.approx(100 * profile.per_scanned_row)

    def test_insert_statement_overhead_is_server_side(self):
        profile = BACKEND_PROFILES["ms_access"]
        none = StatementCost(profile, 0, 0, 0)
        some = StatementCost(profile, 10, 0, 0)
        assert none.server_seconds == 0.0
        assert some.server_seconds == pytest.approx(
            10 * profile.per_insert_row + profile.per_insert_statement
        )


class TestPipelinedTimeline:
    profile = BACKEND_PROFILES["oracle7"]

    def _cost(self, scanned=1, returned=1):
        return StatementCost(self.profile, 0, returned, scanned)

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            PipelinedTimeline(VirtualClock(), 0)

    def test_window_one_serializes_submissions(self):
        timeline = PipelinedTimeline(VirtualClock(), window=1)
        first = timeline.submit(self._cost())
        second = timeline.submit(self._cost())
        assert second.submitted == first.completed

    def test_window_bounds_the_in_flight_statements(self):
        timeline = PipelinedTimeline(VirtualClock(), window=2)
        slots = [timeline.submit(self._cost()) for _ in range(4)]
        # Statement 2 may not leave the client before statement 0 completed.
        assert slots[2].submitted >= slots[0].completed
        assert slots[3].submitted >= slots[1].completed

    def test_server_work_serializes(self):
        timeline = PipelinedTimeline(VirtualClock(), window=8)
        slots = [timeline.submit(self._cost(scanned=500)) for _ in range(6)]
        for previous, current in zip(slots, slots[1:]):
            assert current.server_start >= previous.server_end
        elapsed = timeline.drain()
        assert elapsed >= sum(slot.server_seconds for slot in slots)

    def test_round_trips_overlap_inside_the_window(self):
        timeline = PipelinedTimeline(VirtualClock(), window=8)
        slots = [timeline.submit(self._cost()) for _ in range(8)]
        # The second statement is dispatched long before the first completes.
        assert slots[1].submitted < slots[0].completed

    def test_drain_commits_events_and_is_idempotent(self):
        clock = VirtualClock()
        timeline = PipelinedTimeline(clock, window=4)
        for _ in range(3):
            timeline.submit(self._cost(), label="q")
        elapsed = timeline.drain()
        assert clock.elapsed == elapsed
        pipelined = [e for e in clock.events if e.kind == "pipelined"]
        assert len(pipelined) == 3
        assert timeline.pending == 0
        assert timeline.drain() == elapsed

    def test_completions_stay_in_submission_order(self):
        timeline = PipelinedTimeline(VirtualClock(), window=8)
        light = timeline.submit(self._cost(scanned=1000))
        heavy = timeline.submit(self._cost(scanned=1))
        assert heavy.completed >= light.completed


class TestAsyncClientSerialParity:
    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            AsyncClient(NativeClient(backend("ms_access")), window=0)

    @pytest.mark.parametrize("factory", [NativeClient, BridgedClient])
    def test_fetch_loop_at_window_one_is_byte_identical(self, factory):
        serial = prepare(factory(backend("oracle7")))
        for fid in fetch_ids(50):
            serial.fetch_record("SELECT x FROM probe WHERE id = ?", [fid])

        piped = prepare(factory(backend("oracle7")))
        async_client = AsyncClient(piped, window=1)
        for fid in fetch_ids(50):
            async_client.submit("SELECT x FROM probe WHERE id = ?", [fid])
        async_client.gather()

        assert async_client.elapsed == serial.elapsed
        assert async_client.client_time == serial.client_time
        assert async_client.calls == serial.calls

    def test_bulk_load_at_window_one_is_byte_identical(self):
        rows = [(i + 1, float(i)) for i in range(230)]
        serial = NativeClient(backend("oracle7"))
        serial.execute("CREATE TABLE probe (id INTEGER PRIMARY KEY, x FLOAT)")
        serial.executemany("INSERT INTO probe (id, x) VALUES (?, ?)", rows)

        piped = AsyncClient(NativeClient(backend("oracle7")), window=1)
        piped.execute("CREATE TABLE probe (id INTEGER PRIMARY KEY, x FLOAT)")
        affected = piped.executemany("INSERT INTO probe (id, x) VALUES (?, ?)", rows)

        assert affected == len(rows)
        assert piped.elapsed == serial.elapsed

    def test_window_one_results_complete_at_submit(self):
        client = prepare(NativeClient(backend("ms_access")))
        pending = AsyncClient(client, window=1).submit(
            "SELECT x FROM probe WHERE id = ?", [3]
        )
        assert pending.done
        assert pending.result().rows == [(2.0,)]


class TestAsyncClientOverlap:
    def test_pipelining_overlaps_round_trips(self):
        serial = prepare(NativeClient(backend("oracle7")))
        for fid in fetch_ids(60):
            serial.fetch_record("SELECT x FROM probe WHERE id = ?", [fid])

        times = {}
        for window in (1, 2, 8):
            client = prepare(NativeClient(backend("oracle7")))
            async_client = AsyncClient(client, window=window)
            for fid in fetch_ids(60):
                async_client.submit("SELECT x FROM probe WHERE id = ?", [fid])
            async_client.gather()
            times[window] = async_client.elapsed

        assert times[1] == serial.elapsed
        assert times[8] < times[2] < times[1]
        assert times[1] / times[8] >= 2.0

    def test_elapsed_never_below_serialized_server_work(self):
        client = prepare(NativeClient(backend("oracle7")), rows=400)
        async_client = AsyncClient(client, window=16)
        pendings = [
            async_client.submit("SELECT SUM(x) FROM probe") for _ in range(10)
        ]
        async_client.gather()
        server_work = sum(p.slot.server_seconds for p in pendings)
        assert async_client.elapsed >= server_work

    def test_cpu_bound_workload_stays_flat(self):
        times = {}
        for window in (1, 8):
            client = prepare(NativeClient(backend("oracle7")), rows=2000)
            async_client = AsyncClient(client, window=window)
            for _ in range(15):
                async_client.submit("SELECT SUM(x) FROM probe")
            async_client.gather()
            times[window] = async_client.elapsed
        speedup = times[1] / times[8]
        assert 1.0 <= speedup < 1.5

    def test_results_identical_to_serial_execution(self):
        serial = prepare(NativeClient(backend("ms_sql_server")))
        expected = [
            serial.query("SELECT x FROM probe WHERE id = ?", [fid]).rows
            for fid in fetch_ids(30)
        ]
        async_client = AsyncClient(
            prepare(NativeClient(backend("ms_sql_server"))), window=6
        )
        pendings = [
            async_client.submit("SELECT x FROM probe WHERE id = ?", [fid])
            for fid in fetch_ids(30)
        ]
        results = async_client.gather()
        assert [r.rows for r in results] == expected
        assert [p.result().rows for p in pendings] == expected

    def test_pending_result_raises_until_gathered(self):
        client = prepare(NativeClient(backend("oracle7")))
        async_client = AsyncClient(client, window=4)
        pending = async_client.submit("SELECT x FROM probe WHERE id = ?", [1])
        assert not pending.done
        with pytest.raises(ExecutionError, match="in flight"):
            pending.result()
        async_client.gather()
        assert pending.result().rows == [(0.0,)]

    def test_failed_submit_leaves_earlier_statements_gatherable(self):
        client = prepare(NativeClient(backend("oracle7")))
        async_client = AsyncClient(client, window=4)
        earlier = async_client.submit("SELECT x FROM probe WHERE id = ?", [1])
        with pytest.raises(Exception):
            async_client.submit("SELECT x FROM missing_table")
        async_client.gather()
        assert earlier.result().rows == [(0.0,)]
        # The executed statement's overlap timing is committed.
        assert async_client.elapsed > 0.0
        assert async_client.in_flight == 0

    def test_execute_is_a_synchronization_point(self):
        client = prepare(NativeClient(backend("oracle7")))
        async_client = AsyncClient(client, window=4)
        earlier = async_client.submit("SELECT x FROM probe WHERE id = ?", [1])
        async_client.execute("SELECT x FROM probe WHERE id = ?", [2])
        assert earlier.done
        assert async_client.in_flight == 0

    def test_pipelined_bulk_load_matches_serial_contents(self):
        rows = [(i + 1, float(i)) for i in range(350)]
        serial = NativeClient(backend("oracle7"))
        serial.execute("CREATE TABLE probe (id INTEGER PRIMARY KEY, x FLOAT)")
        serial.executemany("INSERT INTO probe (id, x) VALUES (?, ?)", rows)

        piped = AsyncClient(NativeClient(backend("oracle7")), window=8)
        piped.execute("CREATE TABLE probe (id INTEGER PRIMARY KEY, x FLOAT)")
        affected = piped.executemany("INSERT INTO probe (id, x) VALUES (?, ?)", rows)

        assert affected == len(rows)
        assert identical_table_contents(
            serial.backend.database, piped.backend.database
        )
        # Batch round trips overlap, so pipelined loading is never slower.
        assert piped.elapsed <= serial.elapsed

    def test_pipelined_select_executemany_counts_fetched_rows(self):
        serial = prepare(NativeClient(backend("ms_access")))
        expected = serial.executemany(
            "SELECT x FROM probe WHERE id = ?", [(1,), (2,), (999,)]
        )
        piped = AsyncClient(prepare(NativeClient(backend("ms_access"))), window=4)
        total = piped.executemany(
            "SELECT x FROM probe WHERE id = ?", [(1,), (2,), (999,)]
        )
        assert total == expected == 2

    def test_mid_batch_failure_still_charges_committed_batches(self):
        piped = AsyncClient(NativeClient(backend("oracle7")), window=4)
        piped.execute("CREATE TABLE probe (id INTEGER PRIMARY KEY, x FLOAT)")
        before = piped.elapsed
        rows = [(i + 1, float(i)) for i in range(150)]
        rows.append((1, 0.0))  # duplicate primary key in the final batch
        with pytest.raises(IntegrityError):
            piped.executemany("INSERT INTO probe (id, x) VALUES (?, ?)", rows)
        # The first full batch committed: its rows exist and its time is
        # charged (the failure path gathers the pipeline).
        assert piped.backend.database.table("probe").row_count == 100
        assert piped.elapsed > before
        assert piped.in_flight == 0


class TestFuzzerReplayThroughAsyncClient:
    @pytest.mark.parametrize("seed", range(0, 42, 7))
    def test_fuzzer_seeds_replayed_identically(self, seed):
        rng = random.Random(seed)
        compiled, _rowwise, interpreted = _random_databases(rng)
        selects = [_random_select(rng) for _ in range(4)]
        async_client = AsyncClient(
            NativeClient(
                SimulatedBackend(BACKEND_PROFILES["oracle7"], database=compiled[4])
            ),
            window=5,
        )
        pendings = [async_client.submit(sql, params) for sql, params in selects]
        async_client.gather()
        for (sql, params), pending in zip(selects, pendings):
            expected = interpreted.query(sql, params)
            got = pending.result()
            assert got.columns == expected.columns, sql
            assert _rows_equivalent(got.rows, expected.rows), sql


class TestExplainTypedErrors:
    def test_non_string_input_raises_execution_error(self):
        with pytest.raises(ExecutionError, match="SQL text"):
            Database().explain(None)

    def test_interpreted_engine_refuses_explain(self):
        db = Database(engine="interpreted")
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        with pytest.raises(ExecutionError, match="compiled engine"):
            db.explain("SELECT * FROM t")
        # The refusal must not have cached a plan the engine never runs.
        assert db.plan_cache_info()["size"] == 0

    def test_non_select_raises_through_every_layer(self):
        client = NativeClient(backend("ms_access"))
        client.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        async_client = AsyncClient(client, window=4)
        for layer in (client.backend.database, client.backend, client, async_client):
            with pytest.raises(ExecutionError, match="SELECT"):
                layer.explain("DELETE FROM t")
            with pytest.raises(ExecutionError, match="SQL text"):
                layer.explain(42)
