"""Tests of the simulator's RNG helpers and the synthetic program model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apprentice import (
    CallSpec,
    CommPattern,
    FunctionSpec,
    RegionSpec,
    WorkloadError,
    WorkloadSpec,
    imbalanced_shares,
    rng_for,
    stable_seed,
    synthetic_workload,
)
from repro.datamodel import RegionKind


class TestStableSeed:
    def test_same_inputs_same_seed(self):
        assert stable_seed("a", 1, 2.5) == stable_seed("a", 1, 2.5)

    def test_different_inputs_different_seed(self):
        assert stable_seed("a", 1) != stable_seed("a", 2)

    def test_rng_for_is_deterministic(self):
        a = rng_for("workload", "region", 8).standard_normal(4)
        b = rng_for("workload", "region", 8).standard_normal(4)
        np.testing.assert_array_equal(a, b)


class TestImbalancedShares:
    def test_zero_imbalance_is_perfectly_balanced(self):
        shares = imbalanced_shares(rng_for("x"), 8, 0.0)
        np.testing.assert_allclose(shares, np.ones(8))

    def test_mean_is_exactly_one(self):
        shares = imbalanced_shares(rng_for("y"), 16, 0.5)
        assert shares.mean() == pytest.approx(1.0)

    def test_all_shares_positive(self):
        shares = imbalanced_shares(rng_for("z"), 64, 1.5)
        assert (shares > 0).all()

    def test_single_process_has_no_imbalance(self):
        shares = imbalanced_shares(rng_for("w"), 1, 0.9)
        np.testing.assert_allclose(shares, [1.0])

    def test_rejects_invalid_arguments(self):
        with pytest.raises(ValueError):
            imbalanced_shares(rng_for("a"), 0, 0.1)
        with pytest.raises(ValueError):
            imbalanced_shares(rng_for("a"), 4, -0.1)

    @given(
        count=st.integers(min_value=2, max_value=64),
        imbalance=st.floats(min_value=0.0, max_value=2.0),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_properties_hold_for_arbitrary_parameters(self, count, imbalance, seed):
        shares = imbalanced_shares(rng_for(seed), count, imbalance)
        assert shares.shape == (count,)
        assert (shares > 0).all()
        assert shares.mean() == pytest.approx(1.0, rel=1e-9)

    def test_higher_imbalance_gives_higher_spread(self):
        low = imbalanced_shares(rng_for("s"), 256, 0.1)
        high = imbalanced_shares(rng_for("s"), 256, 0.9)
        assert high.std() > low.std()


class TestRegionSpecValidation:
    def test_rejects_negative_work(self):
        with pytest.raises(WorkloadError):
            RegionSpec(name="r", work=-1.0)

    def test_rejects_bad_serial_fraction(self):
        with pytest.raises(WorkloadError):
            RegionSpec(name="r", serial_fraction=1.5)

    def test_rejects_computation_fractions_above_one(self):
        with pytest.raises(WorkloadError):
            RegionSpec(name="r", fp_fraction=0.8, int_fraction=0.5)

    def test_walk_and_find(self):
        root = RegionSpec(name="root", work=1.0)
        child = root.add_child(RegionSpec(name="child", work=2.0))
        child.add_child(RegionSpec(name="grandchild", work=3.0))
        assert [r.name for r in root.walk()] == ["root", "child", "grandchild"]
        assert root.find("grandchild").work == 3.0
        with pytest.raises(KeyError):
            root.find("missing")

    def test_total_work_and_barriers(self):
        root = RegionSpec(name="root", work=1.0, barriers=2)
        root.add_child(RegionSpec(name="child", work=2.0, barriers=3))
        assert root.total_work() == pytest.approx(3.0)
        assert root.total_barriers() == 5


class TestCallSpecValidation:
    def test_rejects_negative_values(self):
        with pytest.raises(WorkloadError):
            CallSpec("barrier", calls_per_pe=-1)
        with pytest.raises(WorkloadError):
            CallSpec("barrier", time_per_call=-1)
        with pytest.raises(WorkloadError):
            CallSpec("barrier", imbalance=-0.5)


class TestWorkloadSpec:
    def test_duplicate_function_names_rejected(self):
        workload = WorkloadSpec(name="w", functions=[])
        workload.add_function(FunctionSpec(name="main", body=RegionSpec(name="a")))
        with pytest.raises(WorkloadError):
            workload.add_function(FunctionSpec(name="main", body=RegionSpec(name="b")))

    def test_duplicate_region_names_detected_by_validate(self):
        workload = WorkloadSpec(name="w", functions=[])
        workload.add_function(FunctionSpec(name="main", body=RegionSpec(name="dup")))
        workload.add_function(FunctionSpec(name="other", body=RegionSpec(name="dup")))
        with pytest.raises(WorkloadError, match="unique"):
            workload.validate()

    def test_unknown_callee_detected(self):
        body = RegionSpec(name="body", calls=[CallSpec("no_such_routine")])
        workload = WorkloadSpec(
            name="w", functions=[FunctionSpec(name="main", body=body)]
        )
        with pytest.raises(WorkloadError, match="unknown routine"):
            workload.validate()

    def test_entry_function_defaults_to_first(self):
        workload = WorkloadSpec(name="w", functions=[])
        first = workload.add_function(FunctionSpec(name="setup", body=RegionSpec(name="s")))
        assert workload.entry_function is first

    def test_function_lookup(self):
        workload = synthetic_workload("mixed")
        assert workload.function("main").name == "main"
        with pytest.raises(KeyError):
            workload.function("nope")


class TestWorkloadFactories:
    @pytest.mark.parametrize(
        "kind", ["stencil", "imbalanced", "io_bound", "comm_bound", "mixed"]
    )
    def test_predefined_workloads_validate(self, kind):
        workload = synthetic_workload(kind)
        workload.validate()
        assert workload.total_work() > 0

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError, match="unknown workload kind"):
            synthetic_workload("fancy")

    def test_scalable_workload_scales(self):
        small = synthetic_workload("scalable", functions=2, regions_per_function=2)
        large = synthetic_workload("scalable", functions=6, regions_per_function=5)
        assert len(large.region_names()) > len(small.region_names())

    def test_scalable_rejects_invalid_sizes(self):
        with pytest.raises(ValueError):
            synthetic_workload("scalable", functions=0)

    def test_imbalanced_workload_has_barrier_call_sites(self):
        workload = synthetic_workload("imbalanced")
        callees = {
            call.callee
            for _, region in workload.all_regions()
            for call in region.calls
        }
        assert "barrier" in callees

    def test_mixed_workload_has_program_region(self):
        workload = synthetic_workload("mixed")
        kinds = {region.kind for _, region in workload.all_regions()}
        assert RegionKind.PROGRAM in kinds

    def test_comm_bound_uses_alltoall(self):
        workload = synthetic_workload("comm_bound")
        patterns = {region.comm_pattern for _, region in workload.all_regions()}
        assert CommPattern.ALLTOALL in patterns
