"""Cross-cutting property-based tests (hypothesis) on core invariants,
plus the seeded differential fuzzers: compiled engine vs. the seed
AST-walking engine, and the executor matrix (sequential / thread / process)
against the sequential reference — each replayed from a persistent seed
corpus before random exploration."""

import datetime as dt
import itertools
import json
import random
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.apprentice import ApprenticeExport, ApprenticeParser, simulate, synthetic_workload
from repro.asl import parse_expression, unparse_expr
from repro.datamodel import PerformanceDatabase, TimingType
from repro.relalg import (
    Database,
    SemanticError,
    analyze_select,
    parse_sql,
    plan_select,
)


# --------------------------------------------------------------------------- #
# ASL expression round trips over generated expressions
# --------------------------------------------------------------------------- #

_identifiers = st.sampled_from(["r", "t", "Basis", "Cost", "sum", "tt", "NoPe"])


def _expression_strategy() -> st.SearchStrategy:
    atoms = st.one_of(
        st.integers(min_value=0, max_value=10_000).map(str),
        st.floats(min_value=0.001, max_value=1000, allow_nan=False).map(
            lambda v: format(v, ".4g")
        ),
        _identifiers,
        _identifiers.map(lambda name: f"{name}.Incl"),
        _identifiers.map(lambda name: f"Duration({name}, t)"),
    )

    def compound(children):
        return st.one_of(
            st.tuples(children, st.sampled_from(["+", "-", "*", "/"]), children).map(
                lambda parts: f"({parts[0]} {parts[1]} {parts[2]})"
            ),
            st.tuples(children, st.sampled_from([">", ">=", "==", "<"]), children).map(
                lambda parts: f"{parts[0]} {parts[1]} {parts[2]}"
            ),
            children.map(lambda inner: f"SUM({inner} WHERE s IN r.TotTimes)"),
            children.map(lambda inner: f"UNIQUE({{s IN r.TotTimes WITH s.Incl == {inner}}}).Incl"),
        )

    return st.recursive(atoms, compound, max_leaves=12)


class TestAslExpressionRoundTrip:
    @given(source=_expression_strategy())
    @settings(max_examples=120, deadline=None)
    def test_unparse_parse_is_a_fixed_point(self, source):
        """For any generated expression, unparse(parse(x)) is stable."""
        try:
            expr = parse_expression(source)
        except Exception:
            # The generator may produce sources that are not valid ASL
            # (e.g. comparison chains); those are not round-trip subjects.
            return
        once = unparse_expr(expr)
        twice = unparse_expr(parse_expression(once))
        assert once == twice


# --------------------------------------------------------------------------- #
# simulator invariants over random workload parameters
# --------------------------------------------------------------------------- #


class TestSimulatorInvariants:
    @given(
        pes=st.sampled_from([1, 2, 3, 5, 8, 16]),
        imbalance=st.floats(min_value=0.0, max_value=1.0),
        kind=st.sampled_from(["imbalanced", "stencil"]),
    )
    @settings(max_examples=12, deadline=None)
    def test_repository_invariants_hold_for_random_configurations(
        self, pes, imbalance, kind
    ):
        if kind == "imbalanced":
            workload = synthetic_workload(kind, imbalance=imbalance)
        else:
            workload = synthetic_workload(kind)
        repository = simulate(workload, pe_counts=(1, pes) if pes > 1 else (1,))
        repository.validate()
        for region in repository.regions():
            for timing in region.TotTimes:
                assert timing.Incl + 1e-9 >= timing.Excl >= 0
                assert timing.Ovhd >= 0
                # Measured overhead never exceeds the inclusive time.
                assert timing.Ovhd <= timing.Incl + 1e-9
            for typed in region.TypTimes:
                assert typed.Time >= 0
        main = repository.programs[0].latest_version().main_region
        for run in repository.runs():
            assert PerformanceDatabase.total_cost(main, run) >= -1e-9


# --------------------------------------------------------------------------- #
# Apprentice summary round trip over random small workloads
# --------------------------------------------------------------------------- #


class TestSummaryRoundTrip:
    @given(
        functions=st.integers(min_value=1, max_value=3),
        regions=st.integers(min_value=1, max_value=3),
        pes=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=10, deadline=None)
    def test_round_trip_preserves_counts_and_totals(self, functions, regions, pes):
        workload = synthetic_workload(
            "scalable", functions=functions, regions_per_function=regions,
            name=f"rt_{functions}_{regions}",
        )
        repository = simulate(workload, pe_counts=(1, pes) if pes > 1 else (1,))
        text = ApprenticeExport(repository).dumps()
        parsed = ApprenticeParser().loads(text)
        assert parsed.stats().counts == repository.stats().counts
        original_total = sum(
            t.Incl for region in repository.regions() for t in region.TotTimes
        )
        parsed_total = sum(
            t.Incl for region in parsed.regions() for t in region.TotTimes
        )
        assert parsed_total == pytest.approx(original_total, rel=1e-9)


# --------------------------------------------------------------------------- #
# SQL engine: WHERE filters match Python filters
# --------------------------------------------------------------------------- #


class TestSqlFilterEquivalence:
    @given(
        rows=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.floats(min_value=-100, max_value=100, allow_nan=False),
            ),
            min_size=0,
            max_size=40,
        ),
        threshold=st.floats(min_value=-100, max_value=100, allow_nan=False),
        group=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_where_clause_matches_python_filter(self, rows, threshold, group):
        database = Database()
        database.execute(
            "CREATE TABLE v (id INTEGER PRIMARY KEY, g INTEGER, x FLOAT)"
        )
        database.executemany(
            "INSERT INTO v (id, g, x) VALUES (?, ?, ?)",
            [(i + 1, g, x) for i, (g, x) in enumerate(rows)],
        )
        result = database.query(
            "SELECT id FROM v WHERE g = ? AND x > ? ORDER BY id", [group, threshold]
        )
        expected = [
            i + 1 for i, (g, x) in enumerate(rows) if g == group and x > threshold
        ]
        assert [row[0] for row in result] == expected


# --------------------------------------------------------------------------- #
# Differential fuzzer: compiled plans vs. the seed AST-walking engine
# --------------------------------------------------------------------------- #
#
# Every seeded case builds the same random two-table database (random row
# counts, NULLs in every nullable column, randomly created secondary indexes)
# in one Database instance per engine and partition count — the compiled
# engine runs at ``n_partitions`` ∈ {1, 4, 7}, the interpreted engine is the
# unpartitioned reference — and runs a handful of random SELECTs (index
# probes, filters, IS NULL, IN lists, DISTINCT, aggregates, equi-joins,
# ORDER BY/LIMIT) against all of them.  Results must be identical at every
# partition count; the QueryStats counters must be byte-identical at
# ``n_partitions=1`` whenever the compiled plan does the same physical work
# as the interpreter: no hash-join probe (the seed engine does not have
# them) and a join order that follows the syntactic binding order (the seed
# engine cannot reorder by estimated cardinality).  In both carve-out cases
# only the returned-row counter is compared.  A ``vectorized=False``
# compiled database at ``n_partitions=1`` additionally pins the columnar
# batch path byte-identical (rows and full QueryStats) to row-at-a-time.

_FUZZ_CASES = 200
_FUZZ_PARTITION_COUNTS = (1, 4, 7)
_FUZZ_STRINGS = ["alpha", "beta", "gamma", None]


def _random_schema(rng):
    """One random two-table schema: the DDL plus the initial data rows.

    ``m.o`` is strictly increasing (1.37 spacing, ±0.4 jitter) and never
    NULL, so a single-key ``ORDER BY o`` totally orders the rows — the only
    shape whose index-order pushdown result is comparable across partition
    layouts.  The ordered-index axis (``ORDERED`` on ``m.x`` / ``m.o``)
    sweeps range probes and pushdown on and off against the same statements
    running as plain filtered scans.
    """
    ddl = [
        "CREATE TABLE m (id INTEGER PRIMARY KEY, g INTEGER, x FLOAT,"
        " s VARCHAR, o FLOAT)",
        "CREATE TABLE r (id INTEGER PRIMARY KEY, m_id INTEGER, v FLOAT)",
    ]
    if rng.random() < 0.5:
        ddl.append("CREATE INDEX idx_m_g ON m (g)")
    if rng.random() < 0.5:
        ddl.append("CREATE INDEX idx_r_mid ON r (m_id)")
    if rng.random() < 0.5:
        ddl.append("CREATE INDEX idx_m_x ON m (x) ORDERED")
    if rng.random() < 0.5:
        ddl.append("CREATE INDEX idx_m_o ON m (o) ORDERED")
    n_m = rng.randint(0, 25)
    m_rows = [
        (
            i + 1,
            rng.choice([None, 0, 1, 2, 3]),
            None if rng.random() < 0.15 else round(rng.uniform(-50.0, 50.0), 3),
            rng.choice(_FUZZ_STRINGS),
            round(i * 1.37 + rng.uniform(0.0, 0.4), 3),
        )
        for i in range(n_m)
    ]
    n_r = rng.randint(0, 25)
    r_rows = [
        (
            i + 1,
            None if rng.random() < 0.15 else rng.randint(1, max(n_m, 1)),
            round(rng.uniform(0.0, 100.0), 3),
        )
        for i in range(n_r)
    ]
    if rng.random() < 0.2:
        # NULL-heavy variant: every m.x is NULL, so aggregate NULL skipping
        # (SUM/MIN/MAX over an all-NULL column, COUNT(x) vs COUNT(*)) is
        # exercised on whole groups rather than only on sparse rows — and,
        # with the ordered-x axis on, range probes over an all-NULL run.
        m_rows = [(i, g, None, s, o) for (i, g, _x, s, o) in m_rows]
    return ddl, m_rows, r_rows


def _load_schema(database, ddl, m_rows, r_rows):
    for sql in ddl:
        database.execute(sql)
    database.executemany(
        "INSERT INTO m (id, g, x, s, o) VALUES (?, ?, ?, ?, ?)", m_rows
    )
    database.executemany("INSERT INTO r (id, m_id, v) VALUES (?, ?, ?)", r_rows)


def _random_databases(rng):
    """The same random schema + data, one compiled database per partition
    count (vectorized, the default), a row-at-a-time compiled database at
    ``n_partitions=1`` and the unpartitioned interpreted reference."""
    compiled = {
        parts: Database(engine="compiled", n_partitions=parts)
        for parts in _FUZZ_PARTITION_COUNTS
    }
    rowwise = Database(engine="compiled", n_partitions=1, vectorized=False)
    interpreted = Database(engine="interpreted")
    ddl, m_rows, r_rows = _random_schema(rng)
    for database in list(compiled.values()) + [rowwise, interpreted]:
        _load_schema(database, ddl, m_rows, r_rows)
    return compiled, rowwise, interpreted


def _random_select(rng):
    """One random (sql, params) pair; every ORDER BY totally orders the rows."""
    kind = rng.choice(
        ["point", "filter", "isnull", "inlist", "distinct", "aggregate",
         "join", "join_filtered", "join_unindexed", "group_join",
         "topk", "topk_aggregate", "project",
         "range", "between", "index_topk"]
    )
    direction = rng.choice(["", " DESC"])
    limit = f" LIMIT {rng.randint(1, 10)}" if rng.random() < 0.3 else ""
    if limit and rng.random() < 0.3:
        limit += f" OFFSET {rng.randint(0, 5)}"
    if kind == "point":
        return "SELECT * FROM m WHERE id = ?", [rng.randint(0, 26)]
    if kind == "range":
        # Sargable range conjuncts on a NULL-able float column: a range
        # probe when the seeded DDL created idx_m_x ORDERED, otherwise a
        # plain filtered scan of the same statement.
        op_lo = rng.choice([">", ">="])
        op_hi = rng.choice(["<", "<="])
        return (
            f"SELECT id, x FROM m WHERE x {op_lo} ? AND x {op_hi} ? "
            f"ORDER BY id{direction}{limit}",
            [round(rng.uniform(-60.0, 10.0), 3), round(rng.uniform(-10.0, 60.0), 3)],
        )
    if kind == "between":
        # BETWEEN desugars to >= AND <=; bounds may be inverted (empty).
        return (
            f"SELECT id, x FROM m WHERE x BETWEEN ? AND ? ORDER BY id{direction}",
            [round(rng.uniform(-60.0, 20.0), 3), round(rng.uniform(-20.0, 60.0), 3)],
        )
    if kind == "index_topk":
        # Single-key LIMIT-bearing ORDER BY over the unique non-NULL float
        # column: index-order pushdown when idx_m_o ORDERED exists, the
        # bounded-heap top-k path otherwise.
        offset = f" OFFSET {rng.randint(0, 4)}" if rng.random() < 0.5 else ""
        return (
            f"SELECT id, o FROM m ORDER BY o{direction} "
            f"LIMIT {rng.randint(1, 8)}{offset}",
            [],
        )
    if kind == "topk":
        # LIMIT-bearing ORDER BY over a NULL-able float key (id breaks
        # ties, so the order is total): the bounded-heap top-k path.
        return (
            f"SELECT id, x FROM m ORDER BY x{direction}, id "
            f"LIMIT {rng.randint(1, 8)}",
            [],
        )
    if kind == "topk_aggregate":
        # Top-k over aggregated output columns (integer counts: exact).
        return (
            f"SELECT g, COUNT(*) AS c, COUNT(x) FROM m GROUP BY g "
            f"ORDER BY c{direction}, g LIMIT {rng.randint(1, 4)}",
            [],
        )
    if kind == "project":
        # Expression projections (arithmetic, COALESCE, scalar functions):
        # the generalized batch-projection path.
        return (
            f"SELECT id, x * ? + 1, COALESCE(g, -1), ABS(id - ?) FROM m "
            f"ORDER BY id{direction}{limit}",
            [round(rng.uniform(-2.0, 2.0), 3), rng.randint(0, 25)],
        )
    if kind == "filter":
        return (
            f"SELECT id, g, x FROM m WHERE g = ? AND x > ? "
            f"ORDER BY id{direction}{limit}",
            [rng.choice([None, 0, 1, 2, 3]), round(rng.uniform(-60.0, 60.0), 3)],
        )
    if kind == "isnull":
        negated = rng.choice(["", " NOT"])
        return (
            f"SELECT id, s FROM m WHERE x IS{negated} NULL ORDER BY id{direction}",
            [],
        )
    if kind == "inlist":
        return (
            f"SELECT id FROM m WHERE g IN (?, ?) ORDER BY id{limit}",
            [rng.randint(0, 4), rng.randint(0, 4)],
        )
    if kind == "distinct":
        return f"SELECT DISTINCT g FROM m ORDER BY g{direction}", []
    if kind == "aggregate":
        return (
            f"SELECT g, COUNT(*), COUNT(x), SUM(x), MIN(x), MAX(x), AVG(x) "
            f"FROM m GROUP BY g ORDER BY g{direction}",
            [],
        )
    if kind == "group_join":
        # Multi-table GROUP BY with a HAVING over an integer aggregate (an
        # integer boundary cannot flip under float-summation reordering, so
        # the statement is comparable across partition layouts).
        return (
            f"SELECT m.g AS gg, COUNT(*), SUM(r.v), MIN(r.v) FROM m, r "
            f"WHERE m.id = r.m_id GROUP BY m.g "
            f"HAVING COUNT(*) > ? ORDER BY gg{direction}",
            [rng.randint(0, 3)],
        )
    if kind == "join":
        return (
            f"SELECT m.id, r.id, r.v FROM m, r WHERE m.id = r.m_id "
            f"ORDER BY m.id{direction}, r.id{limit}",
            [],
        )
    if kind == "join_filtered":
        return (
            "SELECT m.id, m.s, r.id FROM m, r "
            "WHERE m.id = r.m_id AND r.v > ? AND m.g = ? "
            f"ORDER BY m.id, r.id{direction}",
            [round(rng.uniform(0.0, 100.0), 3), rng.randint(0, 3)],
        )
    # Equi-join on a column pair that is unindexed unless the seeded DDL
    # happened to create idx_m_g — exercises the hash-join access path.
    return (
        "SELECT m.id, r.id FROM m, r WHERE m.g = r.m_id ORDER BY m.id, r.id",
        [],
    )


def _rows_equivalent(got_rows, expected_rows) -> bool:
    """Row equality up to float-addition associativity.

    A partitioned table enumerates rows partition-major instead of in global
    insertion order, so float aggregates (SUM/AVG) accumulate in a different
    order and may drift by ~1 ulp.  Non-float values must match exactly.
    """
    if len(got_rows) != len(expected_rows):
        return False
    for got_row, expected_row in zip(got_rows, expected_rows):
        if len(got_row) != len(expected_row):
            return False
        for got_value, expected_value in zip(got_row, expected_row):
            if isinstance(got_value, float) and isinstance(expected_value, float):
                if got_value != pytest.approx(expected_value, rel=1e-9, abs=1e-12):
                    return False
            elif got_value != expected_value:
                return False
    return True


# --------------------------------------------------------------------------- #
# Analyzer-agreement oracle
# --------------------------------------------------------------------------- #
#
# Two directions, both seed-deterministic so a divergence lands in the corpus
# like any other counterexample (record the seed + note in
# tests/corpus/fuzzer_seeds.json):
#
# * every statement the generators produce must be analyzer-clean — those
#   statements execute successfully on every engine, so a plan-time rejection
#   would be a false positive violating the conservative contract;
# * one mistyped statement per seed (drawn from the pool below, which covers
#   every rejection class) must raise a SemanticError whose message —
#   including the character position — is byte-identical on every engine.

_MISTYPED_POOL = [
    "SELECT id FROM m WHERE s > 5",
    "SELECT id FROM m WHERE x < s",
    "SELECT g + s FROM m",
    "SELECT -s FROM m",
    "SELECT SUM(s) FROM m",
    "SELECT AVG(s) FROM m",
    "SELECT ABS(s) FROM m",
    "SELECT LENGTH(g) FROM m",
    "SELECT id FROM m WHERE s",
    "SELECT g FROM m GROUP BY g HAVING s",
    "SELECT id FROM m WHERE SUM(g) > 1",
    "SELECT m.id FROM m, r WHERE m.id = r.m_id AND m.s > r.v",
]


def _assert_analyzer_accepts(sql, tables, seed):
    analysis = analyze_select(parse_sql(sql), tables)
    assert not analysis.errors, (seed, sql, [str(e) for e in analysis.errors])


def _assert_identical_rejection(databases, seed, sql):
    messages = set()
    for database in databases:
        with pytest.raises(SemanticError) as excinfo:
            database.execute(sql)
        messages.add(str(excinfo.value))
    assert len(messages) == 1, (seed, sql, messages)


def _run_engine_differential_case(seed):
    """One engine-differential case: compiled (at every partition count)
    against the interpreted reference, shared by the corpus replay and the
    random exploration."""
    rng = random.Random(seed)
    compiled, rowwise, interpreted = _random_databases(rng)
    single = compiled[1]
    for _ in range(4):
        sql, params = _random_select(rng)
        _assert_analyzer_accepts(sql, single.tables, seed)
        plan = plan_select(parse_sql(sql), single.tables)
        uses_hash_join = any(
            level["access"] == "hash-probe" for level in plan.describe()
        )
        uses_ordered_index = plan.index_order is not None or any(
            level["access"] == "range-probe" for level in plan.describe()
        )
        expected = interpreted.query(sql, params)
        got = None
        for parts, database in compiled.items():
            result = database.query(sql, params)
            assert result.columns == expected.columns, (sql, parts)
            if parts == 1:
                # The single-partition engine scans in the reference
                # engine's order: results must be identical to the bit.
                assert result.rows == expected.rows, (sql, parts)
                got = result
            else:
                assert _rows_equivalent(result.rows, expected.rows), (sql, parts)
        # The vectorized default must be invisible: the row-at-a-time
        # compiled engine returns byte-identical rows AND QueryStats at the
        # same partition count (the columnar path does the same logical
        # work, only batched).
        row_result = rowwise.query(sql, params)
        assert row_result.columns == got.columns, sql
        assert row_result.rows == got.rows, sql
        assert row_result.stats == got.stats, sql
        if uses_hash_join or uses_ordered_index or not plan.follows_syntactic_order:
            # The seed engine has no hash joins, no statistics-driven join
            # reordering, and no ordered indexes; on those plans the
            # compiled engine does strictly different physical work (range
            # probes bisect, index-order pushdown stops early), so only the
            # result-side counter is comparable.  The rowwise-vs-vectorized
            # assertion above still pins full QueryStats across compiled
            # modes — range probes and pushdown are mode-independent.
            assert got.stats.rows_returned == expected.stats.rows_returned
        else:
            assert got.stats == expected.stats, sql
    # No DDL ran after the warm-up, so every cached plan stayed valid:
    # one miss per distinct SQL text, never a re-miss from invalidation.
    # (This must precede the rejection oracle: a rejected statement counts a
    # plan-cache miss without ever caching a plan.)
    for database in list(compiled.values()) + [rowwise]:
        info = database.plan_cache_info()
        assert info["misses"] == info["size"]
    _assert_identical_rejection(
        list(compiled.values()) + [rowwise, interpreted],
        seed,
        _MISTYPED_POOL[seed % len(_MISTYPED_POOL)],
    )


# --------------------------------------------------------------------------- #
# Executor-differential fuzzer: sequential vs. thread vs. process executors
# --------------------------------------------------------------------------- #
#
# Every seeded case builds the same random schema in twelve databases — the
# executor matrix {sequential, rowwise (vectorized off), thread, process}
# × n_partitions {1, 4, 7} —
# and replays one random statement stream of SELECTs (including multi-table
# GROUP BY/HAVING) *interleaved with DML* (INSERT/DELETE between SELECTs,
# exercising the process executor's shard re-sync) against all of them.  At
# every partition count the thread and process executors must return rows
# byte-identical to the sequential reference (same partition-major
# enumeration order — no float tolerance needed) with sequential-identical
# QueryStats; the one carve-out is the thread executor's documented eager
# hash-table prebuild, where only the result-side counter is comparable.

_EXECUTOR_FUZZ_CASES = 200
_EXECUTOR_FUZZ_PARTITIONS = (1, 4, 7)


def _random_executor_select(rng):
    """A random SELECT for the executor matrix: the engine fuzzer's pool
    plus GROUP BY/HAVING shapes that only executor-vs-executor comparison
    can check exactly (float HAVING boundaries are order-sensitive, but all
    executors enumerate in the same partition-major order)."""
    if rng.random() < 0.3:
        # A LIMIT sometimes rides along: HAVING plans are ineligible for
        # partial aggregation, so this exercises top-k over a locally
        # aggregated (non-merged) result on every executor.
        limit = f" LIMIT {rng.randint(1, 5)}" if rng.random() < 0.4 else ""
        if rng.random() < 0.5:
            return (
                "SELECT g, s, COUNT(*) AS c, MIN(x) FROM m GROUP BY g, s "
                f"HAVING COUNT(*) > ? ORDER BY g, s{limit}",
                [rng.randint(0, 2)],
            )
        return (
            "SELECT m.s AS label, COUNT(*) AS c, SUM(r.v) FROM m, r "
            "WHERE m.id = r.m_id AND r.v > ? GROUP BY m.s "
            f"HAVING SUM(r.v) > ? ORDER BY label{limit}",
            [round(rng.uniform(0.0, 60.0), 3), round(rng.uniform(0.0, 150.0), 3)],
        )
    return _random_select(rng)


def _random_dml(rng, fresh_ids):
    """One random mutation statement: ('execute'|'executemany', sql, payload)."""
    kind = rng.choice(["insert_m", "insert_r", "delete_m", "delete_r"])
    if kind == "insert_m":
        rows = []
        for _ in range(rng.randint(1, 6)):
            # o stays unique and non-NULL (fresh ids are unique, initial o
            # values stay below 1000) so single-key ORDER BY o is total.
            fid = next(fresh_ids)
            rows.append(
                (
                    fid,
                    rng.choice([None, 0, 1, 2, 3]),
                    None if rng.random() < 0.15 else round(rng.uniform(-50.0, 50.0), 3),
                    rng.choice(_FUZZ_STRINGS),
                    fid + 0.25,
                )
            )
        return (
            "executemany",
            "INSERT INTO m (id, g, x, s, o) VALUES (?, ?, ?, ?, ?)",
            rows,
        )
    if kind == "insert_r":
        rows = [
            (next(fresh_ids), rng.randint(1, 30), round(rng.uniform(0.0, 100.0), 3))
            for _ in range(rng.randint(1, 6))
        ]
        return ("executemany", "INSERT INTO r (id, m_id, v) VALUES (?, ?, ?)", rows)
    if kind == "delete_m":
        return ("execute", "DELETE FROM m WHERE g = ?", [rng.randint(0, 4)])
    return ("execute", "DELETE FROM r WHERE v > ?", [round(rng.uniform(40.0, 100.0), 3)])


def _run_executor_differential_case(seed, process_pool):
    """One executor-matrix case, shared by the corpus replay and the random
    exploration.  ``process_pool`` is the shared session worker pool."""
    rng = random.Random(seed)
    ddl, m_rows, r_rows = _random_schema(rng)
    groups = {}
    try:
        for parts in _EXECUTOR_FUZZ_PARTITIONS:
            groups[parts] = {
                "sequential": Database(n_partitions=parts),
                "rowwise": Database(n_partitions=parts, vectorized=False),
                "thread": Database(n_partitions=parts, parallel=3),
                "process": Database(n_partitions=parts, executor=process_pool),
            }
            for database in groups[parts].values():
                _load_schema(database, ddl, m_rows, r_rows)
        fresh_ids = itertools.count(1000)
        ops = [
            _random_dml(rng, fresh_ids)
            if rng.random() < 0.35
            else ("select", *_random_executor_select(rng))
        for _ in range(10)]
        for op, sql, payload in ops:
            for parts, group in groups.items():
                if op == "select":
                    _assert_analyzer_accepts(
                        sql, group["sequential"].tables, seed
                    )
                    reference = group["sequential"].query(sql, payload)
                    plan = plan_select(
                        parse_sql(sql), group["sequential"].tables
                    )
                    uses_hash_join = any(
                        level["access"] == "hash-probe"
                        for level in plan.describe()
                    )
                    for kind in ("rowwise", "thread", "process"):
                        result = group[kind].query(sql, payload)
                        label = (seed, sql, parts, kind)
                        assert result.columns == reference.columns, label
                        assert result.rows == reference.rows, label
                        if kind != "thread" or not uses_hash_join:
                            assert result.stats == reference.stats, label
                            assert (
                                result.stats.partition_rows_scanned
                                == reference.stats.partition_rows_scanned
                            ), label
                        else:
                            # The thread fan-out prebuilds hash-join tables
                            # eagerly (documented); only the result-side
                            # counter is comparable on those plans.
                            assert (
                                result.stats.rows_returned
                                == reference.stats.rows_returned
                            ), label
                else:
                    affected = {}
                    for kind, database in group.items():
                        if op == "executemany":
                            affected[kind] = database.executemany(sql, payload)
                        else:
                            affected[kind] = database.execute(sql, payload)
                    label = (seed, sql, parts)
                    assert affected["rowwise"] == affected["sequential"], label
                    assert affected["thread"] == affected["sequential"], label
                    assert affected["process"] == affected["sequential"], label
        # The mistyped rejection must be byte-identical across the whole
        # executor matrix too — both as a SELECT and as a DELETE predicate
        # (no rows may be deleted before the rejection fires).
        for parts, group in groups.items():
            _assert_identical_rejection(
                list(group.values()),
                seed,
                _MISTYPED_POOL[seed % len(_MISTYPED_POOL)],
            )
            messages = set()
            for database in group.values():
                before = database.query("SELECT COUNT(*) FROM m", []).rows
                with pytest.raises(SemanticError) as excinfo:
                    database.execute("DELETE FROM m WHERE s > 5")
                messages.add(str(excinfo.value))
                after = database.query("SELECT COUNT(*) FROM m", []).rows
                assert after == before, (seed, parts)
            assert len(messages) == 1, (seed, parts, messages)
    finally:
        for group in groups.values():
            for database in group.values():
                database.close()


# --------------------------------------------------------------------------- #
# Seed corpus: previously recorded fuzzer seeds replay before exploration
# --------------------------------------------------------------------------- #

_CORPUS_PATH = Path(__file__).resolve().parent / "corpus" / "fuzzer_seeds.json"


def _corpus_seeds():
    data = json.loads(_CORPUS_PATH.read_text())
    seeds = [entry["seed"] for entry in data["seeds"]]
    assert seeds == sorted(set(seeds)), "corpus seeds must be unique and sorted"
    return seeds


class TestFuzzerSeedCorpus:
    """Deterministic replay of the recorded counterexample corpus.

    These run before (and independently of) the random exploration below:
    a regression on a path the corpus pins fails fast, by seed, with the
    note recorded in ``tests/corpus/fuzzer_seeds.json``.
    """

    @pytest.mark.parametrize("seed", _corpus_seeds())
    def test_corpus_engine_differential(self, seed):
        _run_engine_differential_case(seed)

    @pytest.mark.parametrize("seed", _corpus_seeds())
    def test_corpus_executor_differential(self, seed, process_pool):
        _run_executor_differential_case(seed, process_pool)


class TestEngineDifferentialFuzzer:
    @pytest.mark.parametrize("seed", range(_FUZZ_CASES))
    def test_compiled_and_interpreted_engines_agree(self, seed):
        _run_engine_differential_case(seed)


class TestExecutorDifferentialFuzzer:
    @pytest.mark.parametrize("seed", range(_EXECUTOR_FUZZ_CASES))
    def test_executors_agree_under_interleaved_dml(self, seed, process_pool):
        _run_executor_differential_case(seed, process_pool)
