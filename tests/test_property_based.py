"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import datetime as dt

import pytest
from hypothesis import given, settings, strategies as st

from repro.apprentice import ApprenticeExport, ApprenticeParser, simulate, synthetic_workload
from repro.asl import parse_expression, unparse_expr
from repro.datamodel import PerformanceDatabase, TimingType
from repro.relalg import Database


# --------------------------------------------------------------------------- #
# ASL expression round trips over generated expressions
# --------------------------------------------------------------------------- #

_identifiers = st.sampled_from(["r", "t", "Basis", "Cost", "sum", "tt", "NoPe"])


def _expression_strategy() -> st.SearchStrategy:
    atoms = st.one_of(
        st.integers(min_value=0, max_value=10_000).map(str),
        st.floats(min_value=0.001, max_value=1000, allow_nan=False).map(
            lambda v: format(v, ".4g")
        ),
        _identifiers,
        _identifiers.map(lambda name: f"{name}.Incl"),
        _identifiers.map(lambda name: f"Duration({name}, t)"),
    )

    def compound(children):
        return st.one_of(
            st.tuples(children, st.sampled_from(["+", "-", "*", "/"]), children).map(
                lambda parts: f"({parts[0]} {parts[1]} {parts[2]})"
            ),
            st.tuples(children, st.sampled_from([">", ">=", "==", "<"]), children).map(
                lambda parts: f"{parts[0]} {parts[1]} {parts[2]}"
            ),
            children.map(lambda inner: f"SUM({inner} WHERE s IN r.TotTimes)"),
            children.map(lambda inner: f"UNIQUE({{s IN r.TotTimes WITH s.Incl == {inner}}}).Incl"),
        )

    return st.recursive(atoms, compound, max_leaves=12)


class TestAslExpressionRoundTrip:
    @given(source=_expression_strategy())
    @settings(max_examples=120, deadline=None)
    def test_unparse_parse_is_a_fixed_point(self, source):
        """For any generated expression, unparse(parse(x)) is stable."""
        try:
            expr = parse_expression(source)
        except Exception:
            # The generator may produce sources that are not valid ASL
            # (e.g. comparison chains); those are not round-trip subjects.
            return
        once = unparse_expr(expr)
        twice = unparse_expr(parse_expression(once))
        assert once == twice


# --------------------------------------------------------------------------- #
# simulator invariants over random workload parameters
# --------------------------------------------------------------------------- #


class TestSimulatorInvariants:
    @given(
        pes=st.sampled_from([1, 2, 3, 5, 8, 16]),
        imbalance=st.floats(min_value=0.0, max_value=1.0),
        kind=st.sampled_from(["imbalanced", "stencil"]),
    )
    @settings(max_examples=12, deadline=None)
    def test_repository_invariants_hold_for_random_configurations(
        self, pes, imbalance, kind
    ):
        if kind == "imbalanced":
            workload = synthetic_workload(kind, imbalance=imbalance)
        else:
            workload = synthetic_workload(kind)
        repository = simulate(workload, pe_counts=(1, pes) if pes > 1 else (1,))
        repository.validate()
        for region in repository.regions():
            for timing in region.TotTimes:
                assert timing.Incl + 1e-9 >= timing.Excl >= 0
                assert timing.Ovhd >= 0
                # Measured overhead never exceeds the inclusive time.
                assert timing.Ovhd <= timing.Incl + 1e-9
            for typed in region.TypTimes:
                assert typed.Time >= 0
        main = repository.programs[0].latest_version().main_region
        for run in repository.runs():
            assert PerformanceDatabase.total_cost(main, run) >= -1e-9


# --------------------------------------------------------------------------- #
# Apprentice summary round trip over random small workloads
# --------------------------------------------------------------------------- #


class TestSummaryRoundTrip:
    @given(
        functions=st.integers(min_value=1, max_value=3),
        regions=st.integers(min_value=1, max_value=3),
        pes=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=10, deadline=None)
    def test_round_trip_preserves_counts_and_totals(self, functions, regions, pes):
        workload = synthetic_workload(
            "scalable", functions=functions, regions_per_function=regions,
            name=f"rt_{functions}_{regions}",
        )
        repository = simulate(workload, pe_counts=(1, pes) if pes > 1 else (1,))
        text = ApprenticeExport(repository).dumps()
        parsed = ApprenticeParser().loads(text)
        assert parsed.stats().counts == repository.stats().counts
        original_total = sum(
            t.Incl for region in repository.regions() for t in region.TotTimes
        )
        parsed_total = sum(
            t.Incl for region in parsed.regions() for t in region.TotTimes
        )
        assert parsed_total == pytest.approx(original_total, rel=1e-9)


# --------------------------------------------------------------------------- #
# SQL engine: WHERE filters match Python filters
# --------------------------------------------------------------------------- #


class TestSqlFilterEquivalence:
    @given(
        rows=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.floats(min_value=-100, max_value=100, allow_nan=False),
            ),
            min_size=0,
            max_size=40,
        ),
        threshold=st.floats(min_value=-100, max_value=100, allow_nan=False),
        group=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_where_clause_matches_python_filter(self, rows, threshold, group):
        database = Database()
        database.execute(
            "CREATE TABLE v (id INTEGER PRIMARY KEY, g INTEGER, x FLOAT)"
        )
        database.executemany(
            "INSERT INTO v (id, g, x) VALUES (?, ?, ?)",
            [(i + 1, g, x) for i, (g, x) in enumerate(rows)],
        )
        result = database.query(
            "SELECT id FROM v WHERE g = ? AND x > ? ORDER BY id", [group, threshold]
        )
        expected = [
            i + 1 for i, (g, x) in enumerate(rows) if g == group and x > threshold
        ]
        assert [row[0] for row in result] == expected
