"""Batched statement execution: storage, engine, cost model and caches.

Covers the bulk-insert pipeline end to end — `Table.insert_many` (deferred
index maintenance, atomic batches), the `Database.executemany` fast path,
the batched virtual cost model of `SimulatedBackend`/`DatabaseClient`, the
batched `DatabaseLoader`, and the plan-cache lifecycle (epoch bumps per DDL
kind, counters through the wrapper layers, one miss per SQL text under
`executemany`).
"""

import pytest

from repro.asl.specs import cosy_specification
from repro.bench import build_scenario, identical_table_contents, load_into_backend
from repro.relalg import (
    Column,
    ColumnType,
    Database,
    ExecutionError,
    IntegrityError,
    NativeClient,
    SchemaError,
    TableSchema,
    backend,
)


def _schema():
    return TableSchema(
        name="t",
        columns=[
            Column("id", ColumnType.INTEGER, primary_key=True),
            Column("g", ColumnType.INTEGER),
            Column("x", ColumnType.FLOAT),
        ],
    )


@pytest.fixture()
def db():
    database = Database()
    database.create_table(_schema())
    return database


class TestInsertMany:
    def test_inserts_rows_and_maintains_indexes(self, db):
        table = db.table("t")
        table.insert_many([(1, 7, 1.0), (2, 7, 2.0), (3, 8, None)])
        assert table.row_count == 3
        assert [row[0] for row in table.lookup("id", 2)] == [2]
        table.create_index("idx_g", "g")
        table.insert_many([(4, 7, 4.0)])
        assert sorted(row[0] for row in table.lookup("g", 7)) == [1, 2, 4]

    def test_empty_batch_is_a_no_op(self, db):
        assert db.table("t").insert_many([]) == 0
        assert db.table("t").row_count == 0

    def test_duplicate_primary_key_within_the_batch_is_atomic(self, db):
        table = db.table("t")
        table.insert((1, 0, 0.0))
        with pytest.raises(IntegrityError, match="duplicate primary key"):
            table.insert_many([(2, 1, 1.0), (3, 1, 2.0), (2, 1, 3.0)])
        # Nothing from the failed batch is visible: rows, indexes, tombstones.
        assert table.row_count == 1
        assert table.dead_count == 0
        assert list(table.lookup("id", 2)) == []
        assert list(table.lookup("id", 3)) == []

    def test_duplicate_primary_key_against_stored_rows_is_atomic(self, db):
        table = db.table("t")
        table.insert_many([(1, 0, 0.0), (2, 0, 0.5)])
        with pytest.raises(IntegrityError):
            table.insert_many([(3, 1, 1.0), (1, 1, 2.0)])
        assert table.row_count == 2
        assert list(table.lookup("id", 3)) == []

    def test_invalid_value_mid_batch_is_atomic(self, db):
        table = db.table("t")
        with pytest.raises(SchemaError):
            table.insert_many([(1, 0, 0.0), (2, "not-an-int", 1.0)])
        assert table.row_count == 0
        assert len(table.index_for("id")) == 0

    def test_batch_after_deletes_keeps_tombstone_accounting(self, db):
        table = db.table("t")
        table.insert_many([(i, i % 2, float(i)) for i in range(1, 11)])
        table.delete_where(lambda row: row[0] <= 5)
        assert table.dead_count == 5
        table.insert_many([(11, 0, 11.0), (12, 1, 12.0)])
        assert table.row_count == 7
        assert table.dead_count == 5  # batch appends; tombstones untouched
        assert [row[0] for row in table.lookup("id", 11)] == [11]


class TestExecutemanyBatchPath:
    def test_insert_batch_matches_row_at_a_time(self):
        batched = Database()
        row_wise = Database()
        rows = [(i, i % 3, float(i) if i % 4 else None) for i in range(1, 40)]
        for database in (batched, row_wise):
            database.create_table(_schema())
        batched.executemany("INSERT INTO t (id, g, x) VALUES (?, ?, ?)", rows)
        for params in rows:
            row_wise.execute("INSERT INTO t (id, g, x) VALUES (?, ?, ?)", params)
        assert list(batched.table("t").scan()) == list(row_wise.table("t").scan())

    def test_batch_counts_one_statement(self, db):
        db.executemany(
            "INSERT INTO t (id, g, x) VALUES (?, ?, ?)",
            [(1, 0, 1.0), (2, 0, 2.0), (3, 1, 3.0)],
        )
        assert db.summary.statements == 1
        assert db.summary.inserts == 1
        assert db.summary.rows_inserted == 3

    def test_empty_param_rows(self, db):
        assert db.executemany("INSERT INTO t (id, g, x) VALUES (?, ?, ?)", []) == 0
        assert db.summary.statements == 0
        assert db.total_rows() == 0

    def test_unmentioned_columns_become_null(self, db):
        db.executemany("INSERT INTO t (id) VALUES (?)", [(1,), (2,)])
        assert list(db.table("t").scan()) == [(1, None, None), (2, None, None)]

    def test_mid_batch_integrity_error_leaves_state_consistent(self, db):
        db.executemany("INSERT INTO t (id, g, x) VALUES (?, ?, ?)", [(1, 0, 1.0)])
        with pytest.raises(IntegrityError):
            db.executemany(
                "INSERT INTO t (id, g, x) VALUES (?, ?, ?)",
                [(2, 0, 2.0), (1, 0, 3.0)],
            )
        assert db.total_rows() == 1
        assert db.query("SELECT id FROM t ORDER BY id").rows == [(1,)]
        # The failed batch recorded no statement and no inserted rows.
        assert db.summary.rows_inserted == 1

    def test_missing_parameter_mid_batch_is_atomic(self, db):
        with pytest.raises(ExecutionError, match="parameter"):
            db.executemany(
                "INSERT INTO t (id, g, x) VALUES (?, ?, ?)", [(1, 0, 1.0), (2, 0)]
            )
        assert db.total_rows() == 0

    def test_multi_row_insert_statements_bind_per_parameter_row(self, db):
        db.executemany(
            "INSERT INTO t (id, g, x) VALUES (?, ?, ?), (?, ?, ?)",
            [(1, 0, 1.0, 2, 0, 2.0), (3, 1, 3.0, 4, 1, 4.0)],
        )
        assert db.query("SELECT COUNT(*) FROM t").scalar() == 4

    def test_select_executemany_still_works(self, db):
        db.executemany(
            "INSERT INTO t (id, g, x) VALUES (?, ?, ?)",
            [(i, i % 2, float(i)) for i in range(1, 6)],
        )
        total = db.executemany("SELECT id FROM t WHERE g = ?", [(0,), (1,)])
        assert total == 5


class TestPlanCacheLifecycle:
    def _warm(self, database):
        database.query("SELECT id FROM t ORDER BY id")
        database.query("SELECT id FROM t ORDER BY id")

    def test_epoch_bump_on_create_index(self, db):
        self._warm(db)
        assert db.plan_cache_info() == {"hits": 1, "misses": 1, "size": 1}
        db.execute("CREATE INDEX idx_g ON t (g)")
        db.query("SELECT id FROM t ORDER BY id")
        assert db.plan_cache_info()["misses"] == 2

    def test_drop_of_unrelated_table_keeps_cached_plans(self, db):
        # Per-table invalidation: DDL on `other` must not evict plans on `t`.
        db.execute("CREATE TABLE other (id INTEGER PRIMARY KEY)")
        self._warm(db)
        db.execute("DROP TABLE other")
        db.query("SELECT id FROM t ORDER BY id")
        info = db.plan_cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 2

    def test_create_of_unrelated_table_keeps_cached_plans(self, db):
        self._warm(db)
        db.execute("CREATE TABLE other (id INTEGER PRIMARY KEY)")
        db.query("SELECT id FROM t ORDER BY id")
        info = db.plan_cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 2

    def test_drop_of_dependent_table_invalidates(self, db):
        self._warm(db)
        db.execute("DROP TABLE t")
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, g INTEGER, x FLOAT)")
        db.query("SELECT id FROM t ORDER BY id")
        # Dropping and recreating `t` bumps its epoch twice: re-planned.
        assert db.plan_cache_info()["misses"] == 2

    def test_subquery_table_dependency_invalidates(self, db):
        db.execute("CREATE TABLE s (id INTEGER PRIMARY KEY, v INTEGER)")
        sql = "SELECT id FROM t WHERE g = (SELECT MAX(v) FROM s)"
        db.query(sql)
        db.query(sql)
        assert db.plan_cache_info() == {"hits": 1, "misses": 1, "size": 1}
        # DDL on the *subquery* table must invalidate the outer plan too.
        db.execute("CREATE INDEX idx_s_v ON s (v)")
        db.query(sql)
        assert db.plan_cache_info()["misses"] == 2

    def test_mixed_invalidation_keeps_unrelated_plans_hot(self, db):
        db.execute("CREATE TABLE other (id INTEGER PRIMARY KEY, w INTEGER)")
        sql_t = "SELECT id FROM t ORDER BY id"
        sql_other = "SELECT id FROM other ORDER BY id"
        db.query(sql_t)
        db.query(sql_other)
        db.execute("CREATE INDEX idx_other_w ON other (w)")
        db.query(sql_t)      # hit: t untouched by the DDL
        db.query(sql_other)  # miss: other's epoch moved
        info = db.plan_cache_info()
        assert info["misses"] == 3
        assert info["hits"] == 1

    def test_executemany_selects_miss_exactly_once_per_sql_text(self, db):
        db.executemany(
            "INSERT INTO t (id, g, x) VALUES (?, ?, ?)",
            [(i, i % 2, float(i)) for i in range(1, 21)],
        )
        db.executemany("SELECT x FROM t WHERE g = ?", [(i % 2,) for i in range(10)])
        info = db.plan_cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 9

    def test_counters_through_backend_and_client_wrappers(self):
        client = NativeClient(backend("ms_access"))
        client.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, g INTEGER)")
        client.executemany("INSERT INTO t (id, g) VALUES (?, ?)", [(1, 0), (2, 1)])
        client.executemany("SELECT id FROM t WHERE g = ?", [(0,), (1,), (0,)])
        info = client.plan_cache_info()
        assert info == client.backend.plan_cache_info()
        assert info == client.backend.database.plan_cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 2


class TestBackendBatchCosts:
    def test_one_round_trip_per_batch(self):
        simulated = backend("oracle7", batch_size=10)
        simulated.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x FLOAT)")
        before = simulated.elapsed
        rows = [(i + 1, float(i)) for i in range(25)]
        simulated.executemany("INSERT INTO t (id, x) VALUES (?, ?)", rows)
        profile = simulated.profile
        expected = 3 * (profile.round_trip + profile.per_insert_statement)
        expected += 25 * profile.per_insert_row
        assert simulated.elapsed - before == pytest.approx(expected)
        assert simulated.statements_executed == 4  # create + 3 batches
        assert simulated.rows_inserted == 25

    def test_batched_insert_beats_row_at_a_time(self):
        rows = [(i + 1, float(i)) for i in range(500)]
        batched = backend("oracle7")
        batched.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x FLOAT)")
        batched.executemany("INSERT INTO t (id, x) VALUES (?, ?)", rows)
        row_wise = backend("oracle7")
        row_wise.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x FLOAT)")
        for params in rows:
            row_wise.execute("INSERT INTO t (id, x) VALUES (?, ?)", params)
        assert row_wise.elapsed / batched.elapsed >= 5.0
        assert identical_table_contents(batched.database, row_wise.database)

    def test_batch_size_override_and_validation(self):
        simulated = backend("ms_access")
        simulated.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        simulated.executemany(
            "INSERT INTO t (id) VALUES (?)", [(i,) for i in range(6)], batch_size=2
        )
        assert simulated.statements_executed == 4  # create + 3 batches of 2
        with pytest.raises(ValueError):
            simulated.executemany("INSERT INTO t (id) VALUES (?)", [(9,)], batch_size=0)
        with pytest.raises(ValueError):
            backend("ms_access", batch_size=0)

    def test_select_executemany_is_charged_per_statement(self):
        # Result sets cannot be batched on the wire: each SELECT of an
        # executemany pays its own round trip, exactly like execute().
        simulated = backend("oracle7", batch_size=10)
        simulated.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, g INTEGER)")
        simulated.executemany(
            "INSERT INTO t (id, g) VALUES (?, ?)", [(i, i % 2) for i in range(6)]
        )
        statements_before = simulated.statements_executed
        before = simulated.elapsed
        total = simulated.executemany("SELECT id FROM t WHERE g = ?", [(0,), (1,)])
        assert total == 6
        assert simulated.statements_executed - statements_before == 2
        assert simulated.elapsed - before == pytest.approx(
            2 * simulated.profile.round_trip
            + 6 * simulated.profile.per_fetch_row
            # g is unindexed: each of the two SELECTs scans all six rows.
            + 12 * simulated.profile.per_scanned_row
        )

    def test_empty_executemany_charges_nothing(self):
        simulated = backend("oracle7")
        assert simulated.executemany("INSERT INTO t (id) VALUES (?)", []) == 0
        assert simulated.elapsed == 0.0

    def test_query_raises_execution_error_for_non_select(self):
        # Regression: this used to be a bare assert (vanishing under -O).
        simulated = backend("ms_access")
        simulated.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        with pytest.raises(ExecutionError, match="SELECT"):
            simulated.query("DELETE FROM t")

    def test_delete_is_not_charged_insert_costs(self):
        # Regression: DELETE returns an affected-row count, which must not be
        # mistaken for inserted rows by the cost model.
        simulated = backend("oracle7")
        simulated.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        simulated.executemany("INSERT INTO t (id) VALUES (?)", [(i,) for i in range(10)])
        inserted_before = simulated.rows_inserted
        before = simulated.elapsed
        simulated.execute("DELETE FROM t")
        assert simulated.rows_inserted == inserted_before
        assert simulated.elapsed - before == pytest.approx(
            simulated.profile.round_trip
        )


class TestClientBatchCosts:
    def test_per_call_charged_once_per_batch(self):
        client = NativeClient(backend("ms_access", batch_size=10))
        client.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x FLOAT)")
        client.client_time = 0.0
        rows = [(i + 1, float(i)) for i in range(30)]
        client.executemany("INSERT INTO t (id, x) VALUES (?, ?)", rows)
        costs = client.costs
        expected = 3 * costs.per_call + len(rows) * 2 * costs.per_param
        assert client.client_time == pytest.approx(expected)
        assert client.calls == 4  # create + 3 batches

    def test_query_raises_execution_error_for_non_select(self):
        client = NativeClient(backend("ms_access"))
        client.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        with pytest.raises(ExecutionError, match="SELECT"):
            client.query("DELETE FROM t")

    def test_failed_batch_still_charges_applied_sub_batches(self):
        client = NativeClient(backend("ms_access", batch_size=10))
        client.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        client.client_time = 0.0
        calls_before = client.calls
        # Rows 0..9 commit as one batch; the duplicate in the second batch
        # aborts it, but the first batch's marshalling must still be charged.
        rows = [(i,) for i in range(15)]
        rows.append((0,))
        with pytest.raises(IntegrityError):
            client.executemany("INSERT INTO t (id) VALUES (?)", rows)
        costs = client.costs
        assert client.calls - calls_before == 1
        assert client.client_time == pytest.approx(
            costs.per_call + 10 * costs.per_param
        )


class TestBatchedLoader:
    @pytest.fixture(scope="class")
    def scenario(self):
        return build_scenario(
            "mixed", pe_counts=(1, 2), specification=cosy_specification()
        )

    def test_batched_and_row_at_a_time_loads_are_identical(self, scenario):
        batched, batched_ids = load_into_backend(scenario, "ms_access")
        row_wise, row_ids = load_into_backend(scenario, "ms_access", batch_size=None)
        assert batched_ids.total() == row_ids.total()
        assert identical_table_contents(
            batched.backend.database, row_wise.backend.database
        )

    def test_batched_load_is_cheaper(self, scenario):
        batched, _ = load_into_backend(scenario, "oracle7")
        row_wise, _ = load_into_backend(scenario, "oracle7", batch_size=None)
        assert batched.elapsed < row_wise.elapsed

    def test_loader_rejects_non_positive_batch_size(self, scenario):
        from repro.compiler import DatabaseLoader

        with pytest.raises(ValueError):
            DatabaseLoader(scenario.mapping, Database(), batch_size=0)
