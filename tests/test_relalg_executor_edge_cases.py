"""Additional executor edge cases: ordering, NULLs, joins, result shapes."""

import pytest

from repro.relalg import Database, ExecutionError
from repro.relalg.executor import QueryStats


@pytest.fixture()
def db():
    database = Database()
    database.execute(
        "CREATE TABLE measurements (id INTEGER PRIMARY KEY, region VARCHAR, "
        "run_id INTEGER, value FLOAT)"
    )
    rows = [
        (1, "main", 1, 10.0),
        (2, "main", 2, None),
        (3, "loop", 1, 4.0),
        (4, "loop", 2, 8.0),
        (5, "io", 1, 1.0),
    ]
    database.executemany(
        "INSERT INTO measurements (id, region, run_id, value) VALUES (?, ?, ?, ?)",
        rows,
    )
    database.execute("CREATE TABLE runs (id INTEGER PRIMARY KEY, pes INTEGER)")
    database.executemany("INSERT INTO runs (id, pes) VALUES (?, ?)", [(1, 2), (2, 8)])
    return database


class TestOrderingAndNulls:
    def test_order_by_ascending_puts_nulls_last(self, db):
        result = db.query("SELECT id, value FROM measurements ORDER BY value")
        assert [row[0] for row in result] == [5, 3, 4, 1, 2]

    def test_order_by_descending_treats_nulls_as_largest(self, db):
        # NULL sorts as the largest value: last in ASC, first in DESC.
        result = db.query("SELECT id, value FROM measurements ORDER BY value DESC")
        ids = [row[0] for row in result]
        assert ids[0] == 2
        assert ids[1] == 1
        assert ids[-1] == 5

    def test_order_by_multiple_keys(self, db):
        result = db.query(
            "SELECT region, run_id FROM measurements ORDER BY region, run_id DESC"
        )
        assert result.rows[0] == ("io", 1)
        assert result.rows[1] == ("loop", 2)

    def test_order_by_expression_over_source_rows(self, db):
        result = db.query(
            "SELECT id FROM measurements WHERE value IS NOT NULL ORDER BY value * -1"
        )
        assert [row[0] for row in result] == [1, 4, 3, 5]

    def test_order_by_output_alias_in_aggregate_query(self, db):
        result = db.query(
            "SELECT region, COUNT(*) AS n FROM measurements GROUP BY region ORDER BY n DESC, region"
        )
        assert result.rows[0][1] == 2

    def test_order_by_arbitrary_expression_in_aggregate_query_is_rejected(self, db):
        with pytest.raises(ExecutionError, match="ORDER BY"):
            db.query(
                "SELECT region, COUNT(*) FROM measurements GROUP BY region "
                "ORDER BY value"
            )

    def test_aggregates_skip_nulls(self, db):
        result = db.query(
            "SELECT COUNT(value), COUNT(*), AVG(value) FROM measurements WHERE region = 'main'"
        )
        count_value, count_star, average = result.rows[0]
        assert count_value == 1
        assert count_star == 2
        assert average == pytest.approx(10.0)

    def test_sum_of_only_nulls_is_null(self, db):
        result = db.query(
            "SELECT SUM(value) FROM measurements WHERE region = 'main' AND run_id = 2"
        )
        assert result.scalar() is None

    def test_limit_zero_returns_nothing(self, db):
        assert len(db.query("SELECT * FROM measurements LIMIT 0")) == 0

    def test_distinct_after_order_preserves_sortedness(self, db):
        result = db.query(
            "SELECT DISTINCT region FROM measurements ORDER BY region DESC"
        )
        assert [row[0] for row in result] == ["main", "loop", "io"]


class TestJoinsAndStats:
    def test_join_statistics_count_scans_and_joins(self, db):
        result = db.query(
            "SELECT m.id FROM measurements m JOIN runs r ON m.run_id = r.id "
            "WHERE r.pes = 8"
        )
        assert sorted(row[0] for row in result) == [2, 4]
        assert result.stats.rows_joined == 2
        assert result.stats.rows_scanned > 0

    def test_three_way_cross_join_filtering(self, db):
        db.execute("CREATE TABLE labels (id INTEGER PRIMARY KEY, name VARCHAR)")
        db.executemany(
            "INSERT INTO labels (id, name) VALUES (?, ?)", [(1, "first"), (2, "second")]
        )
        result = db.query(
            "SELECT m.id, l.name FROM measurements m, runs r, labels l "
            "WHERE m.run_id = r.id AND l.id = r.id AND m.region = 'loop' "
            "ORDER BY m.id"
        )
        assert result.rows == [(3, "first"), (4, "second")]

    def test_qualified_star_selects_one_table(self, db):
        result = db.query(
            "SELECT r.* FROM measurements m JOIN runs r ON m.run_id = r.id "
            "WHERE m.id = 1"
        )
        assert result.columns == ["id", "pes"]
        assert result.rows == [(1, 2)]

    def test_duplicate_binding_is_rejected(self, db):
        with pytest.raises(ExecutionError, match="duplicate table binding"):
            db.query("SELECT * FROM runs a, runs a")

    def test_join_without_on_is_a_cross_product(self, db):
        result = db.query("SELECT COUNT(*) FROM measurements JOIN runs")
        assert result.scalar() == 10

    def test_query_stats_merge(self):
        a = QueryStats(rows_scanned=5, index_lookups=1, rows_joined=2, subqueries=1)
        b = QueryStats(rows_scanned=3, index_lookups=2, rows_joined=1, subqueries=0)
        a.merge(b)
        assert a.rows_scanned == 8
        assert a.index_lookups == 3
        assert a.subqueries == 1

    def test_scalar_subquery_with_multiple_rows_is_an_error(self, db):
        with pytest.raises(ExecutionError, match="scalar subquery"):
            db.query(
                "SELECT id FROM runs WHERE pes = (SELECT run_id FROM measurements)"
            )

    def test_scalar_subquery_with_no_rows_yields_null(self, db):
        result = db.query(
            "SELECT COUNT(*) FROM runs WHERE pes = (SELECT value FROM measurements WHERE id = 999)"
        )
        assert result.scalar() == 0

    def test_scalar_functions(self, db):
        result = db.query(
            "SELECT ABS(value * -1), UPPER(region), LOWER(region), LENGTH(region), "
            "COALESCE(NULL, value, 0) FROM measurements WHERE id = 1"
        )
        assert result.rows[0] == (10.0, "MAIN", "main", 4, 10.0)

    def test_unknown_scalar_function(self, db):
        with pytest.raises(ExecutionError, match="unknown function"):
            db.query("SELECT SOUNDEX(region) FROM measurements")

    def test_aggregate_outside_aggregate_context_is_rejected(self, db):
        with pytest.raises(ExecutionError, match="not allowed here"):
            db.query("SELECT id FROM measurements WHERE SUM(value) > 1")


class TestOrderByDescWithNulls:
    """ORDER BY DESC and NULLs — behaviour the plan-driven rewrite preserves."""

    def test_desc_with_nulls_and_secondary_key(self, db):
        result = db.query(
            "SELECT id, value FROM measurements ORDER BY value DESC, id DESC"
        )
        # NULL sorts as the largest value in DESC; ties broken by id DESC.
        assert [row[0] for row in result] == [2, 1, 4, 3, 5]

    def test_desc_on_expression_over_source_rows(self, db):
        result = db.query(
            "SELECT id FROM measurements WHERE value IS NOT NULL "
            "ORDER BY value * 2 DESC"
        )
        assert [row[0] for row in result] == [1, 4, 3, 5]

    def test_desc_on_aggregate_alias_with_null_groups(self, db):
        result = db.query(
            "SELECT region, SUM(value) AS total FROM measurements "
            "GROUP BY region ORDER BY total DESC"
        )
        # 'main' has SUM 10 (NULL skipped), 'loop' 12, 'io' 1.
        assert [row[0] for row in result] == ["loop", "main", "io"]


class TestCountDistinct:
    def test_count_distinct_skips_nulls_and_duplicates(self, db):
        result = db.query("SELECT COUNT(DISTINCT run_id) FROM measurements")
        assert result.scalar() == 2

    def test_count_distinct_on_expression(self, db):
        result = db.query(
            "SELECT COUNT(DISTINCT region), COUNT(region) FROM measurements"
        )
        assert result.rows == [(3, 5)]

    def test_count_distinct_per_group(self, db):
        result = db.query(
            "SELECT region, COUNT(DISTINCT value) FROM measurements "
            "GROUP BY region ORDER BY region"
        )
        # 'main' has one non-NULL value; NULL is not counted.
        assert result.rows == [("io", 1), ("loop", 2), ("main", 1)]


class TestMultiTableIndexProbeStats:
    """Exact QueryStats of multi-table index-probe plans (A1-style queries)."""

    def test_pk_probe_per_outer_row(self, db):
        result = db.query(
            "SELECT r.pes FROM measurements m JOIN runs r ON r.id = m.run_id "
            "WHERE m.region = 'loop'"
        )
        assert sorted(row[0] for row in result) == [2, 8]
        # measurements scan (5) + one PK-probe result row per outer row (2).
        assert result.stats.rows_scanned == 7
        assert result.stats.index_lookups == 2
        assert result.stats.rows_joined == 2
        assert result.stats.rows_returned == 2
        assert result.stats.hash_probes == 0

    def test_probe_stats_match_the_interpreted_engine(self, db):
        from repro.relalg.interp import InterpretedSelectExecutor
        from repro.relalg.sqlparser import parse_sql

        sql = ("SELECT r.pes FROM measurements m JOIN runs r ON r.id = m.run_id "
               "WHERE m.region = 'loop'")
        compiled = db.query(sql)
        interpreted = InterpretedSelectExecutor(db.tables).execute(parse_sql(sql))
        assert compiled.stats == interpreted.stats

    def test_probe_key_from_constant_counts_one_lookup(self, db):
        result = db.query(
            "SELECT m.id FROM runs r JOIN measurements m ON m.run_id = r.id "
            "WHERE r.id = 1"
        )
        assert sorted(row[0] for row in result) == [1, 3, 5]
        # One PK probe into runs (1 row) + a scan of measurements per outer
        # row (run_id is unindexed, equated with the bound r.id → hash join:
        # 5 build rows + 3 probe results).
        assert result.stats.index_lookups == 1
        assert result.stats.rows_scanned == 1 + 5 + 3
        assert result.stats.hash_probes == 1


class TestScalarSubqueryStatsMerging:
    def test_filter_subquery_counters_merge_into_the_outer_query(self, db):
        result = db.query(
            "SELECT id FROM runs WHERE pes = (SELECT MAX(run_id) FROM measurements)"
        )
        assert [row[0] for row in result] == [1]
        # runs is scanned (2 rows); the subquery runs once per scanned row
        # and scans measurements fully each time.
        assert result.stats.subqueries == 2
        assert result.stats.rows_scanned == 2 + 2 * 5
        assert result.stats.rows_returned == 1  # outer rows only

    def test_probe_key_subquery_runs_once(self, db):
        result = db.query(
            "SELECT pes FROM runs WHERE id = (SELECT MIN(run_id) FROM measurements)"
        )
        assert result.scalar() == 2
        assert result.stats.subqueries == 1
        assert result.stats.index_lookups == 1
        assert result.stats.rows_scanned == 5 + 1

    def test_select_list_subquery_merges_per_row(self, db):
        result = db.query(
            "SELECT id, (SELECT COUNT(*) FROM measurements) FROM runs"
        )
        assert result.rows == [(1, 5), (2, 5)]
        assert result.stats.subqueries == 2
        assert result.stats.rows_scanned == 2 + 2 * 5

    def test_subquery_stats_match_the_interpreted_engine(self, db):
        from repro.relalg.interp import InterpretedSelectExecutor
        from repro.relalg.sqlparser import parse_sql

        sql = "SELECT id FROM runs WHERE pes = (SELECT MAX(run_id) FROM measurements)"
        compiled = db.query(sql)
        interpreted = InterpretedSelectExecutor(db.tables).execute(parse_sql(sql))
        assert compiled.stats == interpreted.stats
