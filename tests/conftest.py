"""Shared fixtures for the test suite.

The expensive objects (the checked COSY specification, a simulated mixed
workload, the generated schema) are session-scoped: they are deterministic and
read-only, so sharing them keeps the suite fast without coupling the tests.
"""

from __future__ import annotations

import pytest

from repro.apprentice import ExecutionSimulator, SimulationConfig, synthetic_workload
from repro.asl.specs import cosy_specification
from repro.compiler import generate_schema
from repro.relalg import ProcessScanExecutor


@pytest.fixture(scope="session")
def process_pool():
    """One shared spawn-safe worker pool for every process-executor test.

    Spawning workers costs hundreds of milliseconds each; sharing one pool
    keeps the executor-differential fuzzer fast.  Sharing is safe because
    worker shard replicas are keyed by the process-globally unique table uid
    (see :class:`repro.relalg.ProcessScanExecutor`).  Tests that kill or
    crash workers must build their own dedicated pool instead.
    """
    executor = ProcessScanExecutor(workers=2)
    yield executor
    executor.shutdown()


@pytest.fixture(scope="session")
def cosy_spec():
    """The parsed and checked bundled COSY specification."""
    return cosy_specification()


@pytest.fixture(scope="session")
def schema_mapping(cosy_spec):
    """The relational schema generated from the COSY data model."""
    return generate_schema(cosy_spec)


@pytest.fixture(scope="session")
def mixed_repository():
    """A simulated 'mixed' workload with runs on 1, 2, 4 and 8 processors."""
    workload = synthetic_workload("mixed")
    simulator = ExecutionSimulator(workload, SimulationConfig(pe_counts=(1, 2, 4, 8)))
    return simulator.run()


@pytest.fixture(scope="session")
def mixed_version(mixed_repository):
    """The program version of the mixed-workload repository."""
    return mixed_repository.programs[0].latest_version()


@pytest.fixture(scope="session")
def mixed_run(mixed_version):
    """The 8-processor test run of the mixed workload."""
    return mixed_version.run_with_pes(8)


@pytest.fixture(scope="session")
def imbalanced_repository():
    """A simulated strongly imbalanced workload (1..16 processors)."""
    workload = synthetic_workload("imbalanced", imbalance=0.7)
    simulator = ExecutionSimulator(
        workload, SimulationConfig(pe_counts=(1, 2, 4, 8, 16))
    )
    return simulator.run()
