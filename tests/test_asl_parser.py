"""Tests of the ASL parser against the grammar of Figure 1 and Section 4.1."""

import pytest

from repro.asl import (
    AggregateExpr,
    AslParseError,
    AttributeAccess,
    BinaryExpr,
    BinaryOp,
    ClassDecl,
    ConstantDecl,
    EnumDecl,
    FunctionCall,
    FunctionDecl,
    Identifier,
    IntLiteral,
    PropertyDecl,
    SetComprehension,
    UnaryExpr,
    parse_asl,
    parse_expression,
)


class TestClassDeclarations:
    def test_paper_program_class(self):
        program = parse_asl(
            "class Program { String Name; setof ProgVersion Versions; }"
        )
        decl = program.classes[0]
        assert decl.name == "Program"
        assert [a.name for a in decl.attributes] == ["Name", "Versions"]
        assert decl.attributes[1].type.is_set
        assert decl.attributes[1].type.name == "ProgVersion"

    def test_inheritance(self):
        program = parse_asl("class Base { int X; } class Derived extends Base { float Y; }")
        assert program.classes[1].base == "Base"

    def test_optional_trailing_semicolon(self):
        program = parse_asl("class A { int X; };")
        assert program.classes[0].name == "A"

    def test_missing_semicolon_after_attribute(self):
        with pytest.raises(AslParseError, match="';'"):
            parse_asl("class A { int X }")

    def test_enum_declaration(self):
        program = parse_asl("enum TimingType { Barrier, IORead, IOWrite };")
        enum = program.enums[0]
        assert enum.members == ["Barrier", "IORead", "IOWrite"]

    def test_constant_declaration(self):
        program = parse_asl("constant float ImbalanceThreshold = 0.25;")
        constant = program.constants[0]
        assert isinstance(constant, ConstantDecl)
        assert constant.name == "ImbalanceThreshold"


class TestFunctionDeclarations:
    def test_summary_function_from_the_paper(self):
        program = parse_asl(
            "TotalTiming Summary(Region r, TestRun t) = "
            "UNIQUE({s IN r.TotTimes WITH s.Run==t});"
        )
        function = program.functions[0]
        assert function.name == "Summary"
        assert [p.name for p in function.params] == ["r", "t"]
        assert isinstance(function.body, AggregateExpr)
        assert function.body.is_unique
        comprehension = function.body.value
        assert isinstance(comprehension, SetComprehension)
        assert comprehension.var == "s"

    def test_duration_function_from_the_paper(self):
        program = parse_asl("float Duration(Region r, TestRun t) = Summary(r,t).Incl;")
        body = program.functions[0].body
        assert isinstance(body, AttributeAccess)
        assert body.attribute == "Incl"
        assert isinstance(body.obj, FunctionCall)

    def test_empty_parameter_list(self):
        program = parse_asl("int Answer() = 42;")
        assert program.functions[0].params == []


class TestPropertyDeclarations:
    SUBLINEAR = """
    Property SublinearSpeedup(Region r, TestRun t, Region Basis) {
        LET TotalTiming MinPeSum = UNIQUE({sum IN r.TotTimes WITH sum.Run.NoPe ==
                MIN(s.Run.NoPe WHERE s IN r.TotTimes)});
            float TotalCost = Duration(r,t) - Duration(r,MinPeSum.Run)
        IN
        CONDITION: TotalCost>0; CONFIDENCE: 1;
        SEVERITY: TotalCost/Duration(Basis,t);
    }
    """

    def test_sublinear_speedup_parses_exactly_as_printed(self):
        program = parse_asl(self.SUBLINEAR)
        prop = program.properties[0]
        assert prop.name == "SublinearSpeedup"
        assert [p.name for p in prop.params] == ["r", "t", "Basis"]
        assert [d.name for d in prop.let_defs] == ["MinPeSum", "TotalCost"]
        assert len(prop.conditions) == 1
        assert not prop.confidence.is_max
        assert not prop.severity.is_max

    def test_load_imbalance_from_the_paper(self):
        source = """
        Property LoadImbalance(FunctionCall Call, TestRun t, Region Basis) {
            LET CallTiming ct = UNIQUE ({c IN Call.Sums WITH c.Run == t});
                float Dev = ct.StdevTime;
                float Mean = ct.MeanTime;
            IN CONDITION: Dev > ImbalanceThreshold * Mean; CONFIDENCE: 1;
            SEVERITY: Mean / Duration(Basis,t);
        }
        """
        prop = parse_asl(source).properties[0]
        assert prop.params[0].type.name == "FunctionCall"
        assert len(prop.let_defs) == 3

    def test_condition_identifiers_and_guards(self):
        source = """
        PROPERTY Guarded(Region r, TestRun t) {
            CONDITION: (c1) Duration(r,t) > 10 OR (c2) Duration(r,t) > 100;
            CONFIDENCE: MAX((c1) -> 0.5, (c2) -> 0.9);
            SEVERITY: MAX((c1) -> 1, (c2) -> 2);
        };
        """
        prop = parse_asl(source).properties[0]
        assert prop.condition_ids() == ["c1", "c2"]
        assert prop.confidence.is_max
        assert [e.guard for e in prop.confidence.entries] == ["c1", "c2"]
        assert [e.guard for e in prop.severity.entries] == ["c1", "c2"]

    def test_property_without_let_block(self):
        source = """
        Property Simple(Region r, TestRun t) {
            CONDITION: Duration(r,t) > 0;
            CONFIDENCE: 1;
            SEVERITY: 0.5;
        }
        """
        prop = parse_asl(source).properties[0]
        assert prop.let_defs == []

    def test_empty_let_block_is_rejected(self):
        source = """
        Property Bad(Region r) {
            LET IN
            CONDITION: 1 > 0; CONFIDENCE: 1; SEVERITY: 1;
        }
        """
        with pytest.raises(AslParseError, match="at least one definition"):
            parse_asl(source)

    def test_clause_order_is_enforced(self):
        source = """
        Property Bad(Region r) {
            CONFIDENCE: 1;
            CONDITION: 1 > 0;
            SEVERITY: 1;
        }
        """
        with pytest.raises(AslParseError, match="CONDITION"):
            parse_asl(source)

    def test_scalar_max_in_severity_still_parses(self):
        source = """
        Property ScalarMax(Region r, TestRun t) {
            CONDITION: Duration(r,t) > 0;
            CONFIDENCE: 1;
            SEVERITY: MAX(Duration(r,t), 1);
        }
        """
        prop = parse_asl(source).properties[0]
        # Either reading (combinator of two unguarded entries or scalar MAX)
        # computes the same value; the parser normalises to the MAX form.
        assert len(prop.severity.entries) == 2


class TestExpressions:
    def test_operator_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, BinaryExpr)
        assert expr.op is BinaryOp.ADD
        assert isinstance(expr.right, BinaryExpr)
        assert expr.right.op is BinaryOp.MUL

    def test_comparison_binds_weaker_than_arithmetic(self):
        expr = parse_expression("a + b > c * d")
        assert expr.op is BinaryOp.GT

    def test_and_or_precedence(self):
        expr = parse_expression("a > 1 AND b > 2 OR c > 3")
        assert expr.op is BinaryOp.OR
        assert expr.left.op is BinaryOp.AND

    def test_unary_minus_and_not(self):
        expr = parse_expression("-x")
        assert isinstance(expr, UnaryExpr)
        expr = parse_expression("NOT a > 1")
        assert isinstance(expr, UnaryExpr)

    def test_parenthesised_expression(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op is BinaryOp.MUL
        assert isinstance(expr.left, BinaryExpr)

    def test_aggregate_with_where_and_conjuncts(self):
        expr = parse_expression(
            "SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run==t AND tt.Type == Barrier)"
        )
        assert isinstance(expr, AggregateExpr)
        assert expr.func == "SUM"
        assert expr.var == "tt"
        assert isinstance(expr.predicate, BinaryExpr)
        assert expr.predicate.op is BinaryOp.AND

    def test_min_aggregate(self):
        expr = parse_expression("MIN(s.Run.NoPe WHERE s IN r.TotTimes)")
        assert isinstance(expr, AggregateExpr)
        assert expr.func == "MIN"

    def test_scalar_max_without_where_is_a_call(self):
        expr = parse_expression("MAX(a, b)")
        assert isinstance(expr, FunctionCall)
        assert expr.name == "MAX"

    def test_attribute_access_on_unique_result(self):
        expr = parse_expression("UNIQUE({s IN r.TotTimes WITH s.Run==t}).Incl")
        assert isinstance(expr, AttributeAccess)
        assert isinstance(expr.obj, AggregateExpr)

    def test_set_comprehension_without_predicate(self):
        expr = parse_expression("{s IN r.TotTimes}")
        assert isinstance(expr, SetComprehension)
        assert expr.predicate is None

    def test_trailing_input_is_rejected(self):
        with pytest.raises(AslParseError, match="trailing"):
            parse_expression("1 + 2 extra")

    def test_unknown_declaration_start(self):
        with pytest.raises(AslParseError, match="expected a declaration"):
            parse_asl("42;")

    def test_missing_expression(self):
        with pytest.raises(AslParseError, match="expected an expression"):
            parse_expression("1 + ;")


class TestMergedDocuments:
    def test_merge_combines_declarations(self):
        model = parse_asl("class Region { setof TotalTiming TotTimes; }")
        props = parse_asl(
            "Property P(Region r) { CONDITION: 1 > 0; CONFIDENCE: 1; SEVERITY: 1; }"
        )
        merged = model.merge(props)
        assert len(merged.classes) == 1
        assert len(merged.properties) == 1

    def test_lookup_helpers(self):
        program = parse_asl(
            "class A { int X; } enum E { M } int F() = 1; "
            "Property P(A a) { CONDITION: a.X > 0; CONFIDENCE: 1; SEVERITY: 1; }"
        )
        assert isinstance(program.class_decl("A"), ClassDecl)
        assert isinstance(program.function_decl("F"), FunctionDecl)
        assert isinstance(program.property_decl("P"), PropertyDecl)
        with pytest.raises(KeyError):
            program.class_decl("missing")
