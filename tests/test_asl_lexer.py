"""Tests of the ASL lexer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asl import AslLexError, tokenize
from repro.asl.tokens import TokenType


def kinds(source):
    return [t.type for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source) if t.type is not TokenType.EOF]


class TestBasicTokens:
    def test_empty_input_gives_only_eof(self):
        assert kinds("") == [TokenType.EOF]

    def test_identifiers_and_keywords(self):
        assert kinds("class Region")[:2] == [TokenType.CLASS, TokenType.IDENT]

    def test_keywords_are_case_insensitive(self):
        # The paper writes both PROPERTY (grammar) and Property (examples).
        assert kinds("PROPERTY")[0] is TokenType.PROPERTY
        assert kinds("Property")[0] is TokenType.PROPERTY
        assert kinds("property")[0] is TokenType.PROPERTY

    def test_aggregate_names_are_plain_identifiers(self):
        assert kinds("UNIQUE SUM MAX")[:3] == [TokenType.IDENT] * 3

    def test_setof_keyword(self):
        assert kinds("setof ProgVersion")[:2] == [TokenType.SETOF, TokenType.IDENT]

    def test_numbers(self):
        tokens = tokenize("42 3.25 1e3 2.5e-2")
        assert tokens[0].type is TokenType.INT and tokens[0].value == 42
        assert tokens[1].type is TokenType.FLOAT and tokens[1].value == 3.25
        assert tokens[2].type is TokenType.FLOAT and tokens[2].value == 1000.0
        assert tokens[3].type is TokenType.FLOAT and tokens[3].value == 0.025

    def test_string_literals_with_escapes(self):
        token = tokenize(r'"hello \"world\"\n"')[0]
        assert token.type is TokenType.STRING
        assert token.value == 'hello "world"\n'

    def test_boolean_literals(self):
        tokens = tokenize("true FALSE")
        assert tokens[0].type is TokenType.TRUE and tokens[0].value is True
        assert tokens[1].type is TokenType.FALSE and tokens[1].value is False


class TestOperators:
    def test_two_character_operators(self):
        assert kinds("== != <= >= ->")[:5] == [
            TokenType.EQ, TokenType.NE, TokenType.LE, TokenType.GE, TokenType.ARROW,
        ]

    def test_single_character_operators(self):
        expected = [
            TokenType.LPAREN, TokenType.RPAREN, TokenType.LBRACE, TokenType.RBRACE,
            TokenType.PLUS, TokenType.MINUS, TokenType.STAR, TokenType.SLASH,
            TokenType.SEMICOLON, TokenType.COLON, TokenType.DOT, TokenType.COMMA,
            TokenType.ASSIGN, TokenType.LT, TokenType.GT,
        ]
        assert kinds("( ) { } + - * / ; : . , = < >")[: len(expected)] == expected

    def test_attribute_access_chain(self):
        assert texts("sum.Run.NoPe") == ["sum", ".", "Run", ".", "NoPe"]


class TestCommentsAndWhitespace:
    def test_line_comments_are_skipped(self):
        assert kinds("// a comment\n42")[:1] == [TokenType.INT]

    def test_block_comments_are_skipped(self):
        assert kinds("/* multi\nline */ 42")[:1] == [TokenType.INT]

    def test_unterminated_block_comment(self):
        with pytest.raises(AslLexError, match="unterminated block comment"):
            tokenize("/* never closed")

    def test_locations_track_lines_and_columns(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].location.line == 1 and tokens[0].location.column == 1
        assert tokens[1].location.line == 2 and tokens[1].location.column == 3


class TestLexErrors:
    def test_unexpected_character(self):
        with pytest.raises(AslLexError, match="unexpected character"):
            tokenize("a $ b")

    def test_unterminated_string(self):
        with pytest.raises(AslLexError, match="unterminated string"):
            tokenize('"no end')

    def test_newline_in_string(self):
        with pytest.raises(AslLexError, match="newline inside string"):
            tokenize('"line\nbreak"')

    def test_identifier_glued_to_number(self):
        with pytest.raises(AslLexError, match="after numeric literal"):
            tokenize("12abc")

    def test_unknown_escape(self):
        with pytest.raises(AslLexError, match="unknown escape"):
            tokenize(r'"\q"')


class TestPaperFragments:
    def test_summary_function_fragment(self):
        source = "TotalTiming Summary(Region r, TestRun t) = UNIQUE({s IN r.TotTimes WITH s.Run==t});"
        token_kinds = kinds(source)
        assert TokenType.IN in token_kinds
        assert TokenType.WITH in token_kinds
        assert token_kinds[-1] is TokenType.EOF

    def test_condition_fragment(self):
        token_kinds = kinds("CONDITION: TotalCost>0; CONFIDENCE: 1;")
        assert token_kinds[0] is TokenType.CONDITION
        assert TokenType.CONFIDENCE in token_kinds

    @given(st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=30, deadline=None)
    def test_integer_values_round_trip(self, value):
        token = tokenize(str(value))[0]
        assert token.type is TokenType.INT
        assert token.value == value
