"""Tests of the Apprentice summary-file exporter and parser (round trip)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apprentice import (
    ApprenticeExport,
    ApprenticeFormatError,
    ApprenticeParser,
    simulate,
    synthetic_workload,
)
from repro.datamodel import TimingType


@pytest.fixture(scope="module")
def exported_text(mixed_repository):
    return ApprenticeExport(mixed_repository).dumps()


class TestExportFormat:
    def test_header_and_record_kinds(self, exported_text):
        lines = exported_text.splitlines()
        assert lines[0] == "APPRENTICE-SUMMARY|1.0"
        kinds = {line.split("|")[0] for line in lines[1:] if not line.startswith(">")}
        assert {"PROGRAM", "VERSION", "RUN", "FUNCTION", "REGION", "TOTAL",
                "TYPED", "CALLSITE", "CALLTIMING"} <= kinds

    def test_every_region_appears(self, exported_text, mixed_repository):
        for region in mixed_repository.regions():
            assert f"REGION|{region.name}|" in exported_text

    def test_dump_path_round_trip(self, tmp_path, mixed_repository):
        path = tmp_path / "summary.apr"
        ApprenticeExport(mixed_repository).dump_path(str(path))
        parsed = ApprenticeParser().load_path(str(path))
        assert parsed.stats().counts == mixed_repository.stats().counts


class TestRoundTrip:
    def test_counts_preserved(self, exported_text, mixed_repository):
        parsed = ApprenticeParser().loads(exported_text)
        assert parsed.stats().counts == mixed_repository.stats().counts

    def test_timings_preserved(self, exported_text, mixed_repository):
        parsed = ApprenticeParser().loads(exported_text)
        original_main = mixed_repository.region_by_name("app_main")
        parsed_main = parsed.region_by_name("app_main")
        original = sorted(
            (t.Run.NoPe, t.Incl, t.Excl, t.Ovhd) for t in original_main.TotTimes
        )
        round_tripped = sorted(
            (t.Run.NoPe, t.Incl, t.Excl, t.Ovhd) for t in parsed_main.TotTimes
        )
        # The export format keeps 12 significant digits.
        for before, after in zip(original, round_tripped):
            assert after[0] == before[0]
            for b, a in zip(before[1:], after[1:]):
                assert a == pytest.approx(b, rel=1e-9)

    def test_typed_timings_preserved(self, exported_text, mixed_repository):
        parsed = ApprenticeParser().loads(exported_text)
        region = parsed.region_by_name("write_results")
        types = {t.Type for t in region.TypTimes}
        assert TimingType.IOWrite in types
        assert TimingType.EventWait in types

    def test_parent_structure_preserved(self, exported_text):
        parsed = ApprenticeParser().loads(exported_text)
        child = parsed.region_by_name("assemble_matrix")
        assert child.ParentRegion is not None
        assert child.ParentRegion.name == "app_main"

    def test_call_sites_preserved(self, exported_text, mixed_repository):
        parsed = ApprenticeParser().loads(exported_text)
        version = parsed.programs[0].latest_version()
        callees = sorted(call.callee_name for call in version.all_calls())
        original = sorted(
            call.callee_name
            for call in mixed_repository.programs[0].latest_version().all_calls()
        )
        assert callees == original

    def test_double_round_trip_is_stable(self, exported_text):
        parsed = ApprenticeParser().loads(exported_text)
        again = ApprenticeExport(parsed).dumps()
        assert ApprenticeParser().loads(again).stats().counts == parsed.stats().counts

    @given(pes=st.sampled_from([1, 2, 3, 4, 7, 8]),
           kind=st.sampled_from(["stencil", "io_bound", "comm_bound"]))
    @settings(max_examples=6, deadline=None)
    def test_round_trip_for_other_workloads(self, pes, kind):
        repo = simulate(synthetic_workload(kind), pe_counts=(1, pes) if pes > 1 else (1,))
        text = ApprenticeExport(repo).dumps()
        parsed = ApprenticeParser().loads(text)
        assert parsed.stats().counts == repo.stats().counts


class TestParserErrors:
    def test_missing_header(self):
        with pytest.raises(ApprenticeFormatError, match="header"):
            ApprenticeParser().loads("PROGRAM|x\n")

    def test_unsupported_version(self):
        with pytest.raises(ApprenticeFormatError, match="version"):
            ApprenticeParser().loads("APPRENTICE-SUMMARY|9.9\n")

    def test_unknown_record_type(self):
        text = "APPRENTICE-SUMMARY|1.0\nBOGUS|x\n"
        with pytest.raises(ApprenticeFormatError, match="unknown record type"):
            ApprenticeParser().loads(text)

    def test_region_before_function(self):
        text = (
            "APPRENTICE-SUMMARY|1.0\n"
            "PROGRAM|p\n"
            "VERSION|v1|2000-01-01T00:00:00\n"
            "REGION|r|loop|-|-|0|0\n"
        )
        with pytest.raises(ApprenticeFormatError, match="REGION before FUNCTION"):
            ApprenticeParser().loads(text)

    def test_total_for_unknown_region(self):
        text = (
            "APPRENTICE-SUMMARY|1.0\n"
            "PROGRAM|p\n"
            "VERSION|v1|2000-01-01T00:00:00\n"
            "RUN|1|2000-01-01T01:00:00|4|300\n"
            "FUNCTION|main\n"
            "TOTAL|missing|1|1.0|1.0|0.0\n"
        )
        with pytest.raises(ApprenticeFormatError, match="unknown region"):
            ApprenticeParser().loads(text)

    def test_wrong_field_count(self):
        text = (
            "APPRENTICE-SUMMARY|1.0\n"
            "PROGRAM|p|extra\n"
        )
        with pytest.raises(ApprenticeFormatError, match="expects 2 fields"):
            ApprenticeParser().loads(text)

    def test_truncated_source_block(self):
        text = (
            "APPRENTICE-SUMMARY|1.0\n"
            "PROGRAM|p\n"
            "VERSION|v1|2000-01-01T00:00:00\n"
            "SOURCE|a.f90|3\n"
            ">only one line\n"
        )
        with pytest.raises(ApprenticeFormatError, match="truncated|source"):
            ApprenticeParser().loads(text)

    def test_error_messages_carry_line_numbers(self):
        text = "APPRENTICE-SUMMARY|1.0\nBOGUS|x\n"
        with pytest.raises(ApprenticeFormatError, match="line 2"):
            ApprenticeParser().loads(text)
