"""Tests of the ASL reference evaluator against hand-built performance data."""

import datetime as dt

import pytest

from repro.asl import AslEvaluationError, AslNameError, check_asl, parse_asl
from repro.asl.evaluator import AslEvaluator
from repro.asl.specs import COSY_DATA_MODEL
from repro.datamodel import (
    CallTiming,
    Function,
    FunctionCall,
    Region,
    RegionKind,
    TestRun,
    TimingType,
    TotalTiming,
    TypedTiming,
)

PROPERTIES = """
constant float ImbalanceThreshold = 0.25;

TotalTiming Summary(Region r, TestRun t) = UNIQUE({s IN r.TotTimes WITH s.Run == t});
float Duration(Region r, TestRun t) = Summary(r, t).Incl;

Property SublinearSpeedup(Region r, TestRun t, Region Basis) {
    LET TotalTiming MinPeSum = UNIQUE({sum IN r.TotTimes WITH sum.Run.NoPe ==
            MIN(s.Run.NoPe WHERE s IN r.TotTimes)});
        float TotalCost = Duration(r, t) - Duration(r, MinPeSum.Run)
    IN
    CONDITION: TotalCost > 0;
    CONFIDENCE: 1;
    SEVERITY: TotalCost / Duration(Basis, t);
}

Property SyncCost(Region r, TestRun t, Region Basis) {
    LET float Barrier = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run == t
            AND tt.Type == Barrier);
    IN
    CONDITION: Barrier > 0;
    CONFIDENCE: 1;
    SEVERITY: Barrier / Duration(Basis, t);
}

Property LoadImbalance(FunctionCall Call, TestRun t, Region Basis) {
    LET CallTiming ct = UNIQUE({c IN Call.Sums WITH c.Run == t});
        float Dev = ct.StdevTime;
        float Mean = ct.MeanTime
    IN
    CONDITION: Dev > ImbalanceThreshold * Mean;
    CONFIDENCE: 1;
    SEVERITY: Mean / Duration(Basis, t);
}

Property Guarded(Region r, TestRun t) {
    CONDITION: (big) Duration(r, t) > 100 OR (small) Duration(r, t) > 1;
    CONFIDENCE: MAX((big) -> 0.9, (small) -> 0.4);
    SEVERITY: MAX((big) -> 2.0, (small) -> 0.5);
}
"""


@pytest.fixture(scope="module")
def checked_spec():
    model = parse_asl(COSY_DATA_MODEL)
    props = parse_asl(PROPERTIES)
    return check_asl(model.merge(props))


@pytest.fixture()
def scenario():
    """Two runs (2 and 8 PEs) of a single region with barrier overhead."""
    run_small = TestRun(Start=dt.datetime(2000, 1, 1), NoPe=2, Clockspeed=300)
    run_large = TestRun(Start=dt.datetime(2000, 1, 1), NoPe=8, Clockspeed=300)
    function = Function(Name="main")
    basis = function.add_region(Region(name="main", kind=RegionKind.PROGRAM))
    basis.add_total_timing(TotalTiming(Run=run_small, Excl=10.0, Incl=10.0, Ovhd=1.0))
    basis.add_total_timing(TotalTiming(Run=run_large, Excl=16.0, Incl=16.0, Ovhd=6.0))
    basis.add_typed_timing(TypedTiming(Run=run_large, Type=TimingType.Barrier, Time=4.0))
    call = FunctionCall(Caller=function, CallingReg=basis, callee_name="barrier")
    call.add_call_timing(
        CallTiming(
            Run=run_large,
            MinCalls=10, MaxCalls=10, MeanCalls=10, StdevCalls=0,
            MinTime=0.1, MaxTime=1.9, MeanTime=1.0, StdevTime=0.6,
        )
    )
    call.add_call_timing(
        CallTiming(
            Run=run_small,
            MinCalls=10, MaxCalls=10, MeanCalls=10, StdevCalls=0,
            MinTime=0.49, MaxTime=0.51, MeanTime=0.5, StdevTime=0.01,
        )
    )
    function.add_call(call)
    return {
        "run_small": run_small,
        "run_large": run_large,
        "basis": basis,
        "call": call,
    }


class TestSpecificationFunctions:
    def test_summary_selects_the_right_total_timing(self, checked_spec, scenario):
        evaluator = AslEvaluator(checked_spec)
        summary = evaluator.evaluate_function(
            "Summary", scenario["basis"], scenario["run_large"]
        )
        assert summary.Incl == 16.0

    def test_duration(self, checked_spec, scenario):
        evaluator = AslEvaluator(checked_spec)
        assert evaluator.evaluate_function(
            "Duration", scenario["basis"], scenario["run_small"]
        ) == 10.0

    def test_unknown_function(self, checked_spec):
        with pytest.raises(AslNameError, match="unknown function"):
            AslEvaluator(checked_spec).evaluate_function("Nope")


class TestSublinearSpeedup:
    def test_severity_matches_the_hand_computed_value(self, checked_spec, scenario):
        evaluator = AslEvaluator(checked_spec)
        result = evaluator.evaluate_property(
            "SublinearSpeedup",
            {"r": scenario["basis"], "t": scenario["run_large"],
             "Basis": scenario["basis"]},
        )
        assert result.holds
        # TotalCost = 16 - 10 = 6; severity = 6 / 16
        assert result.severity == pytest.approx(6.0 / 16.0)
        assert result.confidence == 1.0
        assert result.let_values["TotalCost"] == pytest.approx(6.0)

    def test_reference_run_does_not_have_the_property(self, checked_spec, scenario):
        evaluator = AslEvaluator(checked_spec)
        result = evaluator.evaluate_property(
            "SublinearSpeedup",
            {"r": scenario["basis"], "t": scenario["run_small"],
             "Basis": scenario["basis"]},
        )
        assert not result.holds
        assert result.severity == 0.0


class TestSyncCost:
    def test_sync_cost_severity(self, checked_spec, scenario):
        evaluator = AslEvaluator(checked_spec)
        result = evaluator.evaluate_property(
            "SyncCost",
            {"r": scenario["basis"], "t": scenario["run_large"],
             "Basis": scenario["basis"]},
        )
        assert result.holds
        assert result.severity == pytest.approx(4.0 / 16.0)

    def test_sync_cost_without_barrier_time_does_not_hold(self, checked_spec, scenario):
        evaluator = AslEvaluator(checked_spec)
        result = evaluator.evaluate_property(
            "SyncCost",
            {"r": scenario["basis"], "t": scenario["run_small"],
             "Basis": scenario["basis"]},
        )
        assert not result.holds


class TestLoadImbalance:
    def test_imbalanced_call_site_is_detected(self, checked_spec, scenario):
        evaluator = AslEvaluator(checked_spec)
        result = evaluator.evaluate_property(
            "LoadImbalance",
            {"Call": scenario["call"], "t": scenario["run_large"],
             "Basis": scenario["basis"]},
        )
        # Dev (0.6) > 0.25 * Mean (1.0)
        assert result.holds
        assert result.severity == pytest.approx(1.0 / 16.0)

    def test_balanced_run_is_not_flagged(self, checked_spec, scenario):
        evaluator = AslEvaluator(checked_spec)
        result = evaluator.evaluate_property(
            "LoadImbalance",
            {"Call": scenario["call"], "t": scenario["run_small"],
             "Basis": scenario["basis"]},
        )
        assert not result.holds

    def test_constant_override_changes_the_threshold(self, checked_spec, scenario):
        evaluator = AslEvaluator(checked_spec, constants={"ImbalanceThreshold": 0.9})
        result = evaluator.evaluate_property(
            "LoadImbalance",
            {"Call": scenario["call"], "t": scenario["run_large"],
             "Basis": scenario["basis"]},
        )
        assert not result.holds


class TestGuardedConfidenceAndSeverity:
    def test_only_the_satisfied_guard_contributes(self, checked_spec, scenario):
        evaluator = AslEvaluator(checked_spec)
        result = evaluator.evaluate_property(
            "Guarded",
            {"r": scenario["basis"], "t": scenario["run_large"]},
        )
        # Duration is 16: only the (small) condition holds.
        assert result.conditions == {"big": False, "small": True}
        assert result.confidence == pytest.approx(0.4)
        assert result.severity == pytest.approx(0.5)

    def test_condition_values_are_recorded_per_identifier(self, checked_spec, scenario):
        evaluator = AslEvaluator(checked_spec)
        result = evaluator.evaluate_property(
            "Guarded", {"r": scenario["basis"], "t": scenario["run_small"]}
        )
        assert set(result.conditions) == {"big", "small"}


class TestEvaluationErrors:
    def test_missing_parameter_is_reported(self, checked_spec, scenario):
        evaluator = AslEvaluator(checked_spec)
        with pytest.raises(AslEvaluationError, match="missing parameter"):
            evaluator.evaluate_property("SyncCost", {"r": scenario["basis"]})

    def test_unknown_property_is_reported(self, checked_spec):
        with pytest.raises(AslNameError, match="unknown property"):
            AslEvaluator(checked_spec).evaluate_property("Nope", {})

    def test_unique_on_empty_set_is_an_error(self, checked_spec, scenario):
        evaluator = AslEvaluator(checked_spec)
        empty_region = Region(name="empty")
        with pytest.raises(AslEvaluationError, match="UNIQUE"):
            evaluator.evaluate_property(
                "SublinearSpeedup",
                {"r": empty_region, "t": scenario["run_large"],
                 "Basis": scenario["basis"]},
            )

    def test_is_problem_uses_the_threshold(self, checked_spec, scenario):
        evaluator = AslEvaluator(checked_spec)
        result = evaluator.evaluate_property(
            "SyncCost",
            {"r": scenario["basis"], "t": scenario["run_large"],
             "Basis": scenario["basis"]},
        )
        assert result.is_problem(0.1)
        assert not result.is_problem(0.5)
