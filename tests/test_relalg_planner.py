"""Tests of the plan-then-execute engine: planning, caching, hash joins.

Several tests run the same statement through both engines — the compiled
planner (:mod:`repro.relalg.planner`) and the seed AST interpreter
(:mod:`repro.relalg.interp`) — and assert identical results; on index/scan
access paths the :class:`QueryStats` counters must be identical too (the A1
ablation depends on them).
"""

import pytest

import repro.relalg.database as database_module
from repro.relalg import Database, ExecutionError, QueryStats, plan_select
from repro.relalg.interp import InterpretedSelectExecutor
from repro.relalg.planner import QueryPlan
from repro.relalg.sqlparser import parse_sql


def make_db(engine="compiled"):
    db = Database(engine=engine)
    db.execute(
        "CREATE TABLE measurements (id INTEGER PRIMARY KEY, region VARCHAR, "
        "run_id INTEGER, value FLOAT)"
    )
    db.executemany(
        "INSERT INTO measurements (id, region, run_id, value) VALUES (?, ?, ?, ?)",
        [
            (1, "main", 1, 10.0),
            (2, "main", 2, None),
            (3, "loop", 1, 4.0),
            (4, "loop", 2, 8.0),
            (5, "io", 1, 1.0),
        ],
    )
    db.execute("CREATE TABLE runs (id INTEGER PRIMARY KEY, pes INTEGER)")
    db.executemany("INSERT INTO runs (id, pes) VALUES (?, ?)", [(1, 2), (2, 8)])
    return db


@pytest.fixture()
def db():
    return make_db()


def run_both(sql, params=()):
    """Execute ``sql`` on the compiled and the interpreted engine."""
    compiled = make_db("compiled").query(sql, params)
    interpreted = make_db("interpreted").query(sql, params)
    return compiled, interpreted


PARITY_QUERIES = [
    "SELECT * FROM measurements",
    "SELECT id, value FROM measurements WHERE value IS NOT NULL ORDER BY value DESC",
    "SELECT DISTINCT region FROM measurements ORDER BY region",
    "SELECT region, COUNT(*) AS n, SUM(value) FROM measurements "
    "GROUP BY region HAVING COUNT(*) > 1 ORDER BY n DESC, region",
    "SELECT m.id, r.pes FROM measurements m JOIN runs r ON m.run_id = r.id "
    "WHERE r.pes = 8 ORDER BY m.id",
    "SELECT COUNT(*) FROM measurements WHERE region IN ('main', 'io')",
    "SELECT UPPER(region), COALESCE(value, 0) FROM measurements WHERE id = 2",
    "SELECT id FROM measurements WHERE id = 3 AND region = 'loop'",
    "SELECT COUNT(*) FROM measurements m, runs r",
    "SELECT id FROM runs WHERE pes = (SELECT MAX(run_id) FROM measurements)",
    "SELECT id, value FROM measurements ORDER BY 2 DESC, 1",
    "SELECT value FROM measurements WHERE value > ? LIMIT 2",
]


class TestEngineParity:
    @pytest.mark.parametrize("sql", PARITY_QUERIES)
    def test_identical_results(self, sql):
        params = (3.0,) if "?" in sql else ()
        compiled, interpreted = run_both(sql, params)
        assert compiled.columns == interpreted.columns
        assert compiled.rows == interpreted.rows

    @pytest.mark.parametrize(
        "sql",
        [
            # Index/scan access paths (no hash join): the physical counters
            # must be byte-identical between the engines.
            "SELECT id FROM measurements WHERE id = 4",
            "SELECT id, value FROM measurements WHERE region = 'loop'",
            "SELECT region, COUNT(*) FROM measurements GROUP BY region",
            "SELECT r.pes FROM measurements m JOIN runs r ON r.id = m.run_id "
            "WHERE m.region = 'loop'",
            "SELECT pes FROM runs WHERE id = (SELECT MIN(run_id) FROM measurements)",
        ],
    )
    def test_identical_query_stats(self, sql):
        compiled, interpreted = run_both(sql)
        assert compiled.rows == interpreted.rows
        assert compiled.stats == interpreted.stats


class TestPlanShapes:
    def test_index_probe_is_chosen_for_indexed_equality(self, db):
        plan = plan_select(parse_sql("SELECT * FROM measurements WHERE id = 3"),
                           db.tables)
        (level,) = plan.describe()
        assert level["binding"] == "measurements"
        assert level["table"] == "measurements"
        assert level["access"] == "index-probe"
        assert level["column"] == "id"
        assert level["filters"] == 0
        assert level["partitions"] == 1
        # Single-partition tables have nothing to prune.
        assert level["pruned"] is False
        # 5 rows, 5 distinct primary keys: the probe expects one match.
        assert level["estimated_rows"] == 1.0

    def test_hash_join_is_chosen_for_unindexed_equi_join(self, db):
        plan = plan_select(
            parse_sql(
                "SELECT m.id FROM measurements m JOIN runs r ON m.run_id = r.id "
                "WHERE r.pes = 8"
            ),
            db.tables,
        )
        described = {level["binding"]: level["access"] for level in plan.describe()}
        # The planner binds `runs` first (its filter is available) and then
        # hash-joins the unindexed measurements.run_id column.
        assert described == {"r": "scan", "m": "hash-probe"}

    def test_join_order_follows_bound_predicate_availability(self, db):
        plan = plan_select(
            parse_sql(
                "SELECT m.id FROM measurements m, runs r "
                "WHERE r.pes = 8 AND m.run_id = r.id"
            ),
            db.tables,
        )
        assert [level["binding"] for level in plan.describe()] == ["r", "m"]

    def test_constant_equality_on_unindexed_column_stays_a_scan(self, db):
        plan = plan_select(
            parse_sql("SELECT id FROM measurements WHERE region = 'loop'"),
            db.tables,
        )
        assert plan.describe()[0]["access"] == "scan"


class TestHashJoin:
    def test_hash_join_results_match_the_interpreter(self):
        sql = ("SELECT m.id, r.pes FROM measurements m JOIN runs r "
               "ON m.run_id = r.id ORDER BY m.id")
        compiled, interpreted = run_both(sql)
        assert compiled.rows == interpreted.rows

    def test_hash_join_builds_once_and_probes_per_outer_row(self, db):
        result = db.query(
            "SELECT m.id FROM measurements m JOIN runs r ON m.run_id = r.id "
            "WHERE r.pes = 8"
        )
        assert sorted(row[0] for row in result) == [2, 4]
        # runs scan (2) + one-time hash build over measurements (5) + the two
        # matching probe results.
        assert result.stats.rows_scanned == 9
        assert result.stats.hash_probes == 1
        assert result.stats.index_lookups == 0

    def test_null_join_keys_never_match(self):
        for engine in ("compiled", "interpreted"):
            db = make_db(engine)
            db.execute(
                "INSERT INTO measurements (id, region, run_id, value) "
                "VALUES (99, 'x', NULL, 0.5)"
            )
            result = db.query(
                "SELECT m.id FROM measurements m JOIN runs r ON m.run_id = r.id"
            )
            assert 99 not in [row[0] for row in result]
            assert len(result) == 5


class TestPlanCache:
    def test_repeated_execution_hits_the_plan_cache(self, db):
        sql = "SELECT id FROM measurements WHERE region = ?"
        first = db.query(sql, ["loop"])
        second = db.query(sql, ["io"])
        assert [row[0] for row in first] == [3, 4]
        assert [row[0] for row in second] == [5]
        info = db.plan_cache_info()
        assert info["hits"] == 1
        assert info["misses"] == 1
        assert info["size"] == 1

    def test_cached_statement_reexecution_skips_parse_and_plan(self, db, monkeypatch):
        parse_calls = []
        real_parse = database_module.parse_sql

        def counting_parse(sql):
            parse_calls.append(sql)
            return real_parse(sql)

        monkeypatch.setattr(database_module, "parse_sql", counting_parse)
        sql = "SELECT COUNT(*) FROM measurements WHERE run_id = ?"
        db.query(sql, [1])
        misses_after_first = db.plan_cache_info()["misses"]
        db.query(sql, [2])
        db.query(sql, [1])
        assert parse_calls == [sql]  # parsed exactly once
        info = db.plan_cache_info()
        assert info["misses"] == misses_after_first  # planned exactly once
        assert info["hits"] == 2

    def test_ddl_invalidates_cached_plans(self, db):
        sql = "SELECT id FROM measurements WHERE run_id = 2"
        before = db.query(sql)
        assert before.stats.index_lookups == 0  # run_id is not indexed yet
        db.execute("CREATE INDEX idx_run ON measurements (run_id)")
        after = db.query(sql)
        assert sorted(row[0] for row in after) == sorted(row[0] for row in before)
        assert after.stats.index_lookups == 1  # re-planned with the new index
        assert after.stats.rows_scanned == 2

    def test_plans_survive_data_modification(self, db):
        sql = "SELECT COUNT(*) FROM measurements WHERE region = 'loop'"
        assert db.query(sql).scalar() == 2
        db.execute(
            "INSERT INTO measurements (id, region, run_id, value) "
            "VALUES (6, 'loop', 1, 2.0)"
        )
        assert db.query(sql).scalar() == 3
        db.execute("DELETE FROM measurements WHERE region = 'loop'")
        assert db.query(sql).scalar() == 0
        assert db.plan_cache_info()["misses"] == 1


class TestDuplicateConjuncts:
    """Regression: duplicate conjuncts are partitioned by identity."""

    @pytest.mark.parametrize(
        "sql, expected",
        [
            ("SELECT id FROM measurements WHERE region = 'loop' AND region = 'loop'",
             [3, 4]),
            ("SELECT id FROM measurements WHERE id = 3 AND id = 3", [3]),
            ("SELECT m.id FROM measurements m JOIN runs r "
             "ON m.run_id = r.id AND m.run_id = r.id WHERE r.pes = 8", [2, 4]),
        ],
    )
    def test_duplicate_conjuncts_filter_correctly(self, sql, expected):
        compiled, interpreted = run_both(sql)
        assert sorted(row[0] for row in compiled) == expected
        assert sorted(row[0] for row in interpreted) == expected

    def test_duplicate_indexed_conjuncts_have_identical_stats(self):
        sql = "SELECT id FROM measurements WHERE id = 3 AND id = 3"
        compiled, interpreted = run_both(sql)
        assert compiled.stats == interpreted.stats
        assert compiled.stats.index_lookups == 1


class TestPlannerErrors:
    def test_unknown_column_is_reported(self, db):
        with pytest.raises(ExecutionError, match="unknown column"):
            db.query("SELECT bogus FROM runs")

    def test_ambiguous_column_is_reported(self, db):
        with pytest.raises(ExecutionError, match="ambiguous"):
            db.query("SELECT id FROM measurements m, runs r WHERE m.run_id = r.id")

    def test_missing_parameters_are_reported(self, db):
        with pytest.raises(ExecutionError, match="parameter"):
            db.query("SELECT id FROM runs WHERE pes = ?")

    def test_interpreted_engine_flag_is_validated(self):
        with pytest.raises(ValueError, match="unknown engine"):
            Database(engine="quantum")


class TestDirectPlanUse:
    def test_plan_select_returns_a_reusable_plan(self, db):
        statement = parse_sql("SELECT COUNT(*) FROM measurements WHERE run_id = ?")
        plan = plan_select(statement, db.tables)
        assert isinstance(plan, QueryPlan)
        assert plan.execute([1], QueryStats()).scalar() == 3
        assert plan.execute([2], QueryStats()).scalar() == 2

    def test_interpreted_executor_is_exported(self, db):
        statement = parse_sql("SELECT COUNT(*) FROM runs")
        executor = InterpretedSelectExecutor(db.tables)
        assert executor.execute(statement).scalar() == 2
