"""Shared helpers for the benchmark harness and the examples."""

from repro.bench.scenarios import (
    CosyScenario,
    build_scenario,
    identical_table_contents,
    load_into_backend,
    speedup_series,
)

__all__ = [
    "CosyScenario",
    "build_scenario",
    "identical_table_contents",
    "load_into_backend",
    "speedup_series",
]
