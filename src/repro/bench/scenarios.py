"""Standard experiment scenarios shared by the benchmarks and the examples.

Every experiment of EXPERIMENTS.md starts from the same building blocks:
simulate a synthetic workload, (optionally) load the resulting performance
data into a simulated database backend, and analyse a test run with COSY.
:func:`build_scenario` packages those steps into a :class:`CosyScenario` so
that the benchmark modules stay focused on what they measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apprentice import ExecutionSimulator, SimulationConfig, synthetic_workload
from repro.asl.semantic import CheckedSpecification
from repro.asl.specs import cosy_specification
from repro.compiler import (
    DEFAULT_LOAD_BATCH_SIZE,
    DatabaseLoader,
    ObjectIds,
    SchemaMapping,
    generate_schema,
)
from repro.cosy import CosyAnalyzer
from repro.datamodel import PerformanceDatabase
from repro.relalg import DatabaseClient, NativeClient, SimulatedBackend, backend

__all__ = [
    "CosyScenario",
    "build_scenario",
    "identical_table_contents",
    "load_into_backend",
    "speedup_series",
]


@dataclass
class CosyScenario:
    """A simulated workload plus everything COSY needs to analyse it."""

    workload_kind: str
    pe_counts: Tuple[int, ...]
    repository: PerformanceDatabase
    specification: CheckedSpecification
    mapping: SchemaMapping
    analyzer: CosyAnalyzer

    def run_with_pes(self, pes: int):
        """The test run with ``pes`` processors."""
        version = self.repository.programs[0].latest_version()
        return version.run_with_pes(pes)

    @property
    def version(self):
        return self.repository.programs[0].latest_version()


def build_scenario(
    workload_kind: str = "mixed",
    pe_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
    threshold: float = 0.05,
    specification: Optional[CheckedSpecification] = None,
    **workload_kwargs,
) -> CosyScenario:
    """Simulate ``workload_kind`` and prepare the COSY analyzer for it."""
    spec = specification or cosy_specification()
    workload = synthetic_workload(workload_kind, **workload_kwargs)
    simulator = ExecutionSimulator(
        workload, SimulationConfig(pe_counts=tuple(pe_counts))
    )
    repository = simulator.run()
    mapping = generate_schema(spec)
    analyzer = CosyAnalyzer(repository, specification=spec, threshold=threshold)
    return CosyScenario(
        workload_kind=workload_kind,
        pe_counts=tuple(pe_counts),
        repository=repository,
        specification=spec,
        mapping=mapping,
        analyzer=analyzer,
    )


def load_into_backend(
    scenario: CosyScenario,
    backend_name: str = "ms_access",
    with_indexes: bool = True,
    client_factory=NativeClient,
    engine: str = "compiled",
    batch_size: Optional[int] = DEFAULT_LOAD_BATCH_SIZE,
    n_partitions: int = 1,
    parallelism: int = 1,
    executor: Optional[str] = None,
) -> Tuple[DatabaseClient, ObjectIds]:
    """Load the scenario's repository into a freshly created simulated backend.

    ``engine`` selects the relational execution engine: the default compiled
    plan-then-execute engine or the seed ``"interpreted"`` AST walker (used by
    ``benchmarks/run_bench.py`` as the speedup baseline).  ``batch_size``
    controls the loader's insert batching (one virtual round trip per batch);
    ``batch_size=None`` loads row at a time — the E6 benchmark compares the
    two paths.  ``n_partitions`` shards every created table by primary key
    and ``parallelism`` sets the backend's virtual scan workers (per-partition
    makespan charging) — the partition-sweep benchmark drives both.
    ``executor`` picks the engine-side fan-out realizing that parallelism
    ("thread", "process" or "sequential"; see
    :func:`repro.relalg.backends.backend`) — the E9 wall-clock benchmark
    sweeps it.
    """
    client = client_factory(
        backend(
            backend_name,
            engine=engine,
            n_partitions=n_partitions,
            parallelism=parallelism,
            executor=executor,
        )
    )
    loader = DatabaseLoader(scenario.mapping, client, batch_size=batch_size)
    loader.create_schema(with_indexes=with_indexes)
    ids = loader.load(scenario.repository)
    return client, ids


def identical_table_contents(left, right) -> bool:
    """Whether two databases hold the same tables with identical live rows.

    Rows are compared in storage order, so this is the differential check the
    E6 bulk-load experiment relies on: batched and row-at-a-time loading must
    be indistinguishable in what they load.
    """
    if left.table_names() != right.table_names():
        return False
    return all(
        list(left.table(name).scan()) == list(right.table(name).scan())
        for name in left.table_names()
    )


def speedup_series(scenario: CosyScenario) -> List[Dict[str, float]]:
    """Per-run duration / speedup / total-cost severity of the main region.

    This is the data series behind the E4 'cost analysis' table: it shows how
    the summed duration grows with the processor count and how severe the
    SublinearSpeedup property becomes.
    """
    version = scenario.version
    basis = version.main_region
    repository = scenario.repository
    series: List[Dict[str, float]] = []
    for run in sorted(version.Runs, key=lambda r: r.NoPe):
        duration = basis.duration(run)
        speedup = repository.speedup(basis, run)
        total_cost = repository.total_cost(basis, run)
        series.append(
            {
                "pes": float(run.NoPe),
                "duration": duration,
                "speedup": speedup,
                "total_cost": total_cost,
                "severity": total_cost / duration if duration > 0 else 0.0,
            }
        )
    return series
