"""Semantic analysis (name resolution and type checking) for ASL.

The checker validates a parsed specification document against the static
rules implied by the paper:

* the data model uses single inheritance only; attribute types must refer to
  declared classes, enums or the built-in scalar types;
* specification functions and properties have typed parameters; their bodies
  and expressions must be well typed;
* a property's condition expressions must be boolean, its confidence and
  severity expressions numeric;
* condition identifiers must be unique within a property, and confidence /
  severity guards may only refer to declared condition identifiers.

The checker produces a :class:`~repro.asl.symbols.SpecificationIndex` that the
reference evaluator and the ASL→SQL compiler consume.  Every expression node is
annotated with its inferred type (attribute ``inferred_type``) for later use.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.asl.ast_nodes import (
    AggregateExpr,
    AslProgram,
    AttributeAccess,
    BinaryExpr,
    BinaryOp,
    BoolLiteral,
    ClassDecl,
    ConditionClause,
    ConstantDecl,
    EnumDecl,
    Expr,
    FloatLiteral,
    FunctionCall,
    FunctionDecl,
    GuardedExpr,
    Identifier,
    IntLiteral,
    LetDef,
    Param,
    PropertyDecl,
    SetComprehension,
    StringLiteral,
    TypeRef,
    UnaryExpr,
    UnaryOp,
    ValueSpec,
)
from repro.asl.errors import AslError, AslNameError, AslTypeError, SourceLocation
from repro.asl.symbols import ClassInfo, Scope, SpecificationIndex
from repro.asl.types import (
    ANY,
    BOOL,
    BUILTIN_TYPES,
    DATETIME,
    FLOAT,
    INT,
    STRING,
    AnyType,
    ClassType,
    EnumType,
    ScalarType,
    SetType,
    Type,
    common_numeric,
    is_assignable,
    is_numeric,
)

__all__ = ["SemanticChecker", "check_asl", "CheckedSpecification"]

#: Scalar builtins usable in expressions without a WHERE clause.
_SCALAR_BUILTINS = {"MIN", "MAX", "ABS"}


class CheckedSpecification:
    """The result of a successful semantic check."""

    def __init__(self, program: AslProgram, index: SpecificationIndex) -> None:
        self.program = program
        self.index = index

    @property
    def properties(self) -> Dict[str, PropertyDecl]:
        """All checked property declarations by name."""
        return dict(self.index.properties)


class SemanticChecker:
    """Checks one specification document and builds its symbol index."""

    def __init__(self, program: AslProgram) -> None:
        self.program = program
        self.index = SpecificationIndex()
        self.diagnostics: List[AslError] = []

    # ------------------------------------------------------------------ #
    # entry point
    # ------------------------------------------------------------------ #

    def check(self) -> CheckedSpecification:
        """Run all checks; raises the first error when any were found."""
        self._register_enums()
        self._register_classes()
        self._check_constants()
        self._check_functions()
        self._check_properties()
        if self.diagnostics:
            raise self.diagnostics[0]
        return CheckedSpecification(self.program, self.index)

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #

    def _error(self, message: str, location: Optional[SourceLocation]) -> Type:
        self.diagnostics.append(AslTypeError(message, location))
        return ANY

    def _name_error(self, message: str, location: Optional[SourceLocation]) -> Type:
        self.diagnostics.append(AslNameError(message, location))
        return ANY

    # ------------------------------------------------------------------ #
    # declarations
    # ------------------------------------------------------------------ #

    def _register_enums(self) -> None:
        for decl in self.program.enums:
            try:
                self.index.add_enum(decl)
            except AslError as exc:
                self.diagnostics.append(exc)

    def _register_classes(self) -> None:
        # First pass: register the names so attribute types may refer to any
        # class regardless of declaration order.
        infos: List[ClassInfo] = []
        for decl in self.program.classes:
            info = ClassInfo(decl=decl, base=decl.base)
            try:
                self.index.add_class(info)
                infos.append(info)
            except AslError as exc:
                self.diagnostics.append(exc)
        # Second pass: resolve inheritance and attribute types.
        for info in infos:
            self._resolve_class(info)

    def _resolve_class(self, info: ClassInfo) -> None:
        decl = info.decl
        # Inheritance chain (detect unknown bases and cycles).
        chain: List[ClassDecl] = []
        seen = set()
        current: Optional[ClassDecl] = decl
        while current is not None:
            if current.name in seen:
                self._error(
                    f"inheritance cycle involving class {current.name!r}",
                    decl.location,
                )
                break
            seen.add(current.name)
            chain.append(current)
            if current.base is None:
                current = None
            elif current.base in self.index.classes:
                current = self.index.classes[current.base].decl
            else:
                self._name_error(
                    f"class {current.name!r} extends unknown class "
                    f"{current.base!r}",
                    current.location,
                )
                current = None
        # Attributes: base classes first so derived declarations shadow checks.
        for class_decl in reversed(chain):
            for attr in class_decl.attributes:
                attr_type = self.resolve_type(attr.type)
                if attr.name in info.attributes:
                    self._error(
                        f"attribute {attr.name!r} of class {decl.name!r} is "
                        f"declared more than once (possibly inherited)",
                        attr.location,
                    )
                    continue
                info.attributes[attr.name] = attr_type
                info.declared_in[attr.name] = class_decl.name

    def _check_constants(self) -> None:
        for decl in self.program.constants:
            declared = self.resolve_type(decl.type)
            scope: Scope[Type] = Scope()
            actual = self.check_expr(decl.value, scope)
            if not is_assignable(actual, declared, self.index.subclass_map()):
                self._error(
                    f"constant {decl.name!r} declares type {declared} but its "
                    f"value has type {actual}",
                    decl.location,
                )
            try:
                self.index.add_constant(decl, declared)
            except AslError as exc:
                self.diagnostics.append(exc)

    def _check_functions(self) -> None:
        # Register all signatures first so functions may call each other in any
        # order (Duration calls Summary in the paper's specification).
        signatures: List[Tuple[FunctionDecl, Tuple[Type, ...], Type]] = []
        for decl in self.program.functions:
            param_types = tuple(self.resolve_type(p.type) for p in decl.params)
            return_type = self.resolve_type(decl.return_type)
            try:
                self.index.add_function(decl, param_types, return_type)
                signatures.append((decl, param_types, return_type))
            except AslError as exc:
                self.diagnostics.append(exc)
        for decl, param_types, return_type in signatures:
            scope: Scope[Type] = Scope()
            for param, param_type in zip(decl.params, param_types):
                try:
                    scope.define(param.name, param_type, param.location)
                except AslError as exc:
                    self.diagnostics.append(exc)
            body_type = self.check_expr(decl.body, scope)
            if not is_assignable(body_type, return_type, self.index.subclass_map()):
                self._error(
                    f"function {decl.name!r} declares return type {return_type} "
                    f"but its body has type {body_type}",
                    decl.location,
                )

    def _check_properties(self) -> None:
        for decl in self.program.properties:
            try:
                self.index.add_property(decl)
            except AslError as exc:
                self.diagnostics.append(exc)
                continue
            self._check_property(decl)

    def _check_property(self, decl: PropertyDecl) -> None:
        scope: Scope[Type] = Scope()
        for param in decl.params:
            param_type = self.resolve_type(param.type)
            try:
                scope.define(param.name, param_type, param.location)
            except AslError as exc:
                self.diagnostics.append(exc)
        # LET definitions are checked sequentially; later definitions may use
        # earlier ones (the paper's SublinearSpeedup does exactly that).
        for let_def in decl.let_defs:
            declared = self.resolve_type(let_def.type)
            actual = self.check_expr(let_def.value, scope)
            if not is_assignable(actual, declared, self.index.subclass_map()):
                self._error(
                    f"LET definition {let_def.name!r} in property {decl.name!r} "
                    f"declares type {declared} but its value has type {actual}",
                    let_def.location,
                )
            try:
                scope.define(let_def.name, declared, let_def.location)
            except AslError as exc:
                self.diagnostics.append(exc)
        # Conditions.
        cond_ids: List[str] = []
        for condition in decl.conditions:
            if condition.cond_id is not None:
                if condition.cond_id in cond_ids:
                    self._error(
                        f"condition identifier {condition.cond_id!r} is used "
                        f"more than once in property {decl.name!r}",
                        condition.location,
                    )
                cond_ids.append(condition.cond_id)
            cond_type = self.check_expr(condition.expr, scope)
            if not isinstance(cond_type, AnyType) and cond_type != BOOL:
                self._error(
                    f"condition of property {decl.name!r} must be boolean, "
                    f"found {cond_type}",
                    condition.location,
                )
        self._check_value_spec(decl, decl.confidence, "confidence", cond_ids, scope)
        self._check_value_spec(decl, decl.severity, "severity", cond_ids, scope)

    def _check_value_spec(
        self,
        decl: PropertyDecl,
        spec: ValueSpec,
        what: str,
        cond_ids: List[str],
        scope: Scope[Type],
    ) -> None:
        if not spec.entries:
            self._error(
                f"property {decl.name!r} is missing its {what} specification",
                decl.location,
            )
            return
        for entry in spec.entries:
            if entry.guard is not None and entry.guard not in cond_ids:
                self._name_error(
                    f"{what} guard {entry.guard!r} of property {decl.name!r} "
                    f"does not name a declared condition identifier "
                    f"(declared: {cond_ids or 'none'})",
                    entry.location,
                )
            value_type = self.check_expr(entry.expr, scope)
            if not is_numeric(value_type):
                self._error(
                    f"{what} expression of property {decl.name!r} must be "
                    f"numeric, found {value_type}",
                    entry.location,
                )

    # ------------------------------------------------------------------ #
    # types
    # ------------------------------------------------------------------ #

    def resolve_type(self, ref: TypeRef) -> Type:
        """Resolve a syntactic type reference to a semantic type."""
        base: Type
        if ref.name in BUILTIN_TYPES:
            base = BUILTIN_TYPES[ref.name]
        elif ref.name in self.index.classes:
            base = ClassType(name=ref.name)
        elif ref.name in self.index.enums:
            decl = self.index.enums[ref.name]
            base = EnumType(name=ref.name, members=tuple(decl.members))
        else:
            return self._name_error(f"unknown type {ref.name!r}", ref.location)
        return SetType(element=base) if ref.is_set else base

    # ------------------------------------------------------------------ #
    # expressions
    # ------------------------------------------------------------------ #

    def check_expr(self, expr: Expr, scope: Scope[Type]) -> Type:
        """Infer the type of ``expr`` and annotate the node (``inferred_type``)."""
        result = self._check_expr_inner(expr, scope)
        expr.inferred_type = result  # type: ignore[attr-defined]
        return result

    def _check_expr_inner(self, expr: Expr, scope: Scope[Type]) -> Type:
        if isinstance(expr, IntLiteral):
            return INT
        if isinstance(expr, FloatLiteral):
            return FLOAT
        if isinstance(expr, StringLiteral):
            return STRING
        if isinstance(expr, BoolLiteral):
            return BOOL
        if isinstance(expr, Identifier):
            return self._check_identifier(expr, scope)
        if isinstance(expr, AttributeAccess):
            return self._check_attribute(expr, scope)
        if isinstance(expr, FunctionCall):
            return self._check_call(expr, scope)
        if isinstance(expr, UnaryExpr):
            return self._check_unary(expr, scope)
        if isinstance(expr, BinaryExpr):
            return self._check_binary(expr, scope)
        if isinstance(expr, SetComprehension):
            return self._check_comprehension(expr, scope)
        if isinstance(expr, AggregateExpr):
            return self._check_aggregate(expr, scope)
        return self._error(
            f"unsupported expression node {type(expr).__name__}", expr.location
        )

    def _check_identifier(self, expr: Identifier, scope: Scope[Type]) -> Type:
        bound = scope.lookup(expr.name)
        if bound is not None:
            return bound
        if expr.name in self.index.constant_types:
            return self.index.constant_types[expr.name]
        if expr.name in self.index.enum_members:
            return self.index.enum_members[expr.name]
        return self._name_error(
            f"unknown name {expr.name!r} (not a parameter, LET definition, "
            f"constant or enum member)",
            expr.location,
        )

    def _check_attribute(self, expr: AttributeAccess, scope: Scope[Type]) -> Type:
        obj_type = self.check_expr(expr.obj, scope)
        if isinstance(obj_type, AnyType):
            return ANY
        if isinstance(obj_type, ClassType):
            try:
                return self.index.attribute_type(obj_type.name, expr.attribute)
            except AslError as exc:
                self.diagnostics.append(
                    AslNameError(exc.bare_message, expr.location)
                )
                return ANY
        if isinstance(obj_type, SetType):
            return self._error(
                f"cannot access attribute {expr.attribute!r} on a set; use a "
                f"set operation (UNIQUE, SUM, …) to select elements first",
                expr.location,
            )
        return self._error(
            f"cannot access attribute {expr.attribute!r} on a value of type "
            f"{obj_type}",
            expr.location,
        )

    def _check_call(self, expr: FunctionCall, scope: Scope[Type]) -> Type:
        if expr.name in self.index.function_types:
            param_types, return_type = self.index.function_types[expr.name]
            if len(expr.args) != len(param_types):
                self._error(
                    f"function {expr.name!r} expects {len(param_types)} "
                    f"arguments, got {len(expr.args)}",
                    expr.location,
                )
            for arg, param_type in zip(expr.args, param_types):
                arg_type = self.check_expr(arg, scope)
                if not is_assignable(arg_type, param_type, self.index.subclass_map()):
                    self._error(
                        f"argument of type {arg_type} is not assignable to "
                        f"parameter of type {param_type} in call to "
                        f"{expr.name!r}",
                        arg.location,
                    )
            return return_type
        if expr.name.upper() in _SCALAR_BUILTINS and expr.name.isupper():
            arg_types = [self.check_expr(arg, scope) for arg in expr.args]
            if not expr.args:
                return self._error(
                    f"builtin {expr.name} requires at least one argument",
                    expr.location,
                )
            for arg, arg_type in zip(expr.args, arg_types):
                if not is_numeric(arg_type):
                    self._error(
                        f"builtin {expr.name} requires numeric arguments, "
                        f"found {arg_type}",
                        arg.location,
                    )
            result: Type = INT
            for arg_type in arg_types:
                result = common_numeric(result, arg_type)
            return result
        # Still type check the arguments for follow-up diagnostics.
        for arg in expr.args:
            self.check_expr(arg, scope)
        return self._name_error(f"unknown function {expr.name!r}", expr.location)

    def _check_unary(self, expr: UnaryExpr, scope: Scope[Type]) -> Type:
        operand = self.check_expr(expr.operand, scope)
        if expr.op is UnaryOp.NEG:
            if not is_numeric(operand):
                return self._error(
                    f"unary '-' requires a numeric operand, found {operand}",
                    expr.location,
                )
            return operand
        if expr.op is UnaryOp.NOT:
            if not isinstance(operand, AnyType) and operand != BOOL:
                return self._error(
                    f"NOT requires a boolean operand, found {operand}",
                    expr.location,
                )
            return BOOL
        raise AssertionError(f"unhandled unary operator {expr.op}")

    def _check_binary(self, expr: BinaryExpr, scope: Scope[Type]) -> Type:
        left = self.check_expr(expr.left, scope)
        right = self.check_expr(expr.right, scope)
        op = expr.op
        if op.is_logical:
            for side, side_type in (("left", left), ("right", right)):
                if not isinstance(side_type, AnyType) and side_type != BOOL:
                    self._error(
                        f"{op.value} requires boolean operands, {side} operand "
                        f"has type {side_type}",
                        expr.location,
                    )
            return BOOL
        if op.is_arithmetic:
            if not is_numeric(left) or not is_numeric(right):
                return self._error(
                    f"operator {op.value!r} requires numeric operands, found "
                    f"{left} and {right}",
                    expr.location,
                )
            return common_numeric(left, right)
        if op in (BinaryOp.EQ, BinaryOp.NE):
            subclasses = self.index.subclass_map()
            if not (
                is_assignable(left, right, subclasses)
                or is_assignable(right, left, subclasses)
            ):
                self._error(
                    f"cannot compare values of incompatible types {left} and "
                    f"{right}",
                    expr.location,
                )
            return BOOL
        # Ordering comparisons.
        orderable = (
            (is_numeric(left) and is_numeric(right))
            or (left == right == DATETIME)
            or (left == right == STRING)
            or isinstance(left, AnyType)
            or isinstance(right, AnyType)
        )
        if not orderable:
            self._error(
                f"operator {op.value!r} cannot order values of types {left} "
                f"and {right}",
                expr.location,
            )
        return BOOL

    def _check_comprehension(self, expr: SetComprehension, scope: Scope[Type]) -> Type:
        source = self.check_expr(expr.source, scope)
        if isinstance(source, AnyType):
            element: Type = ANY
        elif isinstance(source, SetType):
            element = source.element
        else:
            return self._error(
                f"set comprehension requires a set-valued source, found {source}",
                expr.location,
            )
        inner = scope.child()
        try:
            inner.define(expr.var, element, expr.location)
        except AslError as exc:
            self.diagnostics.append(exc)
        if expr.predicate is not None:
            predicate = self.check_expr(expr.predicate, inner)
            if not isinstance(predicate, AnyType) and predicate != BOOL:
                self._error(
                    f"WITH predicate must be boolean, found {predicate}",
                    expr.predicate.location,
                )
        return SetType(element=element)

    def _check_aggregate(self, expr: AggregateExpr, scope: Scope[Type]) -> Type:
        if expr.is_unique:
            value = self.check_expr(expr.value, scope)
            if isinstance(value, AnyType):
                return ANY
            if not isinstance(value, SetType):
                return self._error(
                    f"UNIQUE requires a set-valued argument, found {value}",
                    expr.location,
                )
            return value.element
        if expr.source is None:
            return self._error(
                f"aggregate {expr.func} requires a WHERE clause", expr.location
            )
        source = self.check_expr(expr.source, scope)
        if isinstance(source, AnyType):
            element: Type = ANY
        elif isinstance(source, SetType):
            element = source.element
        else:
            return self._error(
                f"aggregate {expr.func} requires a set-valued source, found "
                f"{source}",
                expr.location,
            )
        inner = scope.child()
        try:
            inner.define(expr.var, element, expr.location)
        except AslError as exc:
            self.diagnostics.append(exc)
        value_type = self.check_expr(expr.value, inner)
        if expr.predicate is not None:
            predicate = self.check_expr(expr.predicate, inner)
            if not isinstance(predicate, AnyType) and predicate != BOOL:
                self._error(
                    f"aggregate predicate must be boolean, found {predicate}",
                    expr.predicate.location,
                )
        if expr.func == "COUNT":
            return INT
        if not is_numeric(value_type) and not isinstance(value_type, AnyType):
            if expr.func in ("MIN", "MAX") and value_type == DATETIME:
                return DATETIME
            return self._error(
                f"aggregate {expr.func} requires a numeric value expression, "
                f"found {value_type}",
                expr.value.location,
            )
        if expr.func in ("MIN", "MAX"):
            return value_type if not isinstance(value_type, AnyType) else ANY
        if expr.func == "SUM":
            return value_type if value_type == INT else FLOAT
        return FLOAT


def check_asl(program: AslProgram) -> CheckedSpecification:
    """Semantically check a parsed specification document."""
    return SemanticChecker(program).check()
