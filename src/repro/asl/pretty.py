"""Pretty-printer (unparser) for ASL syntax trees.

``unparse`` turns a parsed specification back into canonical ASL text.  It is
used by the documentation generator of COSY reports, by error messages of the
SQL compiler (showing which specification fragment a query was generated
from), and by the round-trip property tests (``parse(unparse(parse(x)))`` must
be stable).
"""

from __future__ import annotations

from typing import List, Union

from repro.asl.errors import AslError
from repro.asl.ast_nodes import (
    AggregateExpr,
    AslProgram,
    AttributeAccess,
    BinaryExpr,
    BinaryOp,
    BoolLiteral,
    ClassDecl,
    ConditionClause,
    ConstantDecl,
    Declaration,
    EnumDecl,
    Expr,
    FloatLiteral,
    FunctionCall,
    FunctionDecl,
    GuardedExpr,
    Identifier,
    IntLiteral,
    PropertyDecl,
    SetComprehension,
    StringLiteral,
    TypeRef,
    UnaryExpr,
    UnaryOp,
    ValueSpec,
)

__all__ = ["unparse", "unparse_expr", "unparse_declaration"]

#: Binding strength of operators, used to insert the minimal parentheses.
_PRECEDENCE = {
    BinaryOp.OR: 1,
    BinaryOp.AND: 2,
    BinaryOp.EQ: 3,
    BinaryOp.NE: 3,
    BinaryOp.LT: 3,
    BinaryOp.LE: 3,
    BinaryOp.GT: 3,
    BinaryOp.GE: 3,
    BinaryOp.ADD: 4,
    BinaryOp.SUB: 4,
    BinaryOp.MUL: 5,
    BinaryOp.DIV: 5,
    BinaryOp.MOD: 5,
}
_UNARY_PRECEDENCE = 6
_ATOM_PRECEDENCE = 7


def unparse(program: AslProgram) -> str:
    """Render a whole specification document as canonical ASL text."""
    parts = [unparse_declaration(decl) for decl in program.declarations]
    return "\n\n".join(parts) + "\n"


def unparse_declaration(decl: Declaration) -> str:
    """Render one top-level declaration."""
    if isinstance(decl, ClassDecl):
        return _class(decl)
    if isinstance(decl, EnumDecl):
        return _enum(decl)
    if isinstance(decl, ConstantDecl):
        return (
            f"constant {_type(decl.type)} {decl.name} = "
            f"{unparse_expr(decl.value)};"
        )
    if isinstance(decl, FunctionDecl):
        params = ", ".join(f"{_type(p.type)} {p.name}" for p in decl.params)
        return (
            f"{_type(decl.return_type)} {decl.name}({params}) = "
            f"{unparse_expr(decl.body)};"
        )
    if isinstance(decl, PropertyDecl):
        return _property(decl)
    raise TypeError(f"cannot unparse declaration of type {type(decl).__name__}")


def unparse_expr(expr: Expr) -> str:
    """Render one expression with minimal parentheses."""
    return _expr(expr, 0)


# --------------------------------------------------------------------------- #
# declarations
# --------------------------------------------------------------------------- #


def _type(ref: TypeRef) -> str:
    return f"setof {ref.name}" if ref.is_set else ref.name


def _class(decl: ClassDecl) -> str:
    header = f"class {decl.name}"
    if decl.base:
        header += f" extends {decl.base}"
    lines = [header + " {"]
    for attr in decl.attributes:
        lines.append(f"    {_type(attr.type)} {attr.name};")
    lines.append("}")
    return "\n".join(lines)


def _enum(decl: EnumDecl) -> str:
    members = ", ".join(decl.members)
    return f"enum {decl.name} {{ {members} }};"


def _property(decl: PropertyDecl) -> str:
    params = ", ".join(f"{_type(p.type)} {p.name}" for p in decl.params)
    lines = [f"PROPERTY {decl.name}({params}) {{"]
    if decl.let_defs:
        lines.append("    LET")
        for let_def in decl.let_defs:
            lines.append(
                f"        {_type(let_def.type)} {let_def.name} = "
                f"{unparse_expr(let_def.value)};"
            )
        lines.append("    IN")
    lines.append(f"    CONDITION: {_conditions(decl.conditions)};")
    lines.append(f"    CONFIDENCE: {_value_spec(decl.confidence)};")
    lines.append(f"    SEVERITY: {_value_spec(decl.severity)};")
    lines.append("};")
    return "\n".join(lines)


def _conditions(conditions: List[ConditionClause]) -> str:
    rendered = []
    for condition in conditions:
        text = _expr(condition.expr, _PRECEDENCE[BinaryOp.AND])
        if condition.cond_id is not None:
            text = f"({condition.cond_id}) {text}"
        rendered.append(text)
    return " OR ".join(rendered)


def _value_spec(spec: ValueSpec) -> str:
    entries = [_guarded(entry) for entry in spec.entries]
    if spec.is_max or len(entries) > 1:
        return f"MAX({', '.join(entries)})"
    return entries[0]


def _guarded(entry: GuardedExpr) -> str:
    text = unparse_expr(entry.expr)
    if entry.guard is not None:
        return f"({entry.guard}) -> {text}"
    return text


# --------------------------------------------------------------------------- #
# expressions
# --------------------------------------------------------------------------- #


def _expr(expr: Expr, parent_precedence: int) -> str:
    text, precedence = _render(expr)
    if precedence < parent_precedence:
        return f"({text})"
    return text


def _render(expr: Expr) -> "tuple[str, int]":
    if isinstance(expr, IntLiteral):
        return str(expr.value), _ATOM_PRECEDENCE
    if isinstance(expr, FloatLiteral):
        return format(expr.value, "g"), _ATOM_PRECEDENCE
    if isinstance(expr, StringLiteral):
        escaped = expr.value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"', _ATOM_PRECEDENCE
    if isinstance(expr, BoolLiteral):
        return ("true" if expr.value else "false"), _ATOM_PRECEDENCE
    if isinstance(expr, Identifier):
        return expr.name, _ATOM_PRECEDENCE
    if isinstance(expr, AttributeAccess):
        return f"{_expr(expr.obj, _ATOM_PRECEDENCE)}.{expr.attribute}", _ATOM_PRECEDENCE
    if isinstance(expr, FunctionCall):
        args = ", ".join(unparse_expr(arg) for arg in expr.args)
        return f"{expr.name}({args})", _ATOM_PRECEDENCE
    if isinstance(expr, UnaryExpr):
        operand = _expr(expr.operand, _UNARY_PRECEDENCE)
        if expr.op is UnaryOp.NEG:
            return f"-{operand}", _UNARY_PRECEDENCE
        return f"NOT {operand}", _UNARY_PRECEDENCE
    if isinstance(expr, BinaryExpr):
        precedence = _PRECEDENCE[expr.op]
        left = _expr(expr.left, precedence)
        # Right operand needs one level more to reproduce left associativity.
        right = _expr(expr.right, precedence + 1)
        return f"{left} {expr.op.value} {right}", precedence
    if isinstance(expr, SetComprehension):
        # The parser reads the source at comparison precedence, so anything
        # weaker (AND/OR) must be parenthesised to round-trip.
        source = _expr(expr.source, _PRECEDENCE[BinaryOp.EQ])
        if expr.predicate is None:
            return f"{{{expr.var} IN {source}}}", _ATOM_PRECEDENCE
        predicate = unparse_expr(expr.predicate)
        return f"{{{expr.var} IN {source} WITH {predicate}}}", _ATOM_PRECEDENCE
    if isinstance(expr, AggregateExpr):
        if expr.is_unique:
            return f"UNIQUE({unparse_expr(expr.value)})", _ATOM_PRECEDENCE
        value = unparse_expr(expr.value)
        if expr.source is None:
            raise AslError(
                f"cannot unparse aggregate {expr.func} without a source "
                f"collection",
                expr.location,
            )
        source = _expr(expr.source, _PRECEDENCE[BinaryOp.EQ])
        text = f"{expr.func}({value} WHERE {expr.var} IN {source}"
        if expr.predicate is not None:
            text += f" AND {_expr(expr.predicate, _PRECEDENCE[BinaryOp.AND])}"
        text += ")"
        return text, _ATOM_PRECEDENCE
    raise TypeError(f"cannot unparse expression of type {type(expr).__name__}")
