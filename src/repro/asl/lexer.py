"""Hand-written lexer for the APART Specification Language.

The lexer converts an ASL specification document into a stream of
:class:`~repro.asl.tokens.Token` objects.  It supports

* ``//`` line comments and ``/* ... */`` block comments,
* integer, floating point and double-quoted string literals,
* the case-insensitive keywords listed in :data:`repro.asl.tokens.KEYWORDS`,
* the two-character operators ``==``, ``!=``, ``<=``, ``>=`` and ``->``.

Identifiers keep their original spelling; keyword recognition lower-cases the
spelling first because the paper uses both ``PROPERTY`` (grammar) and
``Property`` (examples).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.asl.errors import AslLexError, SourceLocation
from repro.asl.tokens import KEYWORDS, Token, TokenType

__all__ = ["Lexer", "tokenize"]

_SINGLE_CHAR_TOKENS = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    ",": TokenType.COMMA,
    ";": TokenType.SEMICOLON,
    ":": TokenType.COLON,
    ".": TokenType.DOT,
    "+": TokenType.PLUS,
    "*": TokenType.STAR,
    "%": TokenType.PERCENT,
}


class Lexer:
    """Tokenises one ASL specification document."""

    def __init__(self, source: str, filename: str = "<asl>") -> None:
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    # ------------------------------------------------------------------ #

    def tokens(self) -> List[Token]:
        """Tokenise the whole document and return the token list (incl. EOF)."""
        result: List[Token] = []
        while True:
            token = self.next_token()
            result.append(token)
            if token.type is TokenType.EOF:
                return result

    def next_token(self) -> Token:
        """Return the next token, skipping whitespace and comments."""
        self._skip_trivia()
        if self.pos >= len(self.source):
            return Token(TokenType.EOF, "", self._location())
        location = self._location()
        char = self.source[self.pos]

        if char.isalpha() or char == "_":
            return self._lex_word(location)
        if char.isdigit():
            return self._lex_number(location)
        if char == '"':
            return self._lex_string(location)
        return self._lex_operator(location)

    # ------------------------------------------------------------------ #

    def _location(self) -> SourceLocation:
        return SourceLocation(line=self.line, column=self.column, filename=self.filename)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source) and self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            char = self.source[self.pos]
            if char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self.source[self.pos] != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                start = self._location()
                self._advance(2)
                while self.pos < len(self.source):
                    if self.source[self.pos] == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise AslLexError("unterminated block comment", start)
            else:
                return

    def _lex_word(self, location: SourceLocation) -> Token:
        start = self.pos
        while self.pos < len(self.source) and (
            self.source[self.pos].isalnum() or self.source[self.pos] == "_"
        ):
            self._advance()
        text = self.source[start : self.pos]
        keyword = KEYWORDS.get(text.lower())
        if keyword is TokenType.TRUE:
            return Token(TokenType.TRUE, text, location, value=True)
        if keyword is TokenType.FALSE:
            return Token(TokenType.FALSE, text, location, value=False)
        if keyword is not None:
            return Token(keyword, text, location)
        return Token(TokenType.IDENT, text, location, value=text)

    def _lex_number(self, location: SourceLocation) -> Token:
        start = self.pos
        is_float = False
        while self.pos < len(self.source) and self.source[self.pos].isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self.pos < len(self.source) and self.source[self.pos].isdigit():
                self._advance()
        if self._peek() in ("e", "E") and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self.pos < len(self.source) and self.source[self.pos].isdigit():
                self._advance()
        text = self.source[start : self.pos]
        if self._peek().isalpha() or self._peek() == "_":
            raise AslLexError(
                f"invalid character {self._peek()!r} after numeric literal {text!r}",
                location,
            )
        if is_float:
            return Token(TokenType.FLOAT, text, location, value=float(text))
        return Token(TokenType.INT, text, location, value=int(text))

    def _lex_string(self, location: SourceLocation) -> Token:
        if self.source[self.pos] != '"':
            raise AslLexError(
                f"string literal expected at {self.source[self.pos]!r}",
                location,
            )
        self._advance()
        parts: List[str] = []
        while True:
            if self.pos >= len(self.source):
                raise AslLexError("unterminated string literal", location)
            char = self.source[self.pos]
            if char == "\n":
                raise AslLexError("newline inside string literal", location)
            if char == '"':
                self._advance()
                break
            if char == "\\":
                escape = self._peek(1)
                mapping = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}
                if escape not in mapping:
                    raise AslLexError(
                        f"unknown escape sequence '\\{escape}'", self._location()
                    )
                parts.append(mapping[escape])
                self._advance(2)
            else:
                parts.append(char)
                self._advance()
        text = "".join(parts)
        return Token(TokenType.STRING, text, location, value=text)

    def _lex_operator(self, location: SourceLocation) -> Token:
        two = self.source[self.pos : self.pos + 2]
        if two == "==":
            self._advance(2)
            return Token(TokenType.EQ, two, location)
        if two == "!=":
            self._advance(2)
            return Token(TokenType.NE, two, location)
        if two == "<=":
            self._advance(2)
            return Token(TokenType.LE, two, location)
        if two == ">=":
            self._advance(2)
            return Token(TokenType.GE, two, location)
        if two == "->":
            self._advance(2)
            return Token(TokenType.ARROW, two, location)
        char = self.source[self.pos]
        if char == "=":
            self._advance()
            return Token(TokenType.ASSIGN, char, location)
        if char == "<":
            self._advance()
            return Token(TokenType.LT, char, location)
        if char == ">":
            self._advance()
            return Token(TokenType.GT, char, location)
        if char == "-":
            self._advance()
            return Token(TokenType.MINUS, char, location)
        if char == "/":
            self._advance()
            return Token(TokenType.SLASH, char, location)
        token_type = _SINGLE_CHAR_TOKENS.get(char)
        if token_type is None:
            raise AslLexError(f"unexpected character {char!r}", location)
        self._advance()
        return Token(token_type, char, location)


def tokenize(source: str, filename: str = "<asl>") -> List[Token]:
    """Tokenise ``source`` and return the full token list (including EOF)."""
    return Lexer(source, filename).tokens()
