"""Recursive-descent parser for the APART Specification Language.

The parser accepts complete specification documents consisting of the data
model section (class, enum and constant declarations, specification
functions) and the property section (property declarations following the
grammar of Figure 1 in the paper).

Two deliberate disambiguations of the paper's grammar are applied:

* In the ``CONDITION`` clause, a top-level ``OR`` separates *conditions*
  (as in Figure 1); an ``OR`` that is meant to be part of a single condition
  expression must be parenthesised.  Both readings are equivalent for the
  question "does the property hold", they only differ in which condition
  identifier guards which confidence/severity entry.
* ``( identifier )`` at the start of a condition is treated as a condition
  identifier only when the following token starts a new expression; otherwise
  it is an ordinary parenthesised expression.

``MAX`` is resolved contextually: in a ``CONFIDENCE``/``SEVERITY`` clause it is
the combinator of Figure 1, in an expression position with a ``WHERE`` clause
it is the set aggregate, and with plain comma-separated arguments it is the
binary scalar maximum.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.asl.ast_nodes import (
    AggregateExpr,
    AslProgram,
    AttributeDecl,
    BinaryExpr,
    BinaryOp,
    BoolLiteral,
    ClassDecl,
    ConditionClause,
    ConstantDecl,
    EnumDecl,
    Expr,
    FloatLiteral,
    FunctionCall,
    FunctionDecl,
    GuardedExpr,
    Identifier,
    IntLiteral,
    LetDef,
    Param,
    PropertyDecl,
    SetComprehension,
    StringLiteral,
    TypeRef,
    UnaryExpr,
    UnaryOp,
    ValueSpec,
    AttributeAccess,
)
from repro.asl.errors import AslParseError, SourceLocation
from repro.asl.lexer import tokenize
from repro.asl.tokens import AGGREGATE_NAMES, Token, TokenType

__all__ = ["Parser", "parse_asl", "parse_expression"]

_COMPARISON_OPS = {
    TokenType.EQ: BinaryOp.EQ,
    TokenType.NE: BinaryOp.NE,
    TokenType.LT: BinaryOp.LT,
    TokenType.LE: BinaryOp.LE,
    TokenType.GT: BinaryOp.GT,
    TokenType.GE: BinaryOp.GE,
}

_ADDITIVE_OPS = {TokenType.PLUS: BinaryOp.ADD, TokenType.MINUS: BinaryOp.SUB}
_MULTIPLICATIVE_OPS = {
    TokenType.STAR: BinaryOp.MUL,
    TokenType.SLASH: BinaryOp.DIV,
    TokenType.PERCENT: BinaryOp.MOD,
}

#: Token types that may start an expression; used to disambiguate condition
#: identifiers from parenthesised expressions.
_EXPRESSION_START = {
    TokenType.IDENT,
    TokenType.INT,
    TokenType.FLOAT,
    TokenType.STRING,
    TokenType.TRUE,
    TokenType.FALSE,
    TokenType.LPAREN,
    TokenType.LBRACE,
    TokenType.NOT,
    TokenType.MINUS,
}


class Parser:
    """Parses a token stream into an :class:`~repro.asl.ast_nodes.AslProgram`."""

    def __init__(self, tokens: List[Token], filename: str = "<asl>") -> None:
        self.tokens = tokens
        self.filename = filename
        self.index = 0

    # ------------------------------------------------------------------ #
    # token plumbing
    # ------------------------------------------------------------------ #

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _at(self, token_type: TokenType, offset: int = 0) -> bool:
        return self._peek(offset).type is token_type

    def _advance(self) -> Token:
        token = self.tokens[self.index]
        if token.type is not TokenType.EOF:
            self.index += 1
        return token

    def _expect(self, token_type: TokenType, context: str) -> Token:
        token = self._peek()
        if token.type is not token_type:
            raise AslParseError(
                f"expected {token_type.value!r} {context}, found "
                f"{token.type.value!r} ({token.text!r})",
                token.location,
            )
        return self._advance()

    def _accept(self, token_type: TokenType) -> Optional[Token]:
        if self._at(token_type):
            return self._advance()
        return None

    def _mark(self) -> int:
        return self.index

    def _reset(self, mark: int) -> None:
        self.index = mark

    # ------------------------------------------------------------------ #
    # document structure
    # ------------------------------------------------------------------ #

    def parse_program(self) -> AslProgram:
        """Parse a complete specification document."""
        declarations = []
        while not self._at(TokenType.EOF):
            declarations.append(self.parse_declaration())
        return AslProgram(declarations=declarations, filename=self.filename)

    def parse_declaration(self):
        """Parse one top-level declaration."""
        token = self._peek()
        if token.type is TokenType.CLASS:
            return self.parse_class()
        if token.type is TokenType.ENUM:
            return self.parse_enum()
        if token.type is TokenType.CONSTANT:
            return self.parse_constant()
        if token.type is TokenType.PROPERTY:
            return self.parse_property()
        if token.type in (TokenType.IDENT, TokenType.SETOF):
            return self.parse_function()
        raise AslParseError(
            f"expected a declaration (class, enum, constant, property or "
            f"function), found {token.text!r}",
            token.location,
        )

    # -- data model -------------------------------------------------------------

    def parse_type_ref(self) -> TypeRef:
        """Parse ``[setof] TypeName``."""
        location = self._peek().location
        is_set = self._accept(TokenType.SETOF) is not None
        name = self._expect(TokenType.IDENT, "as a type name").text
        return TypeRef(name=name, is_set=is_set, location=location)

    def parse_class(self) -> ClassDecl:
        """Parse ``class Name [extends Base] { attributes }``."""
        location = self._expect(TokenType.CLASS, "to start a class").location
        name = self._expect(TokenType.IDENT, "as the class name").text
        base = None
        if self._accept(TokenType.EXTENDS):
            base = self._expect(TokenType.IDENT, "as the base class name").text
        self._expect(TokenType.LBRACE, "to open the class body")
        attributes: List[AttributeDecl] = []
        while not self._at(TokenType.RBRACE):
            attr_location = self._peek().location
            attr_type = self.parse_type_ref()
            attr_name = self._expect(TokenType.IDENT, "as the attribute name").text
            self._expect(TokenType.SEMICOLON, "after the attribute declaration")
            attributes.append(
                AttributeDecl(type=attr_type, name=attr_name, location=attr_location)
            )
        self._expect(TokenType.RBRACE, "to close the class body")
        self._accept(TokenType.SEMICOLON)
        return ClassDecl(name=name, attributes=attributes, base=base, location=location)

    def parse_enum(self) -> EnumDecl:
        """Parse ``enum Name { Member, Member, ... }``."""
        location = self._expect(TokenType.ENUM, "to start an enum").location
        name = self._expect(TokenType.IDENT, "as the enum name").text
        self._expect(TokenType.LBRACE, "to open the enum body")
        members: List[str] = []
        while not self._at(TokenType.RBRACE):
            members.append(self._expect(TokenType.IDENT, "as an enum member").text)
            if not self._accept(TokenType.COMMA):
                break
        self._expect(TokenType.RBRACE, "to close the enum body")
        self._accept(TokenType.SEMICOLON)
        return EnumDecl(name=name, members=members, location=location)

    def parse_constant(self) -> ConstantDecl:
        """Parse ``constant type Name = expr;``."""
        location = self._expect(TokenType.CONSTANT, "to start a constant").location
        const_type = self.parse_type_ref()
        name = self._expect(TokenType.IDENT, "as the constant name").text
        self._expect(TokenType.ASSIGN, "after the constant name")
        value = self.parse_expression()
        self._expect(TokenType.SEMICOLON, "after the constant definition")
        return ConstantDecl(type=const_type, name=name, value=value, location=location)

    def parse_function(self) -> FunctionDecl:
        """Parse ``ReturnType Name(params) = expr;``."""
        location = self._peek().location
        return_type = self.parse_type_ref()
        name = self._expect(TokenType.IDENT, "as the function name").text
        self._expect(TokenType.LPAREN, "to open the parameter list")
        params = self.parse_param_list()
        self._expect(TokenType.RPAREN, "to close the parameter list")
        self._expect(TokenType.ASSIGN, "before the function body")
        body = self.parse_expression()
        self._expect(TokenType.SEMICOLON, "after the function body")
        return FunctionDecl(
            return_type=return_type,
            name=name,
            params=params,
            body=body,
            location=location,
        )

    def parse_param_list(self) -> List[Param]:
        """Parse a possibly empty ``type name, type name, ...`` list."""
        params: List[Param] = []
        if self._at(TokenType.RPAREN):
            return params
        while True:
            location = self._peek().location
            param_type = self.parse_type_ref()
            name = self._expect(TokenType.IDENT, "as the parameter name").text
            params.append(Param(type=param_type, name=name, location=location))
            if not self._accept(TokenType.COMMA):
                return params

    # -- properties -----------------------------------------------------------

    def parse_property(self) -> PropertyDecl:
        """Parse a complete property declaration (Figure 1)."""
        location = self._expect(TokenType.PROPERTY, "to start a property").location
        name = self._expect(TokenType.IDENT, "as the property name").text
        self._expect(TokenType.LPAREN, "to open the property parameter list")
        params = self.parse_param_list()
        self._expect(TokenType.RPAREN, "to close the property parameter list")
        self._expect(TokenType.LBRACE, "to open the property body")

        let_defs: List[LetDef] = []
        if self._accept(TokenType.LET):
            let_defs = self.parse_let_defs()

        self._expect(TokenType.CONDITION, "to start the condition specification")
        self._expect(TokenType.COLON, "after CONDITION")
        conditions = self.parse_conditions()
        self._expect(TokenType.SEMICOLON, "after the condition specification")

        self._expect(TokenType.CONFIDENCE, "to start the confidence specification")
        self._expect(TokenType.COLON, "after CONFIDENCE")
        confidence = self.parse_value_spec()
        self._expect(TokenType.SEMICOLON, "after the confidence specification")

        self._expect(TokenType.SEVERITY, "to start the severity specification")
        self._expect(TokenType.COLON, "after SEVERITY")
        severity = self.parse_value_spec()
        self._expect(TokenType.SEMICOLON, "after the severity specification")

        self._expect(TokenType.RBRACE, "to close the property body")
        self._accept(TokenType.SEMICOLON)
        return PropertyDecl(
            name=name,
            params=params,
            let_defs=let_defs,
            conditions=conditions,
            confidence=confidence,
            severity=severity,
            location=location,
        )

    def parse_let_defs(self) -> List[LetDef]:
        """Parse ``type name = expr ; ... IN`` (the IN terminates the block)."""
        defs: List[LetDef] = []
        while True:
            if self._accept(TokenType.IN):
                if not defs:
                    raise AslParseError(
                        "LET block must contain at least one definition",
                        self._peek().location,
                    )
                return defs
            location = self._peek().location
            def_type = self.parse_type_ref()
            name = self._expect(TokenType.IDENT, "as the LET definition name").text
            self._expect(TokenType.ASSIGN, "after the LET definition name")
            value = self.parse_expression()
            defs.append(LetDef(type=def_type, name=name, value=value, location=location))
            # The paper's examples omit the semicolon before IN; accept both.
            self._accept(TokenType.SEMICOLON)

    def parse_conditions(self) -> List[ConditionClause]:
        """Parse ``condition (OR condition)*`` with optional condition ids."""
        conditions = [self.parse_condition()]
        while self._accept(TokenType.OR):
            conditions.append(self.parse_condition())
        return conditions

    def parse_condition(self) -> ConditionClause:
        """Parse one condition: ``[ (cond-id) ] bool-expr`` (no top-level OR)."""
        location = self._peek().location
        cond_id = self._try_parse_label(require_arrow=False)
        expr = self.parse_and_expr()
        return ConditionClause(expr=expr, cond_id=cond_id, location=location)

    def parse_value_spec(self) -> ValueSpec:
        """Parse a confidence or severity specification."""
        location = self._peek().location
        # The MAX(...) combinator form of Figure 1.
        if (
            self._at(TokenType.IDENT)
            and self._peek().text.upper() == "MAX"
            and self._at(TokenType.LPAREN, 1)
        ):
            mark = self._mark()
            self._advance()  # MAX
            self._advance()  # (
            try:
                entries = [self.parse_guarded_expr()]
                while self._accept(TokenType.COMMA):
                    entries.append(self.parse_guarded_expr())
                self._expect(TokenType.RPAREN, "to close the MAX list")
            except AslParseError:
                # It was the aggregate/scalar MAX after all; re-parse as a
                # single expression.
                self._reset(mark)
            else:
                if self._at(TokenType.SEMICOLON):
                    return ValueSpec(entries=entries, is_max=True, location=location)
                self._reset(mark)
        entry = self.parse_guarded_expr()
        return ValueSpec(entries=[entry], is_max=False, location=location)

    def parse_guarded_expr(self) -> GuardedExpr:
        """Parse ``[ (cond-id) -> ] arith-expr``."""
        location = self._peek().location
        guard = self._try_parse_label(require_arrow=True)
        expr = self.parse_expression()
        return GuardedExpr(expr=expr, guard=guard, location=location)

    def _try_parse_label(self, require_arrow: bool) -> Optional[str]:
        """Recognise a ``( identifier )`` condition-id prefix, if present.

        With ``require_arrow`` the label must be followed by ``->`` (guard
        syntax); without it the label must be followed by the start of an
        expression (condition syntax).
        """
        if not (
            self._at(TokenType.LPAREN)
            and self._at(TokenType.IDENT, 1)
            and self._at(TokenType.RPAREN, 2)
        ):
            return None
        follower = self._peek(3)
        if require_arrow:
            if follower.type is not TokenType.ARROW:
                return None
            label = self._peek(1).text
            self._advance()  # (
            self._advance()  # ident
            self._advance()  # )
            self._advance()  # ->
            return label
        if follower.type not in _EXPRESSION_START:
            return None
        label = self._peek(1).text
        self._advance()
        self._advance()
        self._advance()
        return label

    # ------------------------------------------------------------------ #
    # expressions
    # ------------------------------------------------------------------ #

    def parse_expression(self) -> Expr:
        """Parse a full expression (lowest precedence: OR)."""
        return self.parse_or_expr()

    def parse_or_expr(self) -> Expr:
        left = self.parse_and_expr()
        while self._at(TokenType.OR):
            location = self._advance().location
            right = self.parse_and_expr()
            left = BinaryExpr(
                op=BinaryOp.OR, left=left, right=right, location=location
            )
        return left

    def parse_and_expr(self) -> Expr:
        left = self.parse_not_expr()
        while self._at(TokenType.AND):
            location = self._advance().location
            right = self.parse_not_expr()
            left = BinaryExpr(
                op=BinaryOp.AND, left=left, right=right, location=location
            )
        return left

    def parse_not_expr(self) -> Expr:
        if self._at(TokenType.NOT):
            location = self._advance().location
            operand = self.parse_not_expr()
            return UnaryExpr(op=UnaryOp.NOT, operand=operand, location=location)
        return self.parse_comparison()

    def parse_comparison(self) -> Expr:
        left = self.parse_additive()
        if self._peek().type in _COMPARISON_OPS:
            token = self._advance()
            right = self.parse_additive()
            return BinaryExpr(
                op=_COMPARISON_OPS[token.type],
                left=left,
                right=right,
                location=token.location,
            )
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while self._peek().type in _ADDITIVE_OPS:
            token = self._advance()
            right = self.parse_multiplicative()
            left = BinaryExpr(
                op=_ADDITIVE_OPS[token.type],
                left=left,
                right=right,
                location=token.location,
            )
        return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while self._peek().type in _MULTIPLICATIVE_OPS:
            token = self._advance()
            right = self.parse_unary()
            left = BinaryExpr(
                op=_MULTIPLICATIVE_OPS[token.type],
                left=left,
                right=right,
                location=token.location,
            )
        return left

    def parse_unary(self) -> Expr:
        if self._at(TokenType.MINUS):
            location = self._advance().location
            operand = self.parse_unary()
            return UnaryExpr(op=UnaryOp.NEG, operand=operand, location=location)
        return self.parse_postfix()

    def parse_postfix(self) -> Expr:
        expr = self.parse_primary()
        while self._at(TokenType.DOT):
            location = self._advance().location
            attribute = self._expect(TokenType.IDENT, "as an attribute name").text
            expr = AttributeAccess(obj=expr, attribute=attribute, location=location)
        return expr

    def parse_primary(self) -> Expr:
        token = self._peek()
        if token.type is TokenType.INT:
            self._advance()
            return IntLiteral(value=int(token.value), location=token.location)
        if token.type is TokenType.FLOAT:
            self._advance()
            return FloatLiteral(value=float(token.value), location=token.location)
        if token.type is TokenType.STRING:
            self._advance()
            return StringLiteral(value=str(token.value), location=token.location)
        if token.type in (TokenType.TRUE, TokenType.FALSE):
            self._advance()
            return BoolLiteral(value=bool(token.value), location=token.location)
        if token.type is TokenType.LBRACE:
            return self.parse_set_comprehension()
        if token.type is TokenType.LPAREN:
            self._advance()
            expr = self.parse_expression()
            self._expect(TokenType.RPAREN, "to close the parenthesised expression")
            return expr
        if token.type is TokenType.IDENT:
            return self.parse_identifier_expression()
        raise AslParseError(
            f"expected an expression, found {token.type.value!r} ({token.text!r})",
            token.location,
        )

    def parse_set_comprehension(self) -> SetComprehension:
        """Parse ``{ var IN source [WITH predicate] }``."""
        location = self._expect(TokenType.LBRACE, "to open a set expression").location
        var = self._expect(TokenType.IDENT, "as the bound variable").text
        self._expect(TokenType.IN, "after the bound variable")
        source = self.parse_comparison()
        predicate = None
        if self._accept(TokenType.WITH):
            predicate = self.parse_expression()
        self._expect(TokenType.RBRACE, "to close the set expression")
        return SetComprehension(
            var=var, source=source, predicate=predicate, location=location
        )

    def parse_identifier_expression(self) -> Expr:
        """Parse an identifier, function call or aggregate expression."""
        token = self._expect(TokenType.IDENT, "as an identifier")
        if not self._at(TokenType.LPAREN):
            return Identifier(name=token.text, location=token.location)
        upper = token.text.upper()
        if upper in AGGREGATE_NAMES and token.text.isupper():
            return self.parse_aggregate(token)
        return self.parse_call(token)

    def parse_call(self, name_token: Token) -> FunctionCall:
        """Parse ``Name(arg, arg, ...)``."""
        self._expect(TokenType.LPAREN, "to open the argument list")
        args: List[Expr] = []
        if not self._at(TokenType.RPAREN):
            args.append(self.parse_expression())
            while self._accept(TokenType.COMMA):
                args.append(self.parse_expression())
        self._expect(TokenType.RPAREN, "to close the argument list")
        return FunctionCall(
            name=name_token.text, args=args, location=name_token.location
        )

    def parse_aggregate(self, name_token: Token) -> Expr:
        """Parse ``UNIQUE(set)`` or ``AGG(value WHERE var IN source AND …)``.

        When an aggregate name is used without a ``WHERE`` clause and with
        comma-separated arguments it is parsed as a plain (scalar) function
        call, e.g. ``MAX(a, b)``.
        """
        func = name_token.text.upper()
        self._expect(TokenType.LPAREN, "to open the aggregate argument")
        if func == "UNIQUE":
            value = self.parse_expression()
            self._expect(TokenType.RPAREN, "to close UNIQUE")
            return AggregateExpr(
                func="UNIQUE", value=value, location=name_token.location
            )
        value = self.parse_expression()
        if self._accept(TokenType.WHERE):
            var = self._expect(TokenType.IDENT, "as the aggregate variable").text
            self._expect(TokenType.IN, "after the aggregate variable")
            source = self.parse_comparison()
            predicate: Optional[Expr] = None
            while self._accept(TokenType.AND):
                conjunct = self.parse_not_expr()
                predicate = (
                    conjunct
                    if predicate is None
                    else BinaryExpr(
                        op=BinaryOp.AND,
                        left=predicate,
                        right=conjunct,
                        location=conjunct.location,
                    )
                )
            self._expect(TokenType.RPAREN, "to close the aggregate")
            return AggregateExpr(
                func=func,
                value=value,
                var=var,
                source=source,
                predicate=predicate,
                location=name_token.location,
            )
        # No WHERE clause: scalar function call such as MAX(a, b).
        args = [value]
        while self._accept(TokenType.COMMA):
            args.append(self.parse_expression())
        self._expect(TokenType.RPAREN, "to close the argument list")
        return FunctionCall(
            name=name_token.text, args=args, location=name_token.location
        )


def parse_asl(source: str, filename: str = "<asl>") -> AslProgram:
    """Parse an ASL specification document into an AST."""
    parser = Parser(tokenize(source, filename), filename)
    return parser.parse_program()


def parse_expression(source: str, filename: str = "<asl-expr>") -> Expr:
    """Parse a single ASL expression (useful for tests and the REPL)."""
    parser = Parser(tokenize(source, filename), filename)
    expr = parser.parse_expression()
    trailing = parser._peek()
    if trailing.type is not TokenType.EOF:
        raise AslParseError(
            f"unexpected trailing input {trailing.text!r}", trailing.location
        )
    return expr
