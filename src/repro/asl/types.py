"""The ASL type system.

ASL is statically typed: the data model declares classes with typed attributes,
functions and properties declare typed parameters, and the semantic checker
(:mod:`repro.asl.semantic`) verifies that every expression is well typed before
a specification is accepted by COSY or translated to SQL.

The type universe consists of

* the scalar base types ``int``, ``float``, ``bool``, ``String``, ``DateTime``
  and the opaque ``SourceCode`` type used by the COSY data model,
* class types declared in the data model (single inheritance),
* enumeration types (e.g. the Apprentice ``TimingType``),
* homogeneous set types ``setof T`` for every element type ``T``.

``int`` is implicitly convertible to ``float``; no other implicit conversions
exist.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = [
    "Type",
    "ScalarKind",
    "ScalarType",
    "ClassType",
    "EnumType",
    "SetType",
    "AnyType",
    "INT",
    "FLOAT",
    "BOOL",
    "STRING",
    "DATETIME",
    "SOURCECODE",
    "ANY",
    "BUILTIN_TYPES",
    "is_numeric",
    "is_assignable",
    "common_numeric",
]


class Type:
    """Base class of all ASL types."""

    def __str__(self) -> str:  # pragma: no cover - overridden
        return self.__class__.__name__


class ScalarKind(enum.Enum):
    """The built-in scalar type kinds."""

    INT = "int"
    FLOAT = "float"
    BOOL = "bool"
    STRING = "String"
    DATETIME = "DateTime"
    SOURCECODE = "SourceCode"


@dataclass(frozen=True)
class ScalarType(Type):
    """A built-in scalar type."""

    kind: ScalarKind

    def __str__(self) -> str:
        return self.kind.value


@dataclass(frozen=True)
class ClassType(Type):
    """A class declared in the data model section."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class EnumType(Type):
    """An enumeration type declared in the data model section."""

    name: str
    members: Tuple[str, ...] = ()

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class SetType(Type):
    """A homogeneous set of elements (``setof T``)."""

    element: Type

    def __str__(self) -> str:
        return f"setof {self.element}"


@dataclass(frozen=True)
class AnyType(Type):
    """The error-recovery type: compatible with everything.

    The semantic checker assigns ``ANY`` to sub-expressions it could not type
    so that one mistake does not produce a cascade of follow-up errors.
    """

    def __str__(self) -> str:
        return "<any>"


INT = ScalarType(ScalarKind.INT)
FLOAT = ScalarType(ScalarKind.FLOAT)
BOOL = ScalarType(ScalarKind.BOOL)
STRING = ScalarType(ScalarKind.STRING)
DATETIME = ScalarType(ScalarKind.DATETIME)
SOURCECODE = ScalarType(ScalarKind.SOURCECODE)
ANY = AnyType()

#: Spelling of the built-in type names as they appear in specifications.
BUILTIN_TYPES: Dict[str, Type] = {
    "int": INT,
    "float": FLOAT,
    "bool": BOOL,
    "String": STRING,
    "string": STRING,
    "DateTime": DATETIME,
    "SourceCode": SOURCECODE,
}


def is_numeric(t: Type) -> bool:
    """True for ``int``, ``float`` and the error-recovery type."""
    if isinstance(t, AnyType):
        return True
    return isinstance(t, ScalarType) and t.kind in (ScalarKind.INT, ScalarKind.FLOAT)


def common_numeric(left: Type, right: Type) -> Type:
    """The result type of an arithmetic operation on two numeric types."""
    if isinstance(left, AnyType) or isinstance(right, AnyType):
        return ANY
    if left == FLOAT or right == FLOAT:
        return FLOAT
    return INT


def is_assignable(value: Type, target: Type, subclasses: Optional[Dict[str, str]] = None) -> bool:
    """Whether a value of type ``value`` can be used where ``target`` is expected.

    ``subclasses`` optionally maps a class name to its base class name so that
    a subclass instance can be used where the base class is expected (ASL has
    single inheritance).
    """
    if isinstance(value, AnyType) or isinstance(target, AnyType):
        return True
    if value == target:
        return True
    if value == INT and target == FLOAT:
        return True
    if isinstance(value, SetType) and isinstance(target, SetType):
        return is_assignable(value.element, target.element, subclasses)
    if (
        isinstance(value, ClassType)
        and isinstance(target, ClassType)
        and subclasses is not None
    ):
        # Walk the single-inheritance chain of the value's class.
        current: Optional[str] = value.name
        seen = set()
        while current is not None and current not in seen:
            if current == target.name:
                return True
            seen.add(current)
            current = subclasses.get(current)
    return False
