"""Error types and source locations for the ASL implementation.

All ASL errors carry a :class:`SourceLocation` so that tools embedding the
language (COSY, the ASL→SQL compiler) can point the specification author at
the offending line and column of the specification document.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "SourceLocation",
    "AslError",
    "AslLexError",
    "AslParseError",
    "AslTypeError",
    "AslNameError",
    "AslEvaluationError",
]


@dataclass(frozen=True)
class SourceLocation:
    """A position inside an ASL specification document."""

    line: int = 0
    column: int = 0
    filename: str = "<asl>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"

    @classmethod
    def unknown(cls) -> "SourceLocation":
        """A placeholder location for synthesised nodes."""
        return cls(line=0, column=0, filename="<synthesised>")


class AslError(Exception):
    """Base class of every error raised by the ASL implementation."""

    def __init__(self, message: str, location: Optional[SourceLocation] = None) -> None:
        self.location = location
        self.bare_message = message
        if location is not None and location.line > 0:
            message = f"{location}: {message}"
        super().__init__(message)


class AslLexError(AslError):
    """Raised when the lexer encounters an invalid character or literal."""


class AslParseError(AslError):
    """Raised when the parser encounters a syntax error."""


class AslNameError(AslError):
    """Raised when a name (class, attribute, function, parameter) is unknown."""


class AslTypeError(AslError):
    """Raised by the semantic checker for type rule violations."""


class AslEvaluationError(AslError):
    """Raised by the reference evaluator (e.g. UNIQUE applied to a non-singleton)."""
