"""The APART Specification Language (ASL) implementation.

This package is the core contribution of the reproduced paper: a specification
language for automatic performance analysis tools with

* an object-oriented **performance data model** section (classes with typed
  attributes, ``setof`` collections, enumerations, single inheritance),
* global **specification functions** (e.g. ``Summary`` and ``Duration``),
* **performance property** declarations with conditions, confidence and
  severity expressions (the grammar of Figure 1).

Pipeline::

    source text ──tokenize──▶ tokens ──parse_asl──▶ AslProgram (AST)
        ──check_asl──▶ CheckedSpecification ──AslEvaluator──▶ property values
                                            └─repro.compiler─▶ SQL queries

The bundled COSY specification documents live in :mod:`repro.asl.specs`.
"""

from repro.asl.ast_nodes import (
    AggregateExpr,
    AslProgram,
    AttributeAccess,
    AttributeDecl,
    BinaryExpr,
    BinaryOp,
    BoolLiteral,
    ClassDecl,
    ConditionClause,
    ConstantDecl,
    EnumDecl,
    Expr,
    FloatLiteral,
    FunctionCall,
    FunctionDecl,
    GuardedExpr,
    Identifier,
    IntLiteral,
    LetDef,
    Param,
    PropertyDecl,
    SetComprehension,
    StringLiteral,
    TypeRef,
    UnaryExpr,
    UnaryOp,
    ValueSpec,
    walk,
)
from repro.asl.errors import (
    AslError,
    AslEvaluationError,
    AslLexError,
    AslNameError,
    AslParseError,
    AslTypeError,
    SourceLocation,
)
from repro.asl.evaluator import AslEvaluator, PropertyEvaluation, default_enum_binding
from repro.asl.lexer import Lexer, tokenize
from repro.asl.parser import Parser, parse_asl, parse_expression
from repro.asl.pretty import unparse, unparse_declaration, unparse_expr
from repro.asl.semantic import CheckedSpecification, SemanticChecker, check_asl
from repro.asl.specs import (
    COSY_DATA_MODEL,
    COSY_PROPERTIES,
    COSY_PROPERTY_NAMES,
    cosy_specification,
)
from repro.asl.symbols import ClassInfo, Scope, SpecificationIndex
from repro.asl import types

__all__ = [
    "AggregateExpr",
    "AslError",
    "AslEvaluationError",
    "AslEvaluator",
    "AslLexError",
    "AslNameError",
    "AslParseError",
    "AslProgram",
    "AslTypeError",
    "AttributeAccess",
    "AttributeDecl",
    "BinaryExpr",
    "BinaryOp",
    "BoolLiteral",
    "COSY_DATA_MODEL",
    "COSY_PROPERTIES",
    "COSY_PROPERTY_NAMES",
    "CheckedSpecification",
    "ClassDecl",
    "ClassInfo",
    "ConditionClause",
    "ConstantDecl",
    "EnumDecl",
    "Expr",
    "FloatLiteral",
    "FunctionCall",
    "FunctionDecl",
    "GuardedExpr",
    "Identifier",
    "IntLiteral",
    "LetDef",
    "Lexer",
    "Param",
    "Parser",
    "PropertyDecl",
    "PropertyEvaluation",
    "Scope",
    "SemanticChecker",
    "SetComprehension",
    "SourceLocation",
    "SpecificationIndex",
    "StringLiteral",
    "TypeRef",
    "UnaryExpr",
    "UnaryOp",
    "ValueSpec",
    "check_asl",
    "cosy_specification",
    "default_enum_binding",
    "parse_asl",
    "parse_expression",
    "tokenize",
    "types",
    "unparse",
    "unparse_declaration",
    "unparse_expr",
    "walk",
]
