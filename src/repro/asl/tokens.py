"""Token definitions for the ASL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from repro.asl.errors import SourceLocation

__all__ = ["TokenType", "Token", "KEYWORDS", "AGGREGATE_NAMES"]


class TokenType(enum.Enum):
    """Lexical token categories of ASL."""

    # literals / identifiers
    IDENT = "identifier"
    INT = "int literal"
    FLOAT = "float literal"
    STRING = "string literal"

    # keywords (case-insensitive in the source)
    PROPERTY = "PROPERTY"
    CLASS = "CLASS"
    ENUM = "ENUM"
    EXTENDS = "EXTENDS"
    SETOF = "SETOF"
    CONSTANT = "CONSTANT"
    LET = "LET"
    IN = "IN"
    CONDITION = "CONDITION"
    CONFIDENCE = "CONFIDENCE"
    SEVERITY = "SEVERITY"
    WHERE = "WHERE"
    WITH = "WITH"
    AND = "AND"
    OR = "OR"
    NOT = "NOT"
    TRUE = "TRUE"
    FALSE = "FALSE"

    # punctuation / operators
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMICOLON = ";"
    COLON = ":"
    DOT = "."
    ARROW = "->"
    ASSIGN = "="
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"

    EOF = "end of input"


#: Keyword spelling (lower-case) to token type.  ASL keywords are recognised
#: case-insensitively: the paper itself writes both ``PROPERTY`` (grammar,
#: Figure 1) and ``Property`` (examples, Section 4.2).
KEYWORDS = {
    "property": TokenType.PROPERTY,
    "class": TokenType.CLASS,
    "enum": TokenType.ENUM,
    "extends": TokenType.EXTENDS,
    "setof": TokenType.SETOF,
    "constant": TokenType.CONSTANT,
    "let": TokenType.LET,
    "in": TokenType.IN,
    "condition": TokenType.CONDITION,
    "confidence": TokenType.CONFIDENCE,
    "severity": TokenType.SEVERITY,
    "where": TokenType.WHERE,
    "with": TokenType.WITH,
    "and": TokenType.AND,
    "or": TokenType.OR,
    "not": TokenType.NOT,
    "true": TokenType.TRUE,
    "false": TokenType.FALSE,
}

#: Built-in set/aggregate functions.  These are *not* keywords: ``MAX`` also
#: appears as the confidence/severity combinator and ``sum`` may be used as a
#: plain variable name (the paper's SublinearSpeedup property does exactly
#: that), so the parser resolves them contextually from IDENT tokens.
AGGREGATE_NAMES = frozenset({"UNIQUE", "SUM", "MIN", "MAX", "AVG", "COUNT"})


@dataclass(frozen=True)
class Token:
    """One lexical token with its source location."""

    type: TokenType
    text: str
    location: SourceLocation
    value: Union[int, float, str, None] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.type.name}({self.text!r})"
