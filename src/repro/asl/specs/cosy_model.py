"""The ASL performance data model used by COSY (paper, Section 4.1).

The class definitions follow the paper verbatim, with two small completions
the paper leaves implicit:

* the ``TimingType`` enumeration is spelled out with the 25 work/overhead
  categories of the (simulated) Apprentice tool — the paper only states that
  "Apprentice knows 25 such types";
* the ``CallTiming`` class, described in prose only, is given explicit
  attributes for the minimum / maximum / mean / standard deviation of the
  per-process call counts and times and the extremal processor numbers.

The paper's ``SublinearSpeedup`` property declares its ``MinPeSum`` LET
variable with type ``TotTimes`` — an obvious typo for ``TotalTiming`` which is
corrected in the bundled property document.
"""

COSY_DATA_MODEL = """
// ---------------------------------------------------------------------------
// COSY performance data model (ASL), after Gerndt & Esser, Section 4.1.
// ---------------------------------------------------------------------------

enum TimingType {
    FloatingPoint, IntegerOps, LoadStore,
    SendOverhead, ReceiveOverhead, MessageWait, MessagePacking,
    Broadcast, Reduce, Gather, Scatter, AllToAll,
    Barrier, LockWait, CriticalSection, EventWait,
    IORead, IOWrite, IOOpenClose, IOSeek,
    CacheMiss, RemoteMemAccess, PageFault,
    Instrumentation, Sampling
};

class Program {
    String Name;
    setof ProgVersion Versions;
}

class ProgVersion {
    DateTime Compilation;
    setof Function Functions;
    setof TestRun Runs;
    SourceCode Code;
}

class TestRun {
    DateTime Start;
    int NoPe;
    int Clockspeed;
}

class Function {
    String Name;
    setof FunctionCall Calls;
    setof Region Regions;
}

class Region {
    Region ParentRegion;
    setof TotalTiming TotTimes;
    setof TypedTiming TypTimes;
}

class TotalTiming {
    TestRun Run;
    float Excl;
    float Incl;
    float Ovhd;
}

class TypedTiming {
    TestRun Run;
    TimingType Type;
    float Time;
}

class FunctionCall {
    Function Caller;
    Region CallingReg;
    setof CallTiming Sums;
}

class CallTiming {
    TestRun Run;
    float MinCalls;
    float MaxCalls;
    float MeanCalls;
    float StdevCalls;
    float MinTime;
    float MaxTime;
    float MeanTime;
    float StdevTime;
    int MinCallsPe;
    int MaxCallsPe;
    int MinTimePe;
    int MaxTimePe;
}
"""

__all__ = ["COSY_DATA_MODEL"]
