"""The ASL performance properties evaluated by COSY (paper, Section 4.2).

The four properties printed in the paper (``SublinearSpeedup``,
``MeasuredCost``, ``SyncCost``, ``LoadImbalance``) are reproduced verbatim
(modulo the ``TotTimes``→``TotalTiming`` typo fix in the LET declaration).
In addition the document contains the complementary cost-breakdown properties
that the paper mentions but does not print:

* ``UnmeasuredCost`` — the counterpart of ``MeasuredCost`` ("If the severity of
  its counterpart, the UnmeasuredCost, is much higher, the reason cannot be
  found with the available data");
* ``CommunicationCost`` and ``IOCost`` — further refinements of the measured
  cost by overhead category (message passing and I/O are called out explicitly
  in Section 4.1 as examples of the typed overheads);
* ``FrequentBarrier`` — a refinement flagging call sites that execute the
  barrier routine very often.

The ``ImbalanceThreshold`` constant used by ``LoadImbalance`` is not defined in
the paper; it is declared here (and can be overridden by the tool).
"""

COSY_PROPERTIES = """
// ---------------------------------------------------------------------------
// COSY performance properties (ASL), after Gerndt & Esser, Section 4.2.
// ---------------------------------------------------------------------------

constant float ImbalanceThreshold = 0.25;
constant float FrequentBarrierThreshold = 100;

// Helper functions shared by most properties.
TotalTiming Summary(Region r, TestRun t) =
    UNIQUE({s IN r.TotTimes WITH s.Run == t});

float Duration(Region r, TestRun t) = Summary(r, t).Incl;

// The test run of a region with the minimal number of processors is the
// reference for the total-cost computation (Section 3).
TotalTiming MinPeSummary(Region r) =
    UNIQUE({sum IN r.TotTimes WITH sum.Run.NoPe ==
            MIN(s.Run.NoPe WHERE s IN r.TotTimes)});

float TypedCost(Region r, TestRun t, TimingType ty) =
    SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run == t AND tt.Type == ty);

// ---------------------------------------------------------------------------
// Properties printed in the paper.
// ---------------------------------------------------------------------------

Property SublinearSpeedup(Region r, TestRun t, Region Basis) {
    LET TotalTiming MinPeSum = UNIQUE({sum IN r.TotTimes WITH sum.Run.NoPe ==
            MIN(s.Run.NoPe WHERE s IN r.TotTimes)});
        float TotalCost = Duration(r, t) - Duration(r, MinPeSum.Run)
    IN
    CONDITION: TotalCost > 0;
    CONFIDENCE: 1;
    SEVERITY: TotalCost / Duration(Basis, t);
}

Property MeasuredCost(Region r, TestRun t, Region Basis) {
    LET float Cost = Summary(r, t).Ovhd;
    IN
    CONDITION: Cost > 0;
    CONFIDENCE: 1;
    SEVERITY: Cost / Duration(Basis, t);
}

Property SyncCost(Region r, TestRun t, Region Basis) {
    LET float Barrier = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run == t
            AND tt.Type == Barrier);
    IN
    CONDITION: Barrier > 0;
    CONFIDENCE: 1;
    SEVERITY: Barrier / Duration(Basis, t);
}

Property LoadImbalance(FunctionCall Call, TestRun t, Region Basis) {
    LET CallTiming ct = UNIQUE({c IN Call.Sums WITH c.Run == t});
        float Dev = ct.StdevTime;
        float Mean = ct.MeanTime
    IN
    CONDITION: Dev > ImbalanceThreshold * Mean;
    CONFIDENCE: 1;
    SEVERITY: Mean / Duration(Basis, t);
}

// ---------------------------------------------------------------------------
// Complementary cost-breakdown properties evaluated by COSY.
// ---------------------------------------------------------------------------

Property UnmeasuredCost(Region r, TestRun t, Region Basis) {
    LET float TotalCost = Duration(r, t) - Duration(r, MinPeSummary(r).Run);
        float Unmeasured = TotalCost - Summary(r, t).Ovhd
    IN
    CONDITION: Unmeasured > 0;
    CONFIDENCE: 1;
    SEVERITY: Unmeasured / Duration(Basis, t);
}

Property CommunicationCost(Region r, TestRun t, Region Basis) {
    LET float Comm = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run == t
            AND (tt.Type == SendOverhead OR tt.Type == ReceiveOverhead
                 OR tt.Type == MessageWait OR tt.Type == MessagePacking
                 OR tt.Type == Broadcast OR tt.Type == Reduce
                 OR tt.Type == Gather OR tt.Type == Scatter
                 OR tt.Type == AllToAll))
    IN
    CONDITION: Comm > 0;
    CONFIDENCE: 1;
    SEVERITY: Comm / Duration(Basis, t);
}

Property IOCost(Region r, TestRun t, Region Basis) {
    LET float Io = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run == t
            AND (tt.Type == IORead OR tt.Type == IOWrite
                 OR tt.Type == IOOpenClose OR tt.Type == IOSeek))
    IN
    CONDITION: Io > 0;
    CONFIDENCE: 1;
    SEVERITY: Io / Duration(Basis, t);
}

Property FrequentBarrier(FunctionCall Call, TestRun t, Region Basis) {
    LET CallTiming ct = UNIQUE({c IN Call.Sums WITH c.Run == t});
        float Calls = ct.MeanCalls;
        float Time = ct.MeanTime
    IN
    CONDITION: (c1) Calls > FrequentBarrierThreshold;
    CONFIDENCE: MAX((c1) -> 0.8);
    SEVERITY: MAX((c1) -> Time / Duration(Basis, t));
}
"""

#: The property names of the bundled document, in evaluation order.
COSY_PROPERTY_NAMES = (
    "SublinearSpeedup",
    "MeasuredCost",
    "UnmeasuredCost",
    "SyncCost",
    "CommunicationCost",
    "IOCost",
    "LoadImbalance",
    "FrequentBarrier",
)

__all__ = ["COSY_PROPERTIES", "COSY_PROPERTY_NAMES"]
