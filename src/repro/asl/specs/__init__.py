"""Bundled ASL specification documents.

* :data:`COSY_DATA_MODEL` — the performance data model of Section 4.1;
* :data:`COSY_PROPERTIES` — the performance properties of Section 4.2 plus the
  additional cost-breakdown properties COSY evaluates (communication, I/O);
* :func:`cosy_specification` — the merged, semantically checked specification
  used by the COSY analyzer and the ASL→SQL compiler.
"""

from repro.asl.specs.cosy_model import COSY_DATA_MODEL
from repro.asl.specs.cosy_properties import COSY_PROPERTIES, COSY_PROPERTY_NAMES


def cosy_specification():
    """Parse and check the complete bundled COSY specification.

    Returns a :class:`repro.asl.semantic.CheckedSpecification` combining the
    data model and the property documents.
    """
    from repro.asl.parser import parse_asl
    from repro.asl.semantic import check_asl

    model = parse_asl(COSY_DATA_MODEL, filename="cosy_model.asl")
    properties = parse_asl(COSY_PROPERTIES, filename="cosy_properties.asl")
    return check_asl(model.merge(properties))


__all__ = [
    "COSY_DATA_MODEL",
    "COSY_PROPERTIES",
    "COSY_PROPERTY_NAMES",
    "cosy_specification",
]
