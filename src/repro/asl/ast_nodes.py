"""Abstract syntax tree of the APART Specification Language.

The node classes follow the structure of the paper:

* the **data model section** consists of class declarations (attributes only,
  single inheritance), enumeration declarations and global helper function
  definitions such as ``Summary`` and ``Duration`` (Section 4.1 / 4.2);
* the **property section** consists of property declarations following the
  grammar of Figure 1: parameter list, optional ``LET … IN`` definitions, a
  list of (optionally named) conditions, and confidence / severity
  specifications that are either a single expression or the ``MAX`` of a list
  of condition-guarded expressions.

Every node carries a :class:`~repro.asl.errors.SourceLocation` so the semantic
checker and the SQL compiler can produce precise diagnostics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.asl.errors import SourceLocation

__all__ = [
    # types
    "TypeRef",
    # expressions
    "Expr",
    "IntLiteral",
    "FloatLiteral",
    "StringLiteral",
    "BoolLiteral",
    "Identifier",
    "AttributeAccess",
    "FunctionCall",
    "UnaryOp",
    "UnaryExpr",
    "BinaryOp",
    "BinaryExpr",
    "SetComprehension",
    "AggregateExpr",
    # declarations
    "AttributeDecl",
    "ClassDecl",
    "EnumDecl",
    "ConstantDecl",
    "Param",
    "FunctionDecl",
    "LetDef",
    "ConditionClause",
    "GuardedExpr",
    "ValueSpec",
    "PropertyDecl",
    "AslProgram",
    "Declaration",
    "walk",
]


# --------------------------------------------------------------------------- #
# type references
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class TypeRef:
    """A syntactic reference to a type, e.g. ``float`` or ``setof Region``."""

    name: str
    is_set: bool = False
    location: SourceLocation = field(default_factory=SourceLocation.unknown, compare=False)

    def __str__(self) -> str:
        return f"setof {self.name}" if self.is_set else self.name


# --------------------------------------------------------------------------- #
# expressions
# --------------------------------------------------------------------------- #


@dataclass
class Expr:
    """Base class of every ASL expression node."""

    location: SourceLocation = field(
        default_factory=SourceLocation.unknown, compare=False
    )

    def children(self) -> Sequence["Expr"]:
        """Direct sub-expressions (used by generic tree walks)."""
        return ()


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class FloatLiteral(Expr):
    value: float = 0.0


@dataclass
class StringLiteral(Expr):
    value: str = ""


@dataclass
class BoolLiteral(Expr):
    value: bool = False


@dataclass
class Identifier(Expr):
    """A reference to a parameter, LET definition, constant or enum member."""

    name: str = ""


@dataclass
class AttributeAccess(Expr):
    """``object.Attribute`` — navigation along the data model."""

    obj: Expr = field(default_factory=Expr)
    attribute: str = ""

    def children(self) -> Sequence[Expr]:
        return (self.obj,)


@dataclass
class FunctionCall(Expr):
    """A call of a user-defined specification function, e.g. ``Duration(r, t)``."""

    name: str = ""
    args: List[Expr] = field(default_factory=list)

    def children(self) -> Sequence[Expr]:
        return tuple(self.args)


class UnaryOp(enum.Enum):
    NEG = "-"
    NOT = "NOT"


@dataclass
class UnaryExpr(Expr):
    op: UnaryOp = UnaryOp.NEG
    operand: Expr = field(default_factory=Expr)

    def children(self) -> Sequence[Expr]:
        return (self.operand,)


class BinaryOp(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND = "AND"
    OR = "OR"

    @property
    def is_comparison(self) -> bool:
        return self in (
            BinaryOp.EQ,
            BinaryOp.NE,
            BinaryOp.LT,
            BinaryOp.LE,
            BinaryOp.GT,
            BinaryOp.GE,
        )

    @property
    def is_logical(self) -> bool:
        return self in (BinaryOp.AND, BinaryOp.OR)

    @property
    def is_arithmetic(self) -> bool:
        return self in (
            BinaryOp.ADD,
            BinaryOp.SUB,
            BinaryOp.MUL,
            BinaryOp.DIV,
            BinaryOp.MOD,
        )


@dataclass
class BinaryExpr(Expr):
    op: BinaryOp = BinaryOp.ADD
    left: Expr = field(default_factory=Expr)
    right: Expr = field(default_factory=Expr)

    def children(self) -> Sequence[Expr]:
        return (self.left, self.right)


@dataclass
class SetComprehension(Expr):
    """``{ var IN source WITH predicate }`` — selection from a set."""

    var: str = ""
    source: Expr = field(default_factory=Expr)
    predicate: Optional[Expr] = None

    def children(self) -> Sequence[Expr]:
        if self.predicate is None:
            return (self.source,)
        return (self.source, self.predicate)


@dataclass
class AggregateExpr(Expr):
    """An aggregate over a set.

    Two syntactic forms are supported, both used in the paper's examples:

    * ``UNIQUE(set-expr)`` — the single element of a singleton set
      (``func="UNIQUE"``, ``var`` empty, ``value`` is the set expression);
    * ``SUM(value WHERE var IN source AND pred …)`` /
      ``MIN(...)`` / ``MAX(...)`` / ``AVG(...)`` / ``COUNT(...)`` —
      an aggregate of ``value`` over the elements of ``source`` bound to
      ``var`` that satisfy the optional predicate.
    """

    func: str = "SUM"
    value: Expr = field(default_factory=Expr)
    var: str = ""
    source: Optional[Expr] = None
    predicate: Optional[Expr] = None

    @property
    def is_unique(self) -> bool:
        return self.func == "UNIQUE"

    def children(self) -> Sequence[Expr]:
        result: List[Expr] = [self.value]
        if self.source is not None:
            result.append(self.source)
        if self.predicate is not None:
            result.append(self.predicate)
        return tuple(result)


# --------------------------------------------------------------------------- #
# declarations
# --------------------------------------------------------------------------- #


@dataclass
class AttributeDecl:
    """One attribute of a data-model class, e.g. ``setof TestRun Runs;``."""

    type: TypeRef
    name: str
    location: SourceLocation = field(default_factory=SourceLocation.unknown)


@dataclass
class ClassDecl:
    """A data-model class (attributes only, optional single inheritance)."""

    name: str
    attributes: List[AttributeDecl] = field(default_factory=list)
    base: Optional[str] = None
    location: SourceLocation = field(default_factory=SourceLocation.unknown)

    def attribute(self, name: str) -> Optional[AttributeDecl]:
        """Return the attribute declared *directly* on this class, if any."""
        for attr in self.attributes:
            if attr.name == name:
                return attr
        return None


@dataclass
class EnumDecl:
    """An enumeration type, e.g. the Apprentice ``TimingType``."""

    name: str
    members: List[str] = field(default_factory=list)
    location: SourceLocation = field(default_factory=SourceLocation.unknown)


@dataclass
class ConstantDecl:
    """A named constant usable in property expressions.

    The paper's ``LoadImbalance`` property refers to an ``ImbalanceThreshold``
    without defining it; constants make such thresholds part of the
    specification document while still being overridable by the tool.
    """

    type: TypeRef
    name: str
    value: Expr
    location: SourceLocation = field(default_factory=SourceLocation.unknown)


@dataclass
class Param:
    """A formal parameter of a function or property."""

    type: TypeRef
    name: str
    location: SourceLocation = field(default_factory=SourceLocation.unknown)


@dataclass
class FunctionDecl:
    """A specification function, e.g. ``float Duration(Region r, TestRun t) = …;``."""

    return_type: TypeRef
    name: str
    params: List[Param]
    body: Expr
    location: SourceLocation = field(default_factory=SourceLocation.unknown)


@dataclass
class LetDef:
    """One definition inside a property's ``LET … IN`` block."""

    type: TypeRef
    name: str
    value: Expr
    location: SourceLocation = field(default_factory=SourceLocation.unknown)


@dataclass
class ConditionClause:
    """One condition of a property, optionally labelled with a condition id."""

    expr: Expr
    cond_id: Optional[str] = None
    location: SourceLocation = field(default_factory=SourceLocation.unknown)


@dataclass
class GuardedExpr:
    """A confidence/severity value, optionally guarded by a condition id."""

    expr: Expr
    guard: Optional[str] = None
    location: SourceLocation = field(default_factory=SourceLocation.unknown)


@dataclass
class ValueSpec:
    """A confidence or severity specification.

    ``is_max`` is true when the specification uses the ``MAX( … )`` form of
    Figure 1; otherwise ``entries`` holds exactly one (possibly guarded)
    expression.
    """

    entries: List[GuardedExpr] = field(default_factory=list)
    is_max: bool = False
    location: SourceLocation = field(default_factory=SourceLocation.unknown)


@dataclass
class PropertyDecl:
    """A complete ASL performance property (Figure 1)."""

    name: str
    params: List[Param] = field(default_factory=list)
    let_defs: List[LetDef] = field(default_factory=list)
    conditions: List[ConditionClause] = field(default_factory=list)
    confidence: ValueSpec = field(default_factory=ValueSpec)
    severity: ValueSpec = field(default_factory=ValueSpec)
    location: SourceLocation = field(default_factory=SourceLocation.unknown)

    def condition_ids(self) -> List[str]:
        """All declared condition identifiers, in declaration order."""
        return [c.cond_id for c in self.conditions if c.cond_id is not None]


Declaration = Union[ClassDecl, EnumDecl, ConstantDecl, FunctionDecl, PropertyDecl]


@dataclass
class AslProgram:
    """A parsed ASL specification document (data model + properties)."""

    declarations: List[Declaration] = field(default_factory=list)
    filename: str = "<asl>"

    # -- typed views -----------------------------------------------------------

    @property
    def classes(self) -> List[ClassDecl]:
        return [d for d in self.declarations if isinstance(d, ClassDecl)]

    @property
    def enums(self) -> List[EnumDecl]:
        return [d for d in self.declarations if isinstance(d, EnumDecl)]

    @property
    def constants(self) -> List[ConstantDecl]:
        return [d for d in self.declarations if isinstance(d, ConstantDecl)]

    @property
    def functions(self) -> List[FunctionDecl]:
        return [d for d in self.declarations if isinstance(d, FunctionDecl)]

    @property
    def properties(self) -> List[PropertyDecl]:
        return [d for d in self.declarations if isinstance(d, PropertyDecl)]

    # -- lookup ------------------------------------------------------------------

    def class_decl(self, name: str) -> ClassDecl:
        for decl in self.classes:
            if decl.name == name:
                return decl
        raise KeyError(f"no class named {name!r}")

    def property_decl(self, name: str) -> PropertyDecl:
        for decl in self.properties:
            if decl.name == name:
                return decl
        raise KeyError(f"no property named {name!r}")

    def function_decl(self, name: str) -> FunctionDecl:
        for decl in self.functions:
            if decl.name == name:
                return decl
        raise KeyError(f"no function named {name!r}")

    def merge(self, other: "AslProgram") -> "AslProgram":
        """Return a new program combining the declarations of both documents.

        COSY keeps the data model and the property specifications in separate
        sections (Section 4); merging the two parsed documents produces the
        complete specification.
        """
        return AslProgram(
            declarations=list(self.declarations) + list(other.declarations),
            filename=f"{self.filename}+{other.filename}",
        )


def walk(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and all nested sub-expressions, depth first."""
    yield expr
    for child in expr.children():
        yield from walk(child)
