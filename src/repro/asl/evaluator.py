"""Reference evaluator for ASL performance properties.

The paper's COSY prototype translates property conditions into SQL; this
module provides the *reference semantics* against which the SQL translation is
validated: it evaluates properties directly over the object repository
(:mod:`repro.datamodel`), binding ASL class attributes to Python attributes.

The evaluation of a property proceeds exactly as described in Section 4:

1. the property's parameters are bound to the supplied context objects
   (e.g. the region, the test run and the ranking basis);
2. the ``LET`` definitions are evaluated sequentially;
3. every condition is evaluated to a boolean; the property *holds* when at
   least one condition is true;
4. the confidence and severity are computed as the maximum of their
   (condition-guarded) value expressions — a guarded entry contributes only
   when its condition evaluated to true;
5. the property is a *performance problem* when its severity exceeds the
   user- or tool-defined threshold, and the *bottleneck* is the property
   instance with the highest severity (this ranking is performed by
   :mod:`repro.cosy`).

Properties are **compiled once per evaluator instance**
(:mod:`repro.asl.compile`): the first :meth:`AslEvaluator.evaluate_property`
call for a property turns its LET definitions, conditions and value
specifications into Python closures; subsequent evaluations — the client-side
analysis strategy evaluates every property for every region × run context —
only re-bind the parameters.  :meth:`AslEvaluator.evaluate` remains the
interpretive single-expression API (and the semantic reference the compiled
closures are tested against).
"""

from __future__ import annotations

import datetime as _dt
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.asl.ast_nodes import (
    AggregateExpr,
    AttributeAccess,
    BinaryExpr,
    BinaryOp,
    BoolLiteral,
    Expr,
    FloatLiteral,
    FunctionCall,
    Identifier,
    IntLiteral,
    PropertyDecl,
    SetComprehension,
    StringLiteral,
    UnaryExpr,
    UnaryOp,
    ValueSpec,
)
from repro.asl.compile import AslExprCompiler, CompiledProperty
from repro.asl.errors import AslEvaluationError, AslNameError
from repro.asl.semantic import CheckedSpecification
from repro.asl.symbols import MISSING, Scope

__all__ = ["AslEvaluator", "PropertyEvaluation", "default_enum_binding"]


@dataclass
class PropertyEvaluation:
    """The result of evaluating one property in one context."""

    property_name: str
    #: The parameter binding the property was evaluated with.
    parameters: Dict[str, Any] = field(default_factory=dict)
    #: Whether at least one condition was satisfied.
    holds: bool = False
    #: The confidence value (0..1) computed from the confidence specification.
    confidence: float = 0.0
    #: The severity value computed from the severity specification.
    severity: float = 0.0
    #: Value of each condition; keys are condition identifiers where declared,
    #: otherwise the 1-based position of the condition.
    conditions: Dict[str, bool] = field(default_factory=dict)
    #: Values of the LET definitions (useful for reports and debugging).
    let_values: Dict[str, Any] = field(default_factory=dict)

    def is_problem(self, threshold: float) -> bool:
        """Performance property → performance problem iff severity > threshold."""
        return self.holds and self.severity > threshold


def default_enum_binding(checked: CheckedSpecification) -> Dict[str, Any]:
    """Bind enum member names of the specification to runtime values.

    Members of an enum named ``TimingType`` are bound to the
    :class:`repro.datamodel.TimingType` members of the same name when they
    exist; every other member is bound to its own name (a string marker),
    which is sufficient for equality comparisons as long as the repository
    stores the same markers.
    """
    binding: Dict[str, Any] = {}
    try:
        from repro.datamodel import TimingType as _TimingType
    except ImportError:  # pragma: no cover - datamodel is part of this package
        _TimingType = None  # type: ignore[assignment]
    for enum_name, decl in checked.index.enums.items():
        for member in decl.members:
            value: Any = member
            if _TimingType is not None and enum_name == "TimingType":
                try:
                    value = _TimingType(member)
                except ValueError:
                    value = member
            binding[member] = value
    return binding


class AslEvaluator:
    """Evaluates checked ASL specifications over Python objects."""

    def __init__(
        self,
        checked: CheckedSpecification,
        constants: Optional[Mapping[str, Any]] = None,
        enum_binding: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.checked = checked
        self.index = checked.index
        self._constant_overrides: Dict[str, Any] = dict(constants or {})
        self._enum_binding: Dict[str, Any] = (
            dict(enum_binding)
            if enum_binding is not None
            else default_enum_binding(checked)
        )
        self._constant_cache: Dict[str, Any] = {}
        self._compiler = AslExprCompiler(self)
        #: Property name → compiled program (filled on first evaluation).
        self.compiled_properties: Dict[str, CompiledProperty] = {}

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def compile_property(self, name: str) -> CompiledProperty:
        """The compiled (closure) form of a property; compiled on first use."""
        program = self.compiled_properties.get(name)
        if program is None:
            try:
                decl = self.index.properties[name]
            except KeyError:
                raise AslNameError(f"unknown property {name!r}") from None
            program = self._compiler.compile_property(decl)
            self.compiled_properties[name] = program
        return program

    def evaluate_property(
        self, name: str, parameters: Mapping[str, Any]
    ) -> PropertyEvaluation:
        """Evaluate property ``name`` with the given parameter binding."""
        program = self.compile_property(name)
        decl = program.decl
        missing = [p.name for p in decl.params if p.name not in parameters]
        if missing:
            raise AslEvaluationError(
                f"property {name!r} is missing parameter(s) {missing}; expected "
                f"{[p.name for p in decl.params]}"
            )
        env = {p: parameters[p] for p in program.param_names}
        result = PropertyEvaluation(property_name=name, parameters=dict(env))
        for let_name, let_fn in program.lets:
            value = let_fn(env)
            env[let_name] = value
            result.let_values[let_name] = value

        for key, condition_fn in program.conditions:
            result.conditions[key] = bool(condition_fn(env))
        result.holds = any(result.conditions.values())

        result.confidence = program.value_of(
            program.confidence_entries,
            program.confidence_is_max,
            result.conditions,
            env,
        )
        if result.holds:
            result.severity = program.value_of(
                program.severity_entries,
                program.severity_is_max,
                result.conditions,
                env,
            )
        else:
            result.severity = 0.0
        return result

    def evaluate_property_interpreted(
        self, name: str, parameters: Mapping[str, Any]
    ) -> PropertyEvaluation:
        """Evaluate a property by walking the AST (the reference semantics).

        Kept for differential testing against the compiled path used by
        :meth:`evaluate_property`.
        """
        try:
            decl = self.index.properties[name]
        except KeyError:
            raise AslNameError(f"unknown property {name!r}") from None
        missing = [p.name for p in decl.params if p.name not in parameters]
        if missing:
            raise AslEvaluationError(
                f"property {name!r} is missing parameter(s) {missing}; expected "
                f"{[p.name for p in decl.params]}"
            )
        scope: Scope[Any] = Scope()
        for param in decl.params:
            scope.define(param.name, parameters[param.name])

        result = PropertyEvaluation(
            property_name=name,
            parameters={p.name: parameters[p.name] for p in decl.params},
        )
        for let_def in decl.let_defs:
            value = self.evaluate(let_def.value, scope)
            scope.define(let_def.name, value)
            result.let_values[let_def.name] = value

        for position, condition in enumerate(decl.conditions, start=1):
            value = bool(self.evaluate(condition.expr, scope))
            key = condition.cond_id if condition.cond_id is not None else str(position)
            result.conditions[key] = value
        result.holds = any(result.conditions.values())

        result.confidence = self._evaluate_value_spec(
            decl.confidence, result.conditions, scope
        )
        if result.holds:
            result.severity = self._evaluate_value_spec(
                decl.severity, result.conditions, scope
            )
        else:
            result.severity = 0.0
        return result

    def evaluate_function(self, name: str, *args: Any) -> Any:
        """Evaluate a specification function (e.g. ``Duration``) directly."""
        try:
            decl = self.index.functions[name]
        except KeyError:
            raise AslNameError(f"unknown function {name!r}") from None
        if len(args) != len(decl.params):
            raise AslEvaluationError(
                f"function {name!r} expects {len(decl.params)} arguments, got "
                f"{len(args)}"
            )
        scope: Scope[Any] = Scope()
        for param, arg in zip(decl.params, args):
            scope.define(param.name, arg)
        return self.evaluate(decl.body, scope)

    def constant_value(self, name: str) -> Any:
        """Value of a specification constant, honouring overrides."""
        if name in self._constant_overrides:
            return self._constant_overrides[name]
        if name in self._constant_cache:
            return self._constant_cache[name]
        decl = self.index.constants.get(name)
        if decl is None:
            raise AslNameError(f"unknown constant {name!r}")
        value = self.evaluate(decl.value, Scope())
        self._constant_cache[name] = value
        return value

    # ------------------------------------------------------------------ #
    # value specifications
    # ------------------------------------------------------------------ #

    def _evaluate_value_spec(
        self, spec: ValueSpec, conditions: Mapping[str, bool], scope: Scope[Any]
    ) -> float:
        values: List[float] = []
        for entry in spec.entries:
            if entry.guard is not None and not conditions.get(entry.guard, False):
                continue
            values.append(float(self.evaluate(entry.expr, scope)))
        if not values:
            return 0.0
        return max(values) if (spec.is_max or len(values) > 1) else values[0]

    # ------------------------------------------------------------------ #
    # expression evaluation
    # ------------------------------------------------------------------ #

    def evaluate(self, expr: Expr, scope: Scope[Any]) -> Any:
        """Evaluate one expression in the given scope."""
        if isinstance(expr, IntLiteral):
            return expr.value
        if isinstance(expr, FloatLiteral):
            return expr.value
        if isinstance(expr, StringLiteral):
            return expr.value
        if isinstance(expr, BoolLiteral):
            return expr.value
        if isinstance(expr, Identifier):
            return self._evaluate_identifier(expr, scope)
        if isinstance(expr, AttributeAccess):
            return self._evaluate_attribute(expr, scope)
        if isinstance(expr, FunctionCall):
            return self._evaluate_call(expr, scope)
        if isinstance(expr, UnaryExpr):
            return self._evaluate_unary(expr, scope)
        if isinstance(expr, BinaryExpr):
            return self._evaluate_binary(expr, scope)
        if isinstance(expr, SetComprehension):
            return self._evaluate_comprehension(expr, scope)
        if isinstance(expr, AggregateExpr):
            return self._evaluate_aggregate(expr, scope)
        raise AslEvaluationError(
            f"unsupported expression node {type(expr).__name__}", expr.location
        )

    # -- helpers ------------------------------------------------------------

    def _evaluate_identifier(self, expr: Identifier, scope: Scope[Any]) -> Any:
        # One walk up the scope chain resolves value and boundness at once.
        value = scope.find(expr.name)
        if value is not MISSING:
            return value
        if expr.name in self._constant_overrides or expr.name in self.index.constants:
            return self.constant_value(expr.name)
        if expr.name in self._enum_binding:
            return self._enum_binding[expr.name]
        raise AslNameError(f"unbound name {expr.name!r}", expr.location)

    def _evaluate_attribute(self, expr: AttributeAccess, scope: Scope[Any]) -> Any:
        obj = self.evaluate(expr.obj, scope)
        if obj is None:
            raise AslEvaluationError(
                f"cannot access attribute {expr.attribute!r} of an absent "
                f"(null) object",
                expr.location,
            )
        try:
            return getattr(obj, expr.attribute)
        except AttributeError:
            raise AslEvaluationError(
                f"object of type {type(obj).__name__} has no attribute "
                f"{expr.attribute!r}",
                expr.location,
            ) from None

    def _evaluate_call(self, expr: FunctionCall, scope: Scope[Any]) -> Any:
        args = [self.evaluate(arg, scope) for arg in expr.args]
        if expr.name in self.index.functions:
            decl = self.index.functions[expr.name]
            inner: Scope[Any] = Scope()
            for param, arg in zip(decl.params, args):
                inner.define(param.name, arg)
            return self.evaluate(decl.body, inner)
        upper = expr.name.upper()
        if upper == "MIN" and args:
            return min(args)
        if upper == "MAX" and args:
            return max(args)
        if upper == "ABS" and len(args) == 1:
            return abs(args[0])
        raise AslNameError(f"unknown function {expr.name!r}", expr.location)

    def _evaluate_unary(self, expr: UnaryExpr, scope: Scope[Any]) -> Any:
        value = self.evaluate(expr.operand, scope)
        if expr.op is UnaryOp.NEG:
            return -value
        if expr.op is UnaryOp.NOT:
            return not value
        raise AssertionError(f"unhandled unary operator {expr.op}")

    def _evaluate_binary(self, expr: BinaryExpr, scope: Scope[Any]) -> Any:
        op = expr.op
        if op is BinaryOp.AND:
            return bool(self.evaluate(expr.left, scope)) and bool(
                self.evaluate(expr.right, scope)
            )
        if op is BinaryOp.OR:
            return bool(self.evaluate(expr.left, scope)) or bool(
                self.evaluate(expr.right, scope)
            )
        left = self.evaluate(expr.left, scope)
        right = self.evaluate(expr.right, scope)
        if op is BinaryOp.ADD:
            return left + right
        if op is BinaryOp.SUB:
            return left - right
        if op is BinaryOp.MUL:
            return left * right
        if op is BinaryOp.DIV:
            if right == 0:
                raise AslEvaluationError("division by zero", expr.location)
            return left / right
        if op is BinaryOp.MOD:
            if right == 0:
                raise AslEvaluationError("modulo by zero", expr.location)
            return left % right
        if op is BinaryOp.EQ:
            return left == right
        if op is BinaryOp.NE:
            return left != right
        try:
            if op is BinaryOp.LT:
                return left < right
            if op is BinaryOp.LE:
                return left <= right
            if op is BinaryOp.GT:
                return left > right
            if op is BinaryOp.GE:
                return left >= right
        except TypeError as exc:
            raise AslEvaluationError(
                f"cannot order values {left!r} and {right!r}: {exc}", expr.location
            ) from None
        raise AssertionError(f"unhandled binary operator {op}")

    def _evaluate_comprehension(
        self, expr: SetComprehension, scope: Scope[Any]
    ) -> List[Any]:
        source = self._iterable(self.evaluate(expr.source, scope), expr)
        result: List[Any] = []
        for element in source:
            inner = scope.child()
            inner.define(expr.var, element)
            if expr.predicate is None or bool(self.evaluate(expr.predicate, inner)):
                result.append(element)
        return result

    def _evaluate_aggregate(self, expr: AggregateExpr, scope: Scope[Any]) -> Any:
        if expr.is_unique:
            elements = list(self._iterable(self.evaluate(expr.value, scope), expr))
            if len(elements) != 1:
                raise AslEvaluationError(
                    f"UNIQUE applied to a set with {len(elements)} elements "
                    f"(expected exactly one)",
                    expr.location,
                )
            return elements[0]
        if expr.source is None:
            # The parser/checker guarantee a source on non-UNIQUE aggregates;
            # reaching this means a hand-built (or corrupted) AST.
            raise AslEvaluationError(
                f"aggregate {expr.func} has no source collection",
                expr.location,
            )
        source = self._iterable(self.evaluate(expr.source, scope), expr)
        values: List[Any] = []
        for element in source:
            inner = scope.child()
            inner.define(expr.var, element)
            if expr.predicate is not None and not bool(
                self.evaluate(expr.predicate, inner)
            ):
                continue
            values.append(self.evaluate(expr.value, inner))
        func = expr.func
        if func == "COUNT":
            return len(values)
        if func == "SUM":
            return sum(values) if values else 0
        if not values:
            raise AslEvaluationError(
                f"aggregate {func} applied to an empty set", expr.location
            )
        if func == "MIN":
            return min(values)
        if func == "MAX":
            return max(values)
        if func == "AVG":
            return sum(values) / len(values)
        raise AslEvaluationError(f"unknown aggregate {func!r}", expr.location)

    @staticmethod
    def _iterable(value: Any, expr: Expr) -> Iterable[Any]:
        if isinstance(value, (list, tuple, set, frozenset)):
            return value
        if isinstance(value, str) or not hasattr(value, "__iter__"):
            raise AslEvaluationError(
                f"expected a set-valued expression, found {type(value).__name__}",
                expr.location,
            )
        return value
