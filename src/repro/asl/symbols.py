"""Symbol tables for the ASL semantic checker and evaluator.

Two kinds of symbol tables are used:

* :class:`SpecificationIndex` — the *global* index of a parsed specification:
  classes (with their resolved attribute types and inheritance chain), enums,
  constants, specification functions and properties.  It is built once per
  document by the semantic checker and then shared by the evaluator and the
  SQL compiler.
* :class:`Scope` — a lexical scope mapping local names (property parameters,
  ``LET`` definitions, comprehension and aggregate variables) to their types or
  runtime values.  Scopes nest; lookup walks outwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.asl.ast_nodes import (
    ClassDecl,
    ConstantDecl,
    EnumDecl,
    FunctionDecl,
    PropertyDecl,
)
from repro.asl.errors import AslNameError, SourceLocation
from repro.asl.types import ClassType, EnumType, Type

__all__ = ["MISSING", "Scope", "ClassInfo", "SpecificationIndex"]

T = TypeVar("T")


class _Missing:
    """Sentinel distinguishing 'unbound' from a binding whose value is None."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<MISSING>"


#: Returned by :meth:`Scope.find` when a name is unbound.
MISSING = _Missing()


class Scope(Generic[T]):
    """A nested name→value mapping with outward lookup."""

    def __init__(self, parent: Optional["Scope[T]"] = None) -> None:
        self.parent = parent
        self._bindings: Dict[str, T] = {}

    def child(self) -> "Scope[T]":
        """Create a nested scope."""
        return Scope(parent=self)

    def define(self, name: str, value: T, location: Optional[SourceLocation] = None) -> None:
        """Bind ``name`` in this scope; redefinition in the same scope fails."""
        if name in self._bindings:
            raise AslNameError(f"name {name!r} is already defined in this scope", location)
        self._bindings[name] = value

    def assign(self, name: str, value: T) -> None:
        """Rebind ``name`` in the nearest scope that defines it (else here)."""
        scope: Optional[Scope[T]] = self
        while scope is not None:
            if name in scope._bindings:
                scope._bindings[name] = value
                return
            scope = scope.parent
        self._bindings[name] = value

    def find(self, name: str):
        """Return the binding of ``name`` or the :data:`MISSING` sentinel.

        One walk up the scope chain resolves both the value *and* whether the
        name is bound at all, so callers don't need a second ``in`` walk to
        distinguish "unbound" from "bound to None".
        """
        scope: Optional[Scope[T]] = self
        while scope is not None:
            bindings = scope._bindings
            if name in bindings:
                return bindings[name]
            scope = scope.parent
        return MISSING

    def lookup(self, name: str) -> Optional[T]:
        """Return the binding of ``name`` or ``None`` when it is unbound."""
        value = self.find(name)
        return None if value is MISSING else value

    def __contains__(self, name: str) -> bool:
        return self.find(name) is not MISSING

    def names(self) -> Iterator[str]:
        """All names visible from this scope (inner shadowing outer)."""
        seen = set()
        scope: Optional[Scope[T]] = self
        while scope is not None:
            for name in scope._bindings:
                if name not in seen:
                    seen.add(name)
                    yield name
            scope = scope.parent


@dataclass
class ClassInfo:
    """Resolved information about one data-model class."""

    decl: ClassDecl
    #: Attribute name → resolved type, *including inherited attributes*.
    attributes: Dict[str, Type] = field(default_factory=dict)
    #: Attribute name → name of the class that declares it (for SQL mapping).
    declared_in: Dict[str, str] = field(default_factory=dict)
    base: Optional[str] = None

    @property
    def name(self) -> str:
        return self.decl.name


class SpecificationIndex:
    """Global symbol index of one checked ASL specification."""

    def __init__(self) -> None:
        self.classes: Dict[str, ClassInfo] = {}
        self.enums: Dict[str, EnumDecl] = {}
        #: Enum member name → owning enum type (members are globally unique).
        self.enum_members: Dict[str, EnumType] = {}
        self.constants: Dict[str, ConstantDecl] = {}
        self.constant_types: Dict[str, Type] = {}
        self.functions: Dict[str, FunctionDecl] = {}
        self.function_types: Dict[str, Tuple[Tuple[Type, ...], Type]] = {}
        self.properties: Dict[str, PropertyDecl] = {}

    # -- registration ----------------------------------------------------------

    def add_class(self, info: ClassInfo) -> None:
        if info.name in self.classes:
            raise AslNameError(
                f"class {info.name!r} is declared more than once", info.decl.location
            )
        self.classes[info.name] = info

    def add_enum(self, decl: EnumDecl) -> None:
        if decl.name in self.enums:
            raise AslNameError(
                f"enum {decl.name!r} is declared more than once", decl.location
            )
        self.enums[decl.name] = decl
        enum_type = EnumType(name=decl.name, members=tuple(decl.members))
        for member in decl.members:
            if member in self.enum_members:
                raise AslNameError(
                    f"enum member {member!r} is declared in more than one enum",
                    decl.location,
                )
            self.enum_members[member] = enum_type

    def add_constant(self, decl: ConstantDecl, resolved_type: Type) -> None:
        if decl.name in self.constants:
            raise AslNameError(
                f"constant {decl.name!r} is declared more than once", decl.location
            )
        self.constants[decl.name] = decl
        self.constant_types[decl.name] = resolved_type

    def add_function(
        self, decl: FunctionDecl, param_types: Tuple[Type, ...], return_type: Type
    ) -> None:
        if decl.name in self.functions:
            raise AslNameError(
                f"function {decl.name!r} is declared more than once", decl.location
            )
        self.functions[decl.name] = decl
        self.function_types[decl.name] = (param_types, return_type)

    def add_property(self, decl: PropertyDecl) -> None:
        if decl.name in self.properties:
            raise AslNameError(
                f"property {decl.name!r} is declared more than once", decl.location
            )
        self.properties[decl.name] = decl

    # -- lookup ------------------------------------------------------------------

    def class_info(self, name: str) -> ClassInfo:
        try:
            return self.classes[name]
        except KeyError:
            raise AslNameError(f"unknown class {name!r}") from None

    def attribute_type(self, class_name: str, attribute: str) -> Type:
        """Type of ``class_name.attribute`` including inherited attributes."""
        info = self.class_info(class_name)
        try:
            return info.attributes[attribute]
        except KeyError:
            known = ", ".join(sorted(info.attributes))
            raise AslNameError(
                f"class {class_name!r} has no attribute {attribute!r} "
                f"(known attributes: {known})"
            ) from None

    def subclass_map(self) -> Dict[str, str]:
        """Class name → base class name (only classes that have a base)."""
        return {
            name: info.base for name, info in self.classes.items() if info.base
        }

    def class_type(self, name: str) -> ClassType:
        self.class_info(name)
        return ClassType(name=name)
