"""Compile-once evaluation of ASL property expressions.

The reference evaluator (:class:`repro.asl.evaluator.AslEvaluator`) walks the
expression AST on every evaluation — for the client-side analysis strategy
that means re-dispatching on node types for every property × context pair.
This module compiles each property once into Python closures over a flat
name→value environment dict, mirroring the relational engine's
plan-then-execute split (:mod:`repro.relalg.compile`):

* identifier *kinds* (parameter/LET, specification constant, enum member) are
  resolved at compile time, so the per-evaluation work is a dict lookup;
* specification functions are compiled once and invoked with a fresh
  environment per call;
* comprehension and aggregate variables use save/restore slots in the shared
  environment instead of allocating a scope chain per element.

Semantics — including every error message and the handling of empty sets,
UNIQUE cardinality and division by zero — follow the reference evaluator
exactly; ``tests/test_asl_compile.py`` asserts parity.
"""

from __future__ import annotations

import operator as _operator
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.asl.ast_nodes import (
    AggregateExpr,
    AttributeAccess,
    BinaryExpr,
    BinaryOp,
    BoolLiteral,
    Expr,
    FloatLiteral,
    FunctionCall,
    Identifier,
    IntLiteral,
    PropertyDecl,
    SetComprehension,
    StringLiteral,
    UnaryExpr,
    UnaryOp,
    ValueSpec,
)
from repro.asl.errors import AslEvaluationError, AslNameError

__all__ = ["CompiledProperty", "AslExprCompiler"]

#: A compiled ASL expression: ``fn(env) -> value`` over a flat environment.
EnvFn = Callable[[Dict[str, Any]], Any]

_ABSENT = object()


class CompiledProperty:
    """The compiled form of one property declaration."""

    __slots__ = (
        "decl",
        "param_names",
        "lets",
        "conditions",
        "confidence_entries",
        "confidence_is_max",
        "severity_entries",
        "severity_is_max",
    )

    def __init__(
        self,
        decl: PropertyDecl,
        lets: List[Tuple[str, EnvFn]],
        conditions: List[Tuple[str, EnvFn]],
        confidence_entries: List[Tuple[Optional[str], EnvFn]],
        confidence_is_max: bool,
        severity_entries: List[Tuple[Optional[str], EnvFn]],
        severity_is_max: bool,
    ) -> None:
        self.decl = decl
        self.param_names = [p.name for p in decl.params]
        self.lets = lets
        self.conditions = conditions
        self.confidence_entries = confidence_entries
        self.confidence_is_max = confidence_is_max
        self.severity_entries = severity_entries
        self.severity_is_max = severity_is_max

    def value_of(
        self,
        entries: List[Tuple[Optional[str], EnvFn]],
        is_max: bool,
        conditions: Dict[str, bool],
        env: Dict[str, Any],
    ) -> float:
        """Evaluate a compiled value specification (confidence/severity)."""
        values: List[float] = []
        for guard, fn in entries:
            if guard is not None and not conditions.get(guard, False):
                continue
            values.append(float(fn(env)))
        if not values:
            return 0.0
        return max(values) if (is_max or len(values) > 1) else values[0]


class AslExprCompiler:
    """Compiles ASL expressions into closures for one evaluator instance.

    The compiler resolves non-local names through the evaluator (constants
    honour overrides and the constant cache; the enum binding is fixed at
    evaluator construction), so compiled closures observe exactly what the
    interpretive path would.
    """

    def __init__(self, evaluator) -> None:
        self.evaluator = evaluator
        self.index = evaluator.index
        #: Specification function name → (parameter names, compiled body).
        self._functions: Dict[str, Tuple[List[str], EnvFn]] = {}

    # ------------------------------------------------------------------ #
    # property compilation
    # ------------------------------------------------------------------ #

    def compile_property(self, decl: PropertyDecl) -> CompiledProperty:
        local_names = {p.name for p in decl.params}
        lets: List[Tuple[str, EnvFn]] = []
        for let_def in decl.let_defs:
            # The LET's own name is *not* in scope inside its definition (it
            # may shadow an enum member referenced there).
            fn = self.compile(let_def.value, frozenset(local_names))
            lets.append((let_def.name, fn))
            local_names.add(let_def.name)
        locals_ = frozenset(local_names)
        conditions = [
            (
                condition.cond_id if condition.cond_id is not None else str(position),
                self.compile(condition.expr, locals_),
            )
            for position, condition in enumerate(decl.conditions, start=1)
        ]
        confidence_entries, confidence_is_max = self._compile_value_spec(
            decl.confidence, locals_
        )
        severity_entries, severity_is_max = self._compile_value_spec(
            decl.severity, locals_
        )
        return CompiledProperty(
            decl=decl,
            lets=lets,
            conditions=conditions,
            confidence_entries=confidence_entries,
            confidence_is_max=confidence_is_max,
            severity_entries=severity_entries,
            severity_is_max=severity_is_max,
        )

    def _compile_value_spec(
        self, spec: ValueSpec, locals_: FrozenSet[str]
    ) -> Tuple[List[Tuple[Optional[str], EnvFn]], bool]:
        entries = [
            (entry.guard, self.compile(entry.expr, locals_))
            for entry in spec.entries
        ]
        return entries, spec.is_max

    # ------------------------------------------------------------------ #
    # expression compilation
    # ------------------------------------------------------------------ #

    def compile(self, expr: Expr, locals_: FrozenSet[str]) -> EnvFn:
        """Compile one expression given the compile-time set of local names."""
        if isinstance(expr, (IntLiteral, FloatLiteral, StringLiteral, BoolLiteral)):
            value = expr.value
            return lambda env: value
        if isinstance(expr, Identifier):
            return self._compile_identifier(expr, locals_)
        if isinstance(expr, AttributeAccess):
            return self._compile_attribute(expr, locals_)
        if isinstance(expr, FunctionCall):
            return self._compile_call(expr, locals_)
        if isinstance(expr, UnaryExpr):
            operand = self.compile(expr.operand, locals_)
            if expr.op is UnaryOp.NEG:
                return lambda env: -operand(env)
            if expr.op is UnaryOp.NOT:
                return lambda env: not operand(env)
            raise AssertionError(f"unhandled unary operator {expr.op}")
        if isinstance(expr, BinaryExpr):
            return self._compile_binary(expr, locals_)
        if isinstance(expr, SetComprehension):
            return self._compile_comprehension(expr, locals_)
        if isinstance(expr, AggregateExpr):
            return self._compile_aggregate(expr, locals_)
        raise AslEvaluationError(
            f"unsupported expression node {type(expr).__name__}", expr.location
        )

    # -- helpers ------------------------------------------------------------

    def _compile_identifier(self, expr: Identifier, locals_: FrozenSet[str]) -> EnvFn:
        name = expr.name
        location = expr.location
        if name in locals_:
            def local_fn(env: Dict[str, Any]) -> Any:
                try:
                    return env[name]
                except KeyError:
                    raise AslNameError(f"unbound name {name!r}", location) from None

            return local_fn
        evaluator = self.evaluator
        if (
            name in evaluator._constant_overrides
            or name in self.index.constants
        ):
            return lambda env: evaluator.constant_value(name)
        if name in evaluator._enum_binding:
            value = evaluator._enum_binding[name]
            return lambda env: value
        raise AslNameError(f"unbound name {name!r}", location)

    def _compile_attribute(
        self, expr: AttributeAccess, locals_: FrozenSet[str]
    ) -> EnvFn:
        obj_fn = self.compile(expr.obj, locals_)
        attribute = expr.attribute
        location = expr.location

        def attribute_fn(env: Dict[str, Any]) -> Any:
            obj = obj_fn(env)
            if obj is None:
                raise AslEvaluationError(
                    f"cannot access attribute {attribute!r} of an absent "
                    f"(null) object",
                    location,
                )
            try:
                return getattr(obj, attribute)
            except AttributeError:
                raise AslEvaluationError(
                    f"object of type {type(obj).__name__} has no attribute "
                    f"{attribute!r}",
                    location,
                ) from None

        return attribute_fn

    def _compile_call(self, expr: FunctionCall, locals_: FrozenSet[str]) -> EnvFn:
        arg_fns = [self.compile(arg, locals_) for arg in expr.args]
        if expr.name in self.index.functions:
            param_names, body_fn = self._compiled_function(expr.name)

            def call_fn(env: Dict[str, Any]) -> Any:
                inner = {
                    name: fn(env) for name, fn in zip(param_names, arg_fns)
                }
                return body_fn(inner)

            return call_fn
        upper = expr.name.upper()
        if upper == "MIN" and arg_fns:
            return lambda env: min(fn(env) for fn in arg_fns)
        if upper == "MAX" and arg_fns:
            return lambda env: max(fn(env) for fn in arg_fns)
        if upper == "ABS" and len(arg_fns) == 1:
            arg = arg_fns[0]
            return lambda env: abs(arg(env))
        raise AslNameError(f"unknown function {expr.name!r}", expr.location)

    def _compiled_function(self, name: str) -> Tuple[List[str], EnvFn]:
        cached = self._functions.get(name)
        if cached is not None:
            return cached
        decl = self.index.functions[name]
        param_names = [p.name for p in decl.params]
        # Register a late-bound placeholder first so a (pathological)
        # recursive reference compiles instead of recursing at compile time.
        cell: Dict[str, EnvFn] = {}
        self._functions[name] = (param_names, lambda env: cell["fn"](env))
        body_fn = self.compile(decl.body, frozenset(param_names))
        cell["fn"] = body_fn
        self._functions[name] = (param_names, body_fn)
        return param_names, body_fn

    def _compile_binary(self, expr: BinaryExpr, locals_: FrozenSet[str]) -> EnvFn:
        op = expr.op
        left = self.compile(expr.left, locals_)
        right = self.compile(expr.right, locals_)
        location = expr.location
        if op is BinaryOp.AND:
            return lambda env: bool(left(env)) and bool(right(env))
        if op is BinaryOp.OR:
            return lambda env: bool(left(env)) or bool(right(env))
        if op is BinaryOp.ADD:
            return lambda env: left(env) + right(env)
        if op is BinaryOp.SUB:
            return lambda env: left(env) - right(env)
        if op is BinaryOp.MUL:
            return lambda env: left(env) * right(env)
        if op is BinaryOp.DIV:
            def div_fn(env: Dict[str, Any]) -> Any:
                divisor = right(env)
                if divisor == 0:
                    raise AslEvaluationError("division by zero", location)
                return left(env) / divisor

            return div_fn
        if op is BinaryOp.MOD:
            def mod_fn(env: Dict[str, Any]) -> Any:
                divisor = right(env)
                if divisor == 0:
                    raise AslEvaluationError("modulo by zero", location)
                return left(env) % divisor

            return mod_fn
        if op is BinaryOp.EQ:
            return lambda env: left(env) == right(env)
        if op is BinaryOp.NE:
            return lambda env: left(env) != right(env)
        ordering = {
            BinaryOp.LT: _operator.lt,
            BinaryOp.LE: _operator.le,
            BinaryOp.GT: _operator.gt,
            BinaryOp.GE: _operator.ge,
        }.get(op)
        if ordering is None:
            raise AssertionError(f"unhandled binary operator {op}")

        def order_fn(env: Dict[str, Any]) -> Any:
            a = left(env)
            b = right(env)
            try:
                return ordering(a, b)
            except TypeError as exc:
                raise AslEvaluationError(
                    f"cannot order values {a!r} and {b!r}: {exc}", location
                ) from None

        return order_fn

    def _compile_comprehension(
        self, expr: SetComprehension, locals_: FrozenSet[str]
    ) -> EnvFn:
        source_fn = self.compile(expr.source, locals_)
        var = expr.var
        predicate_fn = (
            self.compile(expr.predicate, locals_ | {var})
            if expr.predicate is not None
            else None
        )

        def comprehension_fn(env: Dict[str, Any]) -> List[Any]:
            source = _iterable(source_fn(env), expr)
            result: List[Any] = []
            saved = env.get(var, _ABSENT)
            try:
                if predicate_fn is None:
                    result.extend(source)
                else:
                    for element in source:
                        env[var] = element
                        if bool(predicate_fn(env)):
                            result.append(element)
            finally:
                if saved is _ABSENT:
                    env.pop(var, None)
                else:
                    env[var] = saved
            return result

        return comprehension_fn

    def _compile_aggregate(
        self, expr: AggregateExpr, locals_: FrozenSet[str]
    ) -> EnvFn:
        if expr.is_unique:
            value_fn = self.compile(expr.value, locals_)
            location = expr.location

            def unique_fn(env: Dict[str, Any]) -> Any:
                elements = list(_iterable(value_fn(env), expr))
                if len(elements) != 1:
                    raise AslEvaluationError(
                        f"UNIQUE applied to a set with {len(elements)} elements "
                        f"(expected exactly one)",
                        location,
                    )
                return elements[0]

            return unique_fn

        if expr.source is None:
            # The parser/checker guarantee a source on non-UNIQUE aggregates;
            # reaching this means a hand-built (or corrupted) AST.
            raise AslEvaluationError(
                f"aggregate {expr.func} has no source collection",
                expr.location,
            )
        source_fn = self.compile(expr.source, locals_)
        var = expr.var
        inner_locals = locals_ | {var} if var else locals_
        predicate_fn = (
            self.compile(expr.predicate, inner_locals)
            if expr.predicate is not None
            else None
        )
        value_fn = self.compile(expr.value, inner_locals)
        func = expr.func
        location = expr.location

        def aggregate_fn(env: Dict[str, Any]) -> Any:
            source = _iterable(source_fn(env), expr)
            values: List[Any] = []
            saved = env.get(var, _ABSENT)
            try:
                for element in source:
                    env[var] = element
                    if predicate_fn is not None and not bool(predicate_fn(env)):
                        continue
                    values.append(value_fn(env))
            finally:
                if saved is _ABSENT:
                    env.pop(var, None)
                else:
                    env[var] = saved
            if func == "COUNT":
                return len(values)
            if func == "SUM":
                return sum(values) if values else 0
            if not values:
                raise AslEvaluationError(
                    f"aggregate {func} applied to an empty set", location
                )
            if func == "MIN":
                return min(values)
            if func == "MAX":
                return max(values)
            if func == "AVG":
                return sum(values) / len(values)
            raise AslEvaluationError(f"unknown aggregate {func!r}", location)

        return aggregate_fn


def _iterable(value: Any, expr: Expr) -> Iterable[Any]:
    if isinstance(value, (list, tuple, set, frozenset)):
        return value
    if isinstance(value, str) or not hasattr(value, "__iter__"):
        raise AslEvaluationError(
            f"expected a set-valued expression, found {type(value).__name__}",
            expr.location,
        )
    return value
