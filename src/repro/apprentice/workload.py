"""Predefined synthetic workloads.

The paper's introduction motivates KOJAK with the observation that "frequently,
the revealed performance bottlenecks belong to a small number of well-defined
performance problems, such as load balancing and excessive message passing
overhead".  The factory functions here build workload specifications with
exactly those well-defined, *injected* bottlenecks so that the COSY properties
(and the baseline analyzers) have ground truth to detect:

``stencil``
    a well-balanced nearest-neighbour stencil solver whose only overheads are
    halo exchange and a per-iteration reduction;
``imbalanced``
    the same solver with a strongly imbalanced work distribution, making the
    barrier in the solver loop the dominant cost (the ``LoadImbalance``
    scenario of Section 4.2);
``io_bound``
    a solver that writes serialized checkpoints, producing large I/O cost;
``comm_bound``
    a spectral-like code dominated by all-to-all transposes;
``mixed``
    a multi-phase application combining all of the above, used by the
    quickstart example and the E4 benchmark;
``scalable``
    a parameterisable workload (number of functions / regions / call sites)
    used to grow the database for the Section 5 benchmarks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.apprentice.program_model import (
    CallSpec,
    CommPattern,
    FunctionSpec,
    RegionSpec,
    WorkloadSpec,
)
from repro.datamodel.entities import RegionKind

__all__ = [
    "synthetic_workload",
    "stencil_workload",
    "imbalanced_workload",
    "io_bound_workload",
    "comm_bound_workload",
    "mixed_workload",
    "scalable_workload",
    "WORKLOAD_FACTORIES",
]


def stencil_workload(work: float = 40.0, iterations: int = 50) -> WorkloadSpec:
    """Balanced 2-D stencil solver with halo exchange and a residual reduction."""
    solver_loop = RegionSpec(
        name="solver_loop",
        kind=RegionKind.LOOP,
        work=0.0,
        source_file="stencil.f90",
        first_line=40,
        last_line=95,
    )
    solver_loop.add_child(
        RegionSpec(
            name="stencil_update",
            kind=RegionKind.LOOP,
            work=work * 0.85,
            imbalance=0.02,
            comm_pattern=CommPattern.NEAREST,
            comm_time=0.002 * iterations,
            source_file="stencil.f90",
            first_line=45,
            last_line=70,
            calls=[
                CallSpec("mpi_send", calls_per_pe=4 * iterations, time_per_call=2e-5),
                CallSpec("mpi_recv", calls_per_pe=4 * iterations, time_per_call=3e-5),
            ],
        )
    )
    solver_loop.add_child(
        RegionSpec(
            name="residual_reduce",
            kind=RegionKind.BASIC_BLOCK,
            work=work * 0.05,
            barriers=iterations,
            comm_pattern=CommPattern.REDUCTION,
            comm_time=0.001 * iterations,
            source_file="stencil.f90",
            first_line=71,
            last_line=80,
            calls=[
                CallSpec("global_sum", calls_per_pe=iterations, time_per_call=4e-5),
                CallSpec(
                    "barrier",
                    calls_per_pe=iterations,
                    time_per_call=2e-5,
                    imbalance=0.05,
                ),
            ],
        )
    )
    init = RegionSpec(
        name="init_grid",
        kind=RegionKind.SUBPROGRAM,
        work=work * 0.05,
        serial_fraction=0.2,
        source_file="stencil.f90",
        first_line=10,
        last_line=30,
    )
    main_body = RegionSpec(
        name="stencil_main",
        kind=RegionKind.PROGRAM,
        work=work * 0.05,
        serial_fraction=0.5,
        source_file="stencil.f90",
        first_line=1,
        last_line=120,
        children=[init, solver_loop],
        calls=[CallSpec("barrier", calls_per_pe=2, time_per_call=2e-5)],
    )
    workload = WorkloadSpec(name="stencil", functions=[])
    workload.add_function(FunctionSpec(name="main", body=main_body))
    workload.validate()
    return workload


def imbalanced_workload(
    work: float = 40.0, imbalance: float = 0.6, iterations: int = 50
) -> WorkloadSpec:
    """Stencil-like solver with a strongly imbalanced work distribution.

    The per-process work in the ``particle_push`` loop varies with coefficient
    of variation ``imbalance``; every iteration ends at a barrier, so the
    imbalance shows up as barrier waiting time — exactly the refinement chain
    SyncCost → LoadImbalance described in Section 4.2 of the paper.
    """
    push_loop = RegionSpec(
        name="particle_push",
        kind=RegionKind.LOOP,
        work=work * 0.8,
        imbalance=imbalance,
        barriers=iterations,
        comm_pattern=CommPattern.NEAREST,
        comm_time=0.001 * iterations,
        source_file="particles.f90",
        first_line=55,
        last_line=110,
        calls=[
            CallSpec(
                "barrier",
                calls_per_pe=iterations,
                time_per_call=2e-5,
                imbalance=imbalance,
            ),
            CallSpec("mpi_send", calls_per_pe=2 * iterations, time_per_call=2e-5),
        ],
    )
    sort_phase = RegionSpec(
        name="particle_sort",
        kind=RegionKind.SUBPROGRAM,
        work=work * 0.15,
        imbalance=imbalance * 0.5,
        barriers=1,
        source_file="particles.f90",
        first_line=120,
        last_line=160,
        calls=[CallSpec("barrier", calls_per_pe=1, time_per_call=2e-5, imbalance=imbalance * 0.5)],
    )
    main_body = RegionSpec(
        name="particles_main",
        kind=RegionKind.PROGRAM,
        work=work * 0.05,
        serial_fraction=0.3,
        source_file="particles.f90",
        first_line=1,
        last_line=170,
        children=[push_loop, sort_phase],
    )
    workload = WorkloadSpec(name="particles_imbalanced", functions=[])
    workload.add_function(FunctionSpec(name="main", body=main_body))
    workload.validate()
    return workload


def io_bound_workload(work: float = 30.0, checkpoint_io: float = 8.0) -> WorkloadSpec:
    """Compute phase followed by a serialized checkpoint write."""
    compute = RegionSpec(
        name="timestep_loop",
        kind=RegionKind.LOOP,
        work=work,
        imbalance=0.05,
        barriers=20,
        comm_pattern=CommPattern.NEAREST,
        comm_time=0.02,
        source_file="checkpointed.f90",
        first_line=30,
        last_line=90,
        calls=[CallSpec("barrier", calls_per_pe=20, time_per_call=2e-5)],
    )
    checkpoint = RegionSpec(
        name="write_checkpoint",
        kind=RegionKind.SUBPROGRAM,
        work=work * 0.01,
        io_time=checkpoint_io,
        io_parallel=False,
        barriers=1,
        source_file="checkpointed.f90",
        first_line=95,
        last_line=140,
        calls=[
            CallSpec("io", calls_per_pe=4, time_per_call=1e-3, imbalance=0.3),
            CallSpec("barrier", calls_per_pe=1, time_per_call=2e-5, imbalance=0.2),
        ],
    )
    main_body = RegionSpec(
        name="checkpointed_main",
        kind=RegionKind.PROGRAM,
        work=work * 0.02,
        serial_fraction=0.4,
        source_file="checkpointed.f90",
        first_line=1,
        last_line=150,
        children=[compute, checkpoint],
    )
    workload = WorkloadSpec(name="checkpointed", functions=[])
    workload.add_function(FunctionSpec(name="main", body=main_body))
    workload.validate()
    return workload


def comm_bound_workload(work: float = 30.0, transpose_time: float = 0.15) -> WorkloadSpec:
    """Spectral-style code dominated by all-to-all transposes."""
    fft_loop = RegionSpec(
        name="fft_loop",
        kind=RegionKind.LOOP,
        work=work * 0.9,
        imbalance=0.03,
        source_file="spectral.f90",
        first_line=25,
        last_line=60,
    )
    transpose = RegionSpec(
        name="transpose",
        kind=RegionKind.SUBPROGRAM,
        work=work * 0.05,
        comm_pattern=CommPattern.ALLTOALL,
        comm_time=transpose_time,
        barriers=10,
        source_file="spectral.f90",
        first_line=65,
        last_line=110,
        calls=[
            CallSpec("mpi_send", calls_per_pe=200, time_per_call=1e-5),
            CallSpec("mpi_recv", calls_per_pe=200, time_per_call=1.5e-5),
            CallSpec("barrier", calls_per_pe=10, time_per_call=2e-5),
        ],
    )
    main_body = RegionSpec(
        name="spectral_main",
        kind=RegionKind.PROGRAM,
        work=work * 0.05,
        serial_fraction=0.2,
        source_file="spectral.f90",
        first_line=1,
        last_line=120,
        children=[fft_loop, transpose],
    )
    workload = WorkloadSpec(name="spectral", functions=[])
    workload.add_function(FunctionSpec(name="main", body=main_body))
    workload.validate()
    return workload


def mixed_workload(work: float = 60.0) -> WorkloadSpec:
    """Multi-phase application combining imbalance, collectives and I/O.

    This is the workload the quickstart example and the E4 benchmark analyze:
    it contains a dominant load-imbalance bottleneck, a secondary all-to-all
    communication cost and a small serialized I/O phase, so the severity
    ranking produced by COSY has a well-defined expected order.
    """
    setup = RegionSpec(
        name="setup",
        kind=RegionKind.SUBPROGRAM,
        work=work * 0.04,
        serial_fraction=0.6,
        io_time=0.5,
        io_parallel=False,
        source_file="app.f90",
        first_line=5,
        last_line=40,
        calls=[CallSpec("io", calls_per_pe=2, time_per_call=5e-4)],
    )
    assemble = RegionSpec(
        name="assemble_matrix",
        kind=RegionKind.LOOP,
        work=work * 0.35,
        imbalance=0.5,
        barriers=25,
        comm_pattern=CommPattern.NEAREST,
        comm_time=0.03,
        source_file="app.f90",
        first_line=45,
        last_line=120,
        calls=[
            CallSpec("barrier", calls_per_pe=25, time_per_call=2e-5, imbalance=0.5),
            CallSpec("mpi_send", calls_per_pe=100, time_per_call=2e-5),
        ],
    )
    solve = RegionSpec(
        name="solve_system",
        kind=RegionKind.SUBPROGRAM,
        work=work * 0.45,
        imbalance=0.08,
        barriers=40,
        comm_pattern=CommPattern.REDUCTION,
        comm_time=0.08,
        source_file="solver.f90",
        first_line=10,
        last_line=150,
        calls=[
            CallSpec("global_sum", calls_per_pe=120, time_per_call=4e-5),
            CallSpec("barrier", calls_per_pe=40, time_per_call=2e-5, imbalance=0.08),
        ],
    )
    exchange = RegionSpec(
        name="field_exchange",
        kind=RegionKind.SUBPROGRAM,
        work=work * 0.06,
        comm_pattern=CommPattern.ALLTOALL,
        comm_time=0.06,
        source_file="solver.f90",
        first_line=160,
        last_line=200,
        calls=[
            CallSpec("mpi_send", calls_per_pe=150, time_per_call=1e-5),
            CallSpec("mpi_recv", calls_per_pe=150, time_per_call=1.5e-5),
        ],
    )
    output = RegionSpec(
        name="write_results",
        kind=RegionKind.SUBPROGRAM,
        work=work * 0.02,
        io_time=1.5,
        io_parallel=False,
        barriers=1,
        source_file="app.f90",
        first_line=130,
        last_line=160,
        calls=[
            CallSpec("io", calls_per_pe=3, time_per_call=1e-3, imbalance=0.2),
            CallSpec("barrier", calls_per_pe=1, time_per_call=2e-5),
        ],
    )
    main_body = RegionSpec(
        name="app_main",
        kind=RegionKind.PROGRAM,
        work=work * 0.08,
        serial_fraction=0.35,
        source_file="app.f90",
        first_line=1,
        last_line=170,
        children=[setup, assemble, solve, exchange, output],
    )
    workload = WorkloadSpec(name="mixed_app", functions=[])
    workload.add_function(FunctionSpec(name="main", body=main_body))
    workload.validate()
    return workload


def scalable_workload(
    functions: int = 8,
    regions_per_function: int = 6,
    calls_per_region: int = 2,
    work_per_region: float = 1.0,
    name: str = "scalable",
) -> WorkloadSpec:
    """Parameterisable workload used to grow the database for benchmarks.

    ``functions * regions_per_function`` leaf regions are generated, each with
    a small rotation of bottleneck behaviours (imbalance, barrier, reduction,
    all-to-all, I/O) so that the generated database exercises every property.
    """
    if functions < 1 or regions_per_function < 1:
        raise ValueError("functions and regions_per_function must be >= 1")
    workload = WorkloadSpec(name=name, functions=[])
    for fi in range(functions):
        fname = "main" if fi == 0 else f"phase_{fi:03d}"
        body = RegionSpec(
            name=f"{fname}_body",
            kind=RegionKind.PROGRAM if fi == 0 else RegionKind.SUBPROGRAM,
            work=work_per_region * 0.2,
            serial_fraction=0.3 if fi == 0 else 0.0,
            source_file=f"{fname}.f90",
            first_line=1,
            last_line=20 + 10 * regions_per_function,
        )
        for ri in range(regions_per_function):
            flavour = (fi * regions_per_function + ri) % 5
            region = RegionSpec(
                name=f"{fname}_region_{ri:03d}",
                kind=RegionKind.LOOP if ri % 2 == 0 else RegionKind.BASIC_BLOCK,
                work=work_per_region,
                imbalance=0.4 if flavour == 0 else 0.05,
                barriers=5 if flavour in (0, 1) else 0,
                comm_pattern=(
                    CommPattern.REDUCTION
                    if flavour == 2
                    else CommPattern.ALLTOALL
                    if flavour == 3
                    else CommPattern.NEAREST
                    if flavour == 1
                    else CommPattern.NONE
                ),
                comm_time=0.01 if flavour in (1, 2, 3) else 0.0,
                io_time=0.2 if flavour == 4 else 0.0,
                io_parallel=False,
                source_file=f"{fname}.f90",
                first_line=20 + 10 * ri,
                last_line=29 + 10 * ri,
            )
            for ci in range(calls_per_region):
                callee = ("barrier", "mpi_send", "global_sum", "io")[ci % 4]
                region.calls.append(
                    CallSpec(
                        callee,
                        calls_per_pe=5.0 + ci,
                        time_per_call=2e-5,
                        imbalance=0.3 if flavour == 0 else 0.05,
                    )
                )
            body.add_child(region)
        workload.add_function(FunctionSpec(name=fname, body=body))
    workload.validate()
    return workload


WORKLOAD_FACTORIES = {
    "stencil": stencil_workload,
    "imbalanced": imbalanced_workload,
    "io_bound": io_bound_workload,
    "comm_bound": comm_bound_workload,
    "mixed": mixed_workload,
    "scalable": scalable_workload,
}


def synthetic_workload(kind: str = "mixed", **kwargs: object) -> WorkloadSpec:
    """Build one of the predefined synthetic workloads by name.

    Parameters
    ----------
    kind:
        One of ``stencil``, ``imbalanced``, ``io_bound``, ``comm_bound``,
        ``mixed`` or ``scalable``.
    kwargs:
        Forwarded to the selected factory (e.g. ``imbalance=0.8`` for the
        imbalanced workload, ``functions=20`` for the scalable one).
    """
    try:
        factory = WORKLOAD_FACTORIES[kind]
    except KeyError:
        raise KeyError(
            f"unknown workload kind {kind!r}; available: "
            f"{sorted(WORKLOAD_FACTORIES)}"
        ) from None
    return factory(**kwargs)  # type: ignore[arg-type]
