"""Simulated Cray MPP Apprentice measurement environment (data supply tool).

This package replaces the paper's Cray T3E + Apprentice setup with a
deterministic parallel-execution simulator:

* :mod:`repro.apprentice.program_model` — synthetic application descriptions;
* :mod:`repro.apprentice.workload` — predefined workloads with injected,
  well-defined bottlenecks (load imbalance, all-to-all communication,
  serialized I/O …);
* :mod:`repro.apprentice.simulator` — turns a workload plus processor counts
  into Apprentice-style summary data inside a
  :class:`~repro.datamodel.PerformanceDatabase`;
* :mod:`repro.apprentice.export` — the summary-file format (exporter/parser)
  that models the file Apprentice writes before it is transferred into the
  relational database.
"""

from repro.apprentice.export import (
    ApprenticeExport,
    ApprenticeFormatError,
    ApprenticeParser,
)
from repro.apprentice.program_model import (
    CallSpec,
    CommPattern,
    FunctionSpec,
    RegionSpec,
    WorkloadError,
    WorkloadSpec,
)
from repro.apprentice.rng import imbalanced_shares, rng_for, stable_seed
from repro.apprentice.simulator import (
    ExecutionSimulator,
    RegionMeasurement,
    SimulationConfig,
    simulate,
)
from repro.apprentice.workload import (
    WORKLOAD_FACTORIES,
    comm_bound_workload,
    imbalanced_workload,
    io_bound_workload,
    mixed_workload,
    scalable_workload,
    stencil_workload,
    synthetic_workload,
)

__all__ = [
    "ApprenticeExport",
    "ApprenticeFormatError",
    "ApprenticeParser",
    "CallSpec",
    "CommPattern",
    "ExecutionSimulator",
    "FunctionSpec",
    "RegionMeasurement",
    "RegionSpec",
    "SimulationConfig",
    "WORKLOAD_FACTORIES",
    "WorkloadError",
    "WorkloadSpec",
    "comm_bound_workload",
    "imbalanced_shares",
    "imbalanced_workload",
    "io_bound_workload",
    "mixed_workload",
    "rng_for",
    "scalable_workload",
    "simulate",
    "stable_seed",
    "stencil_workload",
    "synthetic_workload",
]
