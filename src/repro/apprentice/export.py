"""Apprentice-style summary files: exporter and parser.

The paper (Section 3) describes the data flow of COSY: *"After program
execution Apprentice is started.  Apprentice then computes summary data for
program regions … The resulting information is written to a file and
transferred into the database."*

This module defines that intermediate summary-file format for the simulated
measurement environment.  :class:`ApprenticeExport` serialises a populated
:class:`~repro.datamodel.PerformanceDatabase` into a line-oriented text file;
:class:`ApprenticeParser` reads such a file back into a repository.  The
round trip is exact up to floating-point formatting (12 significant digits)
and is covered by property-based tests.

Format (one record per line, fields separated by ``|``)::

    APPRENTICE-SUMMARY|1.0
    PROGRAM|<name>
    VERSION|<label>|<compilation iso-datetime>
    SOURCE|<path>|<number of lines>          (source text follows, prefixed '>')
    RUN|<run id>|<start iso-datetime>|<nope>|<clock MHz>
    FUNCTION|<name>
    REGION|<name>|<kind>|<parent name or ->|<file>|<first line>|<last line>
    TOTAL|<region>|<run id>|<excl>|<incl>|<ovhd>
    TYPED|<region>|<run id>|<timing type>|<time>
    CALLSITE|<id>|<function>|<region>|<callee>
    CALLTIMING|<callsite id>|<run id>|<min calls>|<max calls>|<mean calls>|
        <stdev calls>|<min time>|<max time>|<mean time>|<stdev time>|
        <min calls pe>|<max calls pe>|<min time pe>|<max time pe>
"""

from __future__ import annotations

import datetime as _dt
from typing import Dict, Iterable, List, Optional, TextIO, Tuple

from repro.datamodel import (
    CallTiming,
    Function,
    FunctionCall,
    PerformanceDatabase,
    Program,
    ProgVersion,
    Region,
    RegionKind,
    TestRun,
    TimingType,
    TotalTiming,
    TypedTiming,
)

__all__ = ["ApprenticeExport", "ApprenticeParser", "ApprenticeFormatError"]

_FORMAT_VERSION = "1.0"
_SEP = "|"


class ApprenticeFormatError(ValueError):
    """Raised when an Apprentice summary file is malformed."""

    def __init__(self, message: str, lineno: Optional[int] = None) -> None:
        if lineno is not None:
            message = f"line {lineno}: {message}"
        super().__init__(message)
        self.lineno = lineno


def _fmt_float(value: float) -> str:
    return format(float(value), ".12g")


def _fmt_dt(value: _dt.datetime) -> str:
    return value.isoformat()


class ApprenticeExport:
    """Serialise a performance repository into the summary-file format."""

    def __init__(self, database: PerformanceDatabase) -> None:
        self.database = database

    def dumps(self) -> str:
        """Return the summary file as a string."""
        lines: List[str] = [f"APPRENTICE-SUMMARY{_SEP}{_FORMAT_VERSION}"]
        for program in self.database.programs:
            self._dump_program(program, lines)
        return "\n".join(lines) + "\n"

    def dump(self, stream: TextIO) -> None:
        """Write the summary file to an open text stream."""
        stream.write(self.dumps())

    def dump_path(self, path: str) -> None:
        """Write the summary file to ``path``."""
        with open(path, "w", encoding="utf-8") as stream:
            self.dump(stream)

    # ------------------------------------------------------------------ #

    def _dump_program(self, program: Program, lines: List[str]) -> None:
        lines.append(f"PROGRAM{_SEP}{program.Name}")
        for version in program.Versions:
            self._dump_version(version, lines)

    def _dump_version(self, version: ProgVersion, lines: List[str]) -> None:
        lines.append(
            f"VERSION{_SEP}{version.label}{_SEP}{_fmt_dt(version.Compilation)}"
        )
        for path, text in sorted(version.Code.files.items()):
            source_lines = text.splitlines()
            lines.append(f"SOURCE{_SEP}{path}{_SEP}{len(source_lines)}")
            lines.extend(">" + line for line in source_lines)
        for run in version.Runs:
            lines.append(
                _SEP.join(
                    [
                        "RUN",
                        str(run.uid),
                        _fmt_dt(run.Start),
                        str(run.NoPe),
                        str(run.Clockspeed),
                    ]
                )
            )
        for function in version.Functions:
            self._dump_function(function, lines)

    def _dump_function(self, function: Function, lines: List[str]) -> None:
        lines.append(f"FUNCTION{_SEP}{function.Name}")
        for region in function.Regions:
            parent = region.ParentRegion.name if region.ParentRegion else "-"
            lines.append(
                _SEP.join(
                    [
                        "REGION",
                        region.name,
                        region.kind.value,
                        parent,
                        region.source_file or "-",
                        str(region.first_line),
                        str(region.last_line),
                    ]
                )
            )
        for region in function.Regions:
            for total in region.TotTimes:
                lines.append(
                    _SEP.join(
                        [
                            "TOTAL",
                            region.name,
                            str(total.Run.uid),
                            _fmt_float(total.Excl),
                            _fmt_float(total.Incl),
                            _fmt_float(total.Ovhd),
                        ]
                    )
                )
            for typed in region.TypTimes:
                lines.append(
                    _SEP.join(
                        [
                            "TYPED",
                            region.name,
                            str(typed.Run.uid),
                            typed.Type.value,
                            _fmt_float(typed.Time),
                        ]
                    )
                )
        for call in function.Calls:
            lines.append(
                _SEP.join(
                    [
                        "CALLSITE",
                        str(call.uid),
                        function.Name,
                        call.CallingReg.name,
                        call.callee_name or "-",
                    ]
                )
            )
            for timing in call.Sums:
                lines.append(
                    _SEP.join(
                        [
                            "CALLTIMING",
                            str(call.uid),
                            str(timing.Run.uid),
                            _fmt_float(timing.MinCalls),
                            _fmt_float(timing.MaxCalls),
                            _fmt_float(timing.MeanCalls),
                            _fmt_float(timing.StdevCalls),
                            _fmt_float(timing.MinTime),
                            _fmt_float(timing.MaxTime),
                            _fmt_float(timing.MeanTime),
                            _fmt_float(timing.StdevTime),
                            str(timing.MinCallsPe),
                            str(timing.MaxCallsPe),
                            str(timing.MinTimePe),
                            str(timing.MaxTimePe),
                        ]
                    )
                )


class ApprenticeParser:
    """Parse an Apprentice summary file back into a performance repository."""

    def __init__(self) -> None:
        self._database = PerformanceDatabase()
        self._program: Optional[Program] = None
        self._version: Optional[ProgVersion] = None
        self._function: Optional[Function] = None
        self._runs: Dict[str, TestRun] = {}
        self._regions: Dict[str, Region] = {}
        self._calls: Dict[str, FunctionCall] = {}
        self._pending_source: Optional[Tuple[str, int, List[str]]] = None

    # ------------------------------------------------------------------ #

    def loads(self, text: str) -> PerformanceDatabase:
        """Parse ``text`` and return the populated repository."""
        lines = text.splitlines()
        if not lines or not lines[0].startswith("APPRENTICE-SUMMARY"):
            raise ApprenticeFormatError(
                "missing APPRENTICE-SUMMARY header", lineno=1
            )
        header = lines[0].split(_SEP)
        if len(header) != 2 or header[1] != _FORMAT_VERSION:
            raise ApprenticeFormatError(
                f"unsupported summary format version {header[1:]}", lineno=1
            )
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            self._parse_line(line, lineno)
        if self._pending_source is not None:
            raise ApprenticeFormatError(
                f"source block for {self._pending_source[0]!r} is truncated"
            )
        self._database.validate()
        return self._database

    def load(self, stream: TextIO) -> PerformanceDatabase:
        """Parse from an open text stream."""
        return self.loads(stream.read())

    def load_path(self, path: str) -> PerformanceDatabase:
        """Parse the file at ``path``."""
        with open(path, "r", encoding="utf-8") as stream:
            return self.load(stream)

    # ------------------------------------------------------------------ #

    def _parse_line(self, line: str, lineno: int) -> None:
        if self._pending_source is not None:
            path, remaining, collected = self._pending_source
            if not line.startswith(">"):
                raise ApprenticeFormatError(
                    f"expected {remaining} more source lines for {path!r}", lineno
                )
            collected.append(line[1:])
            if len(collected) == remaining:
                if self._version is None:
                    raise ApprenticeFormatError(
                        f"source lines for {path!r} outside a version record",
                        lineno,
                    )
                self._version.Code.add_file(path, "\n".join(collected) + "\n")
                self._pending_source = None
            return

        fields = line.split(_SEP)
        record = fields[0]
        handler = getattr(self, f"_parse_{record.lower()}", None)
        if handler is None:
            raise ApprenticeFormatError(f"unknown record type {record!r}", lineno)
        try:
            handler(fields, lineno)
        except (ValueError, KeyError) as exc:
            if isinstance(exc, ApprenticeFormatError):
                raise
            raise ApprenticeFormatError(str(exc), lineno) from exc

    # -- record handlers -----------------------------------------------------

    def _require(self, fields: List[str], count: int, lineno: int) -> None:
        if len(fields) != count:
            raise ApprenticeFormatError(
                f"record {fields[0]} expects {count} fields, got {len(fields)}",
                lineno,
            )

    def _parse_program(self, fields: List[str], lineno: int) -> None:
        self._require(fields, 2, lineno)
        self._program = self._database.create_program(fields[1])
        self._version = None

    def _parse_version(self, fields: List[str], lineno: int) -> None:
        self._require(fields, 3, lineno)
        if self._program is None:
            raise ApprenticeFormatError("VERSION before PROGRAM", lineno)
        self._version = ProgVersion(
            Compilation=_dt.datetime.fromisoformat(fields[2]), label=fields[1]
        )
        self._program.add_version(self._version)
        self._function = None
        self._runs = {}
        self._regions = {}
        self._calls = {}

    def _parse_source(self, fields: List[str], lineno: int) -> None:
        self._require(fields, 3, lineno)
        if self._version is None:
            raise ApprenticeFormatError("SOURCE before VERSION", lineno)
        count = int(fields[2])
        if count == 0:
            self._version.Code.add_file(fields[1], "")
        else:
            self._pending_source = (fields[1], count, [])

    def _parse_run(self, fields: List[str], lineno: int) -> None:
        self._require(fields, 5, lineno)
        if self._version is None:
            raise ApprenticeFormatError("RUN before VERSION", lineno)
        run = TestRun(
            Start=_dt.datetime.fromisoformat(fields[2]),
            NoPe=int(fields[3]),
            Clockspeed=int(fields[4]),
        )
        self._version.add_run(run)
        self._runs[fields[1]] = run

    def _parse_function(self, fields: List[str], lineno: int) -> None:
        self._require(fields, 2, lineno)
        if self._version is None:
            raise ApprenticeFormatError("FUNCTION before VERSION", lineno)
        self._function = Function(Name=fields[1])
        self._version.add_function(self._function)

    def _parse_region(self, fields: List[str], lineno: int) -> None:
        self._require(fields, 7, lineno)
        if self._function is None:
            raise ApprenticeFormatError("REGION before FUNCTION", lineno)
        parent = None
        if fields[3] != "-":
            parent = self._regions.get(fields[3])
            if parent is None:
                raise ApprenticeFormatError(
                    f"region {fields[1]!r} references unknown parent {fields[3]!r}",
                    lineno,
                )
        region = Region(
            name=fields[1],
            kind=RegionKind(fields[2]),
            ParentRegion=parent,
            source_file="" if fields[4] == "-" else fields[4],
            first_line=int(fields[5]),
            last_line=int(fields[6]),
        )
        self._function.add_region(region)
        self._regions[region.name] = region

    def _parse_total(self, fields: List[str], lineno: int) -> None:
        self._require(fields, 6, lineno)
        region = self._lookup_region(fields[1], lineno)
        run = self._lookup_run(fields[2], lineno)
        region.add_total_timing(
            TotalTiming(
                Run=run,
                Excl=float(fields[3]),
                Incl=float(fields[4]),
                Ovhd=float(fields[5]),
            )
        )

    def _parse_typed(self, fields: List[str], lineno: int) -> None:
        self._require(fields, 5, lineno)
        region = self._lookup_region(fields[1], lineno)
        run = self._lookup_run(fields[2], lineno)
        region.add_typed_timing(
            TypedTiming(
                Run=run,
                Type=TimingType.from_name(fields[3]),
                Time=float(fields[4]),
            )
        )

    def _parse_callsite(self, fields: List[str], lineno: int) -> None:
        self._require(fields, 5, lineno)
        if self._version is None:
            raise ApprenticeFormatError("CALLSITE before VERSION", lineno)
        function = self._version.function_by_name(fields[2])
        region = self._lookup_region(fields[3], lineno)
        call = FunctionCall(
            Caller=function,
            CallingReg=region,
            callee_name="" if fields[4] == "-" else fields[4],
        )
        function.add_call(call)
        self._calls[fields[1]] = call

    def _parse_calltiming(self, fields: List[str], lineno: int) -> None:
        self._require(fields, 15, lineno)
        call = self._calls.get(fields[1])
        if call is None:
            raise ApprenticeFormatError(
                f"CALLTIMING references unknown call site {fields[1]!r}", lineno
            )
        run = self._lookup_run(fields[2], lineno)
        call.add_call_timing(
            CallTiming(
                Run=run,
                MinCalls=float(fields[3]),
                MaxCalls=float(fields[4]),
                MeanCalls=float(fields[5]),
                StdevCalls=float(fields[6]),
                MinTime=float(fields[7]),
                MaxTime=float(fields[8]),
                MeanTime=float(fields[9]),
                StdevTime=float(fields[10]),
                MinCallsPe=int(fields[11]),
                MaxCallsPe=int(fields[12]),
                MinTimePe=int(fields[13]),
                MaxTimePe=int(fields[14]),
            )
        )

    # -- lookup helpers --------------------------------------------------------

    def _lookup_region(self, name: str, lineno: int) -> Region:
        region = self._regions.get(name)
        if region is None:
            raise ApprenticeFormatError(f"unknown region {name!r}", lineno)
        return region

    def _lookup_run(self, run_id: str, lineno: int) -> TestRun:
        run = self._runs.get(run_id)
        if run is None:
            raise ApprenticeFormatError(f"unknown run id {run_id!r}", lineno)
        return run
