"""Parallel-execution simulator producing Apprentice-style summary data.

The paper's COSY prototype obtains its performance data from the Cray MPP
Apprentice tool on a Cray T3E.  This module is the substitute for that
measurement environment: given a :class:`~repro.apprentice.program_model.WorkloadSpec`
and a :class:`SimulationConfig` it "executes" the synthetic application for a
series of processor counts and produces a fully populated
:class:`~repro.datamodel.PerformanceDatabase` with

* one :class:`~repro.datamodel.TestRun` per processor count,
* one :class:`~repro.datamodel.TotalTiming` per region and run (summed
  exclusive / inclusive / overhead times over all processes, exactly the
  Apprentice summary semantics described in Section 3 of the paper),
* :class:`~repro.datamodel.TypedTiming` objects for the overhead categories
  a region incurs (inclusive of nested regions, at most one per type and run),
* :class:`~repro.datamodel.CallTiming` statistics (min / max / mean / stdev of
  per-process call counts and times, with the extremal processor ids) for every
  call site, including the calls to the barrier routine that the
  ``LoadImbalance`` property inspects.

Cost model
----------

For a run on ``P`` processors, each region's useful work ``w`` is split into a
serial part (replicated on every process — the classic reason for sublinear
speedup) and a parallel part divided among the processes, perturbed by the
region's load-imbalance factor.  Regions that synchronise at barriers turn the
per-process work spread into barrier waiting time; communication time scales
with the region's communication pattern (constant for nearest-neighbour,
``log2 P`` for reductions/broadcasts, linear in ``P`` for all-to-all); I/O is
either divided among the processes or serialised (every other process waits).
All times are summed over processes before they are stored, because "all
timings in the database are summed up values of all processes" (Section 4.2).
"""

from __future__ import annotations

import datetime as _dt
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.apprentice.program_model import (
    CallSpec,
    CommPattern,
    FunctionSpec,
    RegionSpec,
    WorkloadSpec,
)
from repro.apprentice.rng import imbalanced_shares, rng_for
from repro.datamodel import (
    CallTiming,
    Function,
    FunctionCall,
    PerformanceDatabase,
    Program,
    ProgVersion,
    Region,
    RegionKind,
    TestRun,
    TimingType,
    TotalTiming,
    TypedTiming,
)

__all__ = ["SimulationConfig", "ExecutionSimulator", "RegionMeasurement", "simulate"]


@dataclass
class SimulationConfig:
    """Parameters of the simulated machine and measurement environment."""

    #: Processor counts to execute; one :class:`TestRun` is produced per entry.
    pe_counts: Sequence[int] = (1, 2, 4, 8, 16, 32)
    #: Clock speed of the simulated machine in MHz (Cray T3E-900: 450 MHz).
    clock_mhz: int = 300
    #: Base latency of one barrier operation (seconds, scaled by ``log2 P``).
    barrier_latency: float = 5.0e-6
    #: Relative measurement noise applied to every aggregated timing.
    measurement_jitter: float = 0.01
    #: Fraction of computation time additionally spent on cache misses.
    cache_miss_fraction: float = 0.04
    #: Start timestamp of the first run; subsequent runs are one minute apart.
    start_time: _dt.datetime = field(
        default_factory=lambda: _dt.datetime(2000, 1, 17, 9, 0, 0)
    )
    #: Additional seed mixed into every random draw.
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.pe_counts:
            raise ValueError("pe_counts must not be empty")
        if any(p <= 0 for p in self.pe_counts):
            raise ValueError(f"pe_counts must be positive, got {self.pe_counts}")
        if self.clock_mhz <= 0:
            raise ValueError("clock_mhz must be positive")
        if self.measurement_jitter < 0:
            raise ValueError("measurement_jitter must be >= 0")


@dataclass
class RegionMeasurement:
    """Per-process measurements of one region in one run (before aggregation)."""

    #: Useful computation per process (seconds).
    compute: np.ndarray
    #: Time per process, per timing type (seconds).  The computation types
    #: (FloatingPoint, IntegerOps, LoadStore) are a *breakdown* of ``compute``
    #: and are not added again when forming the exclusive time.
    typed: Dict[TimingType, np.ndarray]

    @property
    def exclusive(self) -> np.ndarray:
        """Per-process exclusive time: computation plus all overhead types."""
        return self.compute + self.overhead

    @property
    def overhead(self) -> np.ndarray:
        """Per-process overhead time (only overhead-classified types)."""
        total = np.zeros_like(self.compute)
        for timing_type, values in self.typed.items():
            if timing_type.is_overhead:
                total = total + values
        return total


class ExecutionSimulator:
    """Simulates test runs of a synthetic workload and populates a repository."""

    def __init__(
        self, workload: WorkloadSpec, config: Optional[SimulationConfig] = None
    ) -> None:
        workload.validate()
        self.workload = workload
        self.config = config or SimulationConfig()
        self._region_objects: Dict[str, Region] = {}
        self._call_objects: Dict[Tuple[str, str], FunctionCall] = {}

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def run(
        self,
        database: Optional[PerformanceDatabase] = None,
        version_label: str = "v1",
    ) -> PerformanceDatabase:
        """Simulate every configured processor count and return the repository."""
        database = database or PerformanceDatabase()
        version = self._build_static_structure(database, version_label)
        for index, pe_count in enumerate(self.config.pe_counts):
            run = TestRun(
                Start=self.config.start_time + _dt.timedelta(minutes=index),
                NoPe=int(pe_count),
                Clockspeed=self.config.clock_mhz,
            )
            version.add_run(run)
            self._simulate_run(run)
        database.validate()
        return database

    # ------------------------------------------------------------------ #
    # static structure
    # ------------------------------------------------------------------ #

    def _build_static_structure(
        self, database: PerformanceDatabase, version_label: str
    ) -> ProgVersion:
        """Create Program / ProgVersion / Function / Region / FunctionCall objects."""
        if self.workload.name in database:
            program = database.program(self.workload.name)
        else:
            program = database.create_program(self.workload.name)
        version = ProgVersion(
            Compilation=self.config.start_time - _dt.timedelta(hours=1),
            label=version_label,
        )
        program.add_version(version)
        version.Code.add_file(
            f"{self.workload.name}.f90",
            _synthetic_source(self.workload),
        )
        self._region_objects.clear()
        self._call_objects.clear()
        for function_spec in self.workload.functions:
            function = Function(Name=function_spec.name)
            version.add_function(function)
            self._materialise_region(function, function_spec.body, parent=None)
            for region_spec in function_spec.regions():
                region = self._region_objects[region_spec.name]
                for call_spec in region_spec.calls:
                    call = FunctionCall(
                        Caller=function,
                        CallingReg=region,
                        callee_name=call_spec.callee,
                    )
                    function.add_call(call)
                    self._call_objects[(region_spec.name, call_spec.callee)] = call
        return version

    def _materialise_region(
        self, function: Function, spec: RegionSpec, parent: Optional[Region]
    ) -> Region:
        region = Region(
            name=spec.name,
            kind=spec.kind,
            ParentRegion=parent,
            source_file=spec.source_file,
            first_line=spec.first_line,
            last_line=spec.last_line,
        )
        function.add_region(region)
        self._region_objects[spec.name] = region
        for child in spec.children:
            self._materialise_region(function, child, parent=region)
        return region

    # ------------------------------------------------------------------ #
    # dynamic behaviour
    # ------------------------------------------------------------------ #

    def _simulate_run(self, run: TestRun) -> None:
        """Attach TotalTiming / TypedTiming / CallTiming objects for one run."""
        measurements: Dict[str, RegionMeasurement] = {}
        for function_spec in self.workload.functions:
            for region_spec in function_spec.regions():
                measurements[region_spec.name] = self._measure_region(
                    region_spec, run
                )
        # Aggregate bottom-up so inclusive values include nested regions.
        for function_spec in self.workload.functions:
            self._aggregate_region(function_spec.body, run, measurements)
        # Call-site statistics.
        for function_spec in self.workload.functions:
            for region_spec in function_spec.regions():
                for call_spec in region_spec.calls:
                    self._measure_call(region_spec, call_spec, run, measurements)

    def _measure_region(self, spec: RegionSpec, run: TestRun) -> RegionMeasurement:
        """Per-process computation and overhead of one region (exclusive)."""
        pes = run.NoPe
        cfg = self.config
        rng = rng_for(cfg.seed, self.workload.name, spec.name, pes, run.Clockspeed)
        clock_factor = self.workload.reference_clock_mhz / run.Clockspeed

        serial_work = spec.work * spec.serial_fraction * clock_factor
        parallel_work = spec.work * (1.0 - spec.serial_fraction) * clock_factor
        shares = imbalanced_shares(rng, pes, spec.imbalance)
        compute = serial_work + (parallel_work / pes) * shares

        typed: Dict[TimingType, np.ndarray] = {}

        def add(timing_type: TimingType, values: np.ndarray) -> None:
            if np.all(values <= 0):
                return
            existing = typed.get(timing_type)
            typed[timing_type] = values if existing is None else existing + values

        # -- useful computation, broken down into the Apprentice work types ----
        if spec.work > 0:
            ls_fraction = max(0.0, 1.0 - spec.fp_fraction - spec.int_fraction)
            add(TimingType.FloatingPoint, compute * spec.fp_fraction)
            add(TimingType.IntegerOps, compute * spec.int_fraction)
            add(TimingType.LoadStore, compute * ls_fraction)

        # -- barrier synchronisation: waiting comes from the work spread ------
        # Load imbalance is modelled as *persistent*: the same processes are
        # slow in every barrier phase (the realistic case, and the one the
        # LoadImbalance property is designed to catch), so the per-process
        # waiting time is (max - own) share of the parallel work regardless of
        # how many barrier phases the work is split into.
        if spec.barriers > 0 and pes > 1:
            per_pe_work = (parallel_work / pes) * shares
            wait = per_pe_work.max() - per_pe_work
            latency = cfg.barrier_latency * math.log2(pes) if pes > 1 else 0.0
            add(TimingType.Barrier, wait + latency * spec.barriers)
        elif spec.barriers > 0:
            add(TimingType.Barrier, np.full(pes, cfg.barrier_latency * spec.barriers))

        # -- communication ------------------------------------------------------
        comm = self._comm_time(spec, pes)
        if comm > 0:
            if spec.comm_pattern is CommPattern.NEAREST:
                add(TimingType.SendOverhead, np.full(pes, comm * 0.40))
                add(TimingType.ReceiveOverhead, np.full(pes, comm * 0.30))
                add(TimingType.MessageWait, np.full(pes, comm * 0.30))
            elif spec.comm_pattern is CommPattern.REDUCTION:
                add(TimingType.Reduce, np.full(pes, comm * 0.85))
                add(TimingType.MessageWait, np.full(pes, comm * 0.15))
            elif spec.comm_pattern is CommPattern.BROADCAST:
                add(TimingType.Broadcast, np.full(pes, comm * 0.9))
                add(TimingType.MessageWait, np.full(pes, comm * 0.1))
            elif spec.comm_pattern is CommPattern.ALLTOALL:
                add(TimingType.AllToAll, np.full(pes, comm * 0.7))
                add(TimingType.MessagePacking, np.full(pes, comm * 0.2))
                add(TimingType.MessageWait, np.full(pes, comm * 0.1))

        # -- input / output ------------------------------------------------------
        if spec.io_time > 0:
            if spec.io_parallel:
                per_pe = spec.io_time / pes
                add(TimingType.IORead, np.full(pes, per_pe * 0.4))
                add(TimingType.IOWrite, np.full(pes, per_pe * 0.6))
            else:
                # Serialised I/O: process 0 performs the transfer, the others
                # wait for completion.
                io = np.zeros(pes)
                io[0] = spec.io_time
                wait = np.full(pes, spec.io_time)
                wait[0] = 0.0
                add(TimingType.IOWrite, io * 0.7)
                add(TimingType.IORead, io * 0.3)
                add(TimingType.EventWait, wait)
            add(TimingType.IOOpenClose, np.full(pes, min(1e-4, spec.io_time * 1e-3)))

        # -- memory system -------------------------------------------------------
        if cfg.cache_miss_fraction > 0 and spec.work > 0:
            add(TimingType.CacheMiss, compute * cfg.cache_miss_fraction)

        # -- instrumentation overhead ---------------------------------------------
        instr = self.workload.instrumentation_per_region
        if instr > 0:
            add(TimingType.Instrumentation, np.full(pes, instr))

        # -- measurement jitter ------------------------------------------------
        if cfg.measurement_jitter > 0:
            noise = 1.0 + cfg.measurement_jitter * rng.standard_normal(pes)
            noise = np.clip(noise, 0.5, 1.5)
            compute = compute * noise
            typed = {k: np.maximum(v * noise, 0.0) for k, v in typed.items()}

        return RegionMeasurement(compute=compute, typed=typed)

    def _comm_time(self, spec: RegionSpec, pes: int) -> float:
        """Per-process communication time of a region for ``pes`` processors."""
        if spec.comm_pattern is CommPattern.NONE or spec.comm_time <= 0 or pes <= 1:
            return 0.0
        if spec.comm_pattern is CommPattern.NEAREST:
            return spec.comm_time
        if spec.comm_pattern in (CommPattern.REDUCTION, CommPattern.BROADCAST):
            return spec.comm_time * math.log2(pes)
        if spec.comm_pattern is CommPattern.ALLTOALL:
            return spec.comm_time * (pes - 1)
        raise AssertionError(f"unhandled communication pattern {spec.comm_pattern}")

    def _aggregate_region(
        self,
        spec: RegionSpec,
        run: TestRun,
        measurements: Dict[str, RegionMeasurement],
    ) -> Tuple[float, float, Dict[TimingType, float]]:
        """Store timings for ``spec`` and return (excl_sum, incl_sum, typed_sums)."""
        measurement = measurements[spec.name]
        excl_sum = float(measurement.exclusive.sum())
        typed_sums: Dict[TimingType, float] = {
            timing_type: float(values.sum())
            for timing_type, values in measurement.typed.items()
        }
        incl_sum = excl_sum
        for child in spec.children:
            _, child_incl, child_typed = self._aggregate_region(
                child, run, measurements
            )
            incl_sum += child_incl
            for timing_type, value in child_typed.items():
                typed_sums[timing_type] = typed_sums.get(timing_type, 0.0) + value

        overhead_sum = sum(
            value for timing_type, value in typed_sums.items() if timing_type.is_overhead
        )
        region = self._region_objects[spec.name]
        region.add_total_timing(
            TotalTiming(Run=run, Excl=excl_sum, Incl=incl_sum, Ovhd=overhead_sum)
        )
        for timing_type, value in sorted(typed_sums.items(), key=lambda kv: kv[0].value):
            if value > 0:
                region.add_typed_timing(
                    TypedTiming(Run=run, Type=timing_type, Time=value)
                )
        return excl_sum, incl_sum, typed_sums

    def _measure_call(
        self,
        region_spec: RegionSpec,
        call_spec: CallSpec,
        run: TestRun,
        measurements: Dict[str, RegionMeasurement],
    ) -> None:
        """Produce the per-process call statistics for one call site."""
        pes = run.NoPe
        cfg = self.config
        rng = rng_for(
            cfg.seed, self.workload.name, region_spec.name, call_spec.callee, pes
        )
        counts = call_spec.calls_per_pe * imbalanced_shares(
            rng, pes, call_spec.count_imbalance
        )
        times = (
            counts
            * call_spec.time_per_call
            * imbalanced_shares(rng, pes, call_spec.imbalance)
        )
        if call_spec.callee == "barrier":
            # Calls to the barrier routine absorb the barrier waiting time of
            # their region; this is what makes the LoadImbalance refinement of
            # SyncCost observable in the call statistics (paper, Section 4.2).
            barrier_wait = measurements[region_spec.name].typed.get(TimingType.Barrier)
            if barrier_wait is not None:
                times = times + barrier_wait

        call = self._call_objects[(region_spec.name, call_spec.callee)]
        call.add_call_timing(
            CallTiming(
                Run=run,
                MinCalls=float(counts.min()),
                MaxCalls=float(counts.max()),
                MeanCalls=float(counts.mean()),
                StdevCalls=float(counts.std()),
                MinTime=float(times.min()),
                MaxTime=float(times.max()),
                MeanTime=float(times.mean()),
                StdevTime=float(times.std()),
                MinCallsPe=int(counts.argmin()),
                MaxCallsPe=int(counts.argmax()),
                MinTimePe=int(times.argmin()),
                MaxTimePe=int(times.argmax()),
            )
        )


def simulate(
    workload: WorkloadSpec,
    pe_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
    **config_kwargs: object,
) -> PerformanceDatabase:
    """Convenience wrapper: simulate ``workload`` for the given processor counts."""
    config = SimulationConfig(pe_counts=tuple(pe_counts), **config_kwargs)  # type: ignore[arg-type]
    return ExecutionSimulator(workload, config).run()


def _synthetic_source(workload: WorkloadSpec) -> str:
    """Generate a small pseudo-Fortran listing so reports can show source lines."""
    lines: List[str] = [f"! synthetic source of workload {workload.name}"]
    for function in workload.functions:
        lines.append(f"subroutine {function.name}()")
        for region in function.regions():
            lines.append(
                f"  ! region {region.name} kind={region.kind.value} "
                f"work={region.work:.3f}s"
            )
        lines.append(f"end subroutine {function.name}")
    return "\n".join(lines) + "\n"
