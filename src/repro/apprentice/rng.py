"""Deterministic random-number helpers for the execution simulator.

Every stochastic quantity in the simulator (per-process work imbalance,
measurement jitter) is drawn from a generator seeded by a stable hash of the
workload name, the region name and the run configuration.  Two simulations of
the same workload therefore produce bit-identical performance data, which the
tests and the benchmark harness rely on.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

__all__ = ["stable_seed", "rng_for", "imbalanced_shares"]


def stable_seed(*parts: object) -> int:
    """Derive a 64-bit seed from arbitrary hashable description parts.

    Uses BLAKE2 over the ``repr`` of the parts so the seed is stable across
    processes and Python versions (unlike the built-in ``hash``).
    """
    digest = hashlib.blake2b(
        "\x1f".join(repr(p) for p in parts).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


def rng_for(*parts: object) -> np.random.Generator:
    """Return a NumPy generator deterministically seeded from ``parts``."""
    return np.random.default_rng(stable_seed(*parts))


def imbalanced_shares(
    rng: np.random.Generator, count: int, imbalance: float
) -> np.ndarray:
    """Return ``count`` positive work-share factors with mean exactly 1.0.

    ``imbalance`` is the target coefficient of variation (stddev / mean) of the
    factors.  A value of 0 returns a vector of ones (perfect balance); 0.5
    means the per-process work varies by ±50 % around the mean in the typical
    case.  The draw uses a log-normal distribution (always positive) and is
    re-normalised so that the mean is exactly one, keeping the *total* work
    independent of the imbalance setting.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if imbalance < 0:
        raise ValueError(f"imbalance must be >= 0, got {imbalance}")
    if imbalance == 0 or count == 1:
        return np.ones(count)
    sigma = np.sqrt(np.log1p(imbalance**2))
    factors = rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma, size=count)
    factors /= factors.mean()
    return factors
