"""Synthetic program structure for the simulated measurement environment.

The Cray MPP Apprentice tool measures real programs; this reproduction needs a
*program model* it can "execute" instead.  A :class:`WorkloadSpec` describes a
parallel application as a tree of :class:`RegionSpec` objects (subprograms,
loops, if-blocks, basic blocks — the region kinds COSY identifies) annotated
with their computational work, serial fraction, load imbalance, communication
pattern, synchronisation and I/O behaviour.  :class:`CallSpec` objects describe
call sites (including calls to the barrier routine, which the ``LoadImbalance``
property inspects).

The :mod:`repro.apprentice.simulator` turns such a specification plus a
processor count into Apprentice-style summary data.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.datamodel.entities import RegionKind

__all__ = [
    "CommPattern",
    "CallSpec",
    "RegionSpec",
    "FunctionSpec",
    "WorkloadSpec",
    "WorkloadError",
]


class WorkloadError(ValueError):
    """Raised when a workload specification is inconsistent."""


class CommPattern(enum.Enum):
    """Communication patterns a region may perform.

    The pattern determines how per-process communication time scales with the
    number of processors ``P``:

    ``NONE``
        no communication;
    ``NEAREST``
        nearest-neighbour exchange — constant per-process cost;
    ``REDUCTION``
        tree-based collective — cost grows with ``log2(P)``;
    ``ALLTOALL``
        personalised all-to-all — cost grows linearly with ``P``;
    ``BROADCAST``
        one-to-all — cost grows with ``log2(P)``.
    """

    NONE = "none"
    NEAREST = "nearest"
    REDUCTION = "reduction"
    ALLTOALL = "alltoall"
    BROADCAST = "broadcast"


@dataclass
class CallSpec:
    """A call site inside a region.

    Attributes
    ----------
    callee:
        Name of the called routine.  The special names ``"barrier"``,
        ``"global_sum"`` and ``"mpi_send"`` are recognised by the simulator and
        mapped to the matching overhead timing types.
    calls_per_pe:
        Mean number of calls each process executes.
    time_per_call:
        Mean time (seconds) spent per call on the reference configuration.
    imbalance:
        Coefficient of variation of the per-process time, producing the
        min/max/mean/stdev statistics of the :class:`CallTiming` objects.
    count_imbalance:
        Coefficient of variation of the per-process *call count*.
    """

    callee: str
    calls_per_pe: float = 1.0
    time_per_call: float = 1e-4
    imbalance: float = 0.0
    count_imbalance: float = 0.0

    def __post_init__(self) -> None:
        if self.calls_per_pe < 0:
            raise WorkloadError("CallSpec.calls_per_pe must be >= 0")
        if self.time_per_call < 0:
            raise WorkloadError("CallSpec.time_per_call must be >= 0")
        if self.imbalance < 0 or self.count_imbalance < 0:
            raise WorkloadError("CallSpec imbalance values must be >= 0")


@dataclass
class RegionSpec:
    """One program region and its performance-relevant behaviour.

    Work is expressed in seconds of useful computation on a single processor
    of the reference clock speed; the simulator divides the parallelisable part
    among the processes of a run.
    """

    name: str
    kind: RegionKind = RegionKind.BASIC_BLOCK
    work: float = 0.0
    serial_fraction: float = 0.0
    imbalance: float = 0.0
    barriers: int = 0
    comm_pattern: CommPattern = CommPattern.NONE
    comm_time: float = 0.0
    io_time: float = 0.0
    io_parallel: bool = True
    fp_fraction: float = 0.55
    int_fraction: float = 0.20
    children: List["RegionSpec"] = field(default_factory=list)
    calls: List[CallSpec] = field(default_factory=list)
    source_file: str = ""
    first_line: int = 0
    last_line: int = 0

    def __post_init__(self) -> None:
        if self.work < 0:
            raise WorkloadError(f"region {self.name!r}: work must be >= 0")
        if not 0.0 <= self.serial_fraction <= 1.0:
            raise WorkloadError(
                f"region {self.name!r}: serial_fraction must be in [0, 1]"
            )
        if self.imbalance < 0:
            raise WorkloadError(f"region {self.name!r}: imbalance must be >= 0")
        if self.barriers < 0:
            raise WorkloadError(f"region {self.name!r}: barriers must be >= 0")
        if self.comm_time < 0 or self.io_time < 0:
            raise WorkloadError(
                f"region {self.name!r}: comm_time and io_time must be >= 0"
            )
        if self.fp_fraction < 0 or self.int_fraction < 0:
            raise WorkloadError(
                f"region {self.name!r}: computation fractions must be >= 0"
            )
        if self.fp_fraction + self.int_fraction > 1.0 + 1e-9:
            raise WorkloadError(
                f"region {self.name!r}: fp_fraction + int_fraction must be <= 1"
            )

    # -- tree helpers --------------------------------------------------------

    def add_child(self, child: "RegionSpec") -> "RegionSpec":
        """Append a nested region and return it (for fluent construction)."""
        self.children.append(child)
        return child

    def walk(self) -> Iterator["RegionSpec"]:
        """Yield this region and all nested regions, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def total_work(self) -> float:
        """Useful computational work of this region including children."""
        return self.work + sum(c.total_work() for c in self.children)

    def total_barriers(self) -> int:
        """Barrier synchronisations performed by this region and its children."""
        return self.barriers + sum(c.total_barriers() for c in self.children)

    def find(self, name: str) -> "RegionSpec":
        """Locate a (possibly nested) region spec by name; raises ``KeyError``."""
        for region in self.walk():
            if region.name == name:
                return region
        raise KeyError(f"no region named {name!r} below {self.name!r}")


@dataclass
class FunctionSpec:
    """A subprogram of the synthetic application."""

    name: str
    body: RegionSpec

    def __post_init__(self) -> None:
        if self.body.kind not in (RegionKind.SUBPROGRAM, RegionKind.PROGRAM):
            # The body region represents the whole function.
            self.body.kind = RegionKind.SUBPROGRAM

    def regions(self) -> Iterator[RegionSpec]:
        """All region specs of the function (body first, depth-first)."""
        return self.body.walk()


@dataclass
class WorkloadSpec:
    """A complete synthetic application.

    Attributes
    ----------
    name:
        Application name, used as the :class:`~repro.datamodel.Program` name.
    functions:
        The subprograms; the one named ``main`` (or the first one) is treated
        as the program entry point and its body becomes the whole-program
        region used as COSY's default ranking basis.
    reference_clock_mhz:
        Clock speed the ``work`` figures refer to.  Runs with a different
        clock speed scale their computation time accordingly.
    instrumentation_per_region:
        Instrumentation overhead (seconds, per process and per instrumented
        region) added by the measurement tool; COSY stores this as
        ``Instrumentation`` typed time.
    """

    name: str
    functions: List[FunctionSpec] = field(default_factory=list)
    entry: str = "main"
    reference_clock_mhz: int = 300
    instrumentation_per_region: float = 5e-5

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("workload name must not be empty")
        if self.reference_clock_mhz <= 0:
            raise WorkloadError("reference_clock_mhz must be positive")
        names = [f.name for f in self.functions]
        if len(names) != len(set(names)):
            raise WorkloadError(f"duplicate function names in workload: {names}")

    # -- construction ---------------------------------------------------------

    def add_function(self, function: FunctionSpec) -> FunctionSpec:
        """Register another subprogram."""
        if any(f.name == function.name for f in self.functions):
            raise WorkloadError(f"duplicate function name {function.name!r}")
        self.functions.append(function)
        return function

    # -- lookup ----------------------------------------------------------------

    @property
    def entry_function(self) -> FunctionSpec:
        """The program entry point."""
        if not self.functions:
            raise WorkloadError(f"workload {self.name!r} has no functions")
        for function in self.functions:
            if function.name == self.entry:
                return function
        return self.functions[0]

    def function(self, name: str) -> FunctionSpec:
        """Look up a subprogram by name; raises ``KeyError`` when unknown."""
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(f"workload {self.name!r} has no function named {name!r}")

    def all_regions(self) -> Iterator[Tuple[FunctionSpec, RegionSpec]]:
        """Yield ``(function, region)`` pairs for every region spec."""
        for function in self.functions:
            for region in function.regions():
                yield function, region

    def region_names(self) -> List[str]:
        """Names of every region in the workload (must be unique)."""
        names = [r.name for _, r in self.all_regions()]
        return names

    def validate(self) -> None:
        """Check cross-function invariants (unique region names, callees exist)."""
        names = self.region_names()
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise WorkloadError(
                f"region names must be unique across the workload; duplicated: "
                f"{sorted(duplicates)}"
            )
        known_functions = {f.name for f in self.functions}
        builtin_callees = {"barrier", "global_sum", "mpi_send", "mpi_recv", "io"}
        for function, region in self.all_regions():
            for call in region.calls:
                if (
                    call.callee not in known_functions
                    and call.callee not in builtin_callees
                ):
                    raise WorkloadError(
                        f"region {region.name!r} in function {function.name!r} "
                        f"calls unknown routine {call.callee!r}"
                    )

    def total_work(self) -> float:
        """Total useful work of one run of the application (seconds on 1 PE)."""
        return sum(f.body.total_work() for f in self.functions)
