"""Automatic translation of ASL performance properties into SQL queries.

The paper's prototype translated the conditions and severity expressions of
the performance properties into SQL *by the tool developer*; the conclusion
names the automatic translation as future work.  This module implements that
translation for the generated relational schema of
:mod:`repro.compiler.schema_gen`.

Translation pipeline (per property)::

    property declaration
      1. inline specification functions      (Duration(r,t) → Summary body …)
      2. inline LET definitions              (closed expressions over params)
      3. re-run type inference               (annotates every node)
      4. translate each condition /
         confidence / severity expression    (SQL text + parameter slots)

The central ideas of the translation:

* a property parameter of class type is represented by its row id and becomes
  a ``?`` parameter of the query;
* an aggregate over a collection attribute (``SUM(tt.Time WHERE tt IN
  r.TypTimes AND …)``) becomes a scalar subquery over the element table with
  the owner foreign key bound to the parameter;
* ``UNIQUE`` selections become scalar subqueries returning either a value
  column or the row id / foreign key (when the selected object is used as an
  object value);
* navigation across a reference attribute inside an aggregate
  (``sum.Run.NoPe``) becomes a join with the referenced table;
* the complete condition / severity expression is wrapped into
  ``SELECT <expr> AS value FROM dual`` so that one statement per expression is
  sent to the database — exactly the work distribution the paper recommends in
  Section 5.

Constructs outside this subset raise :class:`PushdownError`; the COSY analyzer
then falls back to client-side evaluation for that expression (and reports the
fallback), so adding new properties can never silently produce wrong results.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.asl.ast_nodes import (
    AggregateExpr,
    AttributeAccess,
    BinaryExpr,
    BinaryOp,
    BoolLiteral,
    Expr,
    FloatLiteral,
    FunctionCall,
    Identifier,
    IntLiteral,
    PropertyDecl,
    SetComprehension,
    StringLiteral,
    UnaryExpr,
    UnaryOp,
)
from repro.asl.errors import AslError, AslTypeError
from repro.asl.semantic import CheckedSpecification, SemanticChecker
from repro.asl.symbols import Scope
from repro.asl.types import ClassType, EnumType, SetType, Type
from repro.compiler.schema_gen import DUAL_TABLE, PRIMARY_KEY, SchemaMapping

__all__ = [
    "PushdownError",
    "CompiledQuery",
    "CompiledProperty",
    "PropertyCompiler",
]


class PushdownError(AslError):
    """Raised when an expression cannot be translated into the SQL subset."""


@dataclass
class CompiledQuery:
    """One generated SQL query computing a scalar value.

    ``param_slots`` names, for every ``?`` in textual order, the property
    parameter whose row id (or scalar value) must be bound at execution time.
    """

    sql: str
    param_slots: List[str] = field(default_factory=list)

    def bind(self, values: Mapping[str, Any]) -> List[Any]:
        """Positional parameter list for ``values`` (param name → id/value)."""
        try:
            return [values[slot] for slot in self.param_slots]
        except KeyError as exc:
            raise KeyError(
                f"missing value for parameter {exc.args[0]!r}; query needs "
                f"{self.param_slots}"
            ) from None


@dataclass
class CompiledProperty:
    """All generated queries of one property."""

    name: str
    decl: PropertyDecl
    #: (condition id or 1-based position as string, query) pairs.
    conditions: List[Tuple[str, CompiledQuery]] = field(default_factory=list)
    #: (guard or None, query) pairs for the confidence specification.
    confidence: List[Tuple[Optional[str], CompiledQuery]] = field(default_factory=list)
    #: (guard or None, query) pairs for the severity specification.
    severity: List[Tuple[Optional[str], CompiledQuery]] = field(default_factory=list)

    @property
    def parameter_names(self) -> List[str]:
        return [p.name for p in self.decl.params]

    def all_queries(self) -> List[CompiledQuery]:
        """Every generated query (used by tests and the CLI ``--show-sql``)."""
        result = [query for _, query in self.conditions]
        result.extend(query for _, query in self.confidence)
        result.extend(query for _, query in self.severity)
        return result


class PropertyCompiler:
    """Compiles checked ASL properties into SQL for a generated schema."""

    def __init__(self, checked: CheckedSpecification, mapping: SchemaMapping) -> None:
        self.checked = checked
        self.index = checked.index
        self.mapping = mapping

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def compile_property(self, name: str) -> CompiledProperty:
        """Compile one property; raises :class:`PushdownError` when impossible."""
        decl = self.index.properties.get(name)
        if decl is None:
            raise AslTypeError(f"unknown property {name!r}")
        param_types = {
            p.name: self._resolve_param_type(p.type.name, p.type.is_set)
            for p in decl.params
        }
        substitutions = self._let_substitutions(decl)
        compiled = CompiledProperty(name=name, decl=decl)
        for position, condition in enumerate(decl.conditions, start=1):
            key = condition.cond_id or str(position)
            compiled.conditions.append(
                (key, self._compile_expr(condition.expr, substitutions, param_types))
            )
        for entry in decl.confidence.entries:
            compiled.confidence.append(
                (entry.guard, self._compile_expr(entry.expr, substitutions, param_types))
            )
        for entry in decl.severity.entries:
            compiled.severity.append(
                (entry.guard, self._compile_expr(entry.expr, substitutions, param_types))
            )
        return compiled

    def compile_all(self) -> Dict[str, CompiledProperty]:
        """Compile every property of the specification."""
        return {
            name: self.compile_property(name) for name in self.index.properties
        }

    # ------------------------------------------------------------------ #
    # preparation: inlining and typing
    # ------------------------------------------------------------------ #

    def _resolve_param_type(self, type_name: str, is_set: bool) -> Type:
        checker = SemanticChecker.__new__(SemanticChecker)
        checker.program = self.checked.program
        checker.index = self.index
        checker.diagnostics = []
        from repro.asl.ast_nodes import TypeRef

        return checker.resolve_type(TypeRef(name=type_name, is_set=is_set))

    def _let_substitutions(self, decl: PropertyDecl) -> Dict[str, Expr]:
        """Inlined (function-free) definitions of the property's LET block."""
        substitutions: Dict[str, Expr] = {}
        for let_def in decl.let_defs:
            inlined = self._inline(let_def.value, substitutions)
            substitutions[let_def.name] = inlined
        return substitutions

    def _inline(self, expr: Expr, substitutions: Mapping[str, Expr]) -> Expr:
        """Inline specification functions and substitute LET names."""
        return _substitute(self._inline_functions(expr), substitutions)

    def _inline_functions(self, expr: Expr) -> Expr:
        """Recursively replace calls of specification functions by their body."""
        expr = copy.deepcopy(expr)

        def rewrite(node: Expr) -> Expr:
            node = _map_children(node, rewrite)
            if isinstance(node, FunctionCall) and node.name in self.index.functions:
                decl = self.index.functions[node.name]
                body = self._inline_functions(decl.body)
                mapping = {
                    param.name: arg for param, arg in zip(decl.params, node.args)
                }
                return _substitute(body, mapping)
            return node

        return rewrite(expr)

    def _annotate(self, expr: Expr, param_types: Mapping[str, Type]) -> None:
        """Run type inference over an inlined expression (annotates nodes)."""
        checker = SemanticChecker.__new__(SemanticChecker)
        checker.program = self.checked.program
        checker.index = self.index
        checker.diagnostics = []
        scope: Scope[Type] = Scope()
        for name, param_type in param_types.items():
            scope.define(name, param_type)
        checker.check_expr(expr, scope)
        if checker.diagnostics:
            raise PushdownError(
                f"cannot type the inlined expression: {checker.diagnostics[0]}"
            )

    # ------------------------------------------------------------------ #
    # expression translation
    # ------------------------------------------------------------------ #

    def _compile_expr(
        self,
        expr: Expr,
        substitutions: Mapping[str, Expr],
        param_types: Mapping[str, Type],
    ) -> CompiledQuery:
        inlined = self._inline(expr, substitutions)
        self._annotate(inlined, param_types)
        translator = _ExprTranslator(self, param_types)
        value_sql = translator.value(inlined, context=None)
        sql = f"SELECT {value_sql} AS value FROM {DUAL_TABLE}"
        return CompiledQuery(sql=sql, param_slots=translator.param_slots)


# --------------------------------------------------------------------------- #
# AST utilities
# --------------------------------------------------------------------------- #


def _map_children(node: Expr, fn) -> Expr:
    """Return ``node`` with every direct child expression rewritten by ``fn``."""
    if isinstance(node, AttributeAccess):
        node.obj = fn(node.obj)
    elif isinstance(node, FunctionCall):
        node.args = [fn(arg) for arg in node.args]
    elif isinstance(node, UnaryExpr):
        node.operand = fn(node.operand)
    elif isinstance(node, BinaryExpr):
        node.left = fn(node.left)
        node.right = fn(node.right)
    elif isinstance(node, SetComprehension):
        node.source = fn(node.source)
        if node.predicate is not None:
            node.predicate = fn(node.predicate)
    elif isinstance(node, AggregateExpr):
        node.value = fn(node.value)
        if node.source is not None:
            node.source = fn(node.source)
        if node.predicate is not None:
            node.predicate = fn(node.predicate)
    return node


def _substitute(expr: Expr, mapping: Mapping[str, Expr]) -> Expr:
    """Replace free identifiers by (deep copies of) their mapped expressions."""
    if not mapping:
        return expr

    def rewrite(node: Expr, bound: frozenset) -> Expr:
        if isinstance(node, Identifier):
            if node.name in mapping and node.name not in bound:
                return copy.deepcopy(mapping[node.name])
            return node
        if isinstance(node, SetComprehension):
            node.source = rewrite(node.source, bound)
            inner = bound | {node.var}
            if node.predicate is not None:
                node.predicate = rewrite(node.predicate, inner)
            return node
        if isinstance(node, AggregateExpr):
            if node.source is not None:
                node.source = rewrite(node.source, bound)
            inner = bound | {node.var} if node.var else bound
            node.value = rewrite(node.value, inner)
            if node.predicate is not None:
                node.predicate = rewrite(node.predicate, inner)
            return node
        return _map_children(node, lambda child: rewrite(child, bound))

    return rewrite(copy.deepcopy(expr), frozenset())


# --------------------------------------------------------------------------- #
# the expression translator
# --------------------------------------------------------------------------- #


class _QueryContext:
    """FROM/JOIN context of one (sub)query being generated."""

    def __init__(self, translator: "_ExprTranslator", table: str, alias: str,
                 var: str, class_name: str) -> None:
        self.translator = translator
        self.base_table = table
        self.base_alias = alias
        #: var name → (alias, class name)
        self.row_vars: Dict[str, Tuple[str, str]] = {var: (alias, class_name)}
        #: list of (table, alias, on-sql)
        self.joins: List[Tuple[str, str, str]] = []

    def join_via(self, source_alias: str, fk_column: str, target_class: str) -> str:
        """Alias of the table joined through ``source_alias.fk_column``."""
        target_table = self.translator.compiler.mapping.table_for(target_class)
        for table, alias, on in self.joins:
            if on == f"{alias}.{PRIMARY_KEY} = {source_alias}.{fk_column}":
                return alias
        alias = self.translator.new_alias()
        self.joins.append(
            (target_table, alias, f"{alias}.{PRIMARY_KEY} = {source_alias}.{fk_column}")
        )
        return alias


_BINOP_SQL = {
    BinaryOp.ADD: "+",
    BinaryOp.SUB: "-",
    BinaryOp.MUL: "*",
    BinaryOp.DIV: "/",
    BinaryOp.EQ: "=",
    BinaryOp.NE: "<>",
    BinaryOp.LT: "<",
    BinaryOp.LE: "<=",
    BinaryOp.GT: ">",
    BinaryOp.GE: ">=",
    BinaryOp.AND: "AND",
    BinaryOp.OR: "OR",
}


class _ExprTranslator:
    """Translates one inlined, type-annotated expression into SQL text."""

    def __init__(self, compiler: PropertyCompiler, param_types: Mapping[str, Type]) -> None:
        self.compiler = compiler
        self.param_types = dict(param_types)
        self.param_slots: List[str] = []
        self._alias_counter = 0

    # -- helpers ------------------------------------------------------------

    def new_alias(self) -> str:
        self._alias_counter += 1
        return f"t{self._alias_counter}"

    def _placeholder(self, param_name: str) -> str:
        self.param_slots.append(param_name)
        return "?"

    @staticmethod
    def _type_of(expr: Expr) -> Optional[Type]:
        return getattr(expr, "inferred_type", None)

    # -- value translation -----------------------------------------------------

    def value(self, expr: Expr, context: Optional[_QueryContext]) -> str:
        """SQL text computing the value of ``expr``.

        Object-typed expressions are represented by their row id.
        """
        if isinstance(expr, IntLiteral):
            return str(expr.value)
        if isinstance(expr, FloatLiteral):
            return repr(float(expr.value))
        if isinstance(expr, BoolLiteral):
            return "TRUE" if expr.value else "FALSE"
        if isinstance(expr, StringLiteral):
            escaped = expr.value.replace("'", "''")
            return f"'{escaped}'"
        if isinstance(expr, Identifier):
            return self._identifier_value(expr, context)
        if isinstance(expr, AttributeAccess):
            return self._attribute_value(expr, context)
        if isinstance(expr, AggregateExpr):
            return self._aggregate_value(expr, context, wanted_column=None)
        if isinstance(expr, UnaryExpr):
            operand = self.value(expr.operand, context)
            if expr.op is UnaryOp.NEG:
                return f"(-{operand})"
            return f"(NOT {operand})"
        if isinstance(expr, BinaryExpr):
            return self._binary_value(expr, context)
        if isinstance(expr, FunctionCall):
            raise PushdownError(
                f"call to {expr.name!r} cannot be pushed down (only "
                f"specification functions are inlined)"
            )
        if isinstance(expr, SetComprehension):
            raise PushdownError(
                "a set comprehension can only be pushed down inside UNIQUE or "
                "an aggregate"
            )
        raise PushdownError(
            f"cannot translate expression node {type(expr).__name__} to SQL"
        )

    def _identifier_value(self, expr: Identifier, context: Optional[_QueryContext]) -> str:
        name = expr.name
        if context is not None and name in context.row_vars:
            alias, class_name = context.row_vars[name]
            return f"{alias}.{PRIMARY_KEY}"
        if name in self.param_types:
            return self._placeholder(name)
        if name in self.compiler.index.constants:
            from repro.asl.evaluator import AslEvaluator

            evaluator = AslEvaluator(self.compiler.checked)
            value = evaluator.constant_value(name)
            if isinstance(value, bool):
                return "TRUE" if value else "FALSE"
            if isinstance(value, (int, float)):
                return repr(value)
            if isinstance(value, str):
                return "'" + value.replace("'", "''") + "'"
            raise PushdownError(f"constant {name!r} has a non-scalar value")
        if name in self.compiler.index.enum_members:
            return f"'{name}'"
        raise PushdownError(f"cannot translate identifier {name!r} to SQL")

    def _attribute_value(
        self, expr: AttributeAccess, context: Optional[_QueryContext]
    ) -> str:
        obj = expr.obj
        obj_type = self._type_of(obj)
        if not isinstance(obj_type, ClassType):
            raise PushdownError(
                f"attribute access {expr.attribute!r} on a value of type "
                f"{obj_type} cannot be pushed down"
            )
        attribute = self.compiler.mapping.attribute(obj_type.name, expr.attribute)
        if attribute.kind == "collection":
            raise PushdownError(
                f"collection attribute {obj_type.name}.{expr.attribute} can "
                f"only be used as an aggregate or UNIQUE source"
            )
        # Row variable in the current query context → direct column reference,
        # possibly through a join for reference chains.
        alias = self._alias_for_row(obj, context)
        if alias is not None:
            return f"{alias}.{attribute.column}"
        # UNIQUE(...) result → subquery selecting the wanted column.
        if isinstance(obj, AggregateExpr) and obj.is_unique:
            return self._aggregate_value(obj, context, wanted_column=attribute.column)
        # Anything else: the object is available as an id value; fetch the
        # column with a scalar subquery against the object's table.
        table = self.compiler.mapping.table_for(obj_type.name)
        object_id = self.value(obj, context)
        if object_id == "?" or object_id.startswith("("):
            return (
                f"(SELECT {attribute.column} FROM {table} "
                f"WHERE {PRIMARY_KEY} = {object_id})"
            )
        raise PushdownError(
            f"cannot translate attribute access {obj_type.name}.{expr.attribute}"
        )

    def _alias_for_row(
        self, expr: Expr, context: Optional[_QueryContext]
    ) -> Optional[str]:
        """Alias representing ``expr`` as a row of the current context, if any."""
        if context is None:
            return None
        if isinstance(expr, Identifier) and expr.name in context.row_vars:
            return context.row_vars[expr.name][0]
        if isinstance(expr, AttributeAccess):
            obj_type = self._type_of(expr.obj)
            if not isinstance(obj_type, ClassType):
                return None
            attribute = self.compiler.mapping.attribute(obj_type.name, expr.attribute)
            if attribute.kind != "reference" or attribute.target_class is None:
                return None
            source_alias = self._alias_for_row(expr.obj, context)
            if source_alias is None:
                return None
            return context.join_via(source_alias, attribute.column, attribute.target_class)
        return None

    def _binary_value(self, expr: BinaryExpr, context: Optional[_QueryContext]) -> str:
        left_type = self._type_of(expr.left)
        right_type = self._type_of(expr.right)
        # Object equality compares row ids / foreign keys.
        if expr.op in (BinaryOp.EQ, BinaryOp.NE) and (
            isinstance(left_type, ClassType) or isinstance(right_type, ClassType)
        ):
            left = self._object_id(expr.left, context)
            right = self._object_id(expr.right, context)
        else:
            left = self.value(expr.left, context)
            right = self.value(expr.right, context)
        op = _BINOP_SQL.get(expr.op)
        if op is None:
            raise PushdownError(f"operator {expr.op.value!r} is not supported in SQL")
        return f"({left} {op} {right})"

    def _object_id(self, expr: Expr, context: Optional[_QueryContext]) -> str:
        """SQL text for the row id of an object-valued expression."""
        expr_type = self._type_of(expr)
        if isinstance(expr, AttributeAccess) and context is not None:
            obj_type = self._type_of(expr.obj)
            if isinstance(obj_type, ClassType):
                attribute = self.compiler.mapping.attribute(
                    obj_type.name, expr.attribute
                )
                if attribute.kind == "reference":
                    source_alias = self._alias_for_row(expr.obj, context)
                    if source_alias is not None:
                        return f"{source_alias}.{attribute.column}"
        if isinstance(expr, AggregateExpr) and expr.is_unique:
            return self._aggregate_value(expr, context, wanted_column=PRIMARY_KEY)
        if isinstance(expr, Identifier):
            return self._identifier_value(expr, context)
        if isinstance(expr_type, ClassType) and isinstance(expr, AttributeAccess):
            # Reference attribute of an object reachable only by id: select the
            # foreign-key column instead of dereferencing the target row.
            obj_type = self._type_of(expr.obj)
            if isinstance(obj_type, ClassType):
                attribute = self.compiler.mapping.attribute(
                    obj_type.name, expr.attribute
                )
                if attribute.kind == "reference":
                    if isinstance(expr.obj, AggregateExpr) and expr.obj.is_unique:
                        return self._aggregate_value(
                            expr.obj, context, wanted_column=attribute.column
                        )
                    table = self.compiler.mapping.table_for(obj_type.name)
                    object_id = self.value(expr.obj, context)
                    return (
                        f"(SELECT {attribute.column} FROM {table} "
                        f"WHERE {PRIMARY_KEY} = {object_id})"
                    )
        return self.value(expr, context)

    # -- aggregates / UNIQUE ------------------------------------------------------

    def _aggregate_value(
        self,
        expr: AggregateExpr,
        outer_context: Optional[_QueryContext],
        wanted_column: Optional[str],
    ) -> str:
        """Translate UNIQUE / SUM / MIN / MAX / AVG / COUNT into a scalar subquery.

        Note on parameter ordering: every ``?`` placeholder must be appended to
        ``param_slots`` in the same order it appears in the generated text.  The
        generated subquery reads ``SELECT <value> FROM … WHERE <owner> AND
        <predicates>``, therefore the value expression is translated first, the
        owner condition second and the predicates last.
        """
        if expr.is_unique:
            var, source, predicate = self._comprehension_parts(expr.value)
            context, collection = self._make_context(var, source)
            column = wanted_column or PRIMARY_KEY
            select_value = f"{context.base_alias}.{column}"
            where = [self._owner_condition(context, collection, source, outer_context)]
            if predicate is not None:
                where.append(self.value(predicate, context))
            return self._build_select(select_value, context, where)
        if expr.source is None:
            raise PushdownError(
                f"aggregate {expr.func} has no source collection to push down"
            )
        if wanted_column is not None:
            raise PushdownError(
                "attribute access on a non-UNIQUE aggregate cannot be pushed down"
            )
        var, source, comp_predicate = self._comprehension_parts(expr.source, expr.var)
        context, collection = self._make_context(var, source)
        if expr.func == "COUNT":
            select_value = "COUNT(*)"
        else:
            select_value = f"{expr.func}({self.value(expr.value, context)})"
        where = [self._owner_condition(context, collection, source, outer_context)]
        if comp_predicate is not None:
            where.append(self.value(comp_predicate, context))
        if expr.predicate is not None:
            where.append(self.value(expr.predicate, context))
        return self._build_select(select_value, context, where)

    def _comprehension_parts(
        self, expr: Expr, default_var: str = ""
    ) -> Tuple[str, Expr, Optional[Expr]]:
        """Normalise an aggregate/UNIQUE source into (var, collection, predicate)."""
        if isinstance(expr, SetComprehension):
            return expr.var, expr.source, expr.predicate
        if default_var:
            return default_var, expr, None
        raise PushdownError(
            "UNIQUE requires a set comprehension or collection attribute as its "
            "argument"
        )

    def _make_context(self, var: str, source: Expr):
        """Query context for an aggregate over the collection ``source``."""
        if not isinstance(source, AttributeAccess):
            raise PushdownError(
                "only collection attributes (e.g. r.TotTimes) can be used as "
                "aggregate sources in SQL"
            )
        owner_type = self._type_of(source.obj)
        if not isinstance(owner_type, ClassType):
            raise PushdownError(
                f"aggregate source must navigate from an object, found "
                f"{owner_type}"
            )
        attribute = self.compiler.mapping.attribute(owner_type.name, source.attribute)
        if attribute.kind != "collection" or attribute.target_class is None:
            raise PushdownError(
                f"{owner_type.name}.{source.attribute} is not a collection "
                f"attribute"
            )
        alias = self.new_alias()
        context = _QueryContext(
            self, table=attribute.table, alias=alias, var=var,
            class_name=attribute.target_class,
        )
        return context, attribute

    def _owner_condition(
        self,
        context: _QueryContext,
        collection,
        source: AttributeAccess,
        outer_context: Optional[_QueryContext],
    ) -> str:
        """WHERE condition binding the element table to the owning object."""
        owner_id = self._object_id(source.obj, outer_context)
        return f"{context.base_alias}.{collection.column} = {owner_id}"

    def _build_select(
        self, select_value: str, context: _QueryContext, where: List[str]
    ) -> str:
        parts = [f"SELECT {select_value} FROM {context.base_table} {context.base_alias}"]
        for table, alias, on in context.joins:
            parts.append(f"JOIN {table} {alias} ON {on}")
        conditions = [w for w in where if w]
        if conditions:
            parts.append("WHERE " + " AND ".join(conditions))
        return "(" + " ".join(parts) + ")"
