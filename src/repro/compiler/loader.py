"""Transfer of the object repository into the relational database.

The paper's data flow is: Apprentice writes summary data to a file, the file
is transferred into the relational database, and COSY then analyses the data
with SQL queries.  This module implements the "transferred into the database"
step for the generated schema of :mod:`repro.compiler.schema_gen`: it walks a
:class:`~repro.datamodel.PerformanceDatabase`, assigns integer row ids to every
entity and issues parametrised ``INSERT`` statements through any executor that
offers ``execute(sql, params)`` — the plain in-process
:class:`~repro.relalg.database.Database`, a
:class:`~repro.relalg.backends.SimulatedBackend` or one of the client API
layers.  Using the backend/client objects means the bulk-insert experiments
(E1) charge exactly the per-row costs the paper describes.

**Batched loading.**  By default the loader does not execute one ``INSERT``
per entity: rows are buffered per target table and flushed in batches of
``batch_size`` through the executor's ``executemany`` (falling back to
row-at-a-time ``execute`` for executors without one).  Against a
:class:`~repro.relalg.backends.SimulatedBackend` the E1 virtual cost model
then charges **one network round trip and one per-statement insert overhead
per batch** plus the per-row server work — reproducing the paper's bulk-load
gap, where row-at-a-time submission pays the round trip per row.  Passing
``batch_size=None`` restores the row-at-a-time path (the E6 benchmark loads
both ways and checks the loaded tables are identical).  Within one table rows
are flushed in insertion order, so the loaded contents are independent of the
batch size.

**Atomic loading.**  ``atomic=True`` wraps the data load — not the schema
creation, which is DDL and refused inside a transaction — in
``BEGIN`` … ``COMMIT`` issued as plain SQL through the executor, so the
wrapping works through every executor layer (engine, simulated backend,
client stacks) and, with a WAL-backed database, the whole repository becomes
durable in one fsync.  A mid-load failure rolls the transaction back: the
database returns to its pre-load state instead of keeping a partial
repository.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Protocol, Sequence, Tuple, Union

from repro.compiler.schema_gen import DUAL_TABLE, PRIMARY_KEY, SchemaMapping
from repro.datamodel import (
    CallTiming,
    Function,
    FunctionCall,
    PerformanceDatabase,
    Program,
    ProgVersion,
    Region,
    TestRun,
    TotalTiming,
    TypedTiming,
)

__all__ = [
    "SqlExecutor",
    "ObjectIds",
    "DatabaseLoader",
    "DEFAULT_LOAD_BATCH_SIZE",
    "load_repository",
]


class SqlExecutor(Protocol):
    """Anything that can execute a parametrised SQL statement.

    Executors may additionally offer ``executemany(sql, param_rows)``; the
    loader uses it to flush whole insert batches in one call.
    """

    def execute(self, sql: str, params: Sequence[Any] = ()) -> Any:  # pragma: no cover
        ...


#: Buffered rows flushed per ``executemany`` call unless configured otherwise.
DEFAULT_LOAD_BATCH_SIZE = 100


@dataclass
class ObjectIds:
    """Mapping from entity objects (by uid) to their relational row ids."""

    by_class: Dict[str, Dict[int, int]] = field(default_factory=dict)

    def assign(self, class_name: str, uid: int) -> int:
        ids = self.by_class.setdefault(class_name, {})
        if uid in ids:
            return ids[uid]
        row_id = len(ids) + 1
        ids[uid] = row_id
        return row_id

    def id_of(self, class_name: str, uid: int) -> int:
        try:
            return self.by_class[class_name][uid]
        except KeyError:
            raise KeyError(
                f"no row id assigned for {class_name} instance with uid {uid}"
            ) from None

    def id_for(self, entity: Any) -> int:
        """Row id of a data-model entity (dispatches on the entity class name)."""
        return self.id_of(type(entity).__name__, entity.uid)

    def count(self, class_name: str) -> int:
        return len(self.by_class.get(class_name, {}))

    def total(self) -> int:
        return sum(len(ids) for ids in self.by_class.values())


class DatabaseLoader:
    """Loads a performance-data repository into the generated schema.

    ``batch_size`` rows per table are buffered and flushed through the
    executor's ``executemany``; ``batch_size=None`` disables buffering and
    issues one ``execute`` per row (the pre-batching behaviour).
    """

    def __init__(
        self,
        mapping: SchemaMapping,
        executor: SqlExecutor,
        batch_size: Optional[int] = DEFAULT_LOAD_BATCH_SIZE,
    ) -> None:
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be positive or None, got {batch_size}")
        self.mapping = mapping
        self.executor = executor
        self.batch_size = batch_size
        self.ids = ObjectIds()
        self.rows_inserted = 0
        #: (table, column tuple) → buffered parameter rows awaiting a flush.
        self._pending: Dict[Tuple[str, Tuple[str, ...]], List[List[Any]]] = {}

    # ------------------------------------------------------------------ #
    # schema creation
    # ------------------------------------------------------------------ #

    def create_schema(self, with_indexes: bool = True) -> None:
        """Create all generated tables (and optionally the FK indexes)."""
        for statement in self.mapping.create_statements():
            self.executor.execute(statement)
        if with_indexes:
            for statement in self.mapping.index_statements():
                self.executor.execute(statement)
        self._insert(DUAL_TABLE, {"one": 1})
        self.flush()

    # ------------------------------------------------------------------ #
    # loading
    # ------------------------------------------------------------------ #

    def load(
        self, repository: PerformanceDatabase, atomic: bool = False
    ) -> ObjectIds:
        """Insert every entity of ``repository`` and return the id mapping.

        ``atomic=True`` wraps the whole load in ``BEGIN`` … ``COMMIT`` (rolled
        back on any failure); the statements go through the executor like any
        other SQL, so backends and client layers charge their usual costs.
        """
        if not atomic:
            for program in repository.programs:
                self._load_program(program)
            self.flush()
            return self.ids
        self.executor.execute("BEGIN")
        try:
            for program in repository.programs:
                self._load_program(program)
            self.flush()
        except BaseException:
            self._pending.clear()
            self.executor.execute("ROLLBACK")
            raise
        self.executor.execute("COMMIT")
        return self.ids

    def _load_program(self, program: Program) -> None:
        program_id = self.ids.assign("Program", program.uid)
        self._insert("Program", {PRIMARY_KEY: program_id, "Name": program.Name})
        for version in program.Versions:
            self._load_version(version, program_id)

    def _load_version(self, version: ProgVersion, program_id: int) -> None:
        version_id = self.ids.assign("ProgVersion", version.uid)
        code_text = "\n".join(
            f"--- {path}\n{text}" for path, text in sorted(version.Code.files.items())
        )
        self._insert(
            "ProgVersion",
            {
                PRIMARY_KEY: version_id,
                "Compilation": version.Compilation,
                "Code": code_text,
                "owner_Program_Versions_id": program_id,
            },
        )
        for run in version.Runs:
            run_id = self.ids.assign("TestRun", run.uid)
            self._insert(
                "TestRun",
                {
                    PRIMARY_KEY: run_id,
                    "Start": run.Start,
                    "NoPe": run.NoPe,
                    "Clockspeed": run.Clockspeed,
                    "owner_ProgVersion_Runs_id": version_id,
                },
            )
        for function in version.Functions:
            self._load_function(function, version_id)

    def _load_function(self, function: Function, version_id: int) -> None:
        function_id = self.ids.assign("Function", function.uid)
        self._insert(
            "Function",
            {
                PRIMARY_KEY: function_id,
                "Name": function.Name,
                "owner_ProgVersion_Functions_id": version_id,
            },
        )
        # Regions: parents must be inserted before their children so the
        # ParentRegion_id foreign key can be resolved.
        for region in sorted(function.Regions, key=lambda r: r.depth()):
            self._load_region(region, function_id)
        for call in function.Calls:
            self._load_call(call, function_id)

    def _load_region(self, region: Region, function_id: int) -> None:
        region_id = self.ids.assign("Region", region.uid)
        parent_id = (
            self.ids.id_of("Region", region.ParentRegion.uid)
            if region.ParentRegion is not None
            else None
        )
        self._insert(
            "Region",
            {
                PRIMARY_KEY: region_id,
                "ParentRegion_id": parent_id,
                "owner_Function_Regions_id": function_id,
            },
        )
        for total in region.TotTimes:
            total_id = self.ids.assign("TotalTiming", total.uid)
            self._insert(
                "TotalTiming",
                {
                    PRIMARY_KEY: total_id,
                    "Run_id": self.ids.id_of("TestRun", total.Run.uid),
                    "Excl": total.Excl,
                    "Incl": total.Incl,
                    "Ovhd": total.Ovhd,
                    "owner_Region_TotTimes_id": region_id,
                },
            )
        for typed in region.TypTimes:
            typed_id = self.ids.assign("TypedTiming", typed.uid)
            self._insert(
                "TypedTiming",
                {
                    PRIMARY_KEY: typed_id,
                    "Run_id": self.ids.id_of("TestRun", typed.Run.uid),
                    "Type": typed.Type.value,
                    "Time": typed.Time,
                    "owner_Region_TypTimes_id": region_id,
                },
            )

    def _load_call(self, call: FunctionCall, function_id: int) -> None:
        call_id = self.ids.assign("FunctionCall", call.uid)
        self._insert(
            "FunctionCall",
            {
                PRIMARY_KEY: call_id,
                "Caller_id": self.ids.id_of("Function", call.Caller.uid),
                "CallingReg_id": self.ids.id_of("Region", call.CallingReg.uid),
                "owner_Function_Calls_id": function_id,
            },
        )
        for timing in call.Sums:
            timing_id = self.ids.assign("CallTiming", timing.uid)
            self._insert(
                "CallTiming",
                {
                    PRIMARY_KEY: timing_id,
                    "Run_id": self.ids.id_of("TestRun", timing.Run.uid),
                    "MinCalls": timing.MinCalls,
                    "MaxCalls": timing.MaxCalls,
                    "MeanCalls": timing.MeanCalls,
                    "StdevCalls": timing.StdevCalls,
                    "MinTime": timing.MinTime,
                    "MaxTime": timing.MaxTime,
                    "MeanTime": timing.MeanTime,
                    "StdevTime": timing.StdevTime,
                    "MinCallsPe": timing.MinCallsPe,
                    "MaxCallsPe": timing.MaxCallsPe,
                    "MinTimePe": timing.MinTimePe,
                    "MaxTimePe": timing.MaxTimePe,
                    "owner_FunctionCall_Sums_id": call_id,
                },
            )

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def _insert(self, table: str, values: Dict[str, Any]) -> None:
        """Insert one row, skipping columns the generated schema does not have."""
        schema = self.mapping.schemas[table]
        known = {c.name for c in schema.columns}
        items = [(k, v) for k, v in values.items() if k in known]
        columns = tuple(name for name, _ in items)
        params = [value for _, value in items]
        if self.batch_size is None:
            self.executor.execute(self._insert_sql(table, columns), params)
            self.rows_inserted += 1
            return
        pending = self._pending.setdefault((table, columns), [])
        pending.append(params)
        if len(pending) >= self.batch_size:
            self._flush_one((table, columns))

    def flush(self) -> None:
        """Issue every buffered INSERT batch (load() flushes automatically)."""
        for key in list(self._pending):
            self._flush_one(key)

    def _flush_one(self, key: Tuple[str, Tuple[str, ...]]) -> None:
        pending = self._pending.pop(key, None)
        if not pending:
            return
        sql = self._insert_sql(*key)
        executemany = getattr(self.executor, "executemany", None)
        if executemany is not None:
            executemany(sql, pending)
            self.rows_inserted += len(pending)
        else:
            for params in pending:
                self.executor.execute(sql, params)
                self.rows_inserted += 1

    @staticmethod
    def _insert_sql(table: str, columns: Tuple[str, ...]) -> str:
        placeholders = ", ".join("?" for _ in columns)
        return f"INSERT INTO {table} ({', '.join(columns)}) VALUES ({placeholders})"


def load_repository(
    repository: PerformanceDatabase,
    mapping: SchemaMapping,
    executor: SqlExecutor,
    create_schema: bool = True,
    with_indexes: bool = True,
    batch_size: Optional[int] = DEFAULT_LOAD_BATCH_SIZE,
    atomic: bool = False,
) -> ObjectIds:
    """Create the schema (optionally) and load ``repository`` through ``executor``.

    ``batch_size`` buffers inserts per table and flushes them through the
    executor's ``executemany``; ``None`` loads row at a time.  ``atomic=True``
    wraps the data load (after the schema DDL) in one transaction — all
    rows commit together or, on failure, none do.
    """
    loader = DatabaseLoader(mapping, executor, batch_size=batch_size)
    if create_schema:
        loader.create_schema(with_indexes=with_indexes)
    return loader.load(repository, atomic=atomic)
