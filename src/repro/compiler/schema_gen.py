"""Automatic generation of the relational schema from the ASL data model.

The paper's prototype translated the data model into a relational database
scheme *manually*; the conclusion names the automatic generation of the
database design from the specification as future work.  This module implements
that step.

Mapping rules
-------------

For every ASL class ``C`` a table ``C`` is generated with

* a synthetic integer primary key ``id``;
* one column per scalar attribute (``int`` → INTEGER, ``float`` → FLOAT,
  ``String`` → VARCHAR, ``bool`` → BOOLEAN, ``DateTime`` → TIMESTAMP);
* one ``<Attr>_id`` INTEGER foreign-key column per class-typed attribute
  (e.g. ``Region.ParentRegion`` → ``ParentRegion_id``);
* one VARCHAR column per enum-typed attribute (the enum member name is
  stored);
* ``SourceCode`` attributes are stored as VARCHAR (the concatenated text).

``setof`` attributes become foreign keys *on the element table* pointing back
to the owning table: ``ProgVersion.Runs : setof TestRun`` adds the column
``owner_ProgVersion_Runs_id`` to ``TestRun``.  The owner-column name carries
both the owning class and the attribute name so that two different collections
of the same element type never collide.

In addition a single-row helper table ``dual`` is generated; the property
compiler uses it as the FROM clause of queries that compute pure scalar
expressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.asl.ast_nodes import ClassDecl
from repro.asl.errors import AslTypeError
from repro.asl.semantic import CheckedSpecification
from repro.asl.types import (
    BOOL,
    DATETIME,
    FLOAT,
    INT,
    SOURCECODE,
    STRING,
    ClassType,
    EnumType,
    ScalarType,
    SetType,
    Type,
)
from repro.relalg.schema import Column, ColumnType, TableSchema

__all__ = ["AttributeMapping", "ClassMapping", "SchemaMapping", "generate_schema"]

#: Name of the synthetic primary-key column of every generated table.
PRIMARY_KEY = "id"

#: Name of the single-row helper table used for scalar-only queries.
DUAL_TABLE = "dual"

_SCALAR_COLUMN_TYPES: Dict[Type, ColumnType] = {
    INT: ColumnType.INTEGER,
    FLOAT: ColumnType.FLOAT,
    BOOL: ColumnType.BOOLEAN,
    STRING: ColumnType.VARCHAR,
    DATETIME: ColumnType.TIMESTAMP,
    SOURCECODE: ColumnType.VARCHAR,
}


@dataclass(frozen=True)
class AttributeMapping:
    """How one ASL attribute is represented relationally."""

    #: ``scalar`` | ``enum`` | ``reference`` | ``collection``
    kind: str
    #: Column holding the value / foreign key.  For collections this column
    #: lives on the *element* table, not on the owner.
    column: str
    #: Table the column lives on.
    table: str
    #: Referenced class (for ``reference`` and ``collection`` attributes).
    target_class: Optional[str] = None


@dataclass
class ClassMapping:
    """Relational mapping of one ASL class."""

    class_name: str
    table: str
    primary_key: str = PRIMARY_KEY
    attributes: Dict[str, AttributeMapping] = field(default_factory=dict)


class SchemaMapping:
    """The complete data-model → schema mapping."""

    def __init__(self) -> None:
        self.classes: Dict[str, ClassMapping] = {}
        self.schemas: Dict[str, TableSchema] = {}

    # -- lookup ----------------------------------------------------------------

    def class_mapping(self, class_name: str) -> ClassMapping:
        try:
            return self.classes[class_name]
        except KeyError:
            raise AslTypeError(
                f"class {class_name!r} has no relational mapping"
            ) from None

    def table_for(self, class_name: str) -> str:
        """Table storing instances of ``class_name``."""
        return self.class_mapping(class_name).table

    def attribute(self, class_name: str, attribute: str) -> AttributeMapping:
        """Relational mapping of ``class_name.attribute``."""
        mapping = self.class_mapping(class_name)
        try:
            return mapping.attributes[attribute]
        except KeyError:
            raise AslTypeError(
                f"attribute {class_name}.{attribute} has no relational mapping"
            ) from None

    def table_schemas(self) -> List[TableSchema]:
        """All generated table schemas (including the ``dual`` helper)."""
        return list(self.schemas.values())

    def create_statements(self) -> List[str]:
        """Canonical CREATE TABLE statements for all generated tables."""
        return [schema.sql() for schema in self.schemas.values()]

    def index_statements(self) -> List[str]:
        """CREATE INDEX statements for every generated foreign-key column."""
        statements: List[str] = []
        for schema in self.schemas.values():
            for column in schema.columns:
                if column.name == PRIMARY_KEY:
                    continue
                if column.name.endswith("_id"):
                    statements.append(
                        f"CREATE INDEX idx_{schema.name}_{column.name} "
                        f"ON {schema.name} ({column.name})"
                    )
        return statements


def generate_schema(checked: CheckedSpecification) -> SchemaMapping:
    """Generate the relational schema for a checked ASL data model."""
    mapping = SchemaMapping()
    index = checked.index

    # First pass: create the class mappings and scalar/reference columns.
    columns_per_table: Dict[str, List[Column]] = {}
    for class_name, info in index.classes.items():
        table = class_name
        class_mapping = ClassMapping(class_name=class_name, table=table)
        mapping.classes[class_name] = class_mapping
        columns: List[Column] = [
            Column(name=PRIMARY_KEY, type=ColumnType.INTEGER, nullable=False,
                   primary_key=True)
        ]
        for attr_name, attr_type in info.attributes.items():
            column = _column_for_attribute(class_name, attr_name, attr_type)
            if column is None:
                # Collections are handled in the second pass (they live on the
                # element table).
                continue
            columns.append(column)
            kind = (
                "reference"
                if isinstance(attr_type, ClassType)
                else "enum"
                if isinstance(attr_type, EnumType)
                else "scalar"
            )
            class_mapping.attributes[attr_name] = AttributeMapping(
                kind=kind,
                column=column.name,
                table=table,
                target_class=attr_type.name if isinstance(attr_type, ClassType) else None,
            )
        columns_per_table[table] = columns

    # Second pass: collections add an owner foreign key on the element table.
    for class_name, info in index.classes.items():
        for attr_name, attr_type in info.attributes.items():
            if not isinstance(attr_type, SetType):
                continue
            element = attr_type.element
            if not isinstance(element, ClassType):
                raise AslTypeError(
                    f"collection attribute {class_name}.{attr_name} must "
                    f"contain class instances to be stored relationally, "
                    f"found {element}"
                )
            element_table = element.name
            owner_column = f"owner_{class_name}_{attr_name}_id"
            columns_per_table[element_table].append(
                Column(name=owner_column, type=ColumnType.INTEGER, nullable=True)
            )
            mapping.classes[class_name].attributes[attr_name] = AttributeMapping(
                kind="collection",
                column=owner_column,
                table=element_table,
                target_class=element.name,
            )

    for table, columns in columns_per_table.items():
        mapping.schemas[table] = TableSchema(name=table, columns=columns)

    # The single-row helper table for scalar-only queries.
    mapping.schemas[DUAL_TABLE] = TableSchema(
        name=DUAL_TABLE,
        columns=[Column(name="one", type=ColumnType.INTEGER, nullable=False)],
    )
    return mapping


def _column_for_attribute(
    class_name: str, attr_name: str, attr_type: Type
) -> Optional[Column]:
    """Column definition for one non-collection attribute (None for setof)."""
    if isinstance(attr_type, SetType):
        return None
    if isinstance(attr_type, ClassType):
        return Column(name=f"{attr_name}_id", type=ColumnType.INTEGER, nullable=True)
    if isinstance(attr_type, EnumType):
        return Column(name=attr_name, type=ColumnType.VARCHAR, nullable=True)
    if isinstance(attr_type, ScalarType):
        try:
            column_type = _SCALAR_COLUMN_TYPES[attr_type]
        except KeyError:
            raise AslTypeError(
                f"attribute {class_name}.{attr_name} has unsupported scalar "
                f"type {attr_type}"
            ) from None
        return Column(name=attr_name, type=column_type, nullable=True)
    raise AslTypeError(
        f"attribute {class_name}.{attr_name} has unsupported type {attr_type}"
    )
