"""Automatic ASL → relational translation (the paper's stated future work).

* :mod:`repro.compiler.schema_gen` — data model → relational schema;
* :mod:`repro.compiler.loader` — object repository → rows (bulk insert);
* :mod:`repro.compiler.sql_gen` — performance properties → SQL queries.
"""

from repro.compiler.loader import (
    DEFAULT_LOAD_BATCH_SIZE,
    DatabaseLoader,
    ObjectIds,
    load_repository,
)
from repro.compiler.schema_gen import (
    DUAL_TABLE,
    PRIMARY_KEY,
    AttributeMapping,
    ClassMapping,
    SchemaMapping,
    generate_schema,
)
from repro.compiler.sql_gen import (
    CompiledProperty,
    CompiledQuery,
    PropertyCompiler,
    PushdownError,
)

__all__ = [
    "AttributeMapping",
    "ClassMapping",
    "CompiledProperty",
    "CompiledQuery",
    "DEFAULT_LOAD_BATCH_SIZE",
    "DatabaseLoader",
    "DUAL_TABLE",
    "ObjectIds",
    "PRIMARY_KEY",
    "PropertyCompiler",
    "PushdownError",
    "SchemaMapping",
    "generate_schema",
    "load_repository",
]
