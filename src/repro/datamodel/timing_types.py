"""The Apprentice overhead/work categories used by the COSY data model.

The paper states that *"The TypedTiming class determines the execution time for
special types of overhead such as I/O, message passing and barrier
synchronization -- Apprentice knows 25 such types."*  The exact list of the 25
categories is not given in the paper, so this module defines a faithful
substitute: 25 named timing types grouped into the overhead families that the
Cray MPP Apprentice manual and the paper mention (message passing, collective
communication, barrier synchronisation, I/O, shared-memory traffic and
instrumentation overhead) plus pure computation categories.

Only the *structure* matters for reproducing the paper: every region may carry
at most one :class:`~repro.datamodel.entities.TypedTiming` per (test run,
timing type) pair, and properties such as ``SyncCost`` select particular types
(e.g. ``Barrier``) and relate their accumulated time to the duration of a
ranking basis region.
"""

from __future__ import annotations

import enum
from typing import FrozenSet, Mapping, Tuple


class TimingCategory(enum.Enum):
    """Coarse grouping of the 25 Apprentice timing types."""

    COMPUTATION = "computation"
    MESSAGE_PASSING = "message_passing"
    COLLECTIVE = "collective"
    SYNCHRONIZATION = "synchronization"
    IO = "io"
    MEMORY = "memory"
    INSTRUMENTATION = "instrumentation"


class TimingType(enum.Enum):
    """The 25 work/overhead types recorded per region and test run.

    The enum *value* is the stable name used in Apprentice-style export files
    and in the relational database (column ``TypedTiming.Type``).
    """

    # -- computation ------------------------------------------------------
    FloatingPoint = "FloatingPoint"
    IntegerOps = "IntegerOps"
    LoadStore = "LoadStore"
    # -- point-to-point message passing ------------------------------------
    SendOverhead = "SendOverhead"
    ReceiveOverhead = "ReceiveOverhead"
    MessageWait = "MessageWait"
    MessagePacking = "MessagePacking"
    # -- collective communication ------------------------------------------
    Broadcast = "Broadcast"
    Reduce = "Reduce"
    Gather = "Gather"
    Scatter = "Scatter"
    AllToAll = "AllToAll"
    # -- synchronization ----------------------------------------------------
    Barrier = "Barrier"
    LockWait = "LockWait"
    CriticalSection = "CriticalSection"
    EventWait = "EventWait"
    # -- input / output -----------------------------------------------------
    IORead = "IORead"
    IOWrite = "IOWrite"
    IOOpenClose = "IOOpenClose"
    IOSeek = "IOSeek"
    # -- memory system -------------------------------------------------------
    CacheMiss = "CacheMiss"
    RemoteMemAccess = "RemoteMemAccess"
    PageFault = "PageFault"
    # -- tool overhead --------------------------------------------------------
    Instrumentation = "Instrumentation"
    Sampling = "Sampling"

    @property
    def category(self) -> TimingCategory:
        """Return the coarse :class:`TimingCategory` of this timing type."""
        return _CATEGORY_OF[self]

    @property
    def is_overhead(self) -> bool:
        """True when time of this type counts as parallelization overhead.

        Pure computation (floating point, integer, load/store) is useful work;
        everything else is overhead that the COSY properties try to explain.
        """
        return self.category is not TimingCategory.COMPUTATION

    @classmethod
    def overhead_types(cls) -> Tuple["TimingType", ...]:
        """All types that count as parallelization overhead."""
        return tuple(t for t in cls if t.is_overhead)

    @classmethod
    def computation_types(cls) -> Tuple["TimingType", ...]:
        """All types that count as useful computation."""
        return tuple(t for t in cls if not t.is_overhead)

    @classmethod
    def from_name(cls, name: str) -> "TimingType":
        """Look up a timing type by its export-file name.

        Raises :class:`KeyError` with a helpful message for unknown names.
        """
        try:
            return cls(name)
        except ValueError:
            known = ", ".join(sorted(t.value for t in cls))
            raise KeyError(
                f"unknown timing type {name!r}; known types: {known}"
            ) from None


_CATEGORY_OF: Mapping[TimingType, TimingCategory] = {
    TimingType.FloatingPoint: TimingCategory.COMPUTATION,
    TimingType.IntegerOps: TimingCategory.COMPUTATION,
    TimingType.LoadStore: TimingCategory.COMPUTATION,
    TimingType.SendOverhead: TimingCategory.MESSAGE_PASSING,
    TimingType.ReceiveOverhead: TimingCategory.MESSAGE_PASSING,
    TimingType.MessageWait: TimingCategory.MESSAGE_PASSING,
    TimingType.MessagePacking: TimingCategory.MESSAGE_PASSING,
    TimingType.Broadcast: TimingCategory.COLLECTIVE,
    TimingType.Reduce: TimingCategory.COLLECTIVE,
    TimingType.Gather: TimingCategory.COLLECTIVE,
    TimingType.Scatter: TimingCategory.COLLECTIVE,
    TimingType.AllToAll: TimingCategory.COLLECTIVE,
    TimingType.Barrier: TimingCategory.SYNCHRONIZATION,
    TimingType.LockWait: TimingCategory.SYNCHRONIZATION,
    TimingType.CriticalSection: TimingCategory.SYNCHRONIZATION,
    TimingType.EventWait: TimingCategory.SYNCHRONIZATION,
    TimingType.IORead: TimingCategory.IO,
    TimingType.IOWrite: TimingCategory.IO,
    TimingType.IOOpenClose: TimingCategory.IO,
    TimingType.IOSeek: TimingCategory.IO,
    TimingType.CacheMiss: TimingCategory.MEMORY,
    TimingType.RemoteMemAccess: TimingCategory.MEMORY,
    TimingType.PageFault: TimingCategory.MEMORY,
    TimingType.Instrumentation: TimingCategory.INSTRUMENTATION,
    TimingType.Sampling: TimingCategory.INSTRUMENTATION,
}

#: Number of timing types known to the (simulated) Apprentice tool.  The paper
#: states Apprentice knows 25 such types; this constant is asserted in tests.
NUM_TIMING_TYPES: int = len(TimingType)

#: Types whose time COSY attributes to communication cost.
COMMUNICATION_TYPES: FrozenSet[TimingType] = frozenset(
    t
    for t in TimingType
    if t.category in (TimingCategory.MESSAGE_PASSING, TimingCategory.COLLECTIVE)
)

#: Types whose time COSY attributes to synchronization cost.
SYNCHRONIZATION_TYPES: FrozenSet[TimingType] = frozenset(
    t for t in TimingType if t.category is TimingCategory.SYNCHRONIZATION
)

#: Types whose time COSY attributes to I/O cost.
IO_TYPES: FrozenSet[TimingType] = frozenset(
    t for t in TimingType if t.category is TimingCategory.IO
)

__all__ = [
    "TimingCategory",
    "TimingType",
    "NUM_TIMING_TYPES",
    "COMMUNICATION_TYPES",
    "SYNCHRONIZATION_TYPES",
    "IO_TYPES",
]
