"""Runtime entity classes for the COSY performance data model.

These classes mirror, one to one, the ASL data model printed in Section 4.1 of
the paper (``Program``, ``ProgVersion``, ``TestRun``, ``Function``, ``Region``,
``TotalTiming``, ``TypedTiming``, ``FunctionCall`` and ``CallTiming``).  The
attribute names follow the paper exactly (``NoPe``, ``Excl``, ``Incl``,
``Ovhd``, ``TotTimes``, ``TypTimes`` …) so that

* the ASL reference evaluator (:mod:`repro.asl.evaluator`) can resolve
  attribute accesses such as ``r.TotTimes`` or ``sum.Run.NoPe`` directly
  against these Python objects, and
* the ASL→SQL compiler (:mod:`repro.compiler`) can map attributes to relational
  columns without a separate name-mapping table.

A small number of bookkeeping attributes that the paper leaves implicit (object
identifiers, region names and kinds, source line ranges) are added because the
relational representation and the report output need them; they are all
lower-case to keep them visually distinct from the paper's attributes.
"""

from __future__ import annotations

import dataclasses
import datetime as _dt
import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.datamodel.timing_types import TimingType

__all__ = [
    "RegionKind",
    "SourceCode",
    "Program",
    "ProgVersion",
    "TestRun",
    "Function",
    "Region",
    "TotalTiming",
    "TypedTiming",
    "FunctionCall",
    "CallTiming",
    "DataModelError",
]


class DataModelError(ValueError):
    """Raised when an entity or a repository violates a data-model invariant."""


_id_counter = itertools.count(1)


def _next_id() -> int:
    """Return a process-wide unique positive integer identifier."""
    return next(_id_counter)


class RegionKind(enum.Enum):
    """Kinds of program regions COSY identifies (paper, Section 3).

    COSY "identifies program regions, i.e. subprograms, loops, if-blocks,
    subroutine calls, and arbitrary basic blocks".
    """

    PROGRAM = "program"
    SUBPROGRAM = "subprogram"
    LOOP = "loop"
    IF_BLOCK = "if_block"
    CALL = "call"
    BASIC_BLOCK = "basic_block"


@dataclass
class SourceCode:
    """Program source text stored with a program version.

    The paper's ``ProgVersion`` class has a ``SourceCode Code`` attribute; COSY
    stores the source so that reports can point at the offending lines.
    """

    files: Dict[str, str] = field(default_factory=dict)

    def add_file(self, path: str, text: str) -> None:
        """Register (or replace) a source file."""
        self.files[path] = text

    def line(self, path: str, lineno: int) -> str:
        """Return one source line (1-based); raises ``KeyError``/``IndexError``."""
        lines = self.files[path].splitlines()
        return lines[lineno - 1]

    @property
    def total_lines(self) -> int:
        """Total number of source lines across all files."""
        return sum(len(text.splitlines()) for text in self.files.values())


@dataclass
class TestRun:
    """One execution of a program version on a processor configuration.

    ASL::

        class TestRun {
            DateTime Start;
            int NoPe;
            int Clockspeed;
        }
    """

    Start: _dt.datetime
    NoPe: int
    Clockspeed: int
    uid: int = field(default_factory=_next_id)

    def __post_init__(self) -> None:
        if self.NoPe <= 0:
            raise DataModelError(f"TestRun.NoPe must be positive, got {self.NoPe}")
        if self.Clockspeed <= 0:
            raise DataModelError(
                f"TestRun.Clockspeed must be positive, got {self.Clockspeed}"
            )

    def __hash__(self) -> int:
        return hash(self.uid)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TestRun) and other.uid == self.uid

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TestRun(uid={self.uid}, NoPe={self.NoPe}, Clockspeed={self.Clockspeed})"


@dataclass
class TotalTiming:
    """Summed-up exclusive/inclusive/overhead time of a region in one run.

    ASL::

        class TotalTiming {
            TestRun Run;
            float Excl;
            float Incl;
            float Ovhd;
        }

    All timings in the database are sums over all processes of the run.
    """

    Run: TestRun
    Excl: float
    Incl: float
    Ovhd: float
    uid: int = field(default_factory=_next_id)

    def __post_init__(self) -> None:
        for name in ("Excl", "Incl", "Ovhd"):
            value = getattr(self, name)
            if value < 0:
                raise DataModelError(f"TotalTiming.{name} must be >= 0, got {value}")
        if self.Incl + 1e-9 < self.Excl:
            raise DataModelError(
                "TotalTiming.Incl must be >= TotalTiming.Excl "
                f"(Incl={self.Incl}, Excl={self.Excl})"
            )

    def __hash__(self) -> int:
        return hash(self.uid)


@dataclass
class TypedTiming:
    """Time a region spent in one of the 25 Apprentice work/overhead types.

    ASL::

        class TypedTiming {
            TestRun Run;
            TimingType Type;
            float Time;
        }

    For each region there is *at most one* object per (run, type) pair; the
    repository enforces this invariant.
    """

    Run: TestRun
    Type: TimingType
    Time: float
    uid: int = field(default_factory=_next_id)

    def __post_init__(self) -> None:
        if not isinstance(self.Type, TimingType):
            raise DataModelError(
                f"TypedTiming.Type must be a TimingType, got {self.Type!r}"
            )
        if self.Time < 0:
            raise DataModelError(f"TypedTiming.Time must be >= 0, got {self.Time}")

    def __hash__(self) -> int:
        return hash(self.uid)


@dataclass
class CallTiming:
    """Across-process statistics of one call site in one test run.

    ASL (described in prose in the paper): a ``CallTiming`` stores, for the
    test run it belongs to, minimum / maximum / mean / standard deviation over

    a) the number of calls executed per process, and
    b) the time spent in the called function per process.

    For the four extremal values the processor that was first or last in the
    respective category is memorised (the ``*Pe`` attributes).
    """

    Run: TestRun
    MinCalls: float
    MaxCalls: float
    MeanCalls: float
    StdevCalls: float
    MinTime: float
    MaxTime: float
    MeanTime: float
    StdevTime: float
    MinCallsPe: int = 0
    MaxCallsPe: int = 0
    MinTimePe: int = 0
    MaxTimePe: int = 0
    uid: int = field(default_factory=_next_id)

    def __post_init__(self) -> None:
        if self.MinCalls > self.MaxCalls + 1e-9:
            raise DataModelError(
                f"CallTiming.MinCalls ({self.MinCalls}) > MaxCalls ({self.MaxCalls})"
            )
        if self.MinTime > self.MaxTime + 1e-9:
            raise DataModelError(
                f"CallTiming.MinTime ({self.MinTime}) > MaxTime ({self.MaxTime})"
            )
        for name in ("StdevCalls", "StdevTime", "MeanCalls", "MeanTime"):
            if getattr(self, name) < 0:
                raise DataModelError(f"CallTiming.{name} must be >= 0")

    def __hash__(self) -> int:
        return hash(self.uid)

    @property
    def imbalance_ratio(self) -> float:
        """Standard deviation of per-process time relative to the mean.

        This is the quantity the ``LoadImbalance`` property compares against
        the imbalance threshold.  Zero when the mean time is zero.
        """
        if self.MeanTime <= 0:
            return 0.0
        return self.StdevTime / self.MeanTime


@dataclass
class Region:
    """A program region with its parent and its measured performance data.

    ASL::

        class Region {
            Region ParentRegion;
            setof TotalTiming TotTimes;
            setof TypedTiming TypTimes;
        }

    The additional ``name`` / ``kind`` / ``source_file`` / ``first_line`` /
    ``last_line`` attributes identify the region in reports and exports.
    """

    name: str
    kind: RegionKind = RegionKind.BASIC_BLOCK
    ParentRegion: Optional["Region"] = None
    TotTimes: List[TotalTiming] = field(default_factory=list)
    TypTimes: List[TypedTiming] = field(default_factory=list)
    source_file: str = ""
    first_line: int = 0
    last_line: int = 0
    uid: int = field(default_factory=_next_id)

    def __hash__(self) -> int:
        return hash(self.uid)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Region) and other.uid == self.uid

    # -- structural helpers -------------------------------------------------

    @property
    def children(self) -> List["Region"]:
        """Direct sub-regions (computed lazily by the repository)."""
        return getattr(self, "_children", [])

    def _register_child(self, child: "Region") -> None:
        if not hasattr(self, "_children"):
            self._children: List[Region] = []
        self._children.append(child)

    def ancestors(self) -> Iterator["Region"]:
        """Yield the parent chain from the immediate parent to the root."""
        current = self.ParentRegion
        seen = set()
        while current is not None:
            if current.uid in seen:
                raise DataModelError(
                    f"cycle in region parent chain at region {current.name!r}"
                )
            seen.add(current.uid)
            yield current
            current = current.ParentRegion

    def depth(self) -> int:
        """Nesting depth of the region (root regions have depth 0)."""
        return sum(1 for _ in self.ancestors())

    # -- timing accessors ----------------------------------------------------

    def add_total_timing(self, timing: TotalTiming) -> None:
        """Attach summary timing for one test run (at most one per run)."""
        if any(t.Run == timing.Run for t in self.TotTimes):
            raise DataModelError(
                f"region {self.name!r} already has a TotalTiming for run "
                f"{timing.Run.uid}"
            )
        self.TotTimes.append(timing)

    def add_typed_timing(self, timing: TypedTiming) -> None:
        """Attach a typed timing (at most one per run and timing type)."""
        if any(
            t.Run == timing.Run and t.Type is timing.Type for t in self.TypTimes
        ):
            raise DataModelError(
                f"region {self.name!r} already has a TypedTiming of type "
                f"{timing.Type.value} for run {timing.Run.uid}"
            )
        self.TypTimes.append(timing)

    def summary(self, run: TestRun) -> TotalTiming:
        """Return the unique :class:`TotalTiming` for ``run``.

        This is the Python counterpart of the ASL helper function
        ``Summary(Region r, TestRun t)`` in Section 4.2.
        """
        matches = [t for t in self.TotTimes if t.Run == run]
        if len(matches) != 1:
            raise DataModelError(
                f"region {self.name!r} has {len(matches)} TotalTiming objects "
                f"for run {run.uid}; expected exactly one"
            )
        return matches[0]

    def duration(self, run: TestRun) -> float:
        """Inclusive execution time of the region in ``run`` (ASL ``Duration``)."""
        return self.summary(run).Incl

    def typed_time(self, run: TestRun, timing_type: TimingType) -> float:
        """Summed time of ``timing_type`` in ``run``; zero when not recorded."""
        return sum(
            t.Time
            for t in self.TypTimes
            if t.Run == run and t.Type is timing_type
        )

    def overhead(self, run: TestRun) -> float:
        """Measured overhead of the region in ``run`` (``Summary(r,t).Ovhd``)."""
        return self.summary(run).Ovhd

    def runs(self) -> List[TestRun]:
        """All test runs for which the region has summary data."""
        return [t.Run for t in self.TotTimes]


@dataclass
class FunctionCall:
    """A call site of a function with per-process call statistics.

    ASL::

        class FunctionCall {
            Function Caller;
            Region CallingReg;
            setof CallTiming Sums;
        }
    """

    Caller: "Function"
    CallingReg: Region
    Sums: List[CallTiming] = field(default_factory=list)
    callee_name: str = ""
    uid: int = field(default_factory=_next_id)

    def __hash__(self) -> int:
        return hash(self.uid)

    def add_call_timing(self, timing: CallTiming) -> None:
        """Attach statistics for one test run (at most one per run)."""
        if any(t.Run == timing.Run for t in self.Sums):
            raise DataModelError(
                f"call site {self.uid} already has a CallTiming for run "
                f"{timing.Run.uid}"
            )
        self.Sums.append(timing)

    def timing_for(self, run: TestRun) -> CallTiming:
        """Return the unique :class:`CallTiming` for ``run``."""
        matches = [t for t in self.Sums if t.Run == run]
        if len(matches) != 1:
            raise DataModelError(
                f"call site {self.uid} has {len(matches)} CallTiming objects "
                f"for run {run.uid}; expected exactly one"
            )
        return matches[0]


@dataclass
class Function:
    """A subprogram with its call sites and regions.

    ASL::

        class Function {
            String Name;
            setof FunctionCall Calls;
            setof Region Regions;
        }
    """

    Name: str
    Calls: List[FunctionCall] = field(default_factory=list)
    Regions: List[Region] = field(default_factory=list)
    uid: int = field(default_factory=_next_id)

    def __hash__(self) -> int:
        return hash(self.uid)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Function) and other.uid == self.uid

    def add_region(self, region: Region) -> Region:
        """Register ``region`` as belonging to this function."""
        self.Regions.append(region)
        if region.ParentRegion is not None:
            region.ParentRegion._register_child(region)
        return region

    def add_call(self, call: FunctionCall) -> FunctionCall:
        """Register a call site located in this function."""
        self.Calls.append(call)
        return call

    def region_by_name(self, name: str) -> Region:
        """Look up a region of this function by name; raises ``KeyError``."""
        for region in self.Regions:
            if region.name == name:
                return region
        raise KeyError(f"function {self.Name!r} has no region named {name!r}")

    @property
    def body_region(self) -> Region:
        """The outermost (function body) region of this function."""
        roots = [r for r in self.Regions if r.ParentRegion is None]
        if not roots:
            raise DataModelError(f"function {self.Name!r} has no root region")
        return roots[0]


@dataclass
class ProgVersion:
    """One compiled version of a program with its runs and static structure.

    ASL::

        class ProgVersion {
            DateTime Compilation;
            setof Function Functions;
            setof TestRun Runs;
            SourceCode Code;
        }
    """

    Compilation: _dt.datetime
    Functions: List[Function] = field(default_factory=list)
    Runs: List[TestRun] = field(default_factory=list)
    Code: SourceCode = field(default_factory=SourceCode)
    label: str = ""
    uid: int = field(default_factory=_next_id)

    def __hash__(self) -> int:
        return hash(self.uid)

    def add_function(self, function: Function) -> Function:
        """Register a function of this program version."""
        if any(f.Name == function.Name for f in self.Functions):
            raise DataModelError(
                f"program version already has a function named {function.Name!r}"
            )
        self.Functions.append(function)
        return function

    def add_run(self, run: TestRun) -> TestRun:
        """Register a test run executed with this program version."""
        self.Runs.append(run)
        return run

    def function_by_name(self, name: str) -> Function:
        """Look up a function by name; raises ``KeyError`` when unknown."""
        for function in self.Functions:
            if function.Name == name:
                return function
        raise KeyError(f"no function named {name!r} in this program version")

    def run_with_pes(self, nope: int) -> TestRun:
        """Return the (first) test run executed with ``nope`` processors."""
        for run in self.Runs:
            if run.NoPe == nope:
                return run
        raise KeyError(f"no test run with {nope} processors")

    def smallest_run(self) -> TestRun:
        """The test run with the minimal number of processors.

        COSY uses this run as the reference for the total-cost computation
        (paper, Section 3).
        """
        if not self.Runs:
            raise DataModelError("program version has no test runs")
        return min(self.Runs, key=lambda run: (run.NoPe, run.uid))

    def all_regions(self) -> Iterator[Region]:
        """Iterate over every region of every function."""
        for function in self.Functions:
            yield from function.Regions

    def all_calls(self) -> Iterator[FunctionCall]:
        """Iterate over every call site of every function."""
        for function in self.Functions:
            yield from function.Calls

    @property
    def main_region(self) -> Region:
        """The whole-program region used as the default ranking basis."""
        for function in self.Functions:
            for region in function.Regions:
                if region.kind is RegionKind.PROGRAM:
                    return region
        # Fall back to the body region of the first function.
        if self.Functions:
            return self.Functions[0].body_region
        raise DataModelError("program version has no regions")


@dataclass
class Program:
    """A single application identified by its name.

    ASL::

        class Program {
            String Name;
            setof ProgVersion Versions;
        }
    """

    Name: str
    Versions: List[ProgVersion] = field(default_factory=list)
    uid: int = field(default_factory=_next_id)

    def __hash__(self) -> int:
        return hash(self.uid)

    def add_version(self, version: ProgVersion) -> ProgVersion:
        """Register a new program version."""
        self.Versions.append(version)
        return version

    def latest_version(self) -> ProgVersion:
        """The most recently compiled version."""
        if not self.Versions:
            raise DataModelError(f"program {self.Name!r} has no versions")
        return max(self.Versions, key=lambda v: (v.Compilation, v.uid))

    def version_by_label(self, label: str) -> ProgVersion:
        """Look up a version by its label; raises ``KeyError`` when unknown."""
        for version in self.Versions:
            if version.label == label:
                return version
        raise KeyError(f"program {self.Name!r} has no version labelled {label!r}")


def entity_fields(entity: object) -> Sequence[str]:
    """Return the dataclass field names of ``entity`` (helper for exporters)."""
    return [f.name for f in dataclasses.fields(entity)]
