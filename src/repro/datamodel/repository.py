"""The in-memory performance-data repository used by COSY.

The paper stores performance data in a relational database; the analysis tool
and the ASL reference evaluator, however, operate on an object view of that
data (the ASL data model of Section 4.1).  :class:`PerformanceDatabase` is that
object view: it owns a set of :class:`~repro.datamodel.entities.Program`
objects, enforces the data-model invariants, and offers the navigation and
aggregation helpers the COSY properties rely on (``Summary``, ``Duration``,
selection of the reference run with the minimal number of processors, …).

The relational representation is produced from this repository by
:mod:`repro.compiler.loader`.
"""

from __future__ import annotations

import datetime as _dt
from typing import Dict, Iterator, List, Optional, Tuple

from repro.datamodel.entities import (
    CallTiming,
    DataModelError,
    Function,
    FunctionCall,
    Program,
    ProgVersion,
    Region,
    RegionKind,
    TestRun,
    TotalTiming,
    TypedTiming,
)
from repro.datamodel.timing_types import TimingType

__all__ = ["PerformanceDatabase", "RepositoryStats"]


class RepositoryStats:
    """Simple record of entity counts, used by reports and benchmarks."""

    def __init__(self, **counts: int) -> None:
        self.counts: Dict[str, int] = dict(counts)

    def __getitem__(self, key: str) -> int:
        return self.counts[key]

    def total_rows(self) -> int:
        """Total number of entity instances (≈ relational rows)."""
        return sum(self.counts.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
        return f"RepositoryStats({inner})"


class PerformanceDatabase:
    """Object repository of COSY performance data.

    The repository may hold *multiple applications with different versions and
    multiple test runs per program version* (paper, Section 3).
    """

    def __init__(self) -> None:
        self._programs: Dict[str, Program] = {}

    # ------------------------------------------------------------------ #
    # population
    # ------------------------------------------------------------------ #

    def add_program(self, program: Program) -> Program:
        """Register an application; names must be unique."""
        if program.Name in self._programs:
            raise DataModelError(f"program {program.Name!r} already registered")
        self._programs[program.Name] = program
        return program

    def create_program(self, name: str) -> Program:
        """Create and register an empty :class:`Program`."""
        return self.add_program(Program(Name=name))

    def create_version(
        self,
        program_name: str,
        label: str = "",
        compilation: Optional[_dt.datetime] = None,
    ) -> ProgVersion:
        """Create a new version of an existing (or new) program."""
        program = self._programs.get(program_name)
        if program is None:
            program = self.create_program(program_name)
        version = ProgVersion(
            Compilation=compilation or _dt.datetime(2000, 1, 1),
            label=label or f"v{len(program.Versions) + 1}",
        )
        program.add_version(version)
        return version

    # ------------------------------------------------------------------ #
    # navigation
    # ------------------------------------------------------------------ #

    @property
    def programs(self) -> List[Program]:
        """All registered applications."""
        return list(self._programs.values())

    def program(self, name: str) -> Program:
        """Look up a program by name; raises ``KeyError`` when unknown."""
        try:
            return self._programs[name]
        except KeyError:
            raise KeyError(
                f"no program named {name!r}; known programs: "
                f"{sorted(self._programs)}"
            ) from None

    def versions(self) -> Iterator[ProgVersion]:
        """Iterate over every program version of every application."""
        for program in self._programs.values():
            yield from program.Versions

    def regions(self) -> Iterator[Region]:
        """Iterate over every region in the repository."""
        for version in self.versions():
            yield from version.all_regions()

    def calls(self) -> Iterator[FunctionCall]:
        """Iterate over every function call site in the repository."""
        for version in self.versions():
            yield from version.all_calls()

    def runs(self) -> Iterator[TestRun]:
        """Iterate over every test run in the repository."""
        for version in self.versions():
            yield from version.Runs

    def region_by_name(self, name: str) -> Region:
        """Find a region anywhere in the repository by its name."""
        for region in self.regions():
            if region.name == name:
                return region
        raise KeyError(f"no region named {name!r} in the repository")

    # ------------------------------------------------------------------ #
    # ASL helper functions (Section 4.2)
    # ------------------------------------------------------------------ #

    @staticmethod
    def summary(region: Region, run: TestRun) -> TotalTiming:
        """ASL ``Summary(Region r, TestRun t)``: the unique TotalTiming of a run."""
        return region.summary(run)

    @staticmethod
    def duration(region: Region, run: TestRun) -> float:
        """ASL ``Duration(Region r, TestRun t)``: inclusive time in the run."""
        return region.duration(run)

    @staticmethod
    def min_pe_summary(region: Region) -> TotalTiming:
        """The TotalTiming of ``region`` belonging to the run with minimal NoPe.

        This mirrors the ``MinPeSum`` LET-binding of the ``SublinearSpeedup``
        property.
        """
        if not region.TotTimes:
            raise DataModelError(
                f"region {region.name!r} has no TotalTiming objects"
            )
        return min(region.TotTimes, key=lambda t: (t.Run.NoPe, t.Run.uid))

    @classmethod
    def total_cost(cls, region: Region, run: TestRun) -> float:
        """Lost cycles of ``region`` in ``run`` relative to the smallest run.

        ``TotalCost = Duration(r, t) - Duration(r, MinPeSum.Run)`` — the basis
        of the ``SublinearSpeedup`` property and of COSY's main cost metric.
        """
        reference = cls.min_pe_summary(region)
        return region.duration(run) - region.duration(reference.Run)

    @staticmethod
    def typed_cost(region: Region, run: TestRun, timing_type: TimingType) -> float:
        """Summed time of one overhead type (e.g. Barrier) in ``run``."""
        return region.typed_time(run, timing_type)

    @staticmethod
    def speedup(region: Region, run: TestRun) -> float:
        """Speedup of ``region`` in ``run`` relative to the smallest run.

        Timings in the database are summed over all processes, therefore the
        wall-clock time of a run is ``Duration / NoPe`` and the speedup against
        the reference run with ``NoPe_ref`` processors is::

            (Duration_ref / NoPe_ref) / (Duration_run / NoPe_run)
        """
        reference = PerformanceDatabase.min_pe_summary(region)
        ref_wall = reference.Incl / reference.Run.NoPe
        run_wall = region.duration(run) / run.NoPe
        if run_wall <= 0:
            return float("inf")
        return ref_wall / run_wall

    # ------------------------------------------------------------------ #
    # integrity / statistics
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Check the repository invariants; raises :class:`DataModelError`.

        Checked invariants:

        * every region has at most one :class:`TotalTiming` per run and at most
          one :class:`TypedTiming` per (run, type) pair;
        * every timing refers to a run registered with the owning version;
        * region parent chains are acyclic and stay within one function;
        * every call site has at most one :class:`CallTiming` per run.
        """
        for version in self.versions():
            run_ids = {run.uid for run in version.Runs}
            for function in version.Functions:
                for region in function.Regions:
                    self._validate_region(region, run_ids)
                for call in function.Calls:
                    self._validate_call(call, run_ids)

    @staticmethod
    def _validate_region(region: Region, run_ids: set) -> None:
        seen_runs = set()
        for timing in region.TotTimes:
            if timing.Run.uid not in run_ids:
                raise DataModelError(
                    f"region {region.name!r} has a TotalTiming for an "
                    f"unregistered run {timing.Run.uid}"
                )
            if timing.Run.uid in seen_runs:
                raise DataModelError(
                    f"region {region.name!r} has duplicate TotalTiming for run "
                    f"{timing.Run.uid}"
                )
            seen_runs.add(timing.Run.uid)
        seen_typed: set = set()
        for typed in region.TypTimes:
            key = (typed.Run.uid, typed.Type)
            if typed.Run.uid not in run_ids:
                raise DataModelError(
                    f"region {region.name!r} has a TypedTiming for an "
                    f"unregistered run {typed.Run.uid}"
                )
            if key in seen_typed:
                raise DataModelError(
                    f"region {region.name!r} has duplicate TypedTiming "
                    f"({typed.Type.value}) for run {typed.Run.uid}"
                )
            seen_typed.add(key)
        # Walking the ancestor chain raises on cycles.
        list(region.ancestors())

    @staticmethod
    def _validate_call(call: FunctionCall, run_ids: set) -> None:
        seen = set()
        for timing in call.Sums:
            if timing.Run.uid not in run_ids:
                raise DataModelError(
                    f"call site {call.uid} has a CallTiming for an "
                    f"unregistered run {timing.Run.uid}"
                )
            if timing.Run.uid in seen:
                raise DataModelError(
                    f"call site {call.uid} has duplicate CallTiming for run "
                    f"{timing.Run.uid}"
                )
            seen.add(timing.Run.uid)

    def stats(self) -> RepositoryStats:
        """Entity counts across the whole repository."""
        counts = {
            "programs": len(self._programs),
            "versions": 0,
            "runs": 0,
            "functions": 0,
            "regions": 0,
            "total_timings": 0,
            "typed_timings": 0,
            "calls": 0,
            "call_timings": 0,
        }
        for program in self._programs.values():
            counts["versions"] += len(program.Versions)
            for version in program.Versions:
                counts["runs"] += len(version.Runs)
                counts["functions"] += len(version.Functions)
                for function in version.Functions:
                    counts["regions"] += len(function.Regions)
                    counts["calls"] += len(function.Calls)
                    for region in function.Regions:
                        counts["total_timings"] += len(region.TotTimes)
                        counts["typed_timings"] += len(region.TypTimes)
                    for call in function.Calls:
                        counts["call_timings"] += len(call.Sums)
        return RepositoryStats(**counts)

    def __len__(self) -> int:
        return len(self._programs)

    def __contains__(self, name: str) -> bool:
        return name in self._programs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PerformanceDatabase(programs={sorted(self._programs)})"
