"""The COSY performance data model (paper, Section 4.1) as runtime objects.

The classes mirror the ASL data model one to one; the
:class:`PerformanceDatabase` repository enforces the invariants stated in the
paper (one ``TotalTiming`` per region and run, one ``TypedTiming`` per region,
run and type, one ``CallTiming`` per call site and run).
"""

from repro.datamodel.entities import (
    CallTiming,
    DataModelError,
    Function,
    FunctionCall,
    Program,
    ProgVersion,
    Region,
    RegionKind,
    SourceCode,
    TestRun,
    TotalTiming,
    TypedTiming,
)
from repro.datamodel.repository import PerformanceDatabase, RepositoryStats
from repro.datamodel.timing_types import (
    COMMUNICATION_TYPES,
    IO_TYPES,
    NUM_TIMING_TYPES,
    SYNCHRONIZATION_TYPES,
    TimingCategory,
    TimingType,
)

__all__ = [
    "CallTiming",
    "COMMUNICATION_TYPES",
    "DataModelError",
    "Function",
    "FunctionCall",
    "IO_TYPES",
    "NUM_TIMING_TYPES",
    "PerformanceDatabase",
    "Program",
    "ProgVersion",
    "Region",
    "RegionKind",
    "RepositoryStats",
    "SourceCode",
    "SYNCHRONIZATION_TYPES",
    "TestRun",
    "TimingCategory",
    "TimingType",
    "TotalTiming",
    "TypedTiming",
]
