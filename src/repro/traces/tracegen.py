"""Event-trace generation for the baseline analyzers.

The trace generator "executes" a :class:`~repro.apprentice.WorkloadSpec` for a
given processor count and records enter/exit, barrier, message and I/O events.
It uses the same deterministic work model as the summary-data simulator
(:mod:`repro.apprentice.simulator`) — serial fraction, per-process imbalance,
barrier phases, communication patterns — so the bottlenecks visible in the
traces are the same bottlenecks the COSY properties detect from the summary
data.  The traces are intentionally much lighter weight than a real trace (one
event pair per region instance rather than per iteration); what matters for
the E5 comparison is that the EDL/EARL-style analyses can locate the injected
bottleneck, not byte-level realism.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro.apprentice.program_model import CommPattern, RegionSpec, WorkloadSpec
from repro.apprentice.rng import imbalanced_shares, rng_for
from repro.traces.events import Event, EventKind, Trace

__all__ = ["TraceGenerator", "generate_trace"]


class TraceGenerator:
    """Generates an event trace of one run of a synthetic workload."""

    def __init__(self, workload: WorkloadSpec, seed: int = 0) -> None:
        workload.validate()
        self.workload = workload
        self.seed = seed

    def generate(self, pes: int) -> Trace:
        """Generate the trace of a run on ``pes`` processors."""
        if pes <= 0:
            raise ValueError("pes must be positive")
        trace = Trace(pes=pes)
        clocks = np.zeros(pes)
        for function in self.workload.functions:
            self._emit_region(function.body, pes, clocks, trace)
        return trace.finalize()

    # ------------------------------------------------------------------ #

    def _emit_region(
        self, spec: RegionSpec, pes: int, clocks: np.ndarray, trace: Trace
    ) -> None:
        rng = rng_for(self.seed, "trace", self.workload.name, spec.name, pes)
        for pe in range(pes):
            trace.add(
                Event(time=float(clocks[pe]), pe=pe, kind=EventKind.ENTER,
                      region=spec.name)
            )

        serial = spec.work * spec.serial_fraction
        parallel = spec.work * (1.0 - spec.serial_fraction)
        shares = imbalanced_shares(rng, pes, spec.imbalance)
        compute = serial + (parallel / pes) * shares
        clocks += compute

        # Communication events.
        comm_time = self._comm_time(spec, pes)
        if comm_time > 0:
            partners = np.roll(np.arange(pes), 1)
            messages = 2 if spec.comm_pattern is CommPattern.NEAREST else max(1, pes // 2)
            size = 8192 if spec.comm_pattern is CommPattern.ALLTOALL else 65536
            for pe in range(pes):
                for message in range(messages):
                    send_time = float(clocks[pe]) + comm_time * (message + 0.25) / messages
                    trace.add(
                        Event(time=send_time, pe=pe, kind=EventKind.SEND,
                              region=spec.name, partner=int(partners[pe]), size=size)
                    )
                    trace.add(
                        Event(time=send_time + comm_time / (2 * messages),
                              pe=int(partners[pe]), kind=EventKind.RECV,
                              region=spec.name, partner=pe, size=size)
                    )
            clocks += comm_time

        # I/O events.
        if spec.io_time > 0:
            for pe in range(pes):
                io_share = spec.io_time / pes if spec.io_parallel else (
                    spec.io_time if pe == 0 else 0.0
                )
                if io_share > 0:
                    trace.add(
                        Event(time=float(clocks[pe]), pe=pe, kind=EventKind.IO_BEGIN,
                              region=spec.name, size=int(io_share * 1e7))
                    )
                    trace.add(
                        Event(time=float(clocks[pe]) + io_share, pe=pe,
                              kind=EventKind.IO_END, region=spec.name,
                              size=int(io_share * 1e7))
                    )
            if spec.io_parallel:
                clocks += spec.io_time / pes
            else:
                clocks[:] = clocks.max() + spec.io_time

        # Barrier: everyone waits for the slowest process.
        if spec.barriers > 0 and pes > 1:
            for pe in range(pes):
                trace.add(
                    Event(time=float(clocks[pe]), pe=pe,
                          kind=EventKind.BARRIER_ENTER, region=spec.name)
                )
            release = float(clocks.max()) + 5e-6 * math.log2(pes) * spec.barriers
            for pe in range(pes):
                trace.add(
                    Event(time=release, pe=pe, kind=EventKind.BARRIER_EXIT,
                          region=spec.name)
                )
            clocks[:] = release

        for child in spec.children:
            self._emit_region(child, pes, clocks, trace)

        for pe in range(pes):
            trace.add(
                Event(time=float(clocks[pe]), pe=pe, kind=EventKind.EXIT,
                      region=spec.name)
            )

    @staticmethod
    def _comm_time(spec: RegionSpec, pes: int) -> float:
        if spec.comm_pattern is CommPattern.NONE or spec.comm_time <= 0 or pes <= 1:
            return 0.0
        if spec.comm_pattern is CommPattern.NEAREST:
            return spec.comm_time
        if spec.comm_pattern in (CommPattern.REDUCTION, CommPattern.BROADCAST):
            return spec.comm_time * math.log2(pes)
        return spec.comm_time * (pes - 1)


def generate_trace(workload: WorkloadSpec, pes: int, seed: int = 0) -> Trace:
    """Convenience wrapper around :class:`TraceGenerator`."""
    return TraceGenerator(workload, seed=seed).generate(pes)
