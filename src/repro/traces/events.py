"""Event traces of simulated parallel program runs.

The related-work section of the paper contrasts the ASL/COSY approach with
tools that define performance bottlenecks as *event patterns in program
traces* (EDL) or analyse traces procedurally (EARL).  To compare against those
approaches, this module defines a minimal event-trace model: a
:class:`Trace` is an ordered list of per-process :class:`Event` records
(region enter/exit, barrier enter/exit, message send/receive, I/O begin/end).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = ["EventKind", "Event", "Trace"]


class EventKind(enum.Enum):
    """Kinds of trace events."""

    ENTER = "enter"
    EXIT = "exit"
    BARRIER_ENTER = "barrier_enter"
    BARRIER_EXIT = "barrier_exit"
    SEND = "send"
    RECV = "recv"
    IO_BEGIN = "io_begin"
    IO_END = "io_end"


@dataclass(frozen=True)
class Event:
    """One trace record of one process."""

    time: float
    pe: int
    kind: EventKind
    #: Region (or routine) the event belongs to.
    region: str = ""
    #: Communication partner (SEND/RECV) or -1.
    partner: int = -1
    #: Message size in bytes (SEND/RECV) or transferred bytes (I/O).
    size: int = 0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"event time must be >= 0, got {self.time}")
        if self.pe < 0:
            raise ValueError(f"event pe must be >= 0, got {self.pe}")


class Trace:
    """An event trace of one simulated test run."""

    def __init__(self, pes: int, events: Optional[Iterable[Event]] = None) -> None:
        if pes <= 0:
            raise ValueError("a trace needs at least one process")
        self.pes = pes
        self.events: List[Event] = sorted(
            events or [], key=lambda e: (e.time, e.pe)
        )

    # -- construction -----------------------------------------------------------

    def add(self, event: Event) -> None:
        """Append one event (keeps the trace sorted lazily)."""
        self.events.append(event)
        self._dirty = True

    def finalize(self) -> "Trace":
        """Sort the events by time; returns self for chaining."""
        self.events.sort(key=lambda e: (e.time, e.pe))
        return self

    # -- access -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def for_pe(self, pe: int) -> List[Event]:
        """Events of one process, in time order."""
        return [e for e in self.events if e.pe == pe]

    def of_kind(self, *kinds: EventKind) -> List[Event]:
        """Events of the given kinds, in time order."""
        wanted = set(kinds)
        return [e for e in self.events if e.kind in wanted]

    def filter(self, predicate: Callable[[Event], bool]) -> List[Event]:
        """Events satisfying an arbitrary predicate."""
        return [e for e in self.events if predicate(e)]

    def duration(self) -> float:
        """Time of the last event (the run's makespan)."""
        return self.events[-1].time if self.events else 0.0

    def regions(self) -> List[str]:
        """Names of all regions that appear in the trace."""
        seen: Dict[str, None] = {}
        for event in self.events:
            if event.region and event.region not in seen:
                seen[event.region] = None
        return list(seen)

    # -- derived metrics -------------------------------------------------------------

    def region_times(self) -> Dict[str, float]:
        """Summed (over processes) exclusive-of-nothing time per region.

        Computed from matching ENTER/EXIT pairs per process; nested regions are
        counted in full for every enclosing region (inclusive semantics, like
        the Apprentice summary data).
        """
        totals: Dict[str, float] = {}
        open_stack: Dict[Tuple[int, str], List[float]] = {}
        for event in self.events:
            key = (event.pe, event.region)
            if event.kind is EventKind.ENTER:
                open_stack.setdefault(key, []).append(event.time)
            elif event.kind is EventKind.EXIT:
                starts = open_stack.get(key)
                if starts:
                    start = starts.pop()
                    totals[event.region] = totals.get(event.region, 0.0) + (
                        event.time - start
                    )
        return totals

    def barrier_wait_times(self) -> Dict[str, float]:
        """Summed barrier waiting time per region.

        The waiting time of one barrier instance is, per process, the gap
        between its own BARRIER_ENTER and the latest BARRIER_ENTER of that
        instance (the last process arrives and releases everyone).
        """
        # Group barrier enters per (region, instance); instances are counted
        # per region in arrival order per process.
        per_region_counts: Dict[Tuple[int, str], int] = {}
        arrivals: Dict[Tuple[str, int], List[Tuple[int, float]]] = {}
        for event in self.of_kind(EventKind.BARRIER_ENTER):
            index = per_region_counts.get((event.pe, event.region), 0)
            per_region_counts[(event.pe, event.region)] = index + 1
            arrivals.setdefault((event.region, index), []).append(
                (event.pe, event.time)
            )
        waits: Dict[str, float] = {}
        for (region, _instance), entries in arrivals.items():
            latest = max(time for _, time in entries)
            waits[region] = waits.get(region, 0.0) + sum(
                latest - time for _, time in entries
            )
        return waits

    def message_statistics(self) -> Dict[str, float]:
        """Simple message-passing statistics (counts, bytes, mean size)."""
        sends = self.of_kind(EventKind.SEND)
        total_bytes = float(sum(e.size for e in sends))
        return {
            "messages": float(len(sends)),
            "bytes": total_bytes,
            "mean_size": total_bytes / len(sends) if sends else 0.0,
        }
