"""Event-trace substrate used by the related-work baseline analyzers."""

from repro.traces.events import Event, EventKind, Trace
from repro.traces.tracegen import TraceGenerator, generate_trace

__all__ = ["Event", "EventKind", "Trace", "TraceGenerator", "generate_trace"]
