"""The KOJAK Cost Analyzer (COSY).

* :mod:`repro.cosy.properties` — registry describing over which entities each
  ASL property is instantiated;
* :mod:`repro.cosy.strategies` — client-side vs. SQL-pushdown evaluation;
* :mod:`repro.cosy.analyzer` — evaluation, severity ranking, bottleneck;
* :mod:`repro.cosy.report` — plain-text reports;
* :mod:`repro.cosy.cli` — the ``cosy`` command-line tool.
"""

from repro.cosy.analyzer import (
    DEFAULT_THRESHOLD,
    AnalysisResult,
    CosyAnalyzer,
    PropertyInstance,
)
from repro.cosy.properties import (
    PropertyRegistration,
    PropertyRegistry,
    SubjectKind,
    default_registry,
)
from repro.cosy.report import format_table, render_report, render_speedup_table
from repro.cosy.strategies import (
    DEFAULT_PIPELINE_WINDOW,
    ClientSideStrategy,
    PipelinedPushdownStrategy,
    PushdownStrategy,
)

__all__ = [
    "AnalysisResult",
    "ClientSideStrategy",
    "CosyAnalyzer",
    "DEFAULT_PIPELINE_WINDOW",
    "DEFAULT_THRESHOLD",
    "PipelinedPushdownStrategy",
    "PropertyInstance",
    "PropertyRegistration",
    "PropertyRegistry",
    "PushdownStrategy",
    "SubjectKind",
    "default_registry",
    "format_table",
    "render_report",
    "render_speedup_table",
]
