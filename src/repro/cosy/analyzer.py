"""The KOJAK Cost Analyzer (COSY).

The analyzer ties everything together (paper, Section 3):

1. the user selects a program version and a specific test run;
2. the tool evaluates the set of performance properties — region properties
   for every program region, call-site properties for (barrier) call sites —
   against the performance data;
3. the main property is the total cost of the test run (the cycles lost in
   comparison to the run with the smallest number of processors), the other
   properties explain these costs in more detail;
4. the performance properties are ranked according to their severity and
   presented to the application programmer; a property is a performance
   *problem* iff its severity exceeds the threshold, and the most severe
   property is the program's *bottleneck*.

The evaluation itself is delegated to one of the strategies in
:mod:`repro.cosy.strategies` (client-side or SQL pushdown).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.asl.errors import AslEvaluationError
from repro.asl.evaluator import PropertyEvaluation
from repro.asl.semantic import CheckedSpecification
from repro.asl.specs import cosy_specification
from repro.cosy.properties import (
    PropertyRegistration,
    PropertyRegistry,
    SubjectKind,
    default_registry,
)
from repro.cosy.strategies import ClientSideStrategy, EvaluationStrategy
from repro.datamodel import (
    FunctionCall,
    PerformanceDatabase,
    ProgVersion,
    Region,
    TestRun,
)

__all__ = ["PropertyInstance", "AnalysisResult", "CosyAnalyzer"]

#: Default severity threshold above which a property is a performance problem.
DEFAULT_THRESHOLD = 0.05


@dataclass
class PropertyInstance:
    """One evaluated property in one context (region or call site, one run)."""

    property_name: str
    #: Human-readable description of the subject (region name or call site).
    subject: str
    #: ``region`` or ``call``.
    subject_kind: str
    #: The test run the property was evaluated for.
    run_pes: int
    holds: bool
    confidence: float
    severity: float
    #: Values of the individual conditions (by condition id / position).
    conditions: Dict[str, bool] = field(default_factory=dict)

    def is_problem(self, threshold: float) -> bool:
        """Performance property → performance problem iff severity > threshold."""
        return self.holds and self.severity > threshold

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.property_name}({self.subject}) severity={self.severity:.4f} "
            f"confidence={self.confidence:.2f}"
        )


@dataclass
class AnalysisResult:
    """The ranked outcome of one COSY analysis."""

    program: str
    version: str
    run_pes: int
    basis: str
    threshold: float
    strategy: str
    instances: List[PropertyInstance] = field(default_factory=list)
    #: Number of property evaluations that failed (e.g. missing data) and were
    #: skipped; COSY reports but tolerates them.
    skipped: int = 0

    # -- ranking -----------------------------------------------------------------

    def ranked(self) -> List[PropertyInstance]:
        """All property instances that hold, ranked by decreasing severity."""
        return sorted(
            (i for i in self.instances if i.holds),
            key=lambda i: (-i.severity, i.property_name, i.subject),
        )

    def problems(self) -> List[PropertyInstance]:
        """The performance problems: severity above the threshold."""
        return [i for i in self.ranked() if i.is_problem(self.threshold)]

    def bottleneck(self) -> Optional[PropertyInstance]:
        """The program's unique bottleneck: its most severe property.

        Returns ``None`` when no property holds.  If the bottleneck is not a
        performance problem, the program does not need any further tuning
        (paper, Section 4).
        """
        ranked = self.ranked()
        return ranked[0] if ranked else None

    def needs_tuning(self) -> bool:
        """Whether the bottleneck is a performance problem."""
        bottleneck = self.bottleneck()
        return bottleneck is not None and bottleneck.is_problem(self.threshold)

    # -- convenience accessors ------------------------------------------------------

    def by_property(self, property_name: str) -> List[PropertyInstance]:
        """All instances of one property, ranked by severity."""
        return [i for i in self.ranked() if i.property_name == property_name]

    def severity_of(self, property_name: str, subject: str) -> float:
        """Severity of one property instance (0 when it does not exist / hold)."""
        for instance in self.instances:
            if instance.property_name == property_name and instance.subject == subject:
                return instance.severity if instance.holds else 0.0
        return 0.0

    def total_cost_severity(self) -> float:
        """Severity of SublinearSpeedup on the whole-program region (main cost)."""
        instances = self.by_property("SublinearSpeedup")
        for instance in instances:
            if instance.subject == self.basis:
                return instance.severity
        return instances[0].severity if instances else 0.0


class CosyAnalyzer:
    """Evaluates and ranks the COSY performance properties for one test run."""

    def __init__(
        self,
        repository: PerformanceDatabase,
        specification: Optional[CheckedSpecification] = None,
        registry: Optional[PropertyRegistry] = None,
        threshold: float = DEFAULT_THRESHOLD,
        constants: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.repository = repository
        self.specification = specification or cosy_specification()
        self.registry = registry or default_registry()
        self.threshold = threshold
        self.constants = dict(constants or {})

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def analyze(
        self,
        program: Optional[str] = None,
        version_label: Optional[str] = None,
        pes: Optional[int] = None,
        basis: Optional[Region] = None,
        strategy: Optional[EvaluationStrategy] = None,
        properties: Optional[Sequence[str]] = None,
    ) -> AnalysisResult:
        """Analyze one test run of one program version.

        Parameters default to: the only (or first) program, its latest version,
        the run with the largest number of processors, the whole-program region
        as ranking basis, and client-side evaluation.
        """
        prog = self._select_program(program)
        version = self._select_version(prog, version_label)
        run = self._select_run(version, pes)
        basis_region = basis or version.main_region
        if strategy is None:
            strategy = ClientSideStrategy(self.specification, constants=self.constants)

        result = AnalysisResult(
            program=prog.Name,
            version=version.label,
            run_pes=run.NoPe,
            basis=basis_region.name,
            threshold=self.threshold,
            strategy=getattr(strategy, "name", type(strategy).__name__),
        )
        wanted = set(properties) if properties is not None else None

        for registration in self.registry:
            if wanted is not None and registration.name not in wanted:
                continue
            if registration.name not in self.specification.index.properties:
                raise KeyError(
                    f"property {registration.name!r} is registered but not part "
                    f"of the ASL specification"
                )
            if registration.subject == SubjectKind.REGION:
                self._evaluate_regions(
                    registration, version, run, basis_region, strategy, result
                )
            else:
                self._evaluate_calls(
                    registration, version, run, basis_region, strategy, result
                )
        return result

    # ------------------------------------------------------------------ #
    # iteration over subjects
    # ------------------------------------------------------------------ #

    def _evaluate_regions(
        self,
        registration: PropertyRegistration,
        version: ProgVersion,
        run: TestRun,
        basis: Region,
        strategy: EvaluationStrategy,
        result: AnalysisResult,
    ) -> None:
        contexts = [
            (
                region.name,
                SubjectKind.REGION,
                self._bind_parameters(registration.name, region, run, basis),
            )
            for region in version.all_regions()
        ]
        self._evaluate_contexts(registration, contexts, run, strategy, result)

    def _evaluate_calls(
        self,
        registration: PropertyRegistration,
        version: ProgVersion,
        run: TestRun,
        basis: Region,
        strategy: EvaluationStrategy,
        result: AnalysisResult,
    ) -> None:
        contexts = [
            (
                f"{call.callee_name}@{call.CallingReg.name}",
                SubjectKind.CALL,
                self._bind_parameters(registration.name, call, run, basis),
            )
            for call in version.all_calls()
            if registration.accepts_callee(call.callee_name)
        ]
        self._evaluate_contexts(registration, contexts, run, strategy, result)

    def _evaluate_contexts(
        self,
        registration: PropertyRegistration,
        contexts: List,
        run: TestRun,
        strategy: EvaluationStrategy,
        result: AnalysisResult,
    ) -> None:
        """Evaluate one property over all its contexts.

        Strategies that offer ``evaluate_many`` (the pipelined pushdown
        strategy) receive the whole context list at once, so their statement
        pipeline can overlap round trips *across* contexts; per-context
        failures come back as :class:`AslEvaluationError` entries and are
        skipped exactly like in the serial path.  Everything else is driven
        context by context through :meth:`_evaluate_one`.
        """
        evaluate_many = getattr(strategy, "evaluate_many", None)
        if evaluate_many is None:
            for subject, subject_kind, parameters in contexts:
                self._evaluate_one(
                    registration, subject, subject_kind, parameters, run,
                    strategy, result,
                )
            return
        evaluations = evaluate_many(
            registration.name, [parameters for _, _, parameters in contexts]
        )
        for (subject, subject_kind, _), evaluation in zip(contexts, evaluations):
            self._record_evaluation(
                registration, subject, subject_kind, run, evaluation, result
            )

    def _evaluate_one(
        self,
        registration: PropertyRegistration,
        subject: str,
        subject_kind: str,
        parameters: Dict[str, Any],
        run: TestRun,
        strategy: EvaluationStrategy,
        result: AnalysisResult,
    ) -> None:
        try:
            evaluation = strategy.evaluate(registration.name, parameters)
        except AslEvaluationError as error:
            evaluation = error
        self._record_evaluation(
            registration, subject, subject_kind, run, evaluation, result
        )

    @staticmethod
    def _record_evaluation(
        registration: PropertyRegistration,
        subject: str,
        subject_kind: str,
        run: TestRun,
        evaluation: Union[PropertyEvaluation, AslEvaluationError],
        result: AnalysisResult,
    ) -> None:
        """Append one evaluation outcome to the analysis result.

        An :class:`AslEvaluationError` value means the context lacked data
        (e.g. a region without timings for the selected run): the instance
        is skipped but the analysis keeps going — identical handling for the
        serial per-context path and the pipelined batch path.
        """
        if isinstance(evaluation, AslEvaluationError):
            result.skipped += 1
            return
        result.instances.append(
            PropertyInstance(
                property_name=registration.name,
                subject=subject,
                subject_kind=subject_kind,
                run_pes=run.NoPe,
                holds=evaluation.holds,
                confidence=evaluation.confidence,
                severity=evaluation.severity,
                conditions=dict(evaluation.conditions),
            )
        )

    # ------------------------------------------------------------------ #
    # parameter binding and selection helpers
    # ------------------------------------------------------------------ #

    def _bind_parameters(
        self, property_name: str, subject: Any, run: TestRun, basis: Region
    ) -> Dict[str, Any]:
        """Bind a property's formal parameters to subject / run / basis.

        The first parameter receives the subject; the remaining parameters are
        bound by type: ``TestRun`` → the selected run, ``Region`` → the ranking
        basis.
        """
        decl = self.specification.index.properties[property_name]
        if not decl.params:
            return {}
        binding: Dict[str, Any] = {decl.params[0].name: subject}
        for param in decl.params[1:]:
            if param.type.name == "TestRun":
                binding[param.name] = run
            elif param.type.name == "Region":
                binding[param.name] = basis
            else:
                raise KeyError(
                    f"cannot bind parameter {param.name!r} of type "
                    f"{param.type.name!r} in property {property_name!r}"
                )
        return binding

    def _select_program(self, name: Optional[str]):
        programs = self.repository.programs
        if not programs:
            raise ValueError("the repository contains no programs")
        if name is None:
            return programs[0]
        return self.repository.program(name)

    @staticmethod
    def _select_version(program, label: Optional[str]) -> ProgVersion:
        if label is None:
            return program.latest_version()
        return program.version_by_label(label)

    @staticmethod
    def _select_run(version: ProgVersion, pes: Optional[int]) -> TestRun:
        if not version.Runs:
            raise ValueError("the selected program version has no test runs")
        if pes is None:
            return max(version.Runs, key=lambda run: (run.NoPe, run.uid))
        return version.run_with_pes(pes)
