"""Command-line interface of the COSY cost analyzer.

Example::

    cosy --workload mixed --pes 1 2 4 8 16 32 --analyze-pes 32 --strategy pushdown

simulates the ``mixed`` synthetic workload, loads the resulting performance
data, evaluates the COSY properties with the chosen strategy and prints the
ranked report.  ``--show-sql`` additionally prints the SQL queries generated
for every property (the output of the ASL→SQL compiler).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.apprentice import SimulationConfig, ExecutionSimulator, synthetic_workload
from repro.asl.specs import cosy_specification
from repro.compiler import PropertyCompiler, generate_schema, load_repository
from repro.cosy.analyzer import CosyAnalyzer, DEFAULT_THRESHOLD
from repro.cosy.report import render_report
from repro.cosy.strategies import (
    ClientSideStrategy,
    PipelinedPushdownStrategy,
    PushdownStrategy,
)
from repro.relalg import NativeClient, backend

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``cosy`` command."""
    parser = argparse.ArgumentParser(
        prog="cosy",
        description="KOJAK Cost Analyzer — automatic performance analysis of "
        "simulated parallel applications",
    )
    parser.add_argument(
        "--workload",
        default="mixed",
        help="synthetic workload to simulate (stencil, imbalanced, io_bound, "
        "comm_bound, mixed, scalable)",
    )
    parser.add_argument(
        "--pes",
        type=int,
        nargs="+",
        default=[1, 2, 4, 8, 16, 32],
        help="processor counts of the simulated test runs",
    )
    parser.add_argument(
        "--analyze-pes",
        type=int,
        default=None,
        help="processor count of the run to analyse (default: the largest)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="severity threshold above which a property is a problem",
    )
    parser.add_argument(
        "--strategy",
        choices=("client", "pushdown"),
        default="client",
        help="property evaluation strategy",
    )
    parser.add_argument(
        "--db-backend",
        choices=("oracle7", "ms_sql_server", "postgres", "ms_access"),
        default="ms_access",
        help="simulated database backend used by the pushdown strategy",
    )
    parser.add_argument(
        "--db-partitions",
        type=int,
        default=1,
        help="hash partitions per table of the pushdown database "
        "(primary-key sharding; default 1)",
    )
    parser.add_argument(
        "--db-parallelism",
        type=int,
        default=1,
        help="virtual scan workers of the pushdown backend (partition "
        "scans are charged as a makespan over this many workers)",
    )
    parser.add_argument(
        "--db-executor",
        choices=("sequential", "thread", "process"),
        default=None,
        help="how the engine realizes --db-parallelism on real hardware: "
        "'thread' (default when parallelism > 1; GIL-bound), 'process' "
        "(shared-nothing worker processes — the wall clock can track the "
        "virtual makespan) or 'sequential' (virtual-only parallelism)",
    )
    parser.add_argument(
        "--pipeline-depth",
        type=int,
        default=1,
        help="in-flight statement window of the pushdown strategy: 1 "
        "(default) serializes every round trip, >1 pipelines the "
        "per-property SELECTs so their network round trips overlap on "
        "the virtual timeline",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=20,
        help="number of ranked property instances to print",
    )
    parser.add_argument(
        "--show-sql",
        action="store_true",
        help="print the SQL generated for every property and exit",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="load the data, then print the execution plan of every property "
        "query (join order, access paths, partition pruning, estimated "
        "cardinalities) and exit",
    )
    return parser


def _print_property_queries(specification, mapping, render) -> None:
    """Shared --show-sql / --explain loop: one ``render(label, query)`` per
    compiled condition and severity query of every property."""
    compiler = PropertyCompiler(specification, mapping)
    for name, compiled in sorted(compiler.compile_all().items()):
        print(f"-- property {name}")
        for key, query in compiled.conditions:
            render(f"condition ({key})", query)
        for guard, query in compiled.severity:
            label = f"guard {guard}" if guard else "unguarded"
            render(f"severity ({label})", query)
        print()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``cosy`` command."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.pipeline_depth < 1:
        parser.error("--pipeline-depth must be >= 1")
    if args.pipeline_depth > 1 and args.strategy != "pushdown":
        parser.error("--pipeline-depth requires --strategy pushdown")
    if args.db_executor in ("thread", "process") and args.db_parallelism < 2:
        parser.error(
            f"--db-executor {args.db_executor} requires --db-parallelism >= 2"
        )

    specification = cosy_specification()

    if args.show_sql:
        mapping = generate_schema(specification)

        def render_sql(label, query):
            print(f"--   {label}: params {query.param_slots}")
            print(f"     {query.sql}")

        _print_property_queries(specification, mapping, render_sql)
        return 0

    workload = synthetic_workload(args.workload)
    simulator = ExecutionSimulator(
        workload, SimulationConfig(pe_counts=tuple(args.pes))
    )
    repository = simulator.run()

    analyzer = CosyAnalyzer(
        repository, specification=specification, threshold=args.threshold
    )

    if args.strategy == "pushdown" or args.explain:
        mapping = generate_schema(specification)
        client = NativeClient(
            backend(
                args.db_backend,
                n_partitions=args.db_partitions,
                parallelism=args.db_parallelism,
                executor=args.db_executor,
            )
        )
        try:
            ids = load_repository(repository, mapping, client)
            if args.explain:
                def render_plan(label, query):
                    print(f"--   {label}")
                    for line in client.explain(query.sql).splitlines():
                        print(f"     {line}")

                _print_property_queries(specification, mapping, render_plan)
                return 0
            if args.pipeline_depth > 1:
                strategy = PipelinedPushdownStrategy(
                    specification, mapping, client, ids,
                    window=args.pipeline_depth,
                )
            else:
                strategy = PushdownStrategy(specification, mapping, client, ids)
            result = analyzer.analyze(pes=args.analyze_pes, strategy=strategy)
        finally:
            # Release the engine's fan-out pools (worker threads/processes).
            client.close()
    else:
        strategy = ClientSideStrategy(specification)
        result = analyzer.analyze(pes=args.analyze_pes, strategy=strategy)

    print(render_report(result, top=args.top))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
