"""Registry of the performance properties COSY evaluates.

The registry records, for every ASL property, *over which entities* the COSY
analyzer instantiates it:

* region properties (``SublinearSpeedup``, ``MeasuredCost``, …) are evaluated
  for every program region of the selected test run;
* call-site properties are evaluated for function call sites; the
  ``LoadImbalance`` property "is evaluated only for calls to the barrier
  routine" (paper, Section 4.2), which the ``only_callees`` filter expresses.

The registry is purely declarative — the conditions, confidence and severity
come from the ASL specification (:mod:`repro.asl.specs`), and tools may
register additional properties parsed from their own specification documents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

__all__ = ["SubjectKind", "PropertyRegistration", "PropertyRegistry", "default_registry"]


class SubjectKind:
    """What kind of entity a property is instantiated over."""

    REGION = "region"
    CALL = "call"


@dataclass(frozen=True)
class PropertyRegistration:
    """How one ASL property is instantiated by the analyzer."""

    #: Name of the ASL property declaration.
    name: str
    #: ``SubjectKind.REGION`` or ``SubjectKind.CALL``.
    subject: str = SubjectKind.REGION
    #: For call-site properties: restrict evaluation to these callees
    #: (``None`` = all call sites).
    only_callees: Optional[FrozenSet[str]] = None
    #: Short description used in reports.
    description: str = ""

    def accepts_callee(self, callee: str) -> bool:
        """Whether a call site with this callee should be evaluated."""
        return self.only_callees is None or callee in self.only_callees


class PropertyRegistry:
    """An ordered collection of property registrations."""

    def __init__(self, registrations: Iterable[PropertyRegistration] = ()) -> None:
        self._registrations: Dict[str, PropertyRegistration] = {}
        for registration in registrations:
            self.register(registration)

    def register(self, registration: PropertyRegistration) -> None:
        """Add (or replace) a registration."""
        self._registrations[registration.name] = registration

    def unregister(self, name: str) -> None:
        """Remove a registration; unknown names are ignored."""
        self._registrations.pop(name, None)

    def names(self) -> List[str]:
        return list(self._registrations)

    def get(self, name: str) -> PropertyRegistration:
        try:
            return self._registrations[name]
        except KeyError:
            raise KeyError(
                f"property {name!r} is not registered; registered: "
                f"{self.names()}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._registrations

    def __iter__(self):
        return iter(self._registrations.values())

    def __len__(self) -> int:
        return len(self._registrations)

    def region_properties(self) -> List[PropertyRegistration]:
        return [r for r in self if r.subject == SubjectKind.REGION]

    def call_properties(self) -> List[PropertyRegistration]:
        return [r for r in self if r.subject == SubjectKind.CALL]


def default_registry() -> PropertyRegistry:
    """The property set of the COSY prototype (paper properties + breakdowns)."""
    return PropertyRegistry(
        [
            PropertyRegistration(
                name="SublinearSpeedup",
                subject=SubjectKind.REGION,
                description="lost cycles compared to the run with the fewest PEs",
            ),
            PropertyRegistration(
                name="MeasuredCost",
                subject=SubjectKind.REGION,
                description="overhead measured by Apprentice",
            ),
            PropertyRegistration(
                name="UnmeasuredCost",
                subject=SubjectKind.REGION,
                description="lost cycles not explained by measured overhead",
            ),
            PropertyRegistration(
                name="SyncCost",
                subject=SubjectKind.REGION,
                description="barrier synchronisation overhead",
            ),
            PropertyRegistration(
                name="CommunicationCost",
                subject=SubjectKind.REGION,
                description="message passing and collective communication overhead",
            ),
            PropertyRegistration(
                name="IOCost",
                subject=SubjectKind.REGION,
                description="input/output overhead",
            ),
            PropertyRegistration(
                name="LoadImbalance",
                subject=SubjectKind.CALL,
                only_callees=frozenset({"barrier"}),
                description="barrier cost caused by uneven work distribution",
            ),
            PropertyRegistration(
                name="FrequentBarrier",
                subject=SubjectKind.CALL,
                only_callees=frozenset({"barrier"}),
                description="very frequent barrier synchronisation",
            ),
        ]
    )
