"""Text reports of COSY analysis results.

The COSY user interface of the paper presents the ranked performance
properties to the application programmer; this module renders the same
information as a plain-text report: the analysis context, the bottleneck, the
performance problems above the threshold and the complete severity ranking.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.cosy.analyzer import AnalysisResult, PropertyInstance

__all__ = ["format_table", "render_report", "render_speedup_table"]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], indent: str = ""
) -> str:
    """Render a simple fixed-width text table."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        indent + "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        indent + "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in materialised:
        lines.append(
            indent + "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def render_report(result: AnalysisResult, top: Optional[int] = None) -> str:
    """Render a complete analysis report.

    ``top`` limits the severity ranking to the N most severe instances
    (the full ranking is shown when omitted).
    """
    lines: List[str] = []
    lines.append("KOJAK Cost Analyzer (COSY) report")
    lines.append("=" * 50)
    lines.append(f"program        : {result.program}")
    lines.append(f"version        : {result.version}")
    lines.append(f"test run       : {result.run_pes} processors")
    lines.append(f"ranking basis  : {result.basis}")
    lines.append(f"strategy       : {result.strategy}")
    lines.append(f"threshold      : {result.threshold:.3f}")
    if result.skipped:
        lines.append(f"skipped        : {result.skipped} instance(s) without data")
    lines.append("")

    bottleneck = result.bottleneck()
    if bottleneck is None:
        lines.append("No performance property holds: nothing to tune.")
        return "\n".join(lines)

    lines.append(
        f"Bottleneck     : {bottleneck.property_name} on {bottleneck.subject} "
        f"(severity {bottleneck.severity:.4f})"
    )
    if result.needs_tuning():
        lines.append("The bottleneck exceeds the threshold: the program needs tuning.")
    else:
        lines.append(
            "The bottleneck is below the threshold: the program does not need "
            "further tuning."
        )
    lines.append("")

    problems = result.problems()
    lines.append(f"Performance problems (severity > {result.threshold:.3f}): "
                 f"{len(problems)}")
    ranking = result.ranked()
    if top is not None:
        ranking = ranking[:top]
    lines.append("")
    lines.append(
        format_table(
            ["#", "property", "subject", "severity", "confidence", "problem"],
            [
                (
                    position,
                    instance.property_name,
                    instance.subject,
                    f"{instance.severity:.4f}",
                    f"{instance.confidence:.2f}",
                    "yes" if instance.is_problem(result.threshold) else "no",
                )
                for position, instance in enumerate(ranking, start=1)
            ],
        )
    )
    return "\n".join(lines)


def render_speedup_table(rows: Iterable[Sequence[object]]) -> str:
    """Render the per-run cost table used by the E4 benchmark and the examples.

    ``rows`` are ``(pes, duration, speedup, total_cost_severity)`` tuples.
    """
    return format_table(
        ["PEs", "summed duration [s]", "speedup", "SublinearSpeedup severity"],
        rows,
    )
