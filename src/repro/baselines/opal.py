"""OPAL-like baseline: rule-based hypothesis proof and refinement.

The OPAL tool of the SVM-Fortran project used a rule base consisting of
parameterised hypotheses with *proof rules* (is the hypothesis valid given the
measured data?) and *refinement rules* (which new hypotheses follow from a
proven one?).  This baseline implements that engine over the simulated summary
data:

* a :class:`Hypothesis` carries a name and a context (region or call site);
* a :class:`ProofRule` decides, from the performance data, whether a
  hypothesis holds and with which severity;
* a :class:`RefinementRule` produces the child hypotheses of a proven one
  (e.g. ``SyncProblem(region)`` refines into ``LoadImbalance(call site)`` for
  the barrier call sites of that region);
* the :class:`RuleEngine` runs a work-list algorithm until no new hypotheses
  are generated.

Compared with ASL, the rules are ordinary Python callables — the knowledge is
encoded in the tool rather than in a declarative specification document, which
is the design difference the paper emphasises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines.common import Finding, rank_findings
from repro.datamodel import (
    COMMUNICATION_TYPES,
    IO_TYPES,
    FunctionCall,
    PerformanceDatabase,
    ProgVersion,
    Region,
    TestRun,
    TimingType,
)

__all__ = [
    "Hypothesis",
    "ProofResult",
    "ProofRule",
    "RefinementRule",
    "RuleEngine",
    "default_rule_base",
]


@dataclass(frozen=True)
class Hypothesis:
    """A parameterised hypothesis about a program context."""

    name: str
    #: Region or FunctionCall the hypothesis talks about.
    context: object
    #: Human-readable location string.
    location: str


@dataclass(frozen=True)
class ProofResult:
    """Outcome of applying a proof rule."""

    proven: bool
    severity: float = 0.0
    details: str = ""


ProofRule = Callable[[Hypothesis, TestRun, Region], ProofResult]
RefinementRule = Callable[[Hypothesis, TestRun, ProgVersion], List[Hypothesis]]


@dataclass
class RuleBase:
    """Proof and refinement rules per hypothesis name, plus the initial set."""

    proof_rules: Dict[str, ProofRule] = field(default_factory=dict)
    refinement_rules: Dict[str, RefinementRule] = field(default_factory=dict)
    initial: Callable[[ProgVersion], List[Hypothesis]] = lambda version: []


class RuleEngine:
    """Work-list evaluation of a rule base."""

    def __init__(self, repository: PerformanceDatabase, rule_base: RuleBase) -> None:
        self.repository = repository
        self.rule_base = rule_base
        self.evaluated = 0

    def analyze(self, version: ProgVersion, run: TestRun) -> List[Finding]:
        """Prove and refine hypotheses until the work list is empty."""
        basis = version.main_region
        worklist: List[Hypothesis] = list(self.rule_base.initial(version))
        seen: set = set()
        findings: List[Finding] = []
        while worklist:
            hypothesis = worklist.pop(0)
            key = (hypothesis.name, hypothesis.location)
            if key in seen:
                continue
            seen.add(key)
            proof = self.rule_base.proof_rules.get(hypothesis.name)
            if proof is None:
                continue
            self.evaluated += 1
            try:
                result = proof(hypothesis, run, basis)
            except Exception:  # lint: allow-broad-except
                continue
            if not result.proven:
                continue
            findings.append(
                Finding(
                    problem=hypothesis.name,
                    location=hypothesis.location,
                    severity=result.severity,
                    tool="opal",
                    details=result.details,
                )
            )
            refine = self.rule_base.refinement_rules.get(hypothesis.name)
            if refine is not None:
                worklist.extend(refine(hypothesis, run, version))
        return rank_findings(findings)


# --------------------------------------------------------------------------- #
# the default rule base
# --------------------------------------------------------------------------- #


def default_rule_base(
    severity_threshold: float = 0.02, imbalance_threshold: float = 0.25
) -> RuleBase:
    """The rule base used for the E5 comparison.

    The hypothesis hierarchy mirrors the refinement structure described for
    OPAL: a general ``ParallelizationOverhead`` hypothesis on the program
    refines into per-region ``SyncProblem`` / ``CommProblem`` / ``IOProblem``
    hypotheses, and a proven ``SyncProblem`` refines into ``LoadImbalance``
    hypotheses on the barrier call sites of the region.
    """

    def initial(version: ProgVersion) -> List[Hypothesis]:
        basis = version.main_region
        return [
            Hypothesis(
                name="ParallelizationOverhead", context=basis, location=basis.name
            )
        ]

    def typed_fraction(region: Region, run: TestRun, types, basis: Region) -> float:
        duration = basis.duration(run)
        if duration <= 0:
            return 0.0
        return sum(region.typed_time(run, t) for t in types) / duration

    def prove_overhead(h: Hypothesis, run: TestRun, basis: Region) -> ProofResult:
        region: Region = h.context  # type: ignore[assignment]
        duration = basis.duration(run)
        overhead = region.overhead(run)
        severity = overhead / duration if duration > 0 else 0.0
        return ProofResult(
            proven=severity > severity_threshold,
            severity=severity,
            details=f"measured overhead {overhead:.4f}s",
        )

    def refine_overhead(
        h: Hypothesis, run: TestRun, version: ProgVersion
    ) -> List[Hypothesis]:
        hypotheses: List[Hypothesis] = []
        for region in version.all_regions():
            for name in ("SyncProblem", "CommProblem", "IOProblem"):
                hypotheses.append(
                    Hypothesis(name=name, context=region, location=region.name)
                )
        return hypotheses

    def prove_sync(h: Hypothesis, run: TestRun, basis: Region) -> ProofResult:
        region: Region = h.context  # type: ignore[assignment]
        severity = typed_fraction(
            region, run, (TimingType.Barrier, TimingType.LockWait), basis
        )
        return ProofResult(proven=severity > severity_threshold, severity=severity)

    def prove_comm(h: Hypothesis, run: TestRun, basis: Region) -> ProofResult:
        region: Region = h.context  # type: ignore[assignment]
        severity = typed_fraction(region, run, COMMUNICATION_TYPES, basis)
        return ProofResult(proven=severity > severity_threshold, severity=severity)

    def prove_io(h: Hypothesis, run: TestRun, basis: Region) -> ProofResult:
        region: Region = h.context  # type: ignore[assignment]
        severity = typed_fraction(region, run, IO_TYPES, basis)
        return ProofResult(proven=severity > severity_threshold, severity=severity)

    def refine_sync(
        h: Hypothesis, run: TestRun, version: ProgVersion
    ) -> List[Hypothesis]:
        region: Region = h.context  # type: ignore[assignment]
        hypotheses: List[Hypothesis] = []
        for call in version.all_calls():
            if call.callee_name == "barrier" and call.CallingReg is region:
                hypotheses.append(
                    Hypothesis(
                        name="LoadImbalance",
                        context=call,
                        location=f"barrier@{region.name}",
                    )
                )
        return hypotheses

    def prove_imbalance(h: Hypothesis, run: TestRun, basis: Region) -> ProofResult:
        call: FunctionCall = h.context  # type: ignore[assignment]
        timing = call.timing_for(run)
        proven = timing.StdevTime > imbalance_threshold * timing.MeanTime
        duration = basis.duration(run)
        severity = timing.MeanTime / duration if duration > 0 else 0.0
        return ProofResult(
            proven=proven,
            severity=severity,
            details=f"stdev/mean={timing.imbalance_ratio:.2f}",
        )

    return RuleBase(
        proof_rules={
            "ParallelizationOverhead": prove_overhead,
            "SyncProblem": prove_sync,
            "CommProblem": prove_comm,
            "IOProblem": prove_io,
            "LoadImbalance": prove_imbalance,
        },
        refinement_rules={
            "ParallelizationOverhead": refine_overhead,
            "SyncProblem": refine_sync,
        },
        initial=initial,
    )
