"""Common result type of the baseline analyzers.

Every baseline reports :class:`Finding` objects so that the E5 benchmark can
compare them with COSY's property instances: did the approach locate the
injected bottleneck, what did it call it, and how severe did it judge it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Finding", "rank_findings"]


@dataclass(frozen=True)
class Finding:
    """One bottleneck hypothesis reported by an analyzer."""

    #: Name of the detected problem (tool-specific vocabulary).
    problem: str
    #: Program location (region name, call site, or "program").
    location: str
    #: Severity metric of the tool (normalised to the run duration when
    #: possible, so findings of different tools are roughly comparable).
    severity: float
    #: Name of the analyzer that produced the finding.
    tool: str = ""
    #: Free-form details.
    details: str = ""


def rank_findings(findings: List[Finding]) -> List[Finding]:
    """Findings ordered by decreasing severity."""
    return sorted(findings, key=lambda f: (-f.severity, f.problem, f.location))
