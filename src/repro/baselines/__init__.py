"""Related-work baseline analyzers (paper, Section 2).

* :mod:`repro.baselines.paradyn` — automatic search over a *fixed* bottleneck
  set (Paradyn-like);
* :mod:`repro.baselines.opal` — rule-based hypothesis proof and refinement
  (OPAL-like);
* :mod:`repro.baselines.edl` — compound event patterns over traces (EDL-like);
* :mod:`repro.baselines.earl` — procedural trace-analysis scripts (EARL-like).

All baselines report :class:`~repro.baselines.common.Finding` objects so the
E5 benchmark can compare them with COSY's severity-ranked property instances.
"""

from repro.baselines.common import Finding, rank_findings
from repro.baselines.earl import (
    BarrierWaitScript,
    EarlAnalyzer,
    EarlInterpreter,
    EarlScript,
    MessageStatisticsScript,
    RegionProfileScript,
)
from repro.baselines.edl import (
    EdlAnalyzer,
    Match,
    Pattern,
    alt,
    match_stream,
    plus,
    prim,
    seq,
    star,
)
from repro.baselines.opal import (
    Hypothesis,
    ProofResult,
    RuleBase,
    RuleEngine,
    default_rule_base,
)
from repro.baselines.paradyn import FIXED_HYPOTHESES, ParadynHypothesis, ParadynSearch

__all__ = [
    "BarrierWaitScript",
    "EarlAnalyzer",
    "EarlInterpreter",
    "EarlScript",
    "EdlAnalyzer",
    "FIXED_HYPOTHESES",
    "Finding",
    "Hypothesis",
    "Match",
    "MessageStatisticsScript",
    "ParadynHypothesis",
    "ParadynSearch",
    "Pattern",
    "ProofResult",
    "RegionProfileScript",
    "RuleBase",
    "RuleEngine",
    "alt",
    "default_rule_base",
    "match_stream",
    "plus",
    "prim",
    "rank_findings",
    "seq",
    "star",
]
