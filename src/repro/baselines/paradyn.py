"""Paradyn-like baseline: automatic online search over a *fixed* bottleneck set.

Paradyn [Miller et al. 1995] performs an automatic online analysis based on
dynamic monitoring; its metrics can be defined via MDL, but the set of searched
bottlenecks is fixed — the paper names CPUbound, ExcessiveSyncWaitingTime,
ExcessiveIOBlockingTime and TooManySmallIOOps.  The search proceeds along two
axes: *why* is the program slow (which hypothesis) and *where* (which program
resource), refining from the whole program down the region hierarchy.

This baseline reproduces that behaviour over the simulated summary data: it
evaluates the four fixed hypotheses for the whole-program region and refines a
proven hypothesis into the child regions as long as the child also exceeds the
threshold.  Unlike COSY, the hypothesis set cannot be extended through a
specification document — that is exactly the contrast Section 2 of the paper
draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.baselines.common import Finding, rank_findings
from repro.datamodel import (
    COMMUNICATION_TYPES,
    IO_TYPES,
    SYNCHRONIZATION_TYPES,
    PerformanceDatabase,
    ProgVersion,
    Region,
    TestRun,
    TimingType,
)

__all__ = ["ParadynHypothesis", "ParadynSearch", "FIXED_HYPOTHESES"]


@dataclass(frozen=True)
class ParadynHypothesis:
    """One fixed bottleneck hypothesis of the Paradyn-like search."""

    name: str
    #: Fraction of the run duration above which the hypothesis is proven.
    threshold: float

    def value(self, region: Region, run: TestRun) -> float:
        """The metric value of the hypothesis for one region and run."""
        raise NotImplementedError


class _CpuBound(ParadynHypothesis):
    def value(self, region: Region, run: TestRun) -> float:
        summary = region.summary(run)
        overhead = summary.Ovhd
        return max(summary.Incl - overhead, 0.0)


class _ExcessiveSyncWaitingTime(ParadynHypothesis):
    def value(self, region: Region, run: TestRun) -> float:
        return sum(region.typed_time(run, t) for t in SYNCHRONIZATION_TYPES)


class _ExcessiveIOBlockingTime(ParadynHypothesis):
    def value(self, region: Region, run: TestRun) -> float:
        return sum(region.typed_time(run, t) for t in IO_TYPES)


class _ExcessiveCommunication(ParadynHypothesis):
    def value(self, region: Region, run: TestRun) -> float:
        return sum(region.typed_time(run, t) for t in COMMUNICATION_TYPES)


FIXED_HYPOTHESES: List[ParadynHypothesis] = [
    _CpuBound(name="CPUbound", threshold=0.60),
    _ExcessiveSyncWaitingTime(name="ExcessiveSyncWaitingTime", threshold=0.05),
    _ExcessiveIOBlockingTime(name="ExcessiveIOBlockingTime", threshold=0.05),
    _ExcessiveCommunication(name="ExcessiveCommunication", threshold=0.05),
]


class ParadynSearch:
    """Why/where search over the fixed hypothesis set."""

    def __init__(
        self,
        repository: PerformanceDatabase,
        hypotheses: Optional[List[ParadynHypothesis]] = None,
    ) -> None:
        self.repository = repository
        self.hypotheses = hypotheses or list(FIXED_HYPOTHESES)

    def search(
        self, version: ProgVersion, run: TestRun
    ) -> List[Finding]:
        """Run the search for one test run and return the ranked findings."""
        basis = version.main_region
        duration = basis.duration(run)
        if duration <= 0:
            return []
        findings: List[Finding] = []
        for hypothesis in self.hypotheses:
            self._refine(hypothesis, basis, run, duration, findings)
        return rank_findings(findings)

    def _refine(
        self,
        hypothesis: ParadynHypothesis,
        region: Region,
        run: TestRun,
        duration: float,
        findings: List[Finding],
    ) -> None:
        try:
            value = hypothesis.value(region, run)
        except Exception:  # lint: allow-broad-except
            return
        severity = value / duration
        if severity <= hypothesis.threshold:
            return
        findings.append(
            Finding(
                problem=hypothesis.name,
                location=region.name,
                severity=severity,
                tool="paradyn",
                details=f"metric={value:.4f}s of {duration:.4f}s",
            )
        )
        for child in region.children:
            self._refine(hypothesis, child, run, duration, findings)
