"""EARL-like baseline: procedural, scriptable event-trace analysis.

EARL (Wolf & Mohr) describes event patterns "in a more procedural fashion as
scripts in a high-level event trace analysis language".  This baseline models
that style: an :class:`EarlScript` receives every trace event in order through
callback methods and maintains whatever state it needs; the
:class:`EarlInterpreter` drives one or more scripts over a trace.  Three
built-in scripts reproduce the analyses the E5 comparison needs: per-region
inclusive time, barrier waiting time (the load-imbalance signature) and
message statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.baselines.common import Finding, rank_findings
from repro.traces.events import Event, EventKind, Trace

__all__ = [
    "EarlScript",
    "EarlInterpreter",
    "RegionProfileScript",
    "BarrierWaitScript",
    "MessageStatisticsScript",
    "EarlAnalyzer",
]


class EarlScript:
    """Base class of procedural trace-analysis scripts.

    Subclasses override the ``on_*`` callbacks they are interested in and
    implement :meth:`findings` to report their results.
    """

    name = "script"

    def on_event(self, event: Event) -> None:
        """Called for every event; dispatches to the specific callbacks."""
        handler = getattr(self, f"on_{event.kind.value}", None)
        if handler is not None:
            handler(event)

    def begin(self, trace: Trace) -> None:
        """Called once before the first event."""

    def end(self, trace: Trace) -> None:
        """Called once after the last event."""

    def findings(self, trace: Trace) -> List[Finding]:
        """The findings of this script (after the trace was processed)."""
        return []


class EarlInterpreter:
    """Drives scripts over a trace (one pass, events in time order)."""

    def __init__(self, scripts: List[EarlScript]) -> None:
        self.scripts = scripts

    def run(self, trace: Trace) -> List[Finding]:
        for script in self.scripts:
            script.begin(trace)
        for event in trace:
            for script in self.scripts:
                script.on_event(event)
        findings: List[Finding] = []
        for script in self.scripts:
            script.end(trace)
            findings.extend(script.findings(trace))
        return rank_findings(findings)


class RegionProfileScript(EarlScript):
    """Per-region inclusive time; reports regions dominating the run time."""

    name = "region_profile"

    def __init__(self, threshold: float = 0.3) -> None:
        self.threshold = threshold
        self._open: Dict[Tuple[int, str], List[float]] = {}
        self.inclusive: Dict[str, float] = {}

    def on_enter(self, event: Event) -> None:
        self._open.setdefault((event.pe, event.region), []).append(event.time)

    def on_exit(self, event: Event) -> None:
        starts = self._open.get((event.pe, event.region))
        if starts:
            start = starts.pop()
            self.inclusive[event.region] = self.inclusive.get(event.region, 0.0) + (
                event.time - start
            )

    def findings(self, trace: Trace) -> List[Finding]:
        duration = trace.duration() * trace.pes
        if duration <= 0:
            return []
        return [
            Finding(
                problem="DominantRegion",
                location=region,
                severity=time / duration,
                tool="earl",
                details=f"inclusive time {time:.4f}s",
            )
            for region, time in self.inclusive.items()
            if time / duration > self.threshold
        ]


class BarrierWaitScript(EarlScript):
    """Barrier waiting time per region (the load-imbalance signature)."""

    name = "barrier_wait"

    def __init__(self, threshold: float = 0.05) -> None:
        self.threshold = threshold
        self._arrivals: Dict[Tuple[str, int], List[float]] = {}
        self._instance: Dict[Tuple[int, str], int] = {}

    def on_barrier_enter(self, event: Event) -> None:
        index = self._instance.get((event.pe, event.region), 0)
        self._instance[(event.pe, event.region)] = index + 1
        self._arrivals.setdefault((event.region, index), []).append(event.time)

    def findings(self, trace: Trace) -> List[Finding]:
        duration = trace.duration() * trace.pes
        if duration <= 0:
            return []
        waits: Dict[str, float] = {}
        for (region, _instance), times in self._arrivals.items():
            latest = max(times)
            waits[region] = waits.get(region, 0.0) + sum(latest - t for t in times)
        return [
            Finding(
                problem="BarrierWait",
                location=region,
                severity=wait / duration,
                tool="earl",
                details=f"summed wait {wait:.4f}s",
            )
            for region, wait in waits.items()
            if wait / duration > self.threshold
        ]


class MessageStatisticsScript(EarlScript):
    """Counts messages and bytes; reports regions with many small messages."""

    name = "message_statistics"

    def __init__(self, small_message_bytes: int = 16384, threshold: int = 100) -> None:
        self.small_message_bytes = small_message_bytes
        self.threshold = threshold
        self.per_region_small: Dict[str, int] = {}
        self.per_region_messages: Dict[str, int] = {}

    def on_send(self, event: Event) -> None:
        self.per_region_messages[event.region] = (
            self.per_region_messages.get(event.region, 0) + 1
        )
        if event.size <= self.small_message_bytes:
            self.per_region_small[event.region] = (
                self.per_region_small.get(event.region, 0) + 1
            )

    def findings(self, trace: Trace) -> List[Finding]:
        findings = []
        for region, small in self.per_region_small.items():
            if small >= self.threshold:
                total = self.per_region_messages.get(region, small)
                findings.append(
                    Finding(
                        problem="TooManySmallMessages",
                        location=region,
                        severity=small / max(total, 1) * 0.1,
                        tool="earl",
                        details=f"{small} of {total} messages are small",
                    )
                )
        return findings


class EarlAnalyzer:
    """Convenience wrapper running the three built-in scripts."""

    def __init__(self) -> None:
        self.interpreter = EarlInterpreter(
            [RegionProfileScript(), BarrierWaitScript(), MessageStatisticsScript()]
        )

    def analyze(self, trace: Trace) -> List[Finding]:
        return self.interpreter.run(trace)
