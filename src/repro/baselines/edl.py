"""EDL-like baseline: compound event patterns over traces.

EDL (Bates & Wileden) describes performance/behaviour problems as *compound
events* defined by extended regular expressions over primitive trace events.
This module provides a small combinator library for such patterns —
:func:`prim` (a predicate on one event), :func:`seq`, :func:`alt`,
:func:`star`, :func:`plus` — plus a matcher that scans a per-process event
stream and reports every match, and two predefined compound events used by the
E5 comparison:

* ``barrier_wait``: a barrier entered long before it is left (waiting at a
  barrier — the trace signature of load imbalance);
* ``serial_io``: an I/O phase on one process while the others are idle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.baselines.common import Finding, rank_findings
from repro.traces.events import Event, EventKind, Trace

__all__ = [
    "Pattern",
    "Match",
    "prim",
    "seq",
    "alt",
    "star",
    "plus",
    "match_stream",
    "EdlAnalyzer",
]


@dataclass(frozen=True)
class Match:
    """One match of a pattern in an event stream."""

    start: int
    end: int  # exclusive
    events: Tuple[Event, ...]

    @property
    def duration(self) -> float:
        if not self.events:
            return 0.0
        return self.events[-1].time - self.events[0].time


class Pattern:
    """A compound-event pattern (regular expression over events)."""

    def match_at(self, events: Sequence[Event], index: int) -> List[int]:
        """All end positions of matches starting at ``index``."""
        raise NotImplementedError

    # Combinator sugar ------------------------------------------------------

    def then(self, other: "Pattern") -> "Pattern":
        return seq(self, other)

    def or_else(self, other: "Pattern") -> "Pattern":
        return alt(self, other)


class _Prim(Pattern):
    def __init__(self, predicate: Callable[[Event], bool]) -> None:
        self.predicate = predicate

    def match_at(self, events: Sequence[Event], index: int) -> List[int]:
        if index < len(events) and self.predicate(events[index]):
            return [index + 1]
        return []


class _Seq(Pattern):
    def __init__(self, parts: Sequence[Pattern]) -> None:
        self.parts = list(parts)

    def match_at(self, events: Sequence[Event], index: int) -> List[int]:
        positions = [index]
        for part in self.parts:
            next_positions: List[int] = []
            for position in positions:
                next_positions.extend(part.match_at(events, position))
            positions = sorted(set(next_positions))
            if not positions:
                return []
        return positions


class _Alt(Pattern):
    def __init__(self, options: Sequence[Pattern]) -> None:
        self.options = list(options)

    def match_at(self, events: Sequence[Event], index: int) -> List[int]:
        positions: List[int] = []
        for option in self.options:
            positions.extend(option.match_at(events, index))
        return sorted(set(positions))


class _Star(Pattern):
    def __init__(self, inner: Pattern, at_least_one: bool = False) -> None:
        self.inner = inner
        self.at_least_one = at_least_one

    def match_at(self, events: Sequence[Event], index: int) -> List[int]:
        results = set() if self.at_least_one else {index}
        frontier = {index}
        while frontier:
            next_frontier = set()
            for position in frontier:
                for end in self.inner.match_at(events, position):
                    if end not in results and end > position:
                        results.add(end)
                        next_frontier.add(end)
            frontier = next_frontier
        return sorted(results)


def prim(predicate: Callable[[Event], bool]) -> Pattern:
    """A primitive pattern matching one event satisfying ``predicate``."""
    return _Prim(predicate)


def seq(*parts: Pattern) -> Pattern:
    """Sequential composition of patterns."""
    return _Seq(parts)


def alt(*options: Pattern) -> Pattern:
    """Alternative between patterns."""
    return _Alt(options)


def star(inner: Pattern) -> Pattern:
    """Zero or more repetitions."""
    return _Star(inner)


def plus(inner: Pattern) -> Pattern:
    """One or more repetitions."""
    return _Star(inner, at_least_one=True)


def match_stream(pattern: Pattern, events: Sequence[Event]) -> List[Match]:
    """All non-overlapping, leftmost-longest matches of ``pattern``."""
    matches: List[Match] = []
    index = 0
    while index < len(events):
        ends = pattern.match_at(events, index)
        if ends:
            end = max(ends)
            matches.append(
                Match(start=index, end=end, events=tuple(events[index:end]))
            )
            index = max(end, index + 1)
        else:
            index += 1
    return matches


class EdlAnalyzer:
    """Detects predefined compound events in a trace and reports findings."""

    def __init__(self, long_wait_threshold: float = 0.05) -> None:
        self.long_wait_threshold = long_wait_threshold

    def analyze(self, trace: Trace) -> List[Finding]:
        """Scan every process stream for the predefined compound events."""
        duration = trace.duration()
        if duration <= 0:
            return []
        findings: List[Finding] = []
        findings.extend(self._barrier_waits(trace, duration))
        findings.extend(self._serial_io(trace, duration))
        return rank_findings(findings)

    # -- compound events ------------------------------------------------------

    def _barrier_waits(self, trace: Trace, duration: float) -> List[Finding]:
        pattern = seq(
            prim(lambda e: e.kind is EventKind.BARRIER_ENTER),
            prim(lambda e: e.kind is EventKind.BARRIER_EXIT),
        )
        per_region_wait: Dict[str, float] = {}
        for pe in range(trace.pes):
            events = [
                e
                for e in trace.for_pe(pe)
                if e.kind in (EventKind.BARRIER_ENTER, EventKind.BARRIER_EXIT)
            ]
            for match in match_stream(pattern, events):
                region = match.events[0].region
                per_region_wait[region] = (
                    per_region_wait.get(region, 0.0) + match.duration
                )
        findings = []
        for region, wait in per_region_wait.items():
            severity = wait / (duration * trace.pes)
            if severity > self.long_wait_threshold:
                findings.append(
                    Finding(
                        problem="BarrierWait",
                        location=region,
                        severity=severity,
                        tool="edl",
                        details=f"summed barrier wait {wait:.4f}s",
                    )
                )
        return findings

    def _serial_io(self, trace: Trace, duration: float) -> List[Finding]:
        pattern = seq(
            prim(lambda e: e.kind is EventKind.IO_BEGIN),
            prim(lambda e: e.kind is EventKind.IO_END),
        )
        findings = []
        per_region_io: Dict[str, float] = {}
        io_pes: Dict[str, set] = {}
        for pe in range(trace.pes):
            events = [
                e
                for e in trace.for_pe(pe)
                if e.kind in (EventKind.IO_BEGIN, EventKind.IO_END)
            ]
            for match in match_stream(pattern, events):
                region = match.events[0].region
                per_region_io[region] = per_region_io.get(region, 0.0) + match.duration
                io_pes.setdefault(region, set()).add(pe)
        for region, io_time in per_region_io.items():
            serialised = len(io_pes[region]) < max(2, trace.pes // 2)
            severity = io_time / duration
            if serialised and severity > self.long_wait_threshold / 2:
                findings.append(
                    Finding(
                        problem="SerializedIO",
                        location=region,
                        severity=severity,
                        tool="edl",
                        details=f"I/O on {len(io_pes[region])} of {trace.pes} PEs",
                    )
                )
        return findings
