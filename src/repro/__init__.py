"""repro — reproduction of *Specification Techniques for Automatic Performance
Analysis Tools* (M. Gerndt, H.-G. Eßer, CPC/IPPS 2000).

The package provides a complete, self-contained implementation of the systems
described in the paper:

``repro.asl``
    The APART Specification Language (ASL): lexer, parser, type checker,
    reference evaluator and the bundled COSY specifications.

``repro.datamodel``
    The COSY performance data model (Program, ProgVersion, TestRun, Function,
    Region, TotalTiming, TypedTiming, FunctionCall, CallTiming) as a runtime
    object repository.

``repro.apprentice``
    A simulated Cray T3E / MPP Apprentice measurement environment: a parallel
    execution simulator that produces Apprentice-style region summary data for
    synthetic message-passing workloads.

``repro.relalg``
    A from-scratch in-memory relational database engine with a SQL subset plus
    simulated backend latency profiles (Oracle-, MS Access-, MS SQL Server- and
    Postgres-like) used by the Section 5 experiments.

``repro.compiler``
    Automatic translation of ASL data models to relational schemas and of ASL
    performance properties to SQL queries (the paper's stated future work).

``repro.cosy``
    The KOJAK Cost Analyzer: property evaluation strategies (client-side and
    SQL pushdown), severity ranking, bottleneck identification and reporting.

``repro.traces`` / ``repro.baselines``
    Event-trace substrate and the related-work baseline analyzers (Paradyn-,
    OPAL-, EDL- and EARL-like) used for comparison experiments.
"""

from repro.datamodel import (
    CallTiming,
    Function,
    FunctionCall,
    PerformanceDatabase,
    Program,
    ProgVersion,
    Region,
    RegionKind,
    TestRun,
    TimingType,
    TotalTiming,
    TypedTiming,
)
from repro.asl import (
    AslError,
    AslEvaluator,
    AslParseError,
    AslProgram,
    AslTypeError,
    parse_asl,
    check_asl,
)
from repro.apprentice import (
    ApprenticeExport,
    ExecutionSimulator,
    SimulationConfig,
    WorkloadSpec,
    synthetic_workload,
)
from repro.cosy import CosyAnalyzer, AnalysisResult, PropertyInstance

__version__ = "1.0.0"

__all__ = [
    "AnalysisResult",
    "ApprenticeExport",
    "AslError",
    "AslEvaluator",
    "AslParseError",
    "AslProgram",
    "AslTypeError",
    "CallTiming",
    "CosyAnalyzer",
    "ExecutionSimulator",
    "Function",
    "FunctionCall",
    "PerformanceDatabase",
    "Program",
    "ProgVersion",
    "PropertyInstance",
    "Region",
    "RegionKind",
    "SimulationConfig",
    "TestRun",
    "TimingType",
    "TotalTiming",
    "TypedTiming",
    "WorkloadSpec",
    "check_asl",
    "parse_asl",
    "synthetic_workload",
    "__version__",
]
