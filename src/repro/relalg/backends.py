"""Simulated database backends (Section 5 of the paper).

The paper reports experiments with four database systems — Oracle 7, MS Access,
MS SQL Server and Postgres — where all but MS Access ran "in a distributed
fashion", i.e. the performance data were transferred over the network to the
database server.  The observations were:

* query processing on Oracle was about a factor of **2 slower** than on
  MS SQL Server and Postgres;
* the local **MS Access outperformed** all the server-based systems;
* bulk **insertion** of performance data into MS Access was about a factor of
  **20 faster** than into the Oracle server;
* fetching a single record from the Oracle server took about **1 ms**.

The original systems are not available (nor would their year-2000 network
setup be reproducible), so this module models each backend as the in-process
relational engine (:class:`repro.relalg.database.Database`) plus a *virtual
cost model*: every executed statement advances a virtual clock by the
network round trip, the per-row server processing time and the per-row
transfer time of the backend profile.  The constants are calibrated so that
the single-record fetch and the relative factors quoted above are reproduced;
the E1/E2 benchmarks then measure whether the *relative ordering and rough
factors* match the paper.

The clock is an explicit **event timeline** (:class:`TimelineEvent` spans),
not a scalar accumulator: serially charged statements append back-to-back
spans with the historical float arithmetic (byte-identical totals), while the
overlap-aware :class:`PipelinedTimeline` schedules up to ``window`` in-flight
statements whose round-trip components overlap and whose server-side work
serializes — the model behind the ``AsyncClient`` pipelining layer and the E8
overlap benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.relalg.database import Database
from repro.relalg.errors import ExecutionError
from repro.relalg.executor import ResultSet

__all__ = [
    "BackendProfile",
    "BACKEND_PROFILES",
    "DEFAULT_BATCH_SIZE",
    "MAX_TIMELINE_EVENTS",
    "TimelineEvent",
    "VirtualClock",
    "StatementCost",
    "PipelineSlot",
    "PipelinedTimeline",
    "SimulatedBackend",
    "backend",
]

#: Parameter rows shipped per ``executemany`` round trip unless overridden.
DEFAULT_BATCH_SIZE = 100

#: Upper bound of the retained timeline trace; when exceeded, the oldest half
#: is compacted away.  The completion frontier — not the trace — is the
#: accounting source of truth, so totals are unaffected.
MAX_TIMELINE_EVENTS = 100_000


@dataclass(frozen=True)
class BackendProfile:
    """Virtual cost model of one database backend."""

    #: Short identifier, e.g. ``oracle7``.
    name: str
    #: Human-readable description for reports.
    description: str
    #: Whether the backend runs on a remote server (adds network round trips).
    remote: bool
    #: One-time connection establishment latency (seconds).
    connect_latency: float
    #: Latency of one statement round trip client → server → client (seconds).
    round_trip: float
    #: Server-side per-INSERT-statement overhead (parse, constraint setup,
    #: logging, commit) — charged once per statement, so a batched
    #: ``executemany`` amortises it over the whole batch (seconds).
    per_insert_statement: float
    #: Server-side cost of inserting one row (seconds).
    per_insert_row: float
    #: Cost of returning one result row to the client (seconds).
    per_fetch_row: float
    #: Server-side cost of scanning/joining one stored row (seconds).
    per_scanned_row: float

    def statement_cost(
        self,
        rows_inserted: int = 0,
        rows_returned: int = 0,
        rows_scanned: int = 0,
    ) -> float:
        """Virtual elapsed time of one statement with the given row counts.

        A statement inserting N rows (a row-at-a-time INSERT has N = 1, one
        ``executemany`` batch has N = batch size) pays the per-statement
        insert overhead once plus the per-row cost N times — this is the cost
        asymmetry behind the paper's bulk-load observation.
        """
        cost = (
            self.round_trip
            + rows_inserted * self.per_insert_row
            + rows_returned * self.per_fetch_row
            + rows_scanned * self.per_scanned_row
        )
        if rows_inserted:
            cost += self.per_insert_statement
        return cost


#: The four backends compared in the paper.  The absolute values are synthetic;
#: the *ratios* reproduce the published observations (see the module docstring).
BACKEND_PROFILES: Dict[str, BackendProfile] = {
    "oracle7": BackendProfile(
        name="oracle7",
        description="Oracle 7 server reached over the network",
        remote=True,
        connect_latency=0.050,
        round_trip=6.0e-4,
        per_insert_statement=1.14e-3,
        per_insert_row=2.6e-4,
        per_fetch_row=4.0e-4,
        per_scanned_row=2.0e-6,
    ),
    "ms_sql_server": BackendProfile(
        name="ms_sql_server",
        description="MS SQL Server reached over the network",
        remote=True,
        connect_latency=0.030,
        round_trip=3.0e-4,
        per_insert_statement=6.0e-4,
        per_insert_row=1.0e-4,
        per_fetch_row=2.0e-4,
        per_scanned_row=1.5e-6,
    ),
    "postgres": BackendProfile(
        name="postgres",
        description="Postgres server reached over the network",
        remote=True,
        connect_latency=0.030,
        round_trip=3.2e-4,
        per_insert_statement=6.4e-4,
        per_insert_row=1.1e-4,
        per_fetch_row=2.1e-4,
        per_scanned_row=1.6e-6,
    ),
    "ms_access": BackendProfile(
        name="ms_access",
        description="local MS Access database (no network)",
        remote=False,
        connect_latency=0.002,
        round_trip=2.0e-5,
        per_insert_statement=6.5e-5,
        per_insert_row=1.5e-5,
        per_fetch_row=5.0e-5,
        per_scanned_row=1.0e-6,
    ),
}


@dataclass(slots=True)
class TimelineEvent:
    """One span on the virtual timeline (a value object; treat as immutable).

    ``kind`` names what occupied the span: ``"connect"`` (connection setup),
    ``"statement"`` (a serially charged statement), ``"client"`` (client-side
    marshalling charged serially) or ``"pipelined"`` (the full submit →
    complete lifetime of an overlapped statement — pipelined spans of
    concurrent statements overlap each other on the timeline).

    One event is appended per charged statement, so creation sits on the hot
    path: a slotted, non-frozen dataclass skips the ``object.__setattr__``
    toll frozen dataclasses pay per field.
    """

    kind: str
    start: float
    end: float
    label: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


class VirtualClock:
    """Virtual elapsed time as an explicit event timeline.

    The clock keeps an ordered list of :class:`TimelineEvent` spans plus a
    *completion frontier* (:attr:`elapsed`).  Serial charging
    (:meth:`advance`) appends a span starting at the frontier and accumulates
    with the exact float arithmetic of the historical scalar clock, so serial
    totals stay byte-identical to the pre-timeline implementation.
    Overlap-aware charging (:class:`PipelinedTimeline`) records spans that
    *start before* the frontier — concurrent statements overlap on the
    timeline — and pushes the frontier forward with :meth:`advance_to`.

    The trace is bounded: beyond :data:`MAX_TIMELINE_EVENTS` spans the
    oldest half is dropped, so long-lived backends keep a recent-history
    window instead of growing without bound.  All totals live in the
    frontier, never in the trace.
    """

    def __init__(self) -> None:
        self._elapsed = 0.0
        self.events: List[TimelineEvent] = []

    def advance(self, seconds: float, kind: str = "serial", label: str = "") -> None:
        """Charge ``seconds`` serially, starting at the completion frontier."""
        if seconds < 0:
            raise ValueError(f"cannot advance the clock by {seconds}")
        start = self._elapsed
        self._elapsed += seconds
        self._record(TimelineEvent(kind, start, self._elapsed, label))

    def advance_to(self, instant: float) -> None:
        """Move the completion frontier forward to ``instant``.

        Used by the overlap scheduler after committing a window: the frontier
        becomes the completion of the last in-flight statement.  An instant
        behind the frontier is a no-op — time never runs backwards.
        """
        if instant > self._elapsed:
            self._elapsed = instant

    def record(self, event: TimelineEvent) -> None:
        """Append an already positioned (possibly overlapping) span."""
        self._record(event)

    def _record(self, event: TimelineEvent) -> None:
        self.events.append(event)
        if len(self.events) > MAX_TIMELINE_EVENTS:
            del self.events[: len(self.events) // 2]

    @property
    def elapsed(self) -> float:
        return self._elapsed

    def reset(self) -> None:
        self._elapsed = 0.0
        self.events.clear()


@dataclass(slots=True)
class StatementCost:
    """Virtual cost breakdown of one executed statement (a value object;
    treat as immutable — created once per statement, on the hot path).

    :attr:`total` reproduces :meth:`BackendProfile.statement_cost` exactly
    (same expression, same floats), so serial charging through a cost object
    is byte-identical to the historical scalar clock.  The overlap-aware
    timeline instead splits the statement into the components that behave
    differently under pipelining:

    * the **request** and **response** halves of the network round trip plus
      the per-row result transfer — wire time that overlaps across in-flight
      statements;
    * the **server** work (scan/join/insert processing) — serialized on the
      simulated server, with ``rows_scanned`` already makespan-adjusted when
      the backend models ``parallelism`` scan workers.
    """

    profile: BackendProfile
    rows_inserted: int
    rows_returned: int
    rows_scanned: int

    @property
    def total(self) -> float:
        """Serial charge of the statement (the historical scalar arithmetic)."""
        return self.profile.statement_cost(
            rows_inserted=self.rows_inserted,
            rows_returned=self.rows_returned,
            rows_scanned=self.rows_scanned,
        )

    @property
    def server_seconds(self) -> float:
        """Server-side processing time (serializes across statements)."""
        cost = (
            self.rows_inserted * self.profile.per_insert_row
            + self.rows_scanned * self.profile.per_scanned_row
        )
        if self.rows_inserted:
            cost += self.profile.per_insert_statement
        return cost

    @property
    def request_seconds(self) -> float:
        """Wire time of the request (client → server half of the round trip)."""
        return self.profile.round_trip / 2

    @property
    def response_seconds(self) -> float:
        """Wire time of the response (server → client half plus row transfer)."""
        return (
            self.profile.round_trip
            - self.profile.round_trip / 2
            + self.rows_returned * self.profile.per_fetch_row
        )


@dataclass(slots=True)
class PipelineSlot:
    """The scheduled lifecycle of one overlapped statement (virtual seconds;
    a value object — treat as immutable)."""

    label: str
    #: When the client began dispatching the statement.
    submitted: float
    #: When the request left the client (dispatch marshalling done).
    dispatched: float
    #: When the server started / finished processing the statement.
    server_start: float
    server_end: float
    #: When the full response reached the client.
    responded: float
    #: When the client finished receiving/unmarshalling the response.
    completed: float

    @property
    def server_seconds(self) -> float:
        return self.server_end - self.server_start

    @property
    def latency(self) -> float:
        """Submit-to-complete latency of this statement."""
        return self.completed - self.submitted


class PipelinedTimeline:
    """Overlap-aware scheduler over a :class:`VirtualClock`.

    Models a client that keeps up to ``window`` statements in flight on one
    pipelined connection.  Per statement *i* (an explicit event timeline, not
    a scalar accumulator):

    * ``submitted_i = max(client dispatch channel free, completed_{i-window})``
      — the client dispatches serially and holds at most ``window``
      uncompleted statements in flight;
    * the request travels for :attr:`StatementCost.request_seconds`;
    * the server serializes: ``server_start_i = max(request arrival, server
      free)`` — server work never overlaps other server work (scan charges
      are already per-partition makespans when the backend models
      ``parallelism`` workers);
    * the response travels back for :attr:`StatementCost.response_seconds`;
    * responses complete in submission order (pipelined connections preserve
      ordering): ``completed_i = max(response arrival, completed_{i-1}) +
      client receive work``.

    The client is modeled **full-duplex** (think a driver with a send and a
    receive thread): dispatch marshalling serializes along the send path,
    receive marshalling serializes along the in-order receive path, and the
    two paths do not contend with each other.  The elapsed-time floor of a
    deeply pipelined workload is therefore the *longest* serialized chain —
    ``max(send marshalling, server work, receive marshalling)`` plus one
    round-trip latency — not the sum of all client and server work.

    Round-trip components of concurrent statements therefore overlap while
    server work accumulates serially, so a round-trip-bound workload
    approaches that serialized-chain floor as the window grows and a
    CPU-bound workload stays flat.  :meth:`drain` commits the scheduled
    slots to the clock as overlapping ``"pipelined"`` spans and moves the
    completion frontier to the last completion.
    """

    def __init__(self, clock: VirtualClock, window: int) -> None:
        if window < 1:
            raise ValueError(f"window must be positive, got {window}")
        self.clock = clock
        self.window = window
        self._slots: List[PipelineSlot] = []
        self._completions: List[float] = []
        self._base: Optional[float] = None
        self._client_free = 0.0
        self._server_free = 0.0
        self._last_completion = 0.0

    @property
    def pending(self) -> int:
        """Scheduled but not yet drained statements."""
        return len(self._slots)

    def submit(
        self,
        cost: StatementCost,
        dispatch_seconds: float = 0.0,
        receive_seconds: float = 0.0,
        label: str = "",
    ) -> PipelineSlot:
        """Schedule one statement; returns its slot on the event timeline.

        ``dispatch_seconds`` / ``receive_seconds`` are the client-side
        marshalling costs on the request and response side (both serialize on
        the client).
        """
        if self._base is None:
            self._base = self.clock.elapsed
            self._client_free = self._base
            self._server_free = self._base
            self._last_completion = self._base
        position = len(self._completions)
        earliest = (
            self._base
            if position < self.window
            else self._completions[position - self.window]
        )
        submitted = max(self._client_free, earliest)
        dispatched = submitted + dispatch_seconds
        self._client_free = dispatched
        arrival = dispatched + cost.request_seconds
        server_start = max(arrival, self._server_free)
        server_end = server_start + cost.server_seconds
        self._server_free = server_end
        responded = server_end + cost.response_seconds
        completed = max(responded, self._last_completion) + receive_seconds
        self._last_completion = completed
        self._completions.append(completed)
        slot = PipelineSlot(
            label=label,
            submitted=submitted,
            dispatched=dispatched,
            server_start=server_start,
            server_end=server_end,
            responded=responded,
            completed=completed,
        )
        self._slots.append(slot)
        return slot

    def drain(self) -> float:
        """Commit every scheduled slot to the clock; returns the new elapsed.

        Records one overlapping ``"pipelined"`` span per statement and moves
        the completion frontier to the last completion.  Idempotent when
        nothing is pending; the next :meth:`submit` starts a fresh window
        from the (possibly advanced) frontier.
        """
        if self._base is None:
            return self.clock.elapsed
        for slot in self._slots:
            self.clock.record(
                TimelineEvent(
                    "pipelined", slot.submitted, slot.completed, slot.label
                )
            )
        self.clock.advance_to(self._last_completion)
        self._slots.clear()
        self._completions.clear()
        self._base = None
        return self.clock.elapsed


class SimulatedBackend:
    """A relational database with the virtual cost model of one backend.

    All statements are really executed by the in-process engine; the virtual
    clock additionally charges the backend-profile costs so that experiments
    can compare "how long would this have taken on Oracle vs. MS Access"
    without the original installations.
    """

    def __init__(
        self,
        profile: BackendProfile,
        database: Optional[Database] = None,
        engine: str = "compiled",
        batch_size: int = DEFAULT_BATCH_SIZE,
        n_partitions: int = 1,
        parallelism: int = 1,
        executor: Optional[str] = None,
        wal_path: Optional[str] = None,
        wal_autocheckpoint: Optional[int] = 4_000_000,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if parallelism < 1:
            raise ValueError(f"parallelism must be positive, got {parallelism}")
        self.profile = profile
        self.batch_size = batch_size
        #: Server-side scan workers of the virtual cost model: scan work is
        #: charged as the per-partition *makespan* over this many workers
        #: instead of the serial sum.  ``1`` (the default) is the historical
        #: serial charging, byte-for-byte.
        self.parallelism = parallelism
        # ``executor`` picks the engine-side fan-out realizing the modeled
        # parallelism ("thread" — historical — or "process" for true
        # multi-core; "sequential" keeps the virtual charge without any
        # OS-level fan-out).  The virtual makespan charge is identical for
        # all three: the executor decides whether the *wall* clock tracks it.
        if executor in ("thread", "process") and parallelism < 2:
            # Mirror Database's validation: silently ignoring the requested
            # fan-out would make wall-clock comparisons measure the wrong
            # executor.
            raise ValueError(
                f"executor={executor!r} requires parallelism >= 2 workers"
            )
        if executor == "sequential":
            engine_parallel = None
            engine_executor: Optional[str] = None
        else:
            engine_parallel = parallelism if parallelism > 1 else None
            engine_executor = executor if engine_parallel is not None else None
        self.database = database or Database(
            name=profile.name,
            engine=engine,
            n_partitions=n_partitions,
            parallel=engine_parallel,
            executor=engine_executor,
            wal_path=wal_path,
            wal_autocheckpoint=wal_autocheckpoint,
        )
        self.clock = VirtualClock()
        self.statements_executed = 0
        self.rows_inserted = 0
        self.rows_fetched = 0
        self._connected = False

    def _partition_snapshot(self) -> Optional[Dict[int, int]]:
        """Pre-statement copy of the per-partition scan counters.

        ``None`` for serial backends: the delta is only needed for the
        parallel makespan charge, so serial charging skips the bookkeeping.
        """
        if self.parallelism <= 1:
            return None
        return dict(self.database.summary.partition_rows_scanned)

    def _charged_scan_rows(
        self, partitions_before: Optional[Dict[int, int]], scanned: int
    ) -> int:
        """Scan rows to charge for one statement, given the pre-statement
        snapshot from :meth:`_partition_snapshot` (shared by ``execute`` and
        ``executemany`` so both paths always charge under the same rule)."""
        if partitions_before is None:
            return scanned
        partition_deltas = {
            pid: count - partitions_before.get(pid, 0)
            for pid, count in (
                self.database.summary.partition_rows_scanned.items()
            )
            if count != partitions_before.get(pid, 0)
        }
        return self._effective_scan_rows(partition_deltas, scanned)

    def _effective_scan_rows(
        self, partition_deltas: Dict[int, int], total_scanned: int
    ) -> int:
        """Scan rows to charge, given the per-partition work breakdown.

        With one virtual worker this is the serial total — exactly the
        engine's :class:`QueryStats` counter, so single-worker charging stays
        exact and byte-compatible.  With ``parallelism`` workers the
        partition-attributed scan work is charged as its makespan (the
        longest single partition, or the even split over the workers,
        whichever dominates); work with no partition attribution (probe
        matches, single-partition tables) stays serial.

        Partition ids are shared across tables (see
        :attr:`QueryStats.partition_rows_scanned`), so a join that scans two
        tables fuses both tables' shard *i* into one unit — the model treats
        equally-numbered shards as co-located on the same virtual worker.
        The fusion can only lengthen the makespan, i.e. the charge errs on
        the conservative (serial) side.
        """
        if self.parallelism <= 1 or not partition_deltas:
            return total_scanned
        loads = sorted(partition_deltas.values(), reverse=True)
        parallel_total = sum(loads)
        serial = total_scanned - parallel_total
        makespan = max(loads[0], math.ceil(parallel_total / self.parallelism))
        return serial + makespan

    # ------------------------------------------------------------------ #

    def connect(self) -> None:
        """Establish the (virtual) connection; charged only once."""
        if not self._connected:
            self.clock.advance(
                self.profile.connect_latency, kind="connect",
                label=self.profile.name,
            )
            self._connected = True

    def _measured_execute(
        self, sql: str, params: Sequence[Any]
    ) -> Tuple[Union[ResultSet, int], StatementCost]:
        """Execute one statement and measure its cost without charging it."""
        summary = self.database.summary
        scanned_before = summary.rows_scanned
        inserted_before = summary.rows_inserted
        partitions_before = self._partition_snapshot()
        result = self.database.execute(sql, params)
        scanned = self._charged_scan_rows(
            partitions_before, summary.rows_scanned - scanned_before
        )
        # Inserted rows come from the summary delta, not the integer result:
        # DELETE also returns an affected-row count but must not be charged
        # insert costs.
        inserted = summary.rows_inserted - inserted_before
        returned = len(result.rows) if isinstance(result, ResultSet) else 0
        return result, StatementCost(self.profile, inserted, returned, scanned)

    def _account(self, cost: StatementCost) -> None:
        """Update the statement/row counters for one executed statement."""
        self.statements_executed += 1
        self.rows_inserted += cost.rows_inserted
        self.rows_fetched += cost.rows_returned

    def execute(self, sql: str, params: Sequence[Any] = ()) -> Union[ResultSet, int]:
        """Execute one statement, charging the backend's virtual costs.

        The engine's statement-level plan cache makes *client-side* repeated
        execution cheap; the virtual cost model still charges the full
        per-statement round trip and per-row work, because the simulated
        server would perform it regardless of how the client prepared the
        statement.
        """
        self.connect()
        result, cost = self._measured_execute(sql, params)
        self.clock.advance(cost.total, kind="statement", label=sql[:60])
        self._account(cost)
        return result

    def execute_pipelined(
        self, sql: str, params: Sequence[Any] = ()
    ) -> Tuple[Union[ResultSet, int], StatementCost]:
        """Execute one statement *without* advancing the virtual clock.

        The engine runs (and the statement/row counters update) immediately;
        the returned :class:`StatementCost` carries the component breakdown
        so an overlap-aware caller (:class:`PipelinedTimeline` via
        ``AsyncClient``) owns the timing instead of the serial clock.
        """
        self.connect()
        result, cost = self._measured_execute(sql, params)
        self._account(cost)
        return result, cost

    def executemany(
        self,
        sql: str,
        param_rows: Iterable[Sequence[Any]],
        batch_size: Optional[int] = None,
    ) -> int:
        """Execute a parametrised statement over many rows, batched.

        DML parameter rows are shipped in batches of ``batch_size`` (default:
        the backend's configured size).  The virtual cost model charges **one
        round trip per batch** plus the per-row server work of every row in
        it — row-at-a-time submission pays the round trip and the per-insert
        statement overhead per row, which is exactly the gap the paper's bulk
        MS-Access-vs-Oracle load observation comes from.  Each batch commits
        atomically (see :meth:`Database.executemany`); a failing batch leaves
        earlier batches applied.

        SELECT statements cannot be batched on the wire (the era's client
        APIs batch updates only — a result set needs its own round trip), so
        they are executed and charged one statement at a time.
        """
        size = batch_size if batch_size is not None else self.batch_size
        if size < 1:
            raise ValueError(f"batch_size must be positive, got {size}")
        rows = list(param_rows)
        if not rows:
            return 0
        if self.database.is_select(sql):
            total = 0
            for params in rows:
                total += len(self.query(sql, params))
            return total
        self.connect()
        total = 0
        for start in range(0, len(rows), size):
            affected, cost = self._measured_batch(sql, rows[start:start + size])
            total += affected
            self.clock.advance(cost.total, kind="statement", label=sql[:60])
            self._account(cost)
        return total

    def _measured_batch(
        self, sql: str, batch: Sequence[Sequence[Any]]
    ) -> Tuple[int, StatementCost]:
        """Execute one DML batch and measure its cost without charging it."""
        summary = self.database.summary
        scanned_before = summary.rows_scanned
        returned_before = summary.rows_returned
        inserted_before = summary.rows_inserted
        partitions_before = self._partition_snapshot()
        affected = self.database.executemany(sql, batch)
        inserted = summary.rows_inserted - inserted_before
        returned = summary.rows_returned - returned_before
        scanned = self._charged_scan_rows(
            partitions_before, summary.rows_scanned - scanned_before
        )
        return affected, StatementCost(self.profile, inserted, returned, scanned)

    def executemany_pipelined(
        self, sql: str, batch: Sequence[Sequence[Any]]
    ) -> Tuple[int, StatementCost]:
        """Execute one already-batched DML statement without clock charging.

        The pipelined counterpart of one :meth:`executemany` batch: the
        caller (``AsyncClient``) splits the parameter rows into backend-sized
        batches and schedules each batch's cost on its overlap timeline.
        """
        self.connect()
        affected, cost = self._measured_batch(sql, batch)
        self._account(cost)
        return affected, cost

    def query(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        """Execute a statement that must be a SELECT."""
        result = self.execute(sql, params)
        if not isinstance(result, ResultSet):
            raise ExecutionError("query() requires a SELECT statement")
        return result

    def explain(self, sql: str) -> str:
        """EXPLAIN a SELECT against the underlying engine.

        Planning introspection only: the virtual clock is not advanced (the
        era's EXPLAIN facilities ran in the client's catalog, not against
        the data path).  Non-SELECT statements and non-string input raise
        the engine's typed :class:`ExecutionError`, mirrored unchanged.
        """
        return self.database.explain(sql)

    # ------------------------------------------------------------------ #

    @property
    def elapsed(self) -> float:
        """Virtual elapsed time (seconds) of all statements so far."""
        return self.clock.elapsed

    def plan_cache_info(self) -> Dict[str, int]:
        """Plan-cache counters of the underlying engine (see `Database`)."""
        return self.database.plan_cache_info()

    def reset_clock(self) -> None:
        """Reset the virtual clock (keeps the data and the connection)."""
        self.clock.reset()
        self.statements_executed = 0
        self.rows_inserted = 0
        self.rows_fetched = 0

    def close(self) -> None:
        """Release the engine's partition fan-out pool (idempotent).

        Only relevant for backends created with ``parallelism > 1`` — the
        underlying :class:`Database` lazily spawns worker threads (or, with
        ``executor="process"``, worker processes) that would otherwise idle
        until process exit.
        """
        self.database.close()

    def __enter__(self) -> "SimulatedBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimulatedBackend({self.profile.name!r}, "
            f"elapsed={self.clock.elapsed:.6f}s)"
        )


def backend(
    name: str,
    database: Optional[Database] = None,
    engine: str = "compiled",
    batch_size: int = DEFAULT_BATCH_SIZE,
    n_partitions: int = 1,
    parallelism: int = 1,
    executor: Optional[str] = None,
    wal_path: Optional[str] = None,
    wal_autocheckpoint: Optional[int] = 4_000_000,
) -> SimulatedBackend:
    """Create a simulated backend by profile name (e.g. ``'oracle7'``).

    ``engine`` selects the in-process execution engine ("compiled" plans or
    the seed "interpreted" AST walker) when no database is supplied;
    ``batch_size`` sets how many ``executemany`` parameter rows share one
    virtual round trip.  ``n_partitions`` shards every table the backend's
    database creates (ignored when ``database`` is supplied), and
    ``parallelism`` sets the virtual server's scan workers: scan costs are
    charged as the per-partition makespan over that many workers.
    ``executor`` picks how the engine realizes that parallelism on real
    hardware — ``"thread"`` (historical default when ``parallelism > 1``),
    ``"process"`` (shared-nothing worker processes; the wall clock can
    actually track the virtual makespan) or ``"sequential"`` (virtual-only
    parallelism, no OS fan-out).  ``wal_path`` attaches a write-ahead log to
    the backend's database (ignored when ``database`` is supplied), making
    its commits crash-durable; ``wal_autocheckpoint`` bounds that log.
    """
    try:
        profile = BACKEND_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; available: {sorted(BACKEND_PROFILES)}"
        ) from None
    return SimulatedBackend(
        profile,
        database,
        engine=engine,
        batch_size=batch_size,
        n_partitions=n_partitions,
        parallelism=parallelism,
        executor=executor,
        wal_path=wal_path,
        wal_autocheckpoint=wal_autocheckpoint,
    )
